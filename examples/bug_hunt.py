#!/usr/bin/env python3
"""Hunting lifter bugs: Fig. 5 and automatic differential testing.

Part 1 replays the paper's Fig. 5: the ``parse_word`` function analysed
with an angr-style engine whose lifter has the historical shamt-signed
bug produces one *false positive* (a spurious assertion failure) and one
*false negative* (the real failure is missed), while BinSym — deriving
its semantics from the formal specification — reports exactly the real
failure.

Part 2 shows how such bugs are found *automatically*: random
single-instruction differential testing of the lifter against the
specification-derived emulator rediscovers all five historical angr
bugs in seconds and certifies the fixed lifter clean.

Run:  python examples/bug_hunt.py
"""

from repro.baselines.vexir import VexEngine
from repro.baselines.vexir.lifter import BUG_DESCRIPTIONS, FIVE_ANGR_BUGS
from repro.eval.bugs import run_fig5
from repro.eval.difftest import bug_classes_for, difftest_engine

def part1_fig5() -> None:
    print("=" * 64)
    print("Part 1 — Fig. 5: parse_word(x) under symbolic x")
    print("=" * 64)
    for outcome in run_fig5(engines=("binsym", "angr", "angr-buggy")):
        flags = []
        if outcome.false_positive:
            flags.append("FALSE POSITIVE (spurious assert on x==1 path)")
        if outcome.false_negative:
            flags.append("FALSE NEGATIVE (real failure missed)")
        verdict = "; ".join(flags) if flags else "correct result"
        print(f"  {outcome.engine:12s} paths={outcome.paths}  {verdict}")
    print()


def part2_difftest() -> None:
    print("=" * 64)
    print("Part 2 — differential testing vs the formal specification")
    print("=" * 64)

    print("\nbuggy lifter (all five bugs seeded), 400 random instructions:")
    buggy = difftest_engine(
        lambda isa, img: VexEngine(isa, img, bugs=FIVE_ANGR_BUGS),
        iterations=400,
        seed=7,
    )
    print(f"  {len(buggy)} divergences observed; example findings:")
    seen = set()
    for divergence in buggy:
        if divergence.mnemonic not in seen:
            seen.add(divergence.mnemonic)
            print(f"    {divergence.describe()}")
    found = bug_classes_for(buggy)
    print(f"\n  bug classes rediscovered ({len(found)}/5):")
    for bug in sorted(found):
        print(f"    - {bug}: {BUG_DESCRIPTIONS[bug]}")

    print("\nfixed lifter, same 400 instructions:")
    fixed = difftest_engine(
        lambda isa, img: VexEngine(isa, img),
        iterations=400,
        seed=7,
    )
    print(f"  {len(fixed)} divergences (expected 0 — the fixed lifter "
          "agrees with the spec)")


if __name__ == "__main__":
    part1_fig5()
    part2_difftest()
