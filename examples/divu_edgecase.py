#!/usr/bin/env python3
"""The paper's running example (Fig. 2): the DIVU division-by-zero edge.

The C function::

    void foo(uint32_t x, uint32_t y) {
        uint32_t z = x / y;
        if (x < z) goto fail;
        ...
    }

looks like ``fail`` is dead code — division usually makes numbers
smaller.  But RISC-V defines division by zero to return all-ones
(0xffffffff), so with ``y == 0`` the branch *is* reachable.  BinSym
finds it because its semantics come from the formal specification,
where the ``DIVU`` description spells the edge case out (Fig. 2 step 4).

This example also prints the generated SMT-LIB query (Fig. 2 step 3).

Run:  python examples/divu_edgecase.py
"""

from repro.eval.bugs import run_divu_edgecase
from repro.smt import script, terms as T


def show_smtlib_query() -> None:
    """Construct and print the Fig. 2 step-3 query by hand."""
    x = T.bv_var("x", 32)
    y = T.bv_var("y", 32)
    # DIVU semantics with the division-by-zero edge (Fig. 2 step 4):
    z = T.ite(T.eq(y, T.bv(0, 32)), T.bv(0xFFFFFFFF, 32), T.udiv(x, y))
    # BLTU branch condition:
    branch = T.ult(x, z)
    print("Generated solver query in SMT-LIB (Fig. 2 step 3):")
    print(script([branch]))


def main() -> None:
    show_smtlib_query()

    result, witness = run_divu_edgecase()
    print(f"exploration: {result.summary()}")
    assert witness is not None, "the fail branch must be reachable"
    print(
        f"\nfail branch reached with x = {witness['x']:#x}, "
        f"y = {witness['y']:#x}"
    )
    assert witness["y"] == 0, "only division by zero reaches the branch"
    print("=> the compiler may assume y != 0 (UB in C), but the *binary* "
          "reaches fail with y == 0 — binary-level, ISA-accurate SE "
          "catches what source-level reasoning misses.")


if __name__ == "__main__":
    main()
