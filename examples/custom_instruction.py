#!/usr/bin/env python3
"""Sect. IV case study: adding a custom MADD instruction.

Reproduces the paper's extensibility experiment end to end:

* the *encoding* comes from 7 lines of riscv-opcodes YAML (Fig. 3),
* the *semantics* are 7 lines over existing DSL primitives (Fig. 4),
* **zero** lines of the symbolic engine change — BinSym picks the new
  instruction up through the specification, symbolically executes it,
  and the solver reasons about it.

Run:  python examples/custom_instruction.py
"""

from repro.asm import Assembler, encode_instruction
from repro.core import BinSymExecutor, Explorer
from repro.spec import rv32im, rv32im_zimadd
from repro.spec.zimadd import MADD_YAML

# A program using MADD: y = (a * b) + c, then branch on the result.
# The .word form emits the instruction through its encoding directly,
# proving the decoder derives everything from the YAML table entry.
SOURCE_TEMPLATE = """\
_start:
    li a0, 0x20000
    li a1, 1
    li a7, 1337
    ecall                   # one symbolic byte: the multiplier

    li t0, 0x20000
    lbu t1, 0(t0)           # a (symbolic)
    li t2, 7                # b
    li t3, 5                # c
    .word {madd_word}       # madd t4, t1, t2, t3  ->  t4 = a*7 + 5
    li t5, 26
    beq t4, t5, hit         # reachable iff a == 3
    li a0, 0
    li a7, 93
    ecall
hit:
    li a0, 1
    li a7, 93
    ecall
"""


def main() -> None:
    print("Fig. 3 — the 7-line YAML encoding description:")
    print(MADD_YAML)

    # The ISA with the Zimadd extension; the engine is *unchanged*.
    isa = rv32im_zimadd()
    madd = isa.decoder.by_name("madd")
    print(f"decoded from YAML: mask={madd.mask:#x} match={madd.match:#x} "
          f"fmt={madd.fmt} fields={madd.fields}")

    # t4=x29, t1=x6, t2=x7, t3=x28
    word = encode_instruction(madd, rd=29, rs1=6, rs2=7, rs3=28)
    source = SOURCE_TEMPLATE.format(madd_word=f"{word:#010x}")

    image = Assembler(isa=isa).assemble(source)
    result = Explorer(BinSymExecutor(isa, image)).explore()

    print(f"\nsymbolic exploration over MADD: {result.summary()}")
    hits = [p for p in result.paths if p.exit_code == 1]
    assert len(hits) == 1
    executor_inputs = hits[0].assignment.values
    value = next(iter(executor_inputs.values()))
    print(f"solver found the multiplier satisfying a*7 + 5 == 26: a = {value}")
    assert value == 3

    # The baseline ISA must NOT know the instruction.
    base = rv32im()
    assert "madd" not in base.decoder
    print("\nbase RV32IM decoder rejects the word; only the extended ISA "
          "accepts it — no BinSym code was modified for this instruction.")


if __name__ == "__main__":
    main()
