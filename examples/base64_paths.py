#!/usr/bin/env python3
"""Table I walkthrough on one benchmark: base64-encode.

Runs the ``base64-encode`` workload through all four engines plus the
buggy-angr configuration and shows

* the agreed path count (the structural derivation: 5 outcomes per full
  output character, fewer for padding characters),
* the † effect: the buggy lifter's load-extension bug makes high input
  bytes collapse into one alphabet class, losing feasible paths,
* per-path concrete inputs and the base64 output each one produces
  (verified against Python's base64 module).

Run:  python examples/base64_paths.py [scale]
"""

import base64
import sys

from repro.concrete import ConcreteInterpreter, HostPlatform
from repro.eval.engines import explore_with
from repro.eval.workloads import WORKLOADS
from repro.spec import rv32im

_OUT_BUF = 0x20100


def encode_with_emulator(isa, workload, scale, data: bytes) -> bytes:
    """Run the workload binary concretely on given input bytes."""
    image = workload.image(scale)
    interp = ConcreteInterpreter(isa, platform=HostPlatform())
    interp.load_image(image)
    interp.memory.write_bytes(0x20000, data)
    interp.run()
    length = (len(data) + 2) // 3 * 4
    return interp.memory.read_bytes(_OUT_BUF, length)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    workload = WORKLOADS["base64-encode"]
    isa = rv32im()
    image = workload.image(scale)

    expected = workload.expected_paths(scale)
    print(f"base64-encode with {scale} symbolic input byte(s); "
          f"derived path count: {expected}")

    print("\npath counts per engine:")
    for key in ("binsym", "binsec", "symex-vp", "angr", "angr-buggy"):
        result = explore_with(key, image, isa=isa)
        marker = ""
        if key == "angr-buggy" and result.num_paths < expected:
            marker = "   † misses paths (load-extension lifter bug)"
        print(f"  {key:12s} {result.num_paths:6d}{marker}")

    # Cross-validate a few concrete inputs against CPython's base64.
    print("\ncross-checking emulator output against Python base64:")
    for sample in (b"\x00", b"\xff", b"a", b"\x80"):
        data = (sample * scale)[:scale]
        ours = encode_with_emulator(isa, workload, scale, data)
        reference = base64.b64encode(data)
        status = "OK" if ours == reference else f"MISMATCH ({ours!r})"
        print(f"  b64({data.hex()}) = {reference.decode()}  {status}")
        assert ours == reference


if __name__ == "__main__":
    main()
