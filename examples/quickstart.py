#!/usr/bin/env python3
"""Quickstart: assemble a tiny RV32 program and explore all of its paths.

Demonstrates the complete BinSym pipeline on a password check:

1. assemble RV32 assembly into a loadable image (no toolchain needed),
2. mark a 4-byte buffer as symbolic program input,
3. run the offline (concolic) explorer until every feasible path is
   found,
4. inspect the inputs the solver produced — including the one that
   reaches the "unlock" branch.

Run:  python examples/quickstart.py
"""

from repro.asm import assemble
from repro.core import BinSymExecutor, Explorer
from repro.spec import rv32im

SOURCE = """\
# Check a 4-byte PIN against a secret (byte-by-byte, early exit).
_start:
    li a0, 0x30000          # input buffer
    li a1, 4
    li a7, 1337
    ecall                   # make_symbolic(buffer, 4)

    li s0, 0x30000          # input
    la s1, secret           # expected PIN
    li t0, 0                # index
check:
    li t1, 4
    beq t0, t1, unlocked    # all bytes matched (concrete)
    add t2, s0, t0
    lbu t3, 0(t2)
    add t2, s1, t0
    lbu t4, 0(t2)
    bne t3, t4, locked      # symbolic compare per byte
    addi t0, t0, 1
    j check
unlocked:
    li a0, 1                # exit code 1: PIN accepted
    li a7, 93
    ecall
locked:
    li a0, 0                # exit code 0: PIN rejected
    li a7, 93
    ecall

.data
secret:
    .byte 0x13, 0x37, 0x42, 0x99
"""


def main() -> None:
    image = assemble(SOURCE)
    isa = rv32im()

    executor = BinSymExecutor(isa, image)
    result = Explorer(executor).explore()

    print(f"exploration: {result.summary()}")
    print()
    for path in result.paths:
        sym_inputs = sorted(
            executor.interpreter.inputs.values(), key=lambda i: i.address
        )
        pin = path.assignment.as_bytes(sym_inputs)
        verdict = "ACCEPTED" if path.exit_code == 1 else "rejected"
        print(f"  path {path.index}: input={pin.hex()}  ->  {verdict}")

    accepted = [p for p in result.paths if p.exit_code == 1]
    assert len(accepted) == 1, "exactly one input should unlock"
    print()
    print("The solver recovered the secret PIN from the binary alone:")
    sym_inputs = sorted(
        executor.interpreter.inputs.values(), key=lambda i: i.address
    )
    print(f"  {accepted[0].assignment.as_bytes(sym_inputs).hex()} == 13374299")


if __name__ == "__main__":
    main()
