#!/usr/bin/env python3
"""Modular interpreters: the same spec, three analyses.

The paper's architecture (Sect. III) separates the formal ISA
specification from its interpreters.  This example runs one binary
through three of them:

1. the concrete interpreter (just executes),
2. the DIFT interpreter (tracks which control-flow decisions depend on
   untrusted input — the analysis the LibRISCV prior work shipped),
3. BinSym (turns the same information flow into SMT queries and finds
   the input that reaches the dangerous branch).

None of the three contains instruction-specific code; all behaviour
flows from `repro.spec`.

Run:  python examples/taint_tracking.py
"""

from repro.asm import assemble
from repro.concrete import ConcreteInterpreter
from repro.concrete.dift import DiftInterpreter
from repro.concrete.tracer import TracingInterpreter
from repro.core import BinSymExecutor, Explorer
from repro.spec import rv32im

# A message router: the first input byte selects an output queue; the
# value 0xFF routes into the "admin" queue (the dangerous branch).
SOURCE = """\
_start:
    li a0, 0x30000
    li a1, 2
    li a7, 1337
    ecall                   # make_symbolic(input, 2): untrusted input

    li t0, 0x30000
    lbu t1, 0(t0)           # queue selector (untrusted)
    lbu t2, 1(t0)           # payload (untrusted)
    li t3, 0xff
    beq t1, t3, admin_queue # tainted branch #1
    andi t4, t1, 3          # queue index 0..3
    la t5, queues
    add t5, t5, t4
    sb t2, 0(t5)
    li a0, 0
    li a7, 93
    ecall
admin_queue:
    sb t2, 0(t5)            # payload lands in the admin queue
    li a0, 1
    li a7, 93
    ecall

.data
    .org 0x20100
queues:
    .space 4
"""


def main() -> None:
    isa = rv32im()
    image = assemble(SOURCE)

    print("1) concrete interpreter — just runs (input bytes default 0):")
    concrete = ConcreteInterpreter(isa)
    concrete.load_image(image)
    hart = concrete.run()
    print(f"   exit code {hart.exit_code} after {hart.instret} instructions")

    print("\n2) DIFT interpreter — which decisions depend on input?")
    dift = DiftInterpreter(isa)
    dift.load_image(image)
    dift.run()
    for branch in dift.tainted_branches:
        print(f"   tainted control flow at pc={branch.pc:#x} "
              f"(taken={branch.taken})")
    assert len(dift.tainted_branches) == 1

    print("\n3) BinSym — can untrusted input actually reach admin_queue?")
    executor = BinSymExecutor(isa, image)
    result = Explorer(executor).explore()
    admin = [p for p in result.paths if p.exit_code == 1]
    assert len(admin) == 1
    print(f"   {result.num_paths} paths; admin queue reachable with "
          f"selector byte = "
          f"{next(iter(admin[0].assignment.values.values())):#04x}")

    print("\nBonus: instruction trace of the admin path "
          "(tracer, a fourth interpreter):")
    tracer = TracingInterpreter(isa)
    tracer.load_image(image)
    tracer.memory.write_byte(0x30000, 0xFF)
    tracer.run()
    print("\n".join("   " + line for line in tracer.render(limit=8).splitlines()))


if __name__ == "__main__":
    main()
