#!/usr/bin/env python3
"""CI certify gate: every reported answer on the Fig. 6 workloads checks.

Each workload is explored in certify mode — serial and on a 4-worker
pool — and the gate asserts the full evidence contract:

* every UNSAT answer the SAT core produced was certified by the
  independent DRAT checker (``certify_failures == 0``),
* every SAT model was re-evaluated against its query before being
  trusted,
* every recorded path's certificate (inputs, observable outcome,
  path-condition digest chain) replayed identically under the unstaged
  reference evaluator (``certified_paths == num_paths``), and
* the certified path set equals the uncertified baseline's — certify
  mode observes the exploration, it must not change it.

The ``--no-proof-log`` ablation is asserted too: with clause logging
off the path set is unchanged (proof logging is pure evidence).

Usage::

    python tools/certify_check.py [--jobs N] [--self-test]

``--self-test`` perturbs a valid certificate and asserts the replay
check rejects it — proving the gate can actually fail.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import Explorer  # noqa: E402
from repro.core.certificates import (  # noqa: E402
    reference_mode,
    replay_mismatches,
)
from repro.eval.engines import make_engine  # noqa: E402
from repro.eval.workloads import WORKLOADS  # noqa: E402
from repro.smt.preprocess import PreprocessConfig  # noqa: E402
from repro.spec import rv32im  # noqa: E402

#: The paper's Fig. 6 workload set, at scales small enough for CI.
WORKLOAD_SCALES = {
    "bubble-sort": 4,
    "insertion-sort": 4,
    "base64-encode": 1,
    "uri-parser": 3,
    "clif-parser": 3,
}


def build_explorer(
    workload: str,
    jobs: int = 1,
    certify: bool = False,
    proof_log: bool = True,
) -> Explorer:
    spec = WORKLOADS[workload]
    engine = make_engine("binsym", rv32im(), spec.image(WORKLOAD_SCALES[workload]))
    preprocess = PreprocessConfig(certify=certify, proof_log=proof_log)
    return Explorer(engine, jobs=jobs, use_cache=True, preprocess=preprocess)


def check_certified(workload: str, baseline, certified, label: str) -> list[str]:
    """Return the violated certify invariants (empty = contract held)."""
    errors = []
    if certified.path_set() != baseline.path_set():
        errors.append(
            f"{workload} [{label}]: certify mode changed the path set "
            f"({certified.num_paths} vs {baseline.num_paths} paths)"
        )
    if certified.certified_paths != certified.num_paths:
        errors.append(
            f"{workload} [{label}]: only {certified.certified_paths} of "
            f"{certified.num_paths} path certificates replayed cleanly"
        )
    if certified.certificate_failures:
        errors.append(
            f"{workload} [{label}]: {certified.certificate_failures} "
            f"certificate failure(s): {certified.certificate_errors[:3]}"
        )
    stats = certified.solver_stats
    if stats.get("certify_failures", 0):
        errors.append(
            f"{workload} [{label}]: {stats['certify_failures']} solver "
            f"answer(s) failed certification"
        )
    if not (stats.get("certified_sat", 0) or stats.get("certified_unsat", 0)):
        errors.append(
            f"{workload} [{label}]: no answer was ever certified — the "
            f"evidence layer did not run"
        )
    return errors


def run_gate(jobs: int) -> int:
    failures: list[str] = []
    for workload in WORKLOAD_SCALES:
        start = time.perf_counter()
        baseline = build_explorer(workload).explore()
        for label, n_jobs in (("serial", 1), (f"jobs={jobs}", jobs)):
            certified = build_explorer(
                workload, jobs=n_jobs, certify=True
            ).explore()
            errors = check_certified(workload, baseline, certified, label)
            failures.extend(errors)
            stats = certified.solver_stats
            status = "FAIL" if errors else "ok"
            print(
                f"  {status:4s} {workload:16s} {label:8s} "
                f"paths={certified.certified_paths}/{certified.num_paths} "
                f"sat={stats.get('certified_sat', 0)} "
                f"unsat={stats.get('certified_unsat', 0)} "
                f"failures={stats.get('certify_failures', 0)}"
            )
        # --no-proof-log ablation: clause logging is pure evidence, so
        # turning it off must not perturb the exploration itself.
        unlogged = build_explorer(workload, proof_log=False).explore()
        if unlogged.path_set() != baseline.path_set():
            failures.append(
                f"{workload} [no-proof-log]: disabling clause logging "
                f"changed the path set"
            )
            print(f"  FAIL {workload:16s} no-proof-log path-set mismatch")
        print(
            f"{workload}: {baseline.num_paths} paths, "
            f"{time.perf_counter() - start:.1f}s"
        )
    if failures:
        print(f"\ncertify gate FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\ncertify gate passed: every answer and every path carried "
        "checkable evidence"
    )
    return 0


def self_test() -> int:
    """Prove the replay check rejects a perturbed certificate."""
    explorer = build_explorer("clif-parser", certify=True)
    result = explorer.explore()
    assert result.certificates, "certify run produced no certificates"
    cert = result.certificates[0]
    tampered = [
        ("exit_code", dataclasses.replace(cert, exit_code=(cert.exit_code or 0) ^ 1)),
        ("instret", dataclasses.replace(cert, instret=cert.instret + 1)),
        ("stdout_digest", dataclasses.replace(cert, stdout_digest="0" * 32)),
        (
            "condition_digest",
            dataclasses.replace(
                cert, condition_digest=(cert.condition_digest or 0) ^ 1
            ),
        ),
    ]
    with reference_mode(explorer.executor):
        clean = replay_mismatches(cert, explorer.executor)
        if clean:
            print(f"self-test FAILED: pristine certificate rejected: {clean}")
            return 1
        for field_name, bad_cert in tampered:
            problems = replay_mismatches(bad_cert, explorer.executor)
            if not problems:
                print(
                    f"self-test FAILED: tampered {field_name} certificate "
                    f"was accepted"
                )
                return 1
            print(f"self-test: tampered {field_name} rejected ({problems[0]})")
    print("self-test passed: replay rejects every tampered certificate")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool width for the parallel runs (default 4)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate rejects tampered certificates")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    return run_gate(args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
