#!/usr/bin/env python3
"""CI chaos gate: the fault-tolerance invariant on the Fig. 6 workloads.

Each workload is explored twice — once clean, once under a seeded
``FaultPlan`` (worker kills, solver give-ups, snapshot eviction storms,
queue hiccups) — in serial and on a 4-worker pool.  The gate asserts
the PR 7 degradation contract on every run:

* the faulted path set is a subset of the clean one (a chaos run must
  never *invent* paths), and
* any shortfall is explicitly accounted: ``unknown_queries`` +
  ``incomplete_paths`` must be positive whenever the subset is proper
  (silent path loss is the one forbidden outcome), and
* a schedule that reports no degradation found the identical path set.

``--corrupt`` runs the *cache-corruption* gate instead: each workload
is explored under a ``corrupt=`` schedule that bit-flips freshly stored
query-cache entries after their integrity digest is taken.  The
contract is stricter than the degradation one — corruption must be
*absorbed*, not degraded around:

* the path set is **identical** to the clean run (a poisoned cached
  answer must be quarantined and re-solved, never served),
* total query attribution is conserved (a poisoned hit becomes a miss
  plus a fresh solve; no query disappears), and
* at least one quarantine is observed per workload (summed over the
  schedules), proving the fault actually fired and was detected.

``--hang`` runs the PR 9 *liveness* gate: pool workers are wedged by a
``hang=`` schedule (heartbeats stop, the task is never answered) and
the heartbeat watchdog must detect, kill and recover every one of them
— the run terminates with the subset-plus-counters invariant intact
and ``hung_workers`` counting the recoveries.  A final
watchdog-recovery self-test wedges *every* task (``hang=100``) and
asserts the pool still drains: zero paths, everything accounted as
``incomplete_paths``, no wedged parent.

``--deadline-gate`` runs the PR 9 *anytime* gate: each workload is cut
by a global ``--deadline`` (immediately, and mid-run) into a
checkpointed partial result whose shortfall is explicitly counted,
then ``--resume``d — the resumed campaign must complete exactly the
uninterrupted run's path set, serial and pooled.

``--store`` runs the PR 10 *persistent-store* gate: every workload is
explored cold into a ``--store`` directory and warm out of it — the
warm run must find the bit-identical path set with conserved query
attribution, strictly fewer CDCL solves and ``store_hits > 0`` (serial
and pooled); dirty campaigns under ``torn=``/``corrupt=`` schedules
killed mid-flight must be *healed* by the next clean run (quarantines
counted, never a wrong answer); ``iofail=`` must disable the tier
fail-soft; and a full store wipe mid-campaign must degrade to cold-run
behaviour, never an error.

Schedules are deterministic (``blake2b(seed, kind, site)``), so a
failure here reproduces locally with the printed seed.

Usage::

    python tools/chaos_check.py [--seeds N] [--jobs N] [--corrupt]
    python tools/chaos_check.py [--hang | --deadline-gate | --store]
    python tools/chaos_check.py --self-test

``--self-test`` drops a path from a clean result in memory and asserts
the invariant check trips, then perturbs a corruption-gate result and
asserts that check trips too — proving both gates can actually fail.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import Explorer, FaultPlan  # noqa: E402
from repro.eval.engines import make_engine  # noqa: E402
from repro.eval.workloads import WORKLOADS  # noqa: E402
from repro.spec import rv32im  # noqa: E402

#: The paper's Fig. 6 workload set, at scales small enough for CI.
WORKLOAD_SCALES = {
    "bubble-sort": 4,
    "insertion-sort": 4,
    "base64-encode": 1,
    "uri-parser": 3,
    "clif-parser": 3,
}

#: Base chaos schedule; the per-run seed varies the fault sites.
RATES = {"kill_rate": 20, "unknown_rate": 15, "evict_rate": 50, "hiccup_rate": 10}

#: Cache-poisoning rate for the corruption gate (``--corrupt``).
CORRUPT_RATE = 30

#: Worker-wedging rate for the liveness gate (``--hang``), and the
#: missed-heartbeat threshold it runs with — short, so a full gate run
#: stays inside the CI chaos-job time limit while every hang still
#: costs the watchdog a real detection.
HANG_RATE = 15
HANG_TIMEOUT = 1.0

#: Mid-run cut for the deadline gate: long enough for partial progress,
#: short enough that the cut usually lands mid-campaign.
DEADLINE_CUTS = (0.0, 0.3)


def build_explorer(
    workload: str, jobs: int = 1, faults=None, **kwargs
) -> Explorer:
    spec = WORKLOADS[workload]
    engine = make_engine("binsym", rv32im(), spec.image(WORKLOAD_SCALES[workload]))
    return Explorer(engine, jobs=jobs, use_cache=True, faults=faults, **kwargs)


def check_invariant(workload: str, clean, faulted, label: str) -> list[str]:
    """Return the violated invariants (empty = contract held)."""
    errors = []
    clean_set = clean.path_set()
    faulted_set = faulted.path_set()
    invented = faulted_set - clean_set
    if invented:
        errors.append(
            f"{workload} [{label}]: chaos run invented {len(invented)} "
            f"path(s) not in the clean set"
        )
    degraded = faulted.unknown_queries + faulted.incomplete_paths
    missing = len(clean_set - faulted_set)
    if missing and not degraded:
        errors.append(
            f"{workload} [{label}]: {missing} path(s) silently lost — "
            f"no unknown_queries / incomplete_paths reported"
        )
    if not missing and not invented and degraded and faulted_set != clean_set:
        errors.append(f"{workload} [{label}]: inconsistent path accounting")
    return errors


def total_attribution(result) -> int:
    """Every flip query lands in exactly one bucket; the total is a
    structural invariant of the exploration, not of the cache's luck."""
    return (
        result.num_queries
        + result.cache_hits
        + result.fast_path_answers
        + result.pruned_queries
        + result.unknown_queries
    )


def check_corruption_invariant(workload, clean, corrupted, label: str) -> list[str]:
    """Corruption must be absorbed: identical paths, conserved queries."""
    errors = []
    if corrupted.path_set() != clean.path_set():
        errors.append(
            f"{workload} [{label}]: corrupted run changed the path set "
            f"({corrupted.num_paths} vs {clean.num_paths} paths) — a "
            f"poisoned cache entry was served instead of quarantined"
        )
    if total_attribution(corrupted) != total_attribution(clean):
        errors.append(
            f"{workload} [{label}]: query attribution not conserved "
            f"({total_attribution(corrupted)} vs {total_attribution(clean)})"
        )
    return errors


def run_corruption_gate(seeds: int, jobs: int) -> int:
    failures: list[str] = []
    for workload in WORKLOAD_SCALES:
        start = time.perf_counter()
        clean = build_explorer(workload).explore()
        quarantines = 0
        corruptions = 0
        for seed in range(seeds):
            plan = FaultPlan(seed=seed, corrupt_rate=CORRUPT_RATE)
            for label, n_jobs in (("serial", 1), (f"jobs={jobs}", jobs)):
                corrupted = build_explorer(
                    workload, jobs=n_jobs, faults=plan
                ).explore()
                errors = check_corruption_invariant(
                    workload, clean, corrupted, f"{label} seed={seed}"
                )
                failures.extend(errors)
                quarantines += corrupted.solver_stats.get("cache_quarantines", 0)
                corruptions += corrupted.solver_stats.get("cache_corruptions", 0)
                status = "FAIL" if errors else "ok"
                print(
                    f"  {status:4s} {workload:16s} {label:8s} seed={seed} "
                    f"paths={corrupted.num_paths}/{clean.num_paths} "
                    f"corruptions="
                    f"{corrupted.solver_stats.get('cache_corruptions', 0)} "
                    f"quarantines="
                    f"{corrupted.solver_stats.get('cache_quarantines', 0)}"
                )
        if corruptions and not quarantines:
            failures.append(
                f"{workload}: {corruptions} injected corruption(s) but no "
                f"quarantine — poisoned entries went undetected"
            )
        if not corruptions:
            failures.append(
                f"{workload}: corrupt schedule never fired — the gate "
                f"proved nothing (raise CORRUPT_RATE or the seed count)"
            )
        print(
            f"{workload}: {clean.num_paths} clean paths, "
            f"{corruptions} corruptions / {quarantines} quarantines, "
            f"{time.perf_counter() - start:.1f}s"
        )
    if failures:
        print(f"\ncorruption gate FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\ncorruption gate passed: every poisoned entry was quarantined "
        "and re-solved"
    )
    return 0


def run_hang_gate(seeds: int, jobs: int) -> int:
    """Liveness gate: wedged workers must be recovered, never waited on.

    ``hang=`` is pool-only (a wedged serial driver has no supervisor),
    so every faulted run here is pooled.  Beyond the standard
    subset-plus-counters invariant, the gate requires the schedule to
    have actually fired (``hung_workers`` summed over all runs) and
    finishes with a watchdog-recovery self-test: a ``hang=100``
    schedule wedges every task, and the pool must still drain — zero
    paths, the initial item abandoned as an ``incomplete`` path after
    :data:`repro.core.parallel.MAX_ITEM_FAILURES` recoveries.
    """
    failures: list[str] = []
    total_hung = 0
    for workload in WORKLOAD_SCALES:
        start = time.perf_counter()
        clean = build_explorer(workload).explore()
        for seed in range(seeds):
            plan = FaultPlan(seed=seed, hang_rate=HANG_RATE)
            faulted = build_explorer(
                workload, jobs=jobs, faults=plan, hang_timeout=HANG_TIMEOUT
            ).explore()
            errors = check_invariant(
                workload, clean, faulted, f"hang jobs={jobs} seed={seed}"
            )
            failures.extend(errors)
            total_hung += faulted.hung_workers
            status = "FAIL" if errors else "ok"
            print(
                f"  {status:4s} {workload:16s} jobs={jobs} seed={seed} "
                f"paths={faulted.num_paths}/{clean.num_paths} "
                f"hung={faulted.hung_workers} "
                f"incomplete={faulted.incomplete_paths} "
                f"deaths={faulted.worker_deaths}"
            )
        print(
            f"{workload}: {clean.num_paths} clean paths, "
            f"{time.perf_counter() - start:.1f}s"
        )
    if not total_hung:
        failures.append(
            "hang schedule never fired — the gate proved nothing "
            "(raise HANG_RATE or the seed count)"
        )
    # Watchdog-recovery self-test: every task hangs; the pool must
    # still terminate with everything explicitly accounted.
    plan = FaultPlan(seed=0, hang_rate=100)
    wedged = build_explorer(
        "clif-parser", jobs=jobs, faults=plan, hang_timeout=HANG_TIMEOUT
    ).explore()
    if wedged.num_paths != 0:
        failures.append(
            f"hang=100 run completed {wedged.num_paths} path(s) — the "
            f"schedule did not wedge every task"
        )
    if wedged.hung_workers == 0 or wedged.incomplete_paths == 0:
        failures.append(
            f"hang=100 run terminated without accounting: "
            f"hung={wedged.hung_workers} "
            f"incomplete={wedged.incomplete_paths}"
        )
    print(
        f"watchdog recovery: hang=100 drained with "
        f"{wedged.hung_workers} hung workers killed, "
        f"{wedged.incomplete_paths} incomplete path(s)"
    )
    if failures:
        print(f"\nhang gate FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nhang gate passed: every wedged worker was detected, killed "
        "and its item recovered or accounted"
    )
    return 0


def run_deadline_gate(jobs: int) -> int:
    """Anytime gate: deadline-cut + resume == the uninterrupted run.

    Cuts each workload at each :data:`DEADLINE_CUTS` deadline (0 = cut
    before any run; the rest land mid-campaign) into a checkpoint, then
    resumes without a deadline.  The cut run must report
    ``deadline_expired`` with its shortfall counted, never invent
    paths, and the resumed campaign must finish exactly the clean path
    set — serial and pooled.
    """
    failures: list[str] = []
    for workload in WORKLOAD_SCALES:
        start = time.perf_counter()
        clean = build_explorer(workload).explore()
        for label, n_jobs in (("serial", 1), (f"jobs={jobs}", jobs)):
            for deadline in DEADLINE_CUTS:
                before = len(failures)
                with tempfile.TemporaryDirectory() as ckpt:
                    cut = build_explorer(
                        workload,
                        jobs=n_jobs,
                        deadline=deadline,
                        checkpoint_dir=ckpt,
                    ).explore()
                    tag = f"{label} deadline={deadline}"
                    if cut.path_set() - clean.path_set():
                        failures.append(
                            f"{workload} [{tag}]: cut run invented paths"
                        )
                    complete = cut.path_set() == clean.path_set()
                    if cut.deadline_expired:
                        if not complete and cut.incomplete_paths == 0:
                            failures.append(
                                f"{workload} [{tag}]: deadline shortfall "
                                f"not counted (incomplete_paths=0)"
                            )
                    elif not complete:
                        failures.append(
                            f"{workload} [{tag}]: paths missing without "
                            f"deadline_expired"
                        )
                    resumed = build_explorer(
                        workload,
                        jobs=n_jobs,
                        checkpoint_dir=ckpt,
                        resume=True,
                    ).explore()
                    if resumed.path_set() != clean.path_set():
                        failures.append(
                            f"{workload} [{tag}]: resumed campaign found "
                            f"{resumed.num_paths} path(s), clean run "
                            f"found {clean.num_paths}"
                        )
                    status = "FAIL" if len(failures) > before else "ok"
                    print(
                        f"  {status:4s} {workload:16s} {tag:22s} "
                        f"cut={cut.num_paths} "
                        f"incomplete={cut.incomplete_paths} "
                        f"resumed={resumed.num_paths}/{clean.num_paths}"
                    )
        print(
            f"{workload}: {clean.num_paths} clean paths, "
            f"{time.perf_counter() - start:.1f}s"
        )
    if failures:
        print(f"\ndeadline gate FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\ndeadline gate passed: every cut was counted and every resume "
        "completed the full path set"
    )
    return 0


#: Fault rates for the store gate's dirty campaign: torn writes and
#: cache/store poisoning high enough to damage several files per run,
#: plus the occasional injected I/O failure.
STORE_DIRTY_RATES = {"torn_rate": 40, "corrupt_rate": 30}
STORE_IOFAIL_RATE = 60


def run_store_gate(seeds: int, jobs: int) -> int:
    """Cross-run warm-start gate for the persistent store (``--store``).

    Per workload, over one shared store directory (the interner is
    reset between campaigns, so every warm run re-derives its keys
    from content exactly as a fresh process would):

    1. a cold ``--store`` run finds the clean path set and fills the
       store;
    2. a warm run finds the *bit-identical* path set with conserved
       query attribution, strictly fewer CDCL solves, and
       ``store_hits > 0`` — serial and pooled;
    3. seeded dirty campaigns (``torn=``/``corrupt=`` torn writes and
       poisoned files, killed mid-flight by ``stop=``) leave a damaged
       store; the next *clean* warm run must still match the clean
       path set with conserved attribution, quarantining the damage
       (``store_quarantines > 0`` summed over the gate);
    4. an ``iofail=`` run disables the tier mid-campaign and must
       still complete the clean path set (fail-soft, never an error);
    5. a full store wipe mid-campaign (deadline cut, ``rm -rf`` the
       store, resume) degrades to cold-run behaviour, never an error.
    """
    import shutil

    from repro.smt import terms as T

    failures: list[str] = []
    total_quarantines = 0
    for workload in WORKLOAD_SCALES:
        start = time.perf_counter()
        clean = build_explorer(workload).explore()
        clean_set = clean.path_set()
        with tempfile.TemporaryDirectory() as store_dir:
            cold = build_explorer(workload, store_dir=store_dir).explore()
            if cold.path_set() != clean_set:
                failures.append(
                    f"{workload} [cold]: --store changed the path set"
                )
            cold_solves = cold.solver_stats.get("sat_core_solves", 0)
            for label, n_jobs in (("warm", 1), (f"warm jobs={jobs}", jobs)):
                T.reset_interner()
                warm = build_explorer(
                    workload, jobs=n_jobs, store_dir=store_dir
                ).explore()
                errors = check_corruption_invariant(workload, clean, warm, label)
                warm_solves = warm.solver_stats.get("sat_core_solves", 0)
                if warm.store_hits == 0:
                    errors.append(
                        f"{workload} [{label}]: no warm hits served"
                    )
                if cold_solves and warm_solves >= cold_solves:
                    errors.append(
                        f"{workload} [{label}]: warm run solved as much as "
                        f"cold ({warm_solves} >= {cold_solves})"
                    )
                failures.extend(errors)
                status = "FAIL" if errors else "ok"
                print(
                    f"  {status:4s} {workload:16s} {label:14s} "
                    f"paths={warm.num_paths}/{clean.num_paths} "
                    f"solves={warm_solves}/{cold_solves} "
                    f"hits={warm.store_hits}"
                )
        # Dirty campaigns: torn/poisoned writes, killed mid-flight,
        # then a clean warm run over the damaged store.
        for seed in range(seeds):
            with tempfile.TemporaryDirectory() as store_dir:
                T.reset_interner()
                plan = FaultPlan(
                    seed=seed,
                    interrupt_after=max(1, clean.num_paths // 2),
                    **STORE_DIRTY_RATES,
                )
                dirty = build_explorer(
                    workload, faults=plan, store_dir=store_dir
                ).explore()
                T.reset_interner()
                healed = build_explorer(workload, store_dir=store_dir).explore()
                errors = check_corruption_invariant(
                    workload, clean, healed, f"healed seed={seed}"
                )
                failures.extend(errors)
                total_quarantines += healed.store_quarantines
                status = "FAIL" if errors else "ok"
                print(
                    f"  {status:4s} {workload:16s} dirty seed={seed}   "
                    f"interrupted={dirty.interrupted} "
                    f"healed={healed.num_paths}/{clean.num_paths} "
                    f"quarantined={healed.store_quarantines}"
                )
        # Fail-soft: injected I/O failures disable the tier mid-run,
        # the campaign still completes the clean path set.
        with tempfile.TemporaryDirectory() as store_dir:
            T.reset_interner()
            plan = FaultPlan(seed=0, iofail_rate=STORE_IOFAIL_RATE)
            soft = build_explorer(
                workload, faults=plan, store_dir=store_dir
            ).explore()
            errors = check_corruption_invariant(workload, clean, soft, "iofail")
            if soft.store_disabled == 0:
                errors.append(
                    f"{workload} [iofail]: schedule never fired "
                    f"(store_disabled=0)"
                )
            failures.extend(errors)
            status = "FAIL" if errors else "ok"
            print(
                f"  {status:4s} {workload:16s} iofail         "
                f"paths={soft.num_paths}/{clean.num_paths} "
                f"disabled={soft.store_disabled}"
            )
        # Store wipe mid-campaign: cut, destroy the store, resume.
        with tempfile.TemporaryDirectory() as parent:
            store_dir = str(Path(parent) / "store")
            ckpt = str(Path(parent) / "ckpt")
            T.reset_interner()
            build_explorer(
                workload,
                deadline=0.0,
                checkpoint_dir=ckpt,
                store_dir=store_dir,
            ).explore()
            shutil.rmtree(store_dir, ignore_errors=True)
            T.reset_interner()
            resumed = build_explorer(
                workload,
                checkpoint_dir=ckpt,
                resume=True,
                store_dir=store_dir,
            ).explore()
            errors = []
            if resumed.path_set() != clean_set:
                errors.append(
                    f"{workload} [wiped]: resume over a wiped store found "
                    f"{resumed.num_paths} path(s), clean run "
                    f"{clean.num_paths}"
                )
            if resumed.store_disabled:
                errors.append(
                    f"{workload} [wiped]: wiped store disabled the tier "
                    f"instead of restarting cold"
                )
            failures.extend(errors)
            status = "FAIL" if errors else "ok"
            print(
                f"  {status:4s} {workload:16s} wiped          "
                f"paths={resumed.num_paths}/{clean.num_paths} "
                f"stores={resumed.solver_stats.get('store_stores', 0)}"
            )
        print(
            f"{workload}: {clean.num_paths} clean paths, "
            f"{time.perf_counter() - start:.1f}s"
        )
    if not total_quarantines:
        failures.append(
            "dirty campaigns produced no store quarantine — the gate "
            "proved nothing (raise the rates or the seed count)"
        )
    if failures:
        print(f"\nstore gate FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "\nstore gate passed: warm starts are bit-identical and cheaper, "
        "damage is quarantined, I/O failure and store loss degrade softly"
    )
    return 0


def run_gate(seeds: int, jobs: int) -> int:
    failures: list[str] = []
    for workload in WORKLOAD_SCALES:
        start = time.perf_counter()
        clean = build_explorer(workload).explore()
        for seed in range(seeds):
            plan = FaultPlan(seed=seed, **RATES)
            for label, n_jobs in (("serial", 1), (f"jobs={jobs}", jobs)):
                faulted = build_explorer(workload, jobs=n_jobs, faults=plan).explore()
                errors = check_invariant(workload, clean, faulted, f"{label} seed={seed}")
                failures.extend(errors)
                status = "FAIL" if errors else "ok"
                print(
                    f"  {status:4s} {workload:16s} {label:8s} seed={seed} "
                    f"paths={faulted.num_paths}/{clean.num_paths} "
                    f"unknown={faulted.unknown_queries} "
                    f"incomplete={faulted.incomplete_paths} "
                    f"deaths={faulted.worker_deaths}"
                )
        print(
            f"{workload}: {clean.num_paths} clean paths, "
            f"{time.perf_counter() - start:.1f}s"
        )
    if failures:
        print(f"\nchaos gate FAILED ({len(failures)} violation(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nchaos gate passed: every fault schedule degraded soundly")
    return 0


def self_test() -> int:
    """Prove the gate trips: a 'faulted' result that lost a path while
    reporting zero degradation must be flagged."""
    clean = build_explorer("clif-parser").explore()
    broken = build_explorer("clif-parser").explore()
    assert broken.unknown_queries == 0 and broken.incomplete_paths == 0
    # Silent loss: drop one path-set identity with no counter accounting.
    victim = next(iter(broken.path_set()))
    broken.paths = [
        p
        for p in broken.paths
        if (p.halt_reason, p.exit_code, p.trace_length, p.stdout, p.final_pc)
        != victim
    ]
    errors = check_invariant("clif-parser", clean, broken, "self-test")
    if not errors:
        print("self-test FAILED: silent path loss was not detected")
        return 1
    print(f"self-test passed: gate trips on silent loss ({errors[0]})")
    # The corruption gate must trip on both of its invariants: a served
    # poisoned answer (changed path set) and a vanished query.
    served = build_explorer("clif-parser").explore()
    lost = next(iter(served.path_set()))
    served.paths = [
        p
        for p in served.paths
        if (p.halt_reason, p.exit_code, p.trace_length, p.stdout, p.final_pc)
        != lost
    ]
    errors = check_corruption_invariant("clif-parser", clean, served, "self-test")
    if not errors:
        print("self-test FAILED: a changed path set was not detected")
        return 1
    print(f"self-test passed: corruption gate trips on path change ({errors[0]})")
    vanished = build_explorer("clif-parser").explore()
    vanished.cache_hits += 1  # one query attributed twice
    errors = check_corruption_invariant(
        "clif-parser", clean, vanished, "self-test"
    )
    if not errors:
        print("self-test FAILED: unconserved attribution was not detected")
        return 1
    print(f"self-test passed: corruption gate trips on attribution ({errors[0]})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3,
                        help="fault schedules per workload (default 3)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool width for the parallel runs (default 4)")
    parser.add_argument("--corrupt", action="store_true",
                        help="run the cache-corruption gate instead of "
                             "the degradation gate")
    parser.add_argument("--hang", action="store_true",
                        help="run the liveness gate: wedged pool workers "
                             "must be watchdog-recovered, plus a "
                             "hang=100 recovery self-test")
    parser.add_argument("--deadline-gate", action="store_true",
                        help="run the anytime gate: deadline-cut + "
                             "resume must equal the uninterrupted "
                             "path set")
    parser.add_argument("--store", action="store_true",
                        help="run the persistent-store gate: warm "
                             "starts are bit-identical and cheaper, "
                             "torn/corrupt/iofail damage is "
                             "quarantined or degrades softly")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gates detect silent path loss, "
                             "served corruption and lost attribution")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if args.corrupt:
        return run_corruption_gate(args.seeds, args.jobs)
    if args.hang:
        return run_hang_gate(args.seeds, args.jobs)
    if args.deadline_gate:
        return run_deadline_gate(args.jobs)
    if args.store:
        return run_store_gate(args.seeds, args.jobs)
    return run_gate(args.seeds, args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
