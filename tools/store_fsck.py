#!/usr/bin/env python3
"""Offline scan / repair / GC for a ``--store`` artifact directory.

The persistent store (:mod:`repro.core.store`) verifies every file it
reads at lookup time, but a long-lived shared store accumulates debris
the hot path never touches: entries poisoned after they were last read,
stumps of torn writes to keys no current campaign queries, stale tmp
files from killed writers, and the ``*.quarantined`` files past runs
renamed aside.  This tool walks the whole tree with the *same*
validators the hot path uses:

* **scan** (default) — classify every file: ``ok``, ``corrupt`` (bad
  JSON / digest mismatch / malformed payload / key-filename mismatch),
  ``skew`` (foreign format version, left alone), plus the counts of
  quarantined and stale tmp files.  Exit 1 when anything corrupt was
  found, so the scan doubles as a health gate.
* ``--repair`` — additionally rename corrupt files to
  ``*.quarantined`` (exactly what the hot path would do on first
  touch), after which a scan reports clean.
* ``--gc`` — delete ``*.quarantined`` and stale ``*.tmp.*`` files.
* ``--self-test`` — build a real store by exploring a tiny workload,
  then tamper one field at a time (version, key, verdict, model value,
  core node, wrapper digest, truncation) and assert every tamper is
  detected by the scan *and* never served as a warm hit — proving the
  verification chain has no blind field.

Usage::

    python tools/store_fsck.py DIR [--repair] [--gc] [-v]
    python tools/store_fsck.py --self-test
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.store import (  # noqa: E402
    FORMAT_VERSION,
    read_wrapper,
    state_digest,
    validate_certificate_state,
    validate_query_state,
)


def classify(path: Path) -> tuple[str, str]:
    """(status, detail) for one store file, hot-path validators only.

    Status is ``ok``, ``corrupt`` or ``skew``; detail is the failure
    message for anything not ``ok``.
    """
    try:
        state = read_wrapper(str(path))
    except OSError as exc:
        return "corrupt", f"unreadable: {exc}"
    except ValueError as exc:
        return "corrupt", str(exc)
    version = state.get("version")
    if version != FORMAT_VERSION:
        return "skew", f"format version {version!r} != {FORMAT_VERSION}"
    kind = state.get("kind")
    try:
        if kind == "query":
            validate_query_state(state, path.stem)
        elif kind == "cert":
            validate_certificate_state(state)
        else:
            return "corrupt", f"unknown kind {kind!r}"
    except Exception as exc:  # _VersionSkew handled above; rest is rot
        return "corrupt", str(exc)
    return "ok", ""


def fsck(root: Path, repair: bool = False, gc: bool = False, verbose=print):
    """Walk one store tree; returns the classification counts."""
    counts = {"ok": 0, "corrupt": 0, "skew": 0, "quarantined": 0, "tmp": 0}
    for sub in ("queries", "certs"):
        directory = root / sub
        if not directory.is_dir():
            continue
        for path in sorted(directory.iterdir()):
            name = path.name
            if name.endswith(".quarantined"):
                counts["quarantined"] += 1
                if gc:
                    path.unlink(missing_ok=True)
                    verbose(f"gc: removed {path}")
                continue
            if ".tmp." in name:
                counts["tmp"] += 1
                if gc:
                    path.unlink(missing_ok=True)
                    verbose(f"gc: removed stale tmp {path}")
                continue
            if not name.endswith(".json"):
                continue
            status, detail = classify(path)
            counts[status] += 1
            if status == "corrupt":
                verbose(f"CORRUPT {path}: {detail}")
                if repair:
                    os.replace(path, str(path) + ".quarantined")
                    verbose(f"repair: quarantined {path.name}")
            elif status == "skew":
                verbose(f"skew    {path}: {detail} (left in place)")
    return counts


# ----------------------------------------------------------------------
# --self-test: field-by-field tamper detection
# ----------------------------------------------------------------------


def _build_real_store(root: Path) -> None:
    """Populate ``root`` by exploring a tiny workload with --store on."""
    from repro.core import Explorer
    from repro.eval.engines import make_engine
    from repro.eval.workloads import WORKLOADS
    from repro.smt.preprocess import PreprocessConfig
    from repro.spec import rv32im

    spec = WORKLOADS["base64-encode"]
    engine = make_engine("binsym", rv32im(), spec.image(1))
    result = Explorer(
        engine,
        use_cache=True,
        preprocess=PreprocessConfig(unsat_cores=True, certify=True),
        store_dir=str(root),
    ).explore()
    assert result.num_paths > 0, "self-test workload found no paths"
    assert result.certificate_failures == 0, "self-test replay failed"


def _rewrap(state: dict, fix_digest: bool) -> str:
    """Re-serialize a tampered state, optionally refreshing the digest.

    ``fix_digest=True`` simulates a *semantic* forgery (the attacker or
    the bit rot recomputed the wrapper digest), so only the deeper
    field validation can catch it; ``False`` leaves the stale digest in
    place for the digest check to trip on.
    """
    digest = state_digest(state) if fix_digest else "0" * 32
    return json.dumps({"digest": digest, "state": state})


def _tampers(state: dict):
    """Yield (label, fix_digest, mutate) cases for one query state."""
    yield "version bump", True, lambda s: s.__setitem__("version", 99)
    yield "kind swap", True, lambda s: s.__setitem__("kind", "mystery")
    yield "key mismatch", True, lambda s: s.__setitem__("key", "f" * 32)
    yield "stale wrapper digest", False, lambda s: s.__setitem__(
        "verdict", "unsat" if s["verdict"] == "sat" else "sat"
    )
    yield "verdict enum", True, lambda s: s.__setitem__("verdict", "maybe")
    if state["verdict"] == "sat":
        # A digest-refreshed model *value* flip is structurally valid —
        # only the hot path's semantic re-evaluation against the query
        # conditions can catch it; see the direct probes below.
        yield "model shape", True, lambda s: s.__setitem__("model", [[1, 2]])
    else:
        yield "core node op", True, lambda s: s["core"]["nodes"][-1].__setitem__(
            0, "mystery-op"
        )
        yield "core digest drop", True, lambda s: s["core_digests"].pop()
        yield "empty core", True, lambda s: (
            s["core"].__setitem__("roots", []),
            s.__setitem__("core_digests", []),
        )


def _hot_path_probes() -> list:
    """Semantic forgeries only load_query's re-checks can catch."""
    import shutil
    import tempfile

    from repro.core.store import ArtifactStore
    from repro.smt import terms as T
    from repro.smt.digest import store_key, term_digest
    from repro.smt.solver import Model, Result

    failures = []
    root = Path(tempfile.mkdtemp(prefix="store-fsck-probe-"))
    try:
        # SAT forgery: stored witness no longer satisfies the query.
        x = T.bv_var("fsck_x", 8)
        sat_conds = [T.eq(x, T.bv(3, 8))]
        sat_key = frozenset(sat_conds)
        store = ArtifactStore(str(root))
        store.save_query(sat_key, Result.SAT, model=Model({x: 3}))
        sat_file = root / "queries" / (store_key(sat_key) + ".json")
        state = read_wrapper(str(sat_file))
        state["model"][0][2] = 4  # x = 4 cannot satisfy x == 3
        sat_file.write_text(_rewrap(state, fix_digest=True))
        if classify(sat_file)[0] != "ok":
            failures.append("SAT forgery should pass the offline scan")
        probe = ArtifactStore(str(root))
        if probe.load_query(sat_key, sat_conds) is not None:
            failures.append("forged SAT model was served as a warm hit")
        if probe.quarantines != 1:
            failures.append("forged SAT model was not quarantined")
        # UNSAT forgery: core swapped for terms outside the query (the
        # wrapper digest and the per-term core digests both refreshed).
        unsat_conds = [T.eq(x, T.bv(1, 8)), T.eq(x, T.bv(2, 8))]
        unsat_key = frozenset(unsat_conds)
        store.save_query(unsat_key, Result.UNSAT, core=unsat_key)
        unsat_file = root / "queries" / (store_key(unsat_key) + ".json")
        state = read_wrapper(str(unsat_file))
        foreign = [T.eq(x, T.bv(7, 8)), T.eq(x, T.bv(9, 8))]
        state["core"] = T.serialize_terms(foreign)
        state["core_digests"] = [term_digest(t) for t in foreign]
        unsat_file.write_text(_rewrap(state, fix_digest=True))
        if classify(unsat_file)[0] != "ok":
            failures.append("UNSAT forgery should pass the offline scan")
        probe = ArtifactStore(str(root))
        if probe.load_query(unsat_key, unsat_conds) is not None:
            failures.append("forged UNSAT core was served as a warm hit")
        if probe.quarantines != 1:
            failures.append("forged UNSAT core was not quarantined")
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return failures


def self_test() -> int:
    import shutil
    import tempfile

    root = Path(tempfile.mkdtemp(prefix="store-fsck-selftest-"))
    try:
        _build_real_store(root)
        clean = fsck(root, verbose=lambda *_: None)
        assert clean["corrupt"] == 0 and clean["ok"] > 0, clean
        queries = sorted((root / "queries").glob("*.json"))
        sat_path = unsat_path = None
        for path in queries:
            verdict = read_wrapper(str(path))["verdict"]
            if verdict == "sat" and sat_path is None:
                sat_path = path
            if verdict == "unsat" and unsat_path is None:
                unsat_path = path
        assert sat_path is not None and unsat_path is not None, (
            "self-test store must hold both verdicts"
        )
        failures = []
        for path in (sat_path, unsat_path):
            pristine = path.read_text()
            base = read_wrapper(str(path))
            for label, fix_digest, mutate in _tampers(base):
                tampered = json.loads(json.dumps(base))
                mutate(tampered)
                path.write_text(_rewrap(tampered, fix_digest))
                status, detail = classify(path)
                expected = "skew" if label == "version bump" else "corrupt"
                if status != expected:
                    failures.append(
                        f"{label}: scan said {status!r} ({detail!r}), "
                        f"expected {expected!r}"
                    )
                path.write_text(pristine)
        # Truncation (a torn write the fault hook would produce).
        pristine = sat_path.read_text()
        sat_path.write_text(pristine[: len(pristine) // 2])
        status, _ = classify(sat_path)
        if status != "corrupt":
            failures.append(f"truncation: scan said {status!r}")
        sat_path.write_text(pristine)
        # The hot path must catch the semantic forgeries the offline
        # scan cannot: entries whose wrapper digest and structure are
        # valid but whose *content* lies.  Probe load_query directly
        # with synthetic queries where the violation is guaranteed.
        failures.extend(_hot_path_probes())
        # --repair turns a corrupt scan clean; --gc removes the debris.
        victim = sorted((root / "queries").glob("*.json"))[0]
        text = victim.read_text()
        victim.write_text(text[:-3] + "xx}")
        assert fsck(root, verbose=lambda *_: None)["corrupt"] >= 1
        fsck(root, repair=True, verbose=lambda *_: None)
        after_repair = fsck(root, verbose=lambda *_: None)
        if after_repair["corrupt"] != 0:
            failures.append(f"repair left corruption: {after_repair}")
        fsck(root, gc=True, verbose=lambda *_: None)
        after_gc = fsck(root, verbose=lambda *_: None)
        if after_gc["quarantined"] != 0 or after_gc["tmp"] != 0:
            failures.append(f"gc left debris: {after_gc}")
        if failures:
            for message in failures:
                print(f"SELF-TEST FAILURE: {message}")
            return 1
        print("store_fsck self-test passed: every tampered field detected,")
        print("hot path quarantined the forgery, repair+gc leave a clean tree")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("root", nargs="?", help="store directory (--store DIR)")
    parser.add_argument("--repair", action="store_true",
                        help="quarantine corrupt files (rename aside)")
    parser.add_argument("--gc", action="store_true",
                        help="delete quarantined and stale tmp files")
    parser.add_argument("-q", "--quiet", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="tamper a real store field-by-field and assert "
                             "every forgery is detected")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.root:
        parser.error("a store directory is required (or --self-test)")
    root = Path(args.root)
    if not root.is_dir():
        print(f"not a directory: {root}")
        return 1
    verbose = (lambda *_: None) if args.quiet else print
    counts = fsck(root, repair=args.repair, gc=args.gc, verbose=verbose)
    print(
        f"{counts['ok']} ok, {counts['corrupt']} corrupt, "
        f"{counts['skew']} skewed, {counts['quarantined']} quarantined, "
        f"{counts['tmp']} stale tmp"
    )
    if counts["corrupt"] and not args.repair:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
