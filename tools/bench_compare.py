#!/usr/bin/env python3
"""Benchmark-regression gate: diff a bench.json against the baseline.

CI's timed benchmark step emits a pytest-benchmark JSON report whose
``extra_info`` blocks carry *deterministic* counters next to the
timings: discovered path counts, retired instruction counts, superblock
dispatch/coverage counters.  Timings vary run to run; the counters must
not — a drifted counter means exploration, staging or superblock
stitching changed behaviour, which is a correctness regression even
when every assertion still passes (e.g. a hotness tweak that silently
halves block coverage).

This tool loads the newest committed ``BENCH_PR*.json`` baseline that
carries a ``ci_counters`` section (older snapshots predate the gate and
are ignored), matches its benchmarks by name against the fresh report,
and fails on any counter mismatch.  Only counters from a fixed
allowlist participate — wall-clock-derived values such as
``instructions_per_second`` are never compared.

Usage::

    python tools/bench_compare.py bench.json [--baseline FILE]
    python tools/bench_compare.py bench.json --self-test

``--self-test`` perturbs one baseline counter in memory and asserts the
comparison then fails — proving the gate can actually trip (a gate that
cannot fail gates nothing).
"""

from __future__ import annotations

import argparse
import copy
import json
import re
from pathlib import Path

#: extra_info keys that must be bit-for-bit reproducible across runs,
#: machines and Python versions.  Everything else (timings, derived
#: rates) is informational only.
DETERMINISTIC_KEYS = (
    "paths",
    "instructions",
    "sb_hits",
    "sb_block_instructions",
    # Anytime counters (PR 9): all exactly zero on a healthy run with
    # no deadline / memory budget / fault schedule — any non-zero value
    # in a CI benchmark means the run degraded and must not pass as a
    # performance baseline.
    "deadline_expired",
    "degradations",
    "hung_workers",
    # Persistent-store health (PR 10): benchmarks run without --store,
    # so both are exactly zero on a healthy run — any non-zero value
    # means a store tier leaked into the benchmark configuration or an
    # artifact failed verification mid-benchmark.
    "store_quarantines",
    "store_disabled",
)

_BASELINE_PATTERN = re.compile(r"BENCH_PR(\d+)\.json$")


def find_baseline(root: Path) -> Path | None:
    """Newest BENCH_PR*.json under ``root`` that has ``ci_counters``."""
    candidates = []
    for path in root.glob("BENCH_PR*.json"):
        match = _BASELINE_PATTERN.match(path.name)
        if match:
            candidates.append((int(match.group(1)), path))
    for _, path in sorted(candidates, reverse=True):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if "ci_counters" in data:
            return path
    return None


def extract_counters(report: dict) -> dict[str, dict[str, int]]:
    """benchmark name -> {allowlisted counter -> value} from a report."""
    out: dict[str, dict[str, int]] = {}
    for bench in report.get("benchmarks", ()):
        extra = bench.get("extra_info") or {}
        counters = {
            key: extra[key] for key in DETERMINISTIC_KEYS if key in extra
        }
        if counters:
            out[bench["name"]] = counters
    return out


def compare(
    baseline: dict[str, dict[str, int]],
    current: dict[str, dict[str, int]],
) -> list[str]:
    """All drift between the baseline and a fresh report, as messages.

    Every baseline benchmark must be present with identical counters;
    benchmarks new in the report (no baseline yet) are allowed — they
    get pinned the next time the baseline is regenerated.
    """
    problems = []
    for name in sorted(baseline):
        if name not in current:
            problems.append(f"missing benchmark: {name}")
            continue
        for key, expected in sorted(baseline[name].items()):
            got = current[name].get(key)
            if got != expected:
                problems.append(
                    f"{name}: {key} = {got!r}, baseline {expected!r}"
                )
    return problems


def self_test(baseline: dict[str, dict[str, int]], report: dict) -> int:
    """Prove the gate trips: perturb one counter, expect failure."""
    current = extract_counters(report)
    clean = compare(baseline, current)
    if clean:
        print("self-test inconclusive: report already drifts from baseline:")
        for problem in clean:
            print(f"  {problem}")
        return 1
    perturbed = copy.deepcopy(baseline)
    name = next(iter(sorted(perturbed)))
    key = next(iter(sorted(perturbed[name])))
    perturbed[name][key] += 1
    problems = compare(perturbed, current)
    if not problems:
        print(
            f"self-test FAILED: perturbing {name}:{key} was not detected"
        )
        return 1
    print(
        f"self-test ok: perturbed {name}:{key} detected "
        f"({len(problems)} drift message(s))"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="fresh bench.json")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline snapshot (default: newest BENCH_PR*.json with "
        "a ci_counters section, searched next to this script's repo)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate trips on a perturbed baseline counter",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = find_baseline(Path(__file__).resolve().parent.parent)
    if baseline_path is None:
        print("no BENCH_PR*.json baseline with ci_counters found")
        return 1
    baseline = json.loads(baseline_path.read_text())["ci_counters"]
    report = json.loads(args.report.read_text())

    if args.self_test:
        return self_test(baseline, report)

    problems = compare(baseline, extract_counters(report))
    if problems:
        print(f"benchmark counter drift vs {baseline_path.name}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    compared = sum(len(counters) for counters in baseline.values())
    print(
        f"ok: {compared} deterministic counters across "
        f"{len(baseline)} benchmarks match {baseline_path.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
