"""Tests for the Table I workloads: functional + path-count properties."""

import base64 as py_base64

import pytest

from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import (
    TABLE1_WORKLOADS,
    WORKLOADS,
    base64_encode_source,
    bubble_sort_source,
    clif_parser_source,
    insertion_sort_source,
    uri_parser_source,
)
from repro.spec import rv32im

_BUF = 0x20000
_B64_OUT = 0x20100


def run_concrete(source, input_bytes):
    interp = ConcreteInterpreter(rv32im())
    from repro.asm import assemble

    interp.load_image(assemble(source))
    interp.memory.write_bytes(_BUF, input_bytes)
    interp.run()
    return interp


def explore(source, max_paths=100_000):
    from repro.asm import assemble

    image = assemble(source)
    executor = BinSymExecutor(rv32im(), image)
    return Explorer(executor, max_paths=max_paths).explore()


class TestSortsFunctional:
    @pytest.mark.parametrize("source_builder", [bubble_sort_source, insertion_sort_source])
    @pytest.mark.parametrize(
        "data",
        [b"\x03\x01\x02", b"\xff\x00\x80", b"\x05\x05\x01", b"\x00\x00\x00"],
    )
    def test_sorts_sort(self, source_builder, data):
        interp = run_concrete(source_builder(len(data)), data)
        result = interp.memory.read_bytes(_BUF, len(data))
        assert result == bytes(sorted(data))


class TestSortsPathCounts:
    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 6), (4, 24)])
    def test_bubble_sort_factorial(self, n, expected):
        assert explore(bubble_sort_source(n)).num_paths == expected

    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 6), (4, 24)])
    def test_insertion_sort_factorial(self, n, expected):
        assert explore(insertion_sort_source(n)).num_paths == expected


class TestBase64:
    @pytest.mark.parametrize(
        "data", [b"\x00", b"ab", b"abc", b"\xff\xfe\xfd\xfc", b"hello!"]
    )
    def test_matches_python_base64(self, data):
        interp = run_concrete(base64_encode_source(len(data)), data)
        length = (len(data) + 2) // 3 * 4
        ours = interp.memory.read_bytes(_B64_OUT, length)
        assert ours == py_base64.b64encode(data)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_path_count_matches_derivation(self, k):
        workload = WORKLOADS["base64-encode"]
        assert explore(base64_encode_source(k)).num_paths == (
            workload.expected_paths(k)
        )

    def test_paper_scale_derivation_is_6250(self):
        """The paper's Table I count for base64-encode."""
        assert WORKLOADS["base64-encode"].expected_paths(4) == 6250


class TestParsers:
    @pytest.mark.parametrize(
        "text,accept",
        [
            (b"ab:", True),
            (b"a:x", True),
            (b"abc", False),   # no colon
            (b":ab", False),   # empty scheme
            (b"a1:", False),   # digit not allowed in our scheme subset
            (b"\x80b:", False),  # non-ASCII
        ],
    )
    def test_uri_parser_accepts(self, text, accept):
        interp = run_concrete(uri_parser_source(len(text)), text)
        assert (interp.hart.exit_code == 0) == accept

    @pytest.mark.parametrize(
        "text,accept",
        [
            (b"<a>;", True),
            (b"<ab>", True),
            (b"a>;;", False),  # missing '<'
            (b"<abc", False),  # unterminated
            (b"<a>,", False),  # dangling comma
        ],
    )
    def test_clif_parser_accepts(self, text, accept):
        interp = run_concrete(clif_parser_source(len(text)), text)
        assert (interp.hart.exit_code == 0) == accept

    def test_parser_path_counts_are_stable(self):
        # Regression pins: recorded from the reference implementation.
        assert explore(uri_parser_source(3)).num_paths == 12
        assert explore(clif_parser_source(4)).num_paths == 14


class TestWorkloadRegistry:
    def test_table1_names_registered(self):
        for name in TABLE1_WORKLOADS:
            assert name in WORKLOADS

    def test_paper_scales_match_table1(self):
        # 6! = 720 and 7! = 5040 are the paper's sort path counts.
        assert WORKLOADS["bubble-sort"].expected_paths(
            WORKLOADS["bubble-sort"].paper_scale
        ) == 720
        assert WORKLOADS["insertion-sort"].expected_paths(
            WORKLOADS["insertion-sort"].paper_scale
        ) == 5040

    def test_images_assemble(self):
        for name, workload in WORKLOADS.items():
            image = workload.image()
            assert image.entry == 0x10000, name
            assert image.total_size() > 0, name

    def test_workloads_terminate_concretely(self):
        for name, workload in WORKLOADS.items():
            interp = ConcreteInterpreter(rv32im())
            from repro.asm import assemble

            interp.load_image(assemble(workload.source()))
            hart = interp.run(200_000)
            assert hart.halt_reason == "exit", name
