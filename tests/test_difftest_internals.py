"""Tests for the difftest generator and misc engine toggles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.baselines.vexir import VexEngine
from repro.core import Explorer
from repro.eval.difftest import _random_state, random_instruction
from repro.spec import rv32im
from repro.spec.dsl import block, write_pc, write_register
from repro.spec.primitives import Fence, WritePC, WriteRegister


class TestRandomInstructionGenerator:
    @given(st.integers(0, 2**32))
    @settings(max_examples=150, deadline=None)
    def test_generated_words_decode_to_their_name(self, seed):
        isa = rv32im()
        rng = random.Random(seed)
        name, word = random_instruction(rng, isa)
        assert isa.decoder.decode(word).name == name

    def test_environment_instructions_excluded(self):
        isa = rv32im()
        rng = random.Random(7)
        names = {random_instruction(rng, isa)[0] for _ in range(500)}
        assert "ecall" not in names
        assert "ebreak" not in names

    def test_random_state_shapes(self):
        regs, data = _random_state(random.Random(3))
        assert len(regs) == 32 and regs[0] == 0
        assert len(data) == 256
        assert all(0 <= r < 2**32 for r in regs)


class TestVexEngineToggles:
    SOURCE = """\
_start:
    li a0, 0x20000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    li t2, 50
    bltu t1, t2, low
    li a0, 1
    li a7, 93
    ecall
low:
    li a0, 0
    li a7, 93
    ecall
"""

    def test_eager_checks_do_not_change_paths(self):
        isa = rv32im()
        image = assemble(self.SOURCE)
        eager = Explorer(VexEngine(isa, image, eager_checks=True)).explore()
        lazy = Explorer(VexEngine(isa, image, eager_checks=False)).explore()
        assert eager.num_paths == lazy.num_paths == 2
        assert eager.exit_codes == lazy.exit_codes

    def test_feasibility_solver_created_lazily(self):
        isa = rv32im()
        image = assemble(self.SOURCE)
        engine = VexEngine(isa, image, eager_checks=False)
        Explorer(engine).explore()
        assert engine._feasibility_solver is None
        engine = VexEngine(isa, image, eager_checks=True)
        Explorer(engine).explore()
        assert engine._feasibility_solver is not None


class TestDslBlockHelpers:
    def test_write_register_thunk(self):
        from repro.spec.expr import imm

        thunk = write_register(5, imm(42))
        primitives = list(thunk())
        assert len(primitives) == 1
        assert isinstance(primitives[0], WriteRegister)
        assert primitives[0].index == 5
        # Thunks are reusable (fresh generator per call).
        assert len(list(thunk())) == 1

    def test_write_pc_thunk(self):
        from repro.spec.expr import imm

        primitives = list(write_pc(imm(0x100))())
        assert isinstance(primitives[0], WritePC)

    def test_block_thunk(self):
        primitives = list(block(Fence(), Fence())())
        assert len(primitives) == 2


class TestWorkloadScales:
    def test_fig6_scale_defaults_to_default_plus_one(self):
        from repro.eval.workloads import WORKLOADS

        for workload in WORKLOADS.values():
            assert workload.fig6_scale == workload.default_scale + 1

    def test_source_renders_at_any_scale(self):
        from repro.eval.workloads import WORKLOADS

        for workload in WORKLOADS.values():
            for scale in (1, 2, workload.paper_scale):
                assert "_start:" in workload.source(scale)
