"""Tests for the cross-path query cache and the explored-prefix trie."""

import pytest

from repro.asm import assemble
from repro.core import BinSymExecutor, Explorer, ExploredPrefixTrie
from repro.eval.engines import make_engine
from repro.eval.workloads import WORKLOADS
from repro.smt import terms as T
from repro.smt.evalbv import evaluate
from repro.smt.solver import CachingSolver, QueryCache, Result, Solver


def bvv(name, width=8):
    return T.bv_var(name, width)


class TestCachingSolverCorrectness:
    """Cache hits must never change SAT/UNSAT answers."""

    QUERIES = None

    @classmethod
    def build_queries(cls):
        if cls.QUERIES is None:
            x, y = bvv("x"), bvv("y")
            base = [
                [T.ult(x, T.bv(10, 8))],
                [T.ult(x, T.bv(10, 8)), T.ugt(x, T.bv(20, 8))],  # UNSAT
                [T.eq(T.add(x, y), T.bv(5, 8))],
                [T.eq(x, T.bv(3, 8)), T.eq(y, T.bv(4, 8))],
                [T.ult(x, T.bv(10, 8)), T.eq(y, x)],
                [T.eq(x, T.bv(7, 8)), T.ne(x, T.bv(7, 8))],  # UNSAT
            ]
            # Repeats and permutations: all should hit the cache.
            cls.QUERIES = base + [list(reversed(q)) for q in base] + base
        return cls.QUERIES

    def test_answers_match_plain_solver(self):
        cached = CachingSolver()
        for query in self.build_queries():
            reference = Solver()
            expected = reference.check(query)
            got = cached.check(query)
            assert got is expected, query
            if got is Result.SAT:
                model = cached.model()
                assignment = {var: model[var] for t in query for var in t.variables()}
                assert all(evaluate(t, assignment) for t in query), query
        assert cached.cache_hits > 0
        # Cached answers skip the SAT core entirely.
        assert cached.num_checks < len(self.build_queries())

    def test_permuted_and_duplicated_conditions_hit(self):
        solver = CachingSolver()
        x = bvv("x")
        a, b = T.ult(x, T.bv(50, 8)), T.ugt(x, T.bv(5, 8))
        assert solver.check([a, b]) is Result.SAT
        solver.model()
        checks_before = solver.num_checks
        assert solver.check([b, a]) is Result.SAT
        assert solver.check([a, b, a]) is Result.SAT
        assert solver.num_checks == checks_before
        assert solver.cache.exact_hits == 2

    def test_unsat_subsumption(self):
        # Intervals would answer this contradiction themselves, so turn
        # them off to exercise the cache tier in isolation.  The
        # superset shares the variable: slicing keeps it in one slice,
        # whose key strictly contains the cached UNSAT core.
        from repro.smt.preprocess import PreprocessConfig

        solver = CachingSolver(preprocess=PreprocessConfig(intervals=False))
        x = bvv("x")
        core = [T.ult(x, T.bv(4, 8)), T.ugt(x, T.bv(9, 8))]
        assert solver.check(core) is Result.UNSAT
        checks_before = solver.num_checks
        superset = core + [T.ult(x, T.bv(100, 8))]
        assert solver.check(superset) is Result.UNSAT
        assert solver.num_checks == checks_before
        assert solver.cache.subsumption_hits == 1

    def test_unsat_slice_answers_cross_variable_superset(self):
        """With slicing, an unrelated-variable superset of a known-UNSAT
        core is answered by an *exact* hit on the core's slice."""
        solver = CachingSolver()
        x, y = bvv("x"), bvv("y")
        core = [T.ult(x, T.bv(4, 8)), T.ugt(x, T.bv(9, 8))]
        assert solver.check(core) is Result.UNSAT
        checks_before = solver.num_checks
        superset = core + [T.eq(y, T.bv(1, 8)), T.ult(y, T.bv(2, 8))]
        assert solver.check(superset) is Result.UNSAT
        assert solver.num_checks == checks_before
        assert solver.cache.exact_hits >= 1

    def test_model_reuse_produces_valid_witness(self):
        solver = CachingSolver()
        x, y = bvv("x"), bvv("y")
        assert solver.check([T.eq(x, T.bv(9, 8))]) is Result.SAT
        first = solver.model()
        assert first[x] == 9
        checks_before = solver.num_checks
        # The cached model {x: 9} satisfies this weaker query outright;
        # y is completed with 0 and bound in the returned witness.  With
        # slicing the two conjuncts are separate slices, so model reuse
        # can fire once per slice.
        query = [T.ult(x, T.bv(20, 8)), T.ult(y, T.bv(5, 8))]
        assert solver.check(query) is Result.SAT
        assert solver.num_checks == checks_before
        assert solver.cache.model_reuse_hits >= 1
        witness = solver.model()
        assert witness[x] == 9
        assert y in witness
        assignment = dict(witness.items())
        assert all(evaluate(t, assignment) for t in query)

    def test_const_false_bypasses_cache(self):
        solver = CachingSolver()
        assert solver.check([T.false()]) is Result.UNSAT
        assert len(solver.cache) == 0

    def test_tainted_solver_bypasses_cache(self):
        solver = CachingSolver()
        x = bvv("x")
        solver.add(T.ult(x, T.bv(4, 8)))
        assert solver.check([T.ugt(x, T.bv(9, 8))]) is Result.UNSAT
        # Without the taint guard this exact set would now be answered
        # UNSAT even on a fresh solver where it is satisfiable.
        assert len(solver.cache) == 0
        assert solver.cache.hits == 0

    def test_statistics_shape(self):
        cache = QueryCache()
        stats = cache.statistics
        assert set(stats) == {
            "entries", "unsat_sets", "hits", "exact_hits", "subsumption_hits",
            "model_reuse_hits", "misses", "evictions",
            "integrity_checks", "quarantines", "corruptions",
        }

    def test_entry_cap_bounds_memo(self):
        solver = CachingSolver(QueryCache(max_entries=4))
        x = bvv("x", 16)
        for value in range(10):
            assert solver.check([T.eq(x, T.bv(value, 16))]) is Result.SAT
            solver.model()
        assert len(solver.cache) <= 4
        assert solver.cache.evictions > 0
        # Evicted entries simply re-solve; answers stay correct.
        assert solver.check([T.eq(x, T.bv(0, 16))]) is Result.SAT
        assert solver.model()[x] == 0

    def test_eviction_is_recency_aware(self):
        """A ``lookup``-hit entry must outlive never-again-used ones."""
        cache = QueryCache(max_entries=3)
        x = bvv("x", 16)
        queries = [[T.eq(x, T.bv(value, 16))] for value in range(3)]
        keys = [frozenset(q) for q in queries]
        for key, query in zip(keys, queries):
            cache.store_unsat(key)  # placeholder answers; shape is all that matters
        # Touch the oldest entry: it becomes most-recently-used.
        result, _ = cache.lookup(keys[0], queries[0])
        assert result is Result.UNSAT
        # The next store evicts the LRU entry — keys[1], not keys[0].
        extra = [T.eq(x, T.bv(99, 16))]
        cache.store_unsat(frozenset(extra))
        assert cache.evictions == 1
        assert keys[0] in cache._results
        assert keys[1] not in cache._results
        assert keys[2] in cache._results


class TestExploredPrefixTrie:
    def test_insert_once(self):
        trie = ExploredPrefixTrie()
        x = bvv("x")
        query = [T.ult(x, T.bv(4, 8)), T.eq(x, T.bv(1, 8))]
        assert trie.insert(query) is True
        assert trie.insert(query) is False
        assert len(trie) == 1
        assert trie.contains(query)

    def test_shared_prefix_distinct_flips(self):
        trie = ExploredPrefixTrie()
        x = bvv("x")
        prefix = [T.ult(x, T.bv(4, 8))]
        assert trie.insert(prefix + [T.eq(x, T.bv(1, 8))])
        assert trie.insert(prefix + [T.eq(x, T.bv(2, 8))])
        assert len(trie) == 2
        assert not trie.contains(prefix)  # prefix alone was never a query

    def test_incremental_walk_matches_insert(self):
        trie = ExploredPrefixTrie()
        x = bvv("x")
        a, b, flip = T.ult(x, T.bv(4, 8)), T.ugt(x, T.bv(1, 8)), T.eq(x, T.bv(2, 8))
        node = trie.root()
        node = trie.step(node, a)
        node = trie.step(node, b)
        assert trie.try_mark(node, flip) is True
        assert trie.insert([a, b, flip]) is False


SOURCE = """\
_start:
    li a0, 0x20000
    li a1, 2
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li a0, 0
    bltu t1, t2, second
    addi a0, a0, 1
second:
    li t3, 100
    bltu t1, t3, done
    addi a0, a0, 2
done:
    li a7, 93
    ecall
"""


class TestCachedExploration:
    def explore(self, **kwargs):
        from repro.spec import rv32im

        executor = BinSymExecutor(rv32im(), assemble(SOURCE))
        return Explorer(executor, **kwargs).explore()

    def test_cache_does_not_change_path_set(self):
        plain = self.explore(use_cache=False)
        cached = self.explore(use_cache=True)
        assert cached.path_set() == plain.path_set()
        assert cached.num_paths == plain.num_paths == 4

    def test_cross_engine_cache_reuse(self):
        """Exploring the same image with a second engine through a shared
        caching solver answers (nearly) every query from cache."""
        from repro.spec import rv32im

        image = WORKLOADS["bubble-sort"].image(3)
        isa = rv32im()
        shared = CachingSolver()
        first = Explorer(make_engine("binsym", isa, image), solver=shared).explore()
        second = Explorer(make_engine("binsec", isa, image), solver=shared).explore()
        assert second.num_paths == first.num_paths
        # final_pc differs across engines (engine-specific halt sites),
        # so compare the engine-agnostic part of the path identity.
        def identities(result):
            return {(p.halt_reason, p.exit_code, p.trace_length) for p in result.paths}

        assert identities(second) == identities(first)
        assert second.cache_hits > 0
        assert second.num_queries < first.num_queries

    def test_trie_prunes_nothing_on_clean_runs(self):
        # Without divergence every flip query is unique, so the trie
        # must be invisible: identical results with and without it.
        with_trie = self.explore(dedup_flips=True)
        without = self.explore(dedup_flips=False)
        assert with_trie.path_set() == without.path_set()
        assert with_trie.num_queries == without.num_queries
        assert with_trie.pruned_queries == 0


class TestCacheConsistencyFuzz:
    """Structural-consistency fuzz over random cache interleavings.

    Every reachable interleaving of store_sat / store_unsat / lookup /
    tighten — including the evictions they trigger at tiny caps — must
    leave the side tables exactly consistent with the primary maps:

    - ``_digests`` covers exactly the memoized keys;
    - ``_models`` binds witnesses only to keys memoized SAT;
    - ``_unsat_digests`` covers exactly the live UNSAT-set window;
    - ``_unsat_ids`` is the exact inverse of ``_unsat_sets``;
    - ``_unsat_index`` postings are exactly the live sets containing
      each term, with no empty posting lists left behind.

    A drifted side table is how quarantine/eviction bugs manifest:
    stale digests turn healthy hits into quarantines, stale postings
    resurrect evicted UNSAT sets.  No corruptor is installed — this
    pins the *clean* state machine; poisoned-state recovery is pinned
    by the chaos tests.
    """

    @staticmethod
    def check_invariants(cache: QueryCache) -> None:
        assert set(cache._digests) == set(cache._results)
        assert set(cache._models) <= set(cache._results)
        for key in cache._models:
            assert cache._results[key] is Result.SAT
        assert set(cache._unsat_digests) == set(cache._unsat_sets)
        assert cache._unsat_ids == {
            conds: set_id for set_id, conds in cache._unsat_sets.items()
        }
        assert len(cache._unsat_ids) == len(cache._unsat_sets)
        expected_index = {}
        for set_id, conds in cache._unsat_sets.items():
            for term in conds:
                expected_index.setdefault(term, set()).add(set_id)
        assert cache._unsat_index == expected_index

    @pytest.mark.parametrize("seed", range(8))
    def test_random_interleavings_stay_consistent(self, seed):
        import random

        rng = random.Random(seed)
        variables = [bvv(name) for name in "abcd"]
        pool = [
            term
            for var in variables
            for k in (3, 9, 27)
            for term in (
                T.ult(var, T.bv(k, 8)),
                T.ugt(var, T.bv(k, 8)),
                T.eq(var, T.bv(k, 8)),
            )
        ]
        # Stores must be semantically honest (a sound solver never
        # answers both verdicts for one key), so a real solver acts as
        # the oracle; its answers are memoized across iterations.
        oracle = Solver()
        answers: dict[frozenset, tuple] = {}

        def solve(key):
            answer = answers.get(key)
            if answer is None:
                verdict = oracle.check(list(key))
                model = oracle.model() if verdict is Result.SAT else None
                answer = answers[key] = (verdict, model)
            return answer

        # Tiny caps so every operation class triggers eviction paths.
        cache = QueryCache(max_models=2, max_unsat_sets=4, max_entries=8)
        self.check_invariants(cache)
        for _ in range(400):
            conditions = rng.sample(pool, rng.randint(1, 4))
            key = frozenset(conditions)
            op = rng.randrange(6)
            if op in (0, 1, 2):
                verdict, model = solve(key)
                if verdict is Result.SAT:
                    cache.store_sat(key, model)
                elif op == 2:
                    # A random subset only enters the subsumption
                    # window as a core when it is genuinely UNSAT.
                    core = frozenset(
                        rng.sample(conditions, rng.randint(1, len(conditions)))
                    )
                    if solve(core)[0] is not Result.UNSAT:
                        core = None
                    cache.store_unsat(key, core=core)
                else:
                    cache.store_unsat(key)
            elif op == 5 and rng.random() < 0.25:
                cache.tighten()
            else:
                cache.lookup(key, conditions)
            self.check_invariants(cache)
        # The run must have exercised all the interesting transitions.
        assert cache.evictions > 0
        assert cache.hits > 0
        assert cache.misses > 0
