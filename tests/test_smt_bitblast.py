"""Differential tests of the bit-blaster against the reference evaluator.

Strategy: build a term equation ``op(consts...) == var`` (or a random
term over variables), solve it, and check the model against
:mod:`repro.smt.evalbv`, whose integer semantics are independently
tested.  This exercises the full pipeline: smart constructors (disabled
by using variables), Tseitin gates, CDCL search and model extraction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import terms as T
from repro.smt import bvops
from repro.smt.evalbv import evaluate
from repro.smt.solver import Result, Solver

WIDTHS = [1, 3, 8, 16, 32]

BINOPS = {
    "add": (T.add, bvops.bv_add),
    "sub": (T.sub, bvops.bv_sub),
    "mul": (T.mul, bvops.bv_mul),
    "and": (T.and_, bvops.bv_and),
    "or": (T.or_, bvops.bv_or),
    "xor": (T.xor, bvops.bv_xor),
    "shl": (T.shl, bvops.bv_shl),
    "lshr": (T.lshr, bvops.bv_lshr),
    "ashr": (T.ashr, bvops.bv_ashr),
}

DIVOPS = {
    "udiv": (T.udiv, bvops.bv_udiv),
    "urem": (T.urem, bvops.bv_urem),
    "sdiv": (T.sdiv, bvops.bv_sdiv),
    "srem": (T.srem, bvops.bv_srem),
}

CMPOPS = {
    "ult": (T.ult, bvops.bv_ult),
    "ule": (T.ule, bvops.bv_ule),
    "slt": (T.slt, bvops.bv_slt),
    "sle": (T.sle, bvops.bv_sle),
}


def solve_eq(term, var):
    """Solve term == var and return the model value of var."""
    solver = Solver()
    solver.add(T.eq(var, term))
    assert solver.check() is Result.SAT
    return solver.model()[var]


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_binop_on_symbolic_inputs(data):
    """var-op-var == result forces the blaster's op circuit to agree."""
    name = data.draw(st.sampled_from(sorted(BINOPS)))
    width = data.draw(st.sampled_from([3, 8]))
    mk, ref = BINOPS[name]
    a_val = data.draw(st.integers(0, (1 << width) - 1))
    b_val = data.draw(st.integers(0, (1 << width) - 1))
    a, b = T.bv_var("a", width), T.bv_var("b", width)
    out = T.bv_var("out", width)
    solver = Solver()
    solver.add(T.eq(a, T.bv(a_val, width)))
    solver.add(T.eq(b, T.bv(b_val, width)))
    solver.add(T.eq(out, mk(a, b)))
    assert solver.check() is Result.SAT
    model = solver.model()
    assert model[a] == a_val
    assert model[b] == b_val
    assert model[out] == ref(a_val, b_val, width)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_division_ops_on_symbolic_inputs(data):
    name = data.draw(st.sampled_from(sorted(DIVOPS)))
    width = data.draw(st.sampled_from([3, 4]))
    mk, ref = DIVOPS[name]
    a_val = data.draw(st.integers(0, (1 << width) - 1))
    b_val = data.draw(st.integers(0, (1 << width) - 1))
    a, b = T.bv_var("a", width), T.bv_var("b", width)
    out = T.bv_var("out", width)
    solver = Solver()
    solver.add(T.eq(a, T.bv(a_val, width)))
    solver.add(T.eq(b, T.bv(b_val, width)))
    solver.add(T.eq(out, mk(a, b)))
    assert solver.check() is Result.SAT
    assert solver.model()[out] == ref(a_val, b_val, width)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_comparison_on_symbolic_inputs(data):
    name = data.draw(st.sampled_from(sorted(CMPOPS)))
    width = data.draw(st.sampled_from([3, 8]))
    mk, ref = CMPOPS[name]
    a_val = data.draw(st.integers(0, (1 << width) - 1))
    b_val = data.draw(st.integers(0, (1 << width) - 1))
    a, b = T.bv_var("a", width), T.bv_var("b", width)
    solver = Solver()
    solver.add(T.eq(a, T.bv(a_val, width)))
    solver.add(T.eq(b, T.bv(b_val, width)))
    expected = ref(a_val, b_val, width)
    cond = mk(a, b)
    result = solver.check([cond])
    assert (result is Result.SAT) == expected
    result = solver.check([T.bnot(cond)])
    assert (result is Result.SAT) == (not expected)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_unary_and_width_ops(data):
    width = data.draw(st.sampled_from([3, 8]))
    value = data.draw(st.integers(0, (1 << width) - 1))
    x = T.bv_var("x", width)
    solver = Solver()
    solver.add(T.eq(x, T.bv(value, width)))
    cases = {
        "not": (T.not_(x), bvops.bv_not(value, width), width),
        "neg": (T.neg(x), bvops.bv_neg(value, width), width),
        "zext": (T.zext(x, 4), value, width + 4),
        "sext": (T.sext(x, 4), bvops.bv_sext(value, width, 4), width + 4),
        "extract": (
            T.extract(x, width - 1, 1),
            bvops.bv_extract(value, width - 1, 1),
            width - 1,
        ),
        "concat": (
            T.concat(x, T.bv(0b101, 3)),
            bvops.bv_concat(value, 0b101, 3),
            width + 3,
        ),
    }
    for name, (term, expected, result_width) in cases.items():
        out = T.bv_var(f"out_{name}", result_width)
        solver.add(T.eq(out, term))
    assert solver.check() is Result.SAT
    model = solver.model()
    for name, (term, expected, result_width) in cases.items():
        out = T.bv_var(f"out_{name}", result_width)
        assert model[out] == expected, name


class TestSymbolicShifts:
    """Barrel shifter with genuinely symbolic shift amounts."""

    @pytest.mark.parametrize("width", [3, 8, 32])
    def test_shl_reaches_each_amount(self, width):
        x = T.bv_var(f"shx{width}", width)
        s = T.bv_var(f"shs{width}", width)
        solver = Solver()
        solver.add(T.eq(x, T.bv(1, width)))
        target = T.shl(x, s)
        # shifting 1 by (width - 1) gives the MSB
        solver.add(T.eq(target, T.bv(1 << (width - 1), width)))
        assert solver.check() is Result.SAT
        assert solver.model()[s] == width - 1

    def test_shift_amount_ge_width_is_zero(self):
        x = T.bv_var("sgx", 8)
        s = T.bv_var("sgs", 8)
        solver = Solver()
        solver.add(T.eq(x, T.bv(0xFF, 8)))
        solver.add(T.uge(s, T.bv(8, 8)))
        solver.add(T.ne(T.lshr(x, s), T.bv(0, 8)))
        assert solver.check() is Result.UNSAT

    def test_ashr_fills_with_sign(self):
        x = T.bv_var("afx", 8)
        s = T.bv_var("afs", 8)
        solver = Solver()
        solver.add(T.eq(x, T.bv(0x80, 8)))
        solver.add(T.eq(s, T.bv(200, 8)))
        solver.add(T.ne(T.ashr(x, s), T.bv(0xFF, 8)))
        assert solver.check() is Result.UNSAT

    def test_non_power_of_two_width(self):
        # width 5: in-range stage bits (1,2,4) can encode up to 7 >= 5.
        x = T.bv_var("npx", 5)
        s = T.bv_var("nps", 5)
        solver = Solver()
        solver.add(T.eq(x, T.bv(0b11111, 5)))
        solver.add(T.eq(s, T.bv(6, 5)))  # 6 >= width --> result 0
        solver.add(T.ne(T.shl(x, s), T.bv(0, 5)))
        assert solver.check() is Result.UNSAT


class TestUnsatCases:
    def test_no_solution_to_false_equation(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.add(T.eq(T.xor(x, x), T.bv(1, 8)))
        assert solver.check() is Result.UNSAT

    def test_add_is_invertible(self):
        x = T.bv_var("x", 8)
        y = T.bv_var("y", 8)
        solver = Solver()
        solver.add(T.eq(T.add(x, y), T.bv(0, 8)))
        solver.add(T.eq(x, T.bv(1, 8)))
        solver.add(T.ne(y, T.bv(0xFF, 8)))
        assert solver.check() is Result.UNSAT

    def test_mul_by_two_is_even(self):
        x = T.bv_var("x", 8)
        doubled = T.mul(x, T.bv(2, 8))
        solver = Solver()
        solver.add(T.eq(T.and_(doubled, T.bv(1, 8)), T.bv(1, 8)))
        assert solver.check() is Result.UNSAT

    def test_udiv_upper_bound(self):
        # x / 2 cannot exceed 127 at width 8 ... unless divisor is 0.
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.add(T.ugt(T.udiv(x, T.bv(2, 8)), T.bv(127, 8)))
        assert solver.check() is Result.UNSAT

    def test_udiv_by_zero_reachable(self):
        # The RISC-V DIVU edge from the paper's Fig. 2: with a zero
        # divisor the quotient is all-ones, which is > the dividend.
        x = T.bv_var("x", 8)
        y = T.bv_var("y", 8)
        q = T.udiv(x, y)
        solver = Solver()
        solver.add(T.ugt(q, x))
        assert solver.check() is Result.SAT
        model = solver.model()
        assert bvops.bv_udiv(model[x], model[y], 8) > model[x]


@st.composite
def term_strategy(draw, width=4, depth=0):
    """Random BV terms over two variables of a fixed small width."""
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(
            st.sampled_from(
                ["a", "b", "const0", "const1", "const_any"]
            )
        )
        if leaf == "a":
            return T.bv_var("pa", width)
        if leaf == "b":
            return T.bv_var("pb", width)
        if leaf == "const0":
            return T.bv(0, width)
        if leaf == "const1":
            return T.bv(1, width)
        return T.bv(draw(st.integers(0, (1 << width) - 1)), width)
    op = draw(
        st.sampled_from(
            ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr", "ite"]
        )
    )
    lhs = draw(term_strategy(width=width, depth=depth + 1))
    rhs = draw(term_strategy(width=width, depth=depth + 1))
    if op == "ite":
        cond = T.ult(lhs, rhs)
        third = draw(term_strategy(width=width, depth=depth + 1))
        return T.ite(cond, rhs, third)
    return BINOPS[op][0](lhs, rhs)


@given(term_strategy(), st.integers(0, 15), st.integers(0, 15))
@settings(max_examples=100, deadline=None)
def test_random_term_solver_agrees_with_evaluator(term, a_val, b_val):
    """Pin variables, solve for the term value, compare with evaluate()."""
    width = 4
    a, b = T.bv_var("pa", width), T.bv_var("pb", width)
    out = T.bv_var("pout", width)
    solver = Solver()
    solver.add(T.eq(a, T.bv(a_val, width)))
    solver.add(T.eq(b, T.bv(b_val, width)))
    solver.add(T.eq(out, term))
    assert solver.check() is Result.SAT
    expected = evaluate(term, {"pa": a_val, "pb": b_val})
    assert solver.model()[out] == expected
