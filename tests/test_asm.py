"""Tests for the assembler: parsing, pseudo-expansion, layout, encoding."""

import pytest

from repro.asm import AsmError, Assembler, assemble
from repro.asm.parser import (
    HiLo,
    Immediate,
    MemOperand,
    Register,
    Symbol,
    parse_operand,
    parse_source,
)
from repro.spec import rv32im
from repro.spec import fields


def words_of(image, base=0x10000, count=None):
    segment = next(s for s in image.segments if s.base == base)
    data = segment.data
    n = count if count is not None else len(data) // 4
    return [int.from_bytes(data[i * 4 : (i + 1) * 4], "little") for i in range(n)]


class TestOperandParsing:
    def test_register_names(self):
        assert parse_operand("x5", 1) == Register(5)
        assert parse_operand("t0", 1) == Register(5)
        assert parse_operand("sp", 1) == Register(2)
        assert parse_operand("fp", 1) == Register(8)

    def test_immediates(self):
        assert parse_operand("42", 1) == Immediate(42)
        assert parse_operand("-1", 1) == Immediate(-1)
        assert parse_operand("0xff", 1) == Immediate(255)
        assert parse_operand("0b101", 1) == Immediate(5)

    def test_char_literals(self):
        assert parse_operand("'a'", 1) == Immediate(97)
        assert parse_operand("'\\n'", 1) == Immediate(10)
        assert parse_operand("'\\0'", 1) == Immediate(0)

    def test_symbols(self):
        assert parse_operand("loop", 1) == Symbol("loop")
        assert parse_operand("buf+4", 1) == Symbol("buf", 4)
        assert parse_operand("buf - 8", 1) == Symbol("buf", -8)

    def test_memory_operand(self):
        operand = parse_operand("8(sp)", 1)
        assert operand == MemOperand(Immediate(8), Register(2))
        operand = parse_operand("-4(t0)", 1)
        assert operand == MemOperand(Immediate(-4), Register(5))

    def test_memory_operand_no_offset(self):
        assert parse_operand("(a0)", 1) == MemOperand(Immediate(0), Register(10))

    def test_hi_lo(self):
        assert parse_operand("%hi(buf)", 1) == HiLo("hi", "buf")
        assert parse_operand("%lo(buf+4)", 1) == HiLo("lo", "buf", 4)

    def test_hilo_memory_operand(self):
        operand = parse_operand("%lo(buf)(t0)", 1)
        assert operand == MemOperand(HiLo("lo", "buf"), Register(5))

    def test_garbage_rejected(self):
        with pytest.raises(AsmError):
            parse_operand("12x!", 1)


class TestSourceParsing:
    def test_labels_and_comments(self):
        statements = parse_source("loop: # comment\n  addi x1, x1, -1 // c2\n")
        assert statements[0].name == "loop"
        assert statements[1].mnemonic == "addi"

    def test_multiple_labels_one_line(self):
        statements = parse_source("a: b: nop\n")
        assert [s.name for s in statements[:2]] == ["a", "b"]

    def test_semicolon_comment_vs_char_literal(self):
        statements = parse_source("li t1, ';' ; real comment\n")
        assert statements[0].operands[1] == Immediate(ord(";"))

    def test_string_directive(self):
        statements = parse_source('.asciz "hi\\n"\n')
        assert statements[0].args == [b"hi\n"]


class TestPseudoInstructions:
    def setup_method(self):
        self.asm = Assembler()

    def encode_one(self, text):
        image = self.asm.assemble(f"_start:\n{text}\n")
        return words_of(image)

    def test_nop(self):
        assert self.encode_one("nop") == [0x00000013]

    def test_mv(self):
        # mv x1, x2 == addi x1, x2, 0
        (word,) = self.encode_one("mv x1, x2")
        assert fields.rd(word) == 1 and fields.rs1(word) == 2
        assert rv32im().decoder.decode(word).name == "addi"

    def test_li_small(self):
        (word,) = self.encode_one("li x5, 42")
        assert rv32im().decoder.decode(word).name == "addi"
        assert fields.imm_i(word) == 42

    def test_li_negative(self):
        (word,) = self.encode_one("li x5, -42")
        assert fields.imm_i(word) == (-42) & 0xFFFFFFFF

    def test_li_large_uses_lui_addi(self):
        words = self.encode_one("li x5, 0x12345678")
        decoder = rv32im().decoder
        assert [decoder.decode(w).name for w in words] == ["lui", "addi"]

    def test_li_rounding_case(self):
        """li with a low part >= 0x800 must round the lui upward."""
        from repro.concrete import ConcreteInterpreter

        for value in (0x12345FFF, 0x80000000, 0xFFFFF800, 0x7FFFFFFF):
            image = assemble(f"_start:\n li a0, {value}\n li a7, 93\n ecall\n")
            interp = ConcreteInterpreter(rv32im())
            interp.load_image(image)
            assert interp.run().exit_code == value & 0xFFFFFFFF, hex(value)

    def test_not_neg(self):
        decoder = rv32im().decoder
        (word,) = self.encode_one("not x1, x2")
        assert decoder.decode(word).name == "xori"
        (word,) = self.encode_one("neg x1, x2")
        assert decoder.decode(word).name == "sub"

    def test_branch_pseudos(self):
        decoder = rv32im().decoder
        source = "_start:\nbeqz x1, _start\nbnez x1, _start\nbltz x1, _start\nbgt x1, x2, _start\n"
        words = words_of(self.asm.assemble(source))
        names = [decoder.decode(w).name for w in words]
        assert names == ["beq", "bne", "blt", "blt"]
        # bgt rs, rt swaps operands: blt x2, x1
        assert fields.rs1(words[3]) == 2 and fields.rs2(words[3]) == 1

    def test_j_ret_call(self):
        decoder = rv32im().decoder
        words = words_of(self.asm.assemble("_start:\nj _start\nret\ncall _start\n"))
        names = [decoder.decode(w).name for w in words]
        assert names == ["jal", "jalr", "jal"]
        assert fields.rd(words[0]) == 0  # j -> jal x0
        assert fields.rd(words[2]) == 1  # call -> jal ra

    def test_seqz_snez(self):
        decoder = rv32im().decoder
        words = words_of(self.asm.assemble("_start:\nseqz x1, x2\nsnez x3, x4\n"))
        assert [decoder.decode(w).name for w in words] == ["sltiu", "sltu"]


class TestLayoutAndSymbols:
    def test_forward_references(self):
        image = assemble("_start:\n j end\n nop\nend:\n nop\n")
        words = words_of(image, count=3)
        assert fields.imm_j(words[0]) == 8  # skip one instruction

    def test_backward_branch(self):
        image = assemble("_start:\nloop:\n nop\n j loop\n")
        words = words_of(image, count=2)
        assert fields.imm_j(words[1]) == (-4) & 0xFFFFFFFF

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("a:\n nop\na:\n nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AsmError):
            assemble("_start:\n j nowhere\n")

    def test_data_section(self):
        image = assemble(
            "_start:\n la t0, value\n lw t1, 0(t0)\n"
            ".data\nvalue:\n .word 0xdeadbeef\n"
        )
        assert image.symbol("value") == 0x20000
        data = next(s for s in image.segments if s.base == 0x20000)
        assert data.data[:4] == b"\xef\xbe\xad\xde"

    def test_hi_lo_resolution(self):
        from repro.concrete import ConcreteInterpreter

        source = (
            "_start:\n"
            " lui t0, %hi(value)\n"
            " lw a0, %lo(value)(t0)\n"
            " li a7, 93\n ecall\n"
            ".data\n"
            " .space 0x7fc\n"       # push `value` to 0x207fc: %lo is positive
            "value:\n .word 1234\n"
        )
        interp = ConcreteInterpreter(rv32im())
        interp.load_image(assemble(source))
        assert interp.run().exit_code == 1234

    def test_hi_lo_with_negative_lo(self):
        from repro.concrete import ConcreteInterpreter

        source = (
            "_start:\n"
            " lui t0, %hi(value)\n"
            " lw a0, %lo(value)(t0)\n"
            " li a7, 93\n ecall\n"
            ".data\n"
            " .space 0x900\n"       # `value` at 0x20900: lo = -0x700
            "value:\n .word 77\n"
        )
        interp = ConcreteInterpreter(rv32im())
        interp.load_image(assemble(source))
        assert interp.run().exit_code == 77

    def test_align_directive(self):
        image = assemble(".data\n .byte 1\n .align 2\nval:\n .word 2\n",)
        assert image.symbol("val") == 0x20004

    def test_org_directive(self):
        image = assemble(".data\n .org 0x20010\nval:\n .byte 5\n")
        assert image.symbol("val") == 0x20010

    def test_org_backwards_rejected(self):
        with pytest.raises(AsmError):
            assemble(".data\n .word 1, 2, 3\n .org 0x20004\n")

    def test_equ(self):
        image = assemble(".equ MAGIC, 0x42\n_start:\n li a0, MAGIC\n")
        assert image.symbol("MAGIC") == 0x42

    def test_asciz(self):
        image = assemble('.data\nmsg:\n .asciz "ab"\n')
        data = next(s for s in image.segments if s.base == 0x20000)
        assert data.data[:3] == b"ab\x00"

    def test_space_and_byte_lists(self):
        image = assemble(".data\n .byte 1, 2, 3\n .space 2\n .half 0x1234\n")
        data = next(s for s in image.segments if s.base == 0x20000).data
        assert data[:7] == b"\x01\x02\x03\x00\x00\x34\x12"

    def test_word_with_symbol(self):
        image = assemble("_start:\n nop\n.data\nptr:\n .word _start\n")
        data = next(s for s in image.segments if s.base == 0x20000).data
        assert int.from_bytes(data[:4], "little") == 0x10000

    def test_entry_symbol(self):
        image = assemble("main:\n nop\n", entry_symbol="main")
        assert image.entry == 0x10000

    def test_entry_defaults_to_text_base(self):
        image = assemble("nolabel:\n nop\n")
        assert image.entry == 0x10000


class TestEncodingErrors:
    def test_immediate_out_of_range(self):
        with pytest.raises(AsmError):
            assemble("_start:\n addi x1, x1, 5000\n")

    def test_shift_amount_out_of_range(self):
        with pytest.raises(AsmError):
            assemble("_start:\n slli x1, x1, 32\n")

    def test_odd_branch_offset(self):
        with pytest.raises(AsmError):
            assemble("_start:\n beq x1, x2, 3\n")

    def test_branch_out_of_range(self):
        source = "_start:\n beq x1, x2, far\n" + " nop\n" * 2000 + "far:\n nop\n"
        with pytest.raises(AsmError):
            assemble(source)

    def test_unknown_instruction(self):
        with pytest.raises(AsmError):
            assemble("_start:\n frobnicate x1, x2\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError):
            assemble("_start:\n add x1, x2\n")

    def test_register_where_imm_expected(self):
        with pytest.raises(AsmError):
            assemble("_start:\n addi x1, x2, x3\n")

    def test_unknown_directive(self):
        with pytest.raises(AsmError):
            assemble(".bogus 1\n")


class TestAgainstGnuAsGolden:
    """Golden encodings computed independently (standard binutils output)."""

    CASES = [
        ("add x3, x1, x2", 0x002081B3),
        ("sub x3, x1, x2", 0x402081B3),
        ("addi x1, x2, -1", 0xFFF10093),
        ("lw x5, 8(x6)", 0x00832283),
        ("sw x5, 8(x6)", 0x00532423),
        ("lui x7, 0xfffff", 0xFFFFF3B7),
        ("jalr x1, x2, 4", 0x004100E7),
        ("sll x10, x11, x12", 0x00C59533),
        ("srai x10, x11, 31", 0x41F5D513),
        ("mul x5, x6, x7", 0x027302B3),
        ("divu x5, x6, x7", 0x027352B3),
        ("sltiu x1, x2, 1", 0x00113093),
    ]

    @pytest.mark.parametrize("text,expected", CASES, ids=[c[0] for c in CASES])
    def test_encoding(self, text, expected):
        image = assemble(f"_start:\n {text}\n")
        (word,) = words_of(image, count=1)
        assert word == expected, f"{text}: {word:#010x} != {expected:#010x}"
