"""Assumption-level UNSAT cores through the QF_BV solver stack.

Covers the PR 4 seam end to end: ``Solver.last_core`` (term-level
cores from the CDCL layer's ``analyzeFinal`` + greedy minimization),
the rewriter's conjunct provenance, minimal-core storage in
:class:`QueryCache`, and the ablation flags' behavioural invariants on
a real exploration workload.
"""

import multiprocessing

import pytest

from repro.asm import assemble
from repro.core import BinSymExecutor, Explorer
from repro.smt import terms as T
from repro.smt.preprocess import PreprocessConfig, rewrite_slice
from repro.smt.solver import CachingSolver, QueryCache, Result, Solver
from repro.spec import rv32im

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def bvv(name, width=8):
    return T.bv_var(name, width)


class TestSolverCores:
    def test_core_subset_and_standalone_unsat(self):
        solver = Solver(unsat_cores=True)
        x, y = bvv("x"), bvv("y")
        relevant = [T.ult(x, T.bv(5, 8)), T.ugt(x, T.bv(10, 8))]
        irrelevant = [T.ult(y, T.bv(100, 8))]
        assert solver.check(irrelevant + relevant) is Result.UNSAT
        core = solver.last_core
        assert core is not None
        assert core <= set(irrelevant + relevant)
        assert core == set(relevant)  # minimization drops y entirely
        fresh = Solver()
        assert fresh.check(list(core)) is Result.UNSAT

    def test_cores_disabled_by_default(self):
        solver = Solver()
        x = bvv("x")
        assert solver.check([T.ult(x, T.bv(5, 8)), T.ugt(x, T.bv(10, 8))]) \
            is Result.UNSAT
        assert solver.last_core is None

    def test_sat_answer_clears_core(self):
        solver = Solver(unsat_cores=True)
        x = bvv("x")
        assert solver.check([T.ult(x, T.bv(5, 8)), T.ugt(x, T.bv(10, 8))]) \
            is Result.UNSAT
        assert solver.last_core
        assert solver.check([T.ult(x, T.bv(5, 8))]) is Result.SAT
        assert solver.last_core is None

    def test_const_false_core_is_the_constant(self):
        solver = Solver(unsat_cores=True)
        assert solver.check([T.false()]) is Result.UNSAT
        assert solver.last_core == {T.false()}


class TestConstTrueFastPath:
    """Regression for the core-solve attribution bug: constant-true
    assumptions pruned before ``solve()`` must not count a core solve."""

    def test_const_true_assumptions_skip_the_core(self):
        solver = Solver()
        assert solver.check([T.true()]) is Result.SAT
        assert solver.check([]) is Result.SAT
        assert solver.num_checks == 2
        assert solver.num_solves == 0

    def test_assertions_still_reach_the_core(self):
        solver = Solver()
        x = bvv("x")
        solver.add(T.ult(x, T.bv(5, 8)))
        assert solver.check([T.true()]) is Result.SAT
        assert solver.num_solves == 1

    def test_scoped_checks_still_reach_the_core(self):
        solver = Solver()
        x = bvv("x")
        solver.push()
        solver.add(T.ult(x, T.bv(5, 8)))
        assert solver.check([T.true()]) is Result.SAT
        assert solver.num_solves == 1
        solver.pop()

    def test_explorer_attribution_counts_fast_path(self):
        """Through expand_run accounting, a const-true-only query is a
        fast-path answer, not a solved query."""
        solver = Solver()
        before = solver.num_solves
        assert solver.check([T.true(), T.true()]) is Result.SAT
        assert solver.num_solves == before


class TestRewriteProvenance:
    def test_residual_origin_includes_binding_source(self):
        x, y = bvv("x"), bvv("y")
        pin = T.eq(x, T.bv(3, 8))
        dependent = T.ult(T.add(x, y), T.bv(10, 8))
        outcome = rewrite_slice([pin, dependent])
        assert not outcome.unsat
        assert len(outcome.conditions) == 1
        [origin] = outcome.origins
        assert origin == frozenset({pin, dependent})

    def test_conflicting_pins_name_both_conjuncts(self):
        x, y = bvv("x"), bvv("y")
        pin1 = T.eq(x, T.bv(3, 8))
        pin2 = T.eq(x, T.bv(5, 8))
        noise = T.ult(y, T.bv(10, 8))
        outcome = rewrite_slice([noise, pin1, pin2])
        assert outcome.unsat
        assert outcome.conflict_origin == frozenset({pin1, pin2})

    def test_folded_contradiction_origin(self):
        x = bvv("x")
        pin = T.eq(x, T.bv(3, 8))
        contradiction = T.ugt(x, T.bv(200, 8))
        outcome = rewrite_slice([pin, contradiction])
        assert outcome.unsat
        assert outcome.conflict_origin == frozenset({pin, contradiction})


class TestMinimalCoreCaching:
    def test_core_subsumes_unrelated_superset(self):
        """The payoff path: an UNSAT core stored once answers later
        queries that share only the guilty conjuncts."""
        solver = CachingSolver(
            preprocess=PreprocessConfig(slicing=False, intervals=False)
        )
        x = bvv("x")
        guilty = [T.ult(x, T.bv(5, 8)), T.ugt(x, T.bv(10, 8))]
        padding = [T.ult(x, T.bv(200, 8)), T.ult(x, T.bv(199, 8))]
        assert solver.check(padding + guilty) is Result.UNSAT
        assert solver.pipeline_stats["unsat_cores"] >= 1
        before = solver.cache.subsumption_hits
        other_padding = [T.ult(x, T.bv(150, 8))]
        assert solver.check(other_padding + guilty) is Result.UNSAT
        assert solver.cache.subsumption_hits == before + 1

    def test_no_cores_no_subsumption_on_disjoint_padding(self):
        config = PreprocessConfig(
            slicing=False, intervals=False, unsat_cores=False
        )
        solver = CachingSolver(preprocess=config)
        x = bvv("x")
        guilty = [T.ult(x, T.bv(5, 8)), T.ugt(x, T.bv(10, 8))]
        padding = [T.ult(x, T.bv(200, 8))]
        assert solver.check(padding + guilty) is Result.UNSAT
        assert solver.pipeline_stats["unsat_cores"] == 0
        before = solver.cache.subsumption_hits
        assert solver.check([T.ult(x, T.bv(150, 8))] + guilty) is Result.UNSAT
        # Whole-key UNSAT sets cannot subsume across different paddings.
        assert solver.cache.subsumption_hits == before

    def test_core_through_rewrite_bindings(self):
        """A core over the rewritten residue maps back to original
        conjuncts (including the equality that produced the binding)."""
        solver = CachingSolver(preprocess=PreprocessConfig(slicing=False,
                                                           intervals=False))
        x, y = bvv("x"), bvv("y")
        pin = T.eq(x, T.bv(200, 8))
        lo = T.ult(y, T.bv(10, 8))
        hi = T.ugt(T.add(x, y), T.bv(250, 8))  # with x == 200 needs y > 50
        assert solver.check([pin, lo, hi]) is Result.UNSAT
        sets = list(solver.cache._unsat_sets.values())
        assert sets, "an UNSAT set must be registered"
        # Every stored set is a subset of the original conjuncts (the
        # rewritten residue never leaks into the cache keys).
        assert all(s <= {pin, lo, hi} for s in sets)


class TestQueryCacheInvertedIndex:
    def test_rotation_evicts_index_postings(self):
        cache = QueryCache(max_unsat_sets=2)
        terms = [bvv(f"v{i}") for i in range(6)]
        keys = [frozenset({T.ult(t, T.bv(1, 8))}) for t in terms]
        for key in keys[:3]:
            cache.store_unsat(key)
        assert len(cache._unsat_sets) == 2
        # The first set rotated out: no posting survives for it.
        (evicted,) = keys[0]
        assert evicted not in cache._unsat_index
        # Still-resident sets keep answering supersets.
        probe = keys[2] | {T.ult(terms[5], T.bv(9, 8))}
        result, _ = cache.lookup(probe, list(probe))
        assert result is Result.UNSAT
        # The rotated-out set no longer answers.
        probe0 = keys[0] | {T.ult(terms[4], T.bv(9, 8))}
        result0, _ = cache.lookup(probe0, list(probe0))
        assert result0 is None

    def test_duplicate_sets_are_refreshed_not_duplicated(self):
        cache = QueryCache(max_unsat_sets=4)
        x = bvv("x")
        key = frozenset({T.ult(x, T.bv(1, 8))})
        cache.store_unsat(key)
        cache.store_unsat(key)
        assert len(cache._unsat_sets) == 1
        assert len(cache._unsat_ids) == 1

    def test_core_smaller_than_key_registers_core(self):
        cache = QueryCache()
        x, y = bvv("x"), bvv("y")
        a, b = T.ult(x, T.bv(5, 8)), T.ugt(x, T.bv(9, 8))
        pad = T.ult(y, T.bv(3, 8))
        key = frozenset({a, b, pad})
        cache.store_unsat(key, core=frozenset({a, b}))
        # Exact hit on the full key:
        result, _ = cache.lookup(key, list(key))
        assert result is Result.UNSAT
        # Subsumption from the *core*, under different padding:
        probe = frozenset({a, b, T.ult(y, T.bv(200, 8))})
        result, _ = cache.lookup(probe, list(probe))
        assert result is Result.UNSAT

    def test_empty_core_is_never_registered(self):
        cache = QueryCache()
        x = bvv("x")
        key = frozenset({T.ult(x, T.bv(5, 8))})
        cache.store_unsat(key, core=frozenset())
        probe = frozenset({T.ugt(x, T.bv(9, 8))})
        result, _ = cache.lookup(probe, list(probe))
        assert result is None


SATURATING = """\
_start:
    li a0, 0x30000
    li a1, 2
    li a7, 1337
    ecall
    li s0, 0x30000
    lbu t0, 0(s0)
    lbu t1, 1(s0)
    li t2, 40
    bltu t0, t2, small
    li t3, 1
    j sum
small:
    li t3, 0
sum:
    add t4, t0, t1
    li t5, 60
    bltu t4, t5, below
    li a0, 2
    j out
below:
    add a0, t3, zero
out:
    li a7, 93
    ecall
"""


def build_executor(source):
    isa = rv32im()
    return BinSymExecutor(isa, assemble(source, isa=isa))


class TestAblationInvariance:
    """Path sets and attribution totals are flag-invariant."""

    CONFIGS = {
        "full": PreprocessConfig(),
        "no-cores": PreprocessConfig(unsat_cores=False),
        "no-trail": PreprocessConfig(trail_reuse=False),
        "neither": PreprocessConfig(unsat_cores=False, trail_reuse=False),
    }

    def explore(self, config, jobs=1):
        return Explorer(
            build_executor(SATURATING),
            jobs=jobs,
            use_cache=True,
            preprocess=config,
        ).explore()

    def test_path_sets_identical_across_flags(self):
        reference = None
        total_answered = None
        for name, config in self.CONFIGS.items():
            result = self.explore(config)
            answered = (
                result.num_queries + result.cache_hits + result.fast_path_answers
            )
            if reference is None:
                reference = result.path_set()
                total_answered = answered
            assert result.path_set() == reference, name
            # Every query is still answered exactly once by some tier.
            assert answered == total_answered, name

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_parallel_matches_serial_with_cores(self):
        serial = self.explore(PreprocessConfig())
        parallel = self.explore(PreprocessConfig(), jobs=2)
        assert parallel.path_set() == serial.path_set()
        assert parallel.workers == 2
