"""Tests for the SMT query complexity measurement (Sect. V-B follow-up)."""

import pytest

from repro.eval.query_stats import (
    QueryStats,
    RecordingSolver,
    compare_engines,
    measure_engine,
    render,
)
from repro.smt import terms as T
from repro.smt.solver import Result


class TestQueryStats:
    def test_record_accumulates(self):
        stats = QueryStats()
        x = T.bv_var("x", 8)
        stats.record([T.ult(x, T.bv(5, 8))])
        stats.record([T.ult(x, T.bv(5, 8)), T.eq(x, T.bv(3, 8))])
        assert stats.queries == 2
        assert stats.total_conditions == 3
        assert stats.mean_conditions == 1.5
        assert stats.max_variables == 1

    def test_empty_stats(self):
        stats = QueryStats()
        assert stats.mean_nodes == 0.0
        assert stats.mean_conditions == 0.0


class TestRecordingSolver:
    def test_check_still_solves(self):
        solver = RecordingSolver()
        x = T.bv_var("x", 8)
        assert solver.check([T.eq(x, T.bv(1, 8))]) is Result.SAT
        assert solver.check([T.ne(x, x)]) is Result.UNSAT
        assert solver.stats.queries == 2


class TestEngineComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_engines("bubble-sort", scale=3)

    def test_all_engines_measured(self, comparison):
        assert set(comparison) == {"binsym", "binsec", "symex-vp", "angr"}
        for stats in comparison.values():
            assert stats.queries > 0

    def test_translations_converge_after_simplification(self, comparison):
        """The headline finding: identical query structure across all
        four translation pipelines once terms are simplified."""
        reference = comparison["binsym"]
        for key, stats in comparison.items():
            assert stats.queries == reference.queries, key
            assert stats.total_nodes == reference.total_nodes, key
            assert stats.total_variables == reference.total_variables, key

    def test_render(self, comparison):
        text = render(comparison, "bubble-sort")
        assert "SMT query complexity" in text
        assert "binsym" in text

    def test_measure_engine_returns_paths(self):
        stats, paths = measure_engine("binsym", "bubble-sort", scale=3)
        assert paths == 6
        assert stats.queries == paths + stats.queries - paths  # well-formed

    def test_main_runs(self, capsys):
        from repro.eval.query_stats import main

        assert main(["--workload", "bubble-sort", "--scale", "2"]) == 0
        out = capsys.readouterr().out
        assert "bubble-sort" in out
