"""The evidence layer: path certificates, certify mode, cache corruption
chaos, and checkpoint-journal integrity.

One contract ties these together (PR 8): every cached or reported
answer is either independently checkable or re-derived on demand, and a
failed check quarantines the evidence and falls back to a fresh
derivation — counted, never trusted.
"""

import dataclasses
import json

import pytest

from repro.asm import assemble
from repro.core import BinSymExecutor, Explorer, FaultPlan
from repro.core.certificates import (
    reference_mode,
    replay_mismatches,
    verify_result,
)
from repro.core.checkpoint import CheckpointManager
from repro.eval.engines import make_engine
from repro.eval.workloads import WORKLOADS
from repro.smt.preprocess import PreprocessConfig
from repro.spec import rv32im

SOURCE = """\
_start:
    li a0, 0x20000
    li a1, 2
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li a0, 0
    bltu t1, t2, second
    addi a0, a0, 1
second:
    li t3, 100
    bltu t1, t3, done
    addi a0, a0, 2
done:
    li a7, 93
    ecall
"""


def make_executor():
    return BinSymExecutor(rv32im(), assemble(SOURCE))


def explore(certify=False, proof_log=True, jobs=1, faults=None, workload=None):
    if workload is not None:
        executor = make_engine("binsym", rv32im(), WORKLOADS[workload].image(3))
    else:
        executor = make_executor()
    preprocess = PreprocessConfig(certify=certify, proof_log=proof_log)
    return Explorer(
        executor, jobs=jobs, use_cache=True, preprocess=preprocess, faults=faults
    ).explore()


class TestCertifyMode:
    """--certify: every answer and every path carries checked evidence."""

    def test_serial_all_paths_certified(self):
        result = explore(certify=True)
        assert result.num_paths == 4
        assert result.certified_paths == 4
        assert result.certificate_failures == 0
        assert result.certificate_errors == []
        assert len(result.certificates) == 4
        stats = result.solver_stats
        assert stats.get("certified_sat", 0) + stats.get("certified_unsat", 0) > 0
        assert stats.get("certify_failures", 0) == 0

    def test_certify_does_not_change_path_set(self):
        plain = explore(certify=False)
        certified = explore(certify=True)
        assert certified.path_set() == plain.path_set()

    def test_parallel_all_paths_certified(self):
        serial = explore(certify=True, workload="bubble-sort")
        pooled = explore(certify=True, jobs=2, workload="bubble-sort")
        assert pooled.path_set() == serial.path_set()
        for result in (serial, pooled):
            assert result.certified_paths == result.num_paths
            assert result.certificate_failures == 0

    def test_no_proof_log_path_set_unchanged(self):
        logged = explore(proof_log=True)
        unlogged = explore(proof_log=False)
        assert unlogged.path_set() == logged.path_set()
        assert unlogged.num_queries == logged.num_queries

    def test_no_proof_log_parallel_path_set_unchanged(self):
        logged = explore(proof_log=True, jobs=2, workload="bubble-sort")
        unlogged = explore(proof_log=False, jobs=2, workload="bubble-sort")
        assert unlogged.path_set() == logged.path_set()

    def test_condition_digests_recorded_only_when_certifying(self):
        certified = explore(certify=True)
        plain = explore(certify=False)
        assert all(p.condition_digest is not None for p in certified.paths)
        assert all(p.condition_digest is None for p in plain.paths)

    def test_summary_mentions_certification(self):
        result = explore(certify=True)
        assert "certified: 4 paths, 0 failures" in result.summary()


class TestCertificateTampering:
    """Replay must reject any perturbed claim — the gate can fail."""

    @pytest.fixture()
    def certified(self):
        executor = make_executor()
        preprocess = PreprocessConfig(certify=True)
        result = Explorer(
            executor, use_cache=True, preprocess=preprocess
        ).explore()
        return executor, result

    def test_pristine_certificates_replay_clean(self, certified):
        executor, result = certified
        with reference_mode(executor):
            for cert in result.certificates:
                assert replay_mismatches(cert, executor) == []

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda c: dataclasses.replace(c, exit_code=(c.exit_code or 0) ^ 1),
            lambda c: dataclasses.replace(c, instret=c.instret + 1),
            lambda c: dataclasses.replace(c, trace_length=c.trace_length + 1),
            lambda c: dataclasses.replace(c, stdout_digest="0" * 32),
            lambda c: dataclasses.replace(c, final_pc=c.final_pc ^ 4),
            lambda c: dataclasses.replace(
                c, condition_digest=(c.condition_digest or 0) ^ 1
            ),
        ],
        ids=[
            "exit_code",
            "instret",
            "trace_length",
            "stdout",
            "final_pc",
            "condition_digest",
        ],
    )
    def test_tampered_field_rejected(self, certified, mutation):
        executor, result = certified
        cert = mutation(result.certificates[0])
        with reference_mode(executor):
            problems = replay_mismatches(cert, executor)
        assert problems, "tampered certificate was accepted"

    def test_verify_result_counts_failures(self, certified):
        executor, result = certified
        # Corrupt one recorded path in memory; re-verification must
        # count exactly one failing certificate and keep the rest.
        result.certified_paths = 0
        result.certificate_failures = 0
        result.certificate_errors = []
        result.paths[0].instret += 1
        failures = verify_result(result, executor)
        assert result.certificate_failures == 1
        assert result.certified_paths == result.num_paths - 1
        assert any("instret" in message for message in failures)

    def test_reference_mode_restores_configuration(self):
        executor = make_executor()
        assert executor.interpreter.staging
        assert executor.superblocks_enabled
        with reference_mode(executor):
            assert not executor.interpreter.staging
            assert not executor.superblocks_enabled
        assert executor.interpreter.staging
        assert executor.superblocks_enabled

    def test_certificate_survives_serialization_roundtrip(self, certified):
        executor, result = certified
        cert = result.certificates[0]
        # Certificates are plain data: a JSON round trip (as a
        # checkpoint or report would do) must preserve checkability.
        payload = json.loads(json.dumps(dataclasses.asdict(cert)))
        payload["inputs"] = tuple(tuple(entry) for entry in payload["inputs"])
        restored = type(cert)(**payload)
        with reference_mode(executor):
            assert replay_mismatches(restored, executor) == []


class TestCorruptionChaos:
    """corrupt= schedules: poisoned cache entries are absorbed."""

    def attribution(self, result):
        return (
            result.num_queries
            + result.cache_hits
            + result.fast_path_answers
            + result.pruned_queries
            + result.unknown_queries
        )

    def test_corruption_preserves_paths_and_attribution(self):
        clean = explore(workload="uri-parser")
        quarantines = 0
        for seed in range(3):
            plan = FaultPlan(seed=seed, corrupt_rate=40)
            faulted = explore(workload="uri-parser", faults=plan)
            assert faulted.path_set() == clean.path_set()
            assert self.attribution(faulted) == self.attribution(clean)
            quarantines += faulted.solver_stats.get("cache_quarantines", 0)
        assert quarantines > 0

    def test_corruption_parallel(self):
        clean = explore(workload="bubble-sort")
        plan = FaultPlan(seed=1, corrupt_rate=40)
        faulted = explore(workload="bubble-sort", jobs=2, faults=plan)
        assert faulted.path_set() == clean.path_set()
        assert faulted.solver_stats.get("cache_corruptions", 0) > 0

    def test_corruption_with_certify(self):
        # Belt and braces: even with poisoning active, certify mode
        # still certifies every path (quarantine precedes any answer).
        plan = FaultPlan(seed=2, corrupt_rate=40)
        result = explore(certify=True, workload="uri-parser", faults=plan)
        assert result.certified_paths == result.num_paths
        assert result.certificate_failures == 0

    def test_corrupt_spec_parses(self):
        plan = FaultPlan.parse("corrupt=30,seed=5")
        assert plan.corrupt_rate == 30
        assert plan.seed == 5
        assert plan.active
        assert plan.corruptor("serial") is not None
        assert FaultPlan().corruptor("serial") is None

    def test_corruptor_is_deterministic(self):
        plan = FaultPlan(seed=7, corrupt_rate=50)
        first = plan.corruptor("w1")
        second = plan.corruptor("w1")
        draws = [(kind, n) for kind in ("model", "core", "pool") for n in range(20)]
        assert [first(k, n) for k, n in draws] == [second(k, n) for k, n in draws]
        assert any(first(k, n) for k, n in draws)


class TestCheckpointIntegrity:
    """The journal carries a content digest; damage is always an error."""

    def run_checkpointed(self, tmp_path, resume=False):
        return Explorer(
            make_executor(),
            use_cache=True,
            checkpoint_dir=str(tmp_path),
            resume=resume,
        ).explore()

    def test_clean_roundtrip_still_resumes(self, tmp_path):
        first = self.run_checkpointed(tmp_path)
        resumed = self.run_checkpointed(tmp_path, resume=True)
        assert resumed.path_set() == first.path_set()

    def test_truncated_journal_rejected(self, tmp_path):
        self.run_checkpointed(tmp_path)
        journal = tmp_path / "checkpoint.json"
        data = journal.read_bytes()
        journal.write_bytes(data[: len(data) // 2])
        manager = CheckpointManager(str(tmp_path), strategy="dfs", seed=0)
        with pytest.raises(ValueError, match="truncated"):
            manager.load()

    def test_bit_flipped_journal_rejected(self, tmp_path):
        self.run_checkpointed(tmp_path)
        journal = tmp_path / "checkpoint.json"
        data = bytearray(journal.read_bytes())
        # Flip one content byte inside the state object (a digit of a
        # counter or digest — never the JSON structure).
        victim = data.rindex(b"1")
        data[victim] = ord("2")
        journal.write_bytes(bytes(data))
        manager = CheckpointManager(str(tmp_path), strategy="dfs", seed=0)
        with pytest.raises(ValueError, match="integrity check"):
            manager.load()

    def test_missing_digest_rejected(self, tmp_path):
        self.run_checkpointed(tmp_path)
        journal = tmp_path / "checkpoint.json"
        raw = json.loads(journal.read_text())
        journal.write_text(json.dumps(raw["state"]))  # digest stripped
        manager = CheckpointManager(str(tmp_path), strategy="dfs", seed=0)
        with pytest.raises(ValueError, match="missing integrity"):
            manager.load()

    def test_resume_surfaces_corruption_error(self, tmp_path):
        self.run_checkpointed(tmp_path)
        journal = tmp_path / "checkpoint.json"
        journal.write_bytes(journal.read_bytes()[:40])
        with pytest.raises(ValueError, match="truncated or damaged"):
            self.run_checkpointed(tmp_path, resume=True)

    def test_certify_digests_survive_checkpoint(self, tmp_path):
        executor = make_executor()
        preprocess = PreprocessConfig(certify=True)
        Explorer(
            executor,
            use_cache=True,
            preprocess=preprocess,
            checkpoint_dir=str(tmp_path),
        ).explore()
        manager = CheckpointManager(str(tmp_path), strategy="dfs", seed=0)
        state = manager.load()
        assert state is not None and state.complete
        digests = [payload[7] for payload in state.paths]
        assert digests and all(d is not None for d in digests)
