"""Cross-layer integration tests.

These tie the layers together end to end: assembler -> ELF -> engines ->
solver, concrete/symbolic replay equivalence on the real workloads, and
the paper-scale headline count (bubble-sort 6! = 720, the Table I cell,
in a few seconds).  The larger paper-scale cells (5040/5040/6250) run
via ``REPRO_PAPER_SCALE=1 pytest tests/test_integration.py`` or the
table1 driver; they are minutes, not seconds, in pure Python.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer, InputAssignment
from repro.eval.workloads import WORKLOADS
from repro.loader import read_elf, write_elf
from repro.smt import terms as T
from repro.spec import rv32im

_BUF = 0x20000


class TestWorkloadReplayEquivalence:
    """For random concrete inputs, the emulator and a single BinSym run
    agree on exit code and final memory — symbolic execution with
    concrete inputs is just execution, on the real workloads."""

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_replay(self, data):
        name = data.draw(st.sampled_from(sorted(WORKLOADS)))
        workload = WORKLOADS[name]
        scale = workload.default_scale
        input_bytes = bytes(
            data.draw(st.integers(0, 255)) for _ in range(scale)
        )
        image = workload.image(scale)
        isa = rv32im()

        concrete = ConcreteInterpreter(isa)
        concrete.load_image(image)
        concrete.memory.write_bytes(_BUF, input_bytes)
        concrete_hart = concrete.run()

        executor = BinSymExecutor(isa, image)
        # Prime the input variables, then assign the same bytes.
        executor.execute(InputAssignment())
        assignment = InputAssignment(
            {
                sym.variable: input_bytes[sym.address - _BUF]
                for sym in executor.interpreter.inputs.values()
            }
        )
        run = executor.execute(assignment)

        assert run.exit_code == concrete_hart.exit_code, (name, input_bytes)
        assert run.halt_reason == concrete_hart.halt_reason
        symbolic_mem = executor.interpreter.memory.read_bytes(_BUF, scale + 16)
        concrete_mem = concrete.memory.read_bytes(_BUF, scale + 16)
        assert symbolic_mem == concrete_mem, (name, input_bytes)


class TestElfEngineRoundTrip:
    def test_explore_from_elf_bytes(self):
        """Workload -> ELF file bytes -> parse -> explore: same paths."""
        image = WORKLOADS["bubble-sort"].image(3)
        restored = read_elf(write_elf(image))
        direct = Explorer(BinSymExecutor(rv32im(), image)).explore()
        via_elf = Explorer(BinSymExecutor(rv32im(), restored)).explore()
        assert via_elf.num_paths == direct.num_paths == 6


class TestSolverIsSharedAcrossExploration:
    def test_single_solver_many_queries(self):
        """One Solver instance serves the whole exploration (incremental
        bit-blasting cache), and its statistics reflect all queries."""
        from repro.smt.solver import Solver

        solver = Solver()
        image = WORKLOADS["insertion-sort"].image(3)
        executor = BinSymExecutor(rv32im(), image)
        result = Explorer(executor, solver=solver).explore()
        assert result.num_paths == 6
        assert solver.statistics["checks"] == result.sat_checks + result.unsat_checks


class TestPaperScaleHeadline:
    def test_bubble_sort_720_paths(self):
        """The Table I bubble-sort cell: 6 symbolic elements -> 720 paths."""
        image = WORKLOADS["bubble-sort"].image(6)
        result = Explorer(BinSymExecutor(rv32im(), image)).explore()
        assert result.num_paths == 720

    @pytest.mark.skipif(
        not os.environ.get("REPRO_PAPER_SCALE"),
        reason="minutes-long in pure Python; set REPRO_PAPER_SCALE=1",
    )
    def test_remaining_paper_scale_cells(self):
        insertion = Explorer(
            BinSymExecutor(rv32im(), WORKLOADS["insertion-sort"].image(7))
        ).explore()
        assert insertion.num_paths == 5040
        base64 = Explorer(
            BinSymExecutor(rv32im(), WORKLOADS["base64-encode"].image(4))
        ).explore()
        assert base64.num_paths == 6250


class TestSmtLibExport:
    def test_branch_queries_replay_externally(self):
        """Path conditions export to SMT-LIB and parse back identically
        (so captured queries can be replayed by external solvers)."""
        from repro.smt.smtlib import script
        from repro.smt.smtlib_parser import parse_script

        image = WORKLOADS["uri-parser"].image(2)
        executor = BinSymExecutor(rv32im(), image)
        run = executor.execute(InputAssignment())
        conditions = run.trace.conditions()
        assert conditions
        text = script(conditions)
        parsed = parse_script(text)
        assert parsed.assertions == conditions
