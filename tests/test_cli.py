"""Tests for the `repro` command-line interface."""

import pytest

from repro.cli import main

PROGRAM = """\
_start:
    li a0, 0x30000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x30000
    lbu t1, 0(t0)
    li t2, 7
    beq t1, t2, lucky
    li a0, 0
    li a7, 93
    ecall
lucky:
    ebreak
"""

HELLO = """\
_start:
    li a0, 1
    la a1, msg
    li a2, 6
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
msg:
    .asciz "hello\\n"
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(PROGRAM)
    return path


class TestAssemble:
    def test_produces_loadable_elf(self, tmp_path, program_file, capsys):
        out = tmp_path / "prog.elf"
        assert main(["assemble", str(program_file), "-o", str(out)]) == 0
        data = out.read_bytes()
        assert data[:4] == b"\x7fELF"
        assert "entry=0x10000" in capsys.readouterr().out


class TestRun:
    def test_runs_and_reports(self, tmp_path, capsys):
        path = tmp_path / "hello.s"
        path.write_text(HELLO)
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "hello" in out
        assert "halted: exit" in out

    def test_trace_mode(self, tmp_path, capsys):
        path = tmp_path / "hello.s"
        path.write_text(HELLO)
        assert main(["run", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0x00010000:" in out

    def test_runs_elf_input(self, tmp_path, program_file, capsys):
        elf = tmp_path / "prog.elf"
        main(["assemble", str(program_file), "-o", str(elf)])
        capsys.readouterr()
        assert main(["run", str(elf)]) == 0


class TestDisasm:
    def test_listing(self, program_file, capsys):
        assert main(["disasm", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "_start:" in out
        assert "lucky:" in out
        assert "ebreak" in out


class TestExplore:
    def test_finds_assertion_failure(self, program_file, capsys):
        # Exit code 1 signals assertion failures found.
        assert main(["explore", str(program_file)]) == 1
        out = capsys.readouterr().out
        assert "2 paths" in out
        assert "assertion failure" in out

    def test_engine_selection(self, program_file, capsys):
        assert main(["explore", "--engine", "binsec", str(program_file)]) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_harness_symbolic_region(self, tmp_path, capsys):
        # A program with no make_symbolic call: input via --symbolic.
        path = tmp_path / "plain.s"
        path.write_text("""\
_start:
    li t0, 0x30000
    lbu t1, 0(t0)
    beqz t1, done
    nop
done:
    li a0, 0
    li a7, 93
    ecall
""")
        assert main(["explore", "--symbolic", "0x30000:1", str(path)]) == 0
        assert "2 paths" in capsys.readouterr().out

    def test_parallel_jobs(self, program_file, capsys):
        assert main(["explore", "--jobs", "2", str(program_file)]) == 1
        out = capsys.readouterr().out
        assert "2 paths" in out
        assert "assertion failure" in out

    def test_coverage_strategy(self, program_file, capsys):
        assert main(["explore", "--strategy", "coverage", str(program_file)]) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_query_cache_toggle(self, program_file, capsys):
        assert main(["explore", "--no-query-cache", str(program_file)]) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_staging_toggle(self, program_file, capsys):
        assert main(["explore", "--no-staging", str(program_file)]) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_unsat_cores_toggle(self, program_file, capsys):
        assert main(["explore", "--no-unsat-cores", str(program_file)]) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_trail_reuse_toggle(self, program_file, capsys):
        assert main(["explore", "--no-trail-reuse", str(program_file)]) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_snapshots_toggle(self, program_file, capsys):
        assert main(["explore", "--no-snapshots", str(program_file)]) == 1
        out = capsys.readouterr().out
        assert "2 paths" in out
        assert "resumed" not in out

    def test_superblocks_toggle(self, program_file, capsys):
        assert main(["explore", "--no-superblocks", str(program_file)]) == 1
        out = capsys.readouterr().out
        assert "2 paths" in out
        assert "superblock statistics:" not in out

    def test_superblock_stats_output(self, program_file, capsys):
        assert main(["explore", "--stats", str(program_file)]) == 1
        out = capsys.readouterr().out
        assert "superblock statistics:" in out
        assert "sb_hits" in out

    def test_snapshot_stats_output(self, program_file, capsys):
        assert main(["explore", "--stats", str(program_file)]) == 1
        out = capsys.readouterr().out
        assert "snapshot statistics:" in out
        assert "snap_resumed_runs" in out

    def test_solver_flags_without_query_cache(self, program_file, capsys):
        assert main(
            ["explore", "--no-query-cache", "--no-trail-reuse",
             "--no-unsat-cores", str(program_file)]
        ) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_staging_toggle_parallel(self, program_file, capsys):
        assert main(
            ["explore", "--no-staging", "--jobs", "2", str(program_file)]
        ) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_conflict_budget_flag(self, program_file, capsys):
        assert main(
            ["explore", "--conflict-budget", "10000", "--stats",
             str(program_file)]
        ) == 1
        out = capsys.readouterr().out
        assert "2 paths" in out
        assert "unknown" in out

    def test_core_budget_flag(self, program_file, capsys):
        assert main(
            ["explore", "--core-budget", "0", str(program_file)]
        ) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_inject_faults_flag(self, program_file, capsys):
        assert main(
            ["explore", "--inject-faults", "evict=100,seed=3",
             str(program_file)]
        ) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_checkpoint_and_resume(self, tmp_path, program_file, capsys):
        journal = tmp_path / "campaign"
        assert main(
            ["explore", "--checkpoint", str(journal), str(program_file)]
        ) == 1
        assert "2 paths" in capsys.readouterr().out
        assert (journal / "checkpoint.json").exists()
        # Resuming a complete campaign restores it without re-exploring.
        assert main(
            ["explore", "--resume", str(journal), str(program_file)]
        ) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_interrupted_checkpoint_then_resume(
        self, tmp_path, program_file, capsys
    ):
        journal = tmp_path / "campaign"
        main(
            ["explore", "--checkpoint", str(journal),
             "--inject-faults", "stop=1", str(program_file)]
        )
        assert "[interrupted]" in capsys.readouterr().out
        assert main(
            ["explore", "--resume", str(journal), str(program_file)]
        ) == 1
        assert "2 paths" in capsys.readouterr().out

    def test_bad_inject_faults_spec(self, program_file):
        with pytest.raises(SystemExit, match="inject-faults"):
            main(["explore", "--inject-faults", "frobnicate=1",
                  str(program_file)])

    def test_bad_symbolic_spec(self, program_file):
        with pytest.raises(SystemExit):
            main(["explore", "--symbolic", "garbage", str(program_file)])

    def test_custom_isa(self, tmp_path, capsys):
        path = tmp_path / "zbb.s"
        path.write_text("""\
_start:
    li t0, 0xf0
    li t1, 0x0f
    andn a0, t0, t1
    li a7, 93
    ecall
""")
        assert main(["--isa", "rv32im+zbb", "run", str(path)]) == 0xF0
