"""Unit tests for the hash-consed term language and its simplifier."""

import pytest

from repro.smt import bvops
from repro.smt import terms as T


class TestConstruction:
    def test_const_truncates(self):
        assert T.bv(0x1FF, 8).const_value() == 0xFF

    def test_const_width(self):
        assert T.bv(5, 32).width == 32

    def test_negative_const_wraps(self):
        assert T.bv(-1, 8).const_value() == 0xFF

    def test_var_name(self):
        assert T.bv_var("x", 32).name() == "x"

    def test_zero_width_rejected(self):
        with pytest.raises(T.SortError):
            T.bv(1, 0)

    def test_bool_consts(self):
        assert T.true().is_bool
        assert T.false().is_bool
        assert T.true().const_value() == 1

    def test_bool_const_helper(self):
        assert T.bool_const(True) is T.true()
        assert T.bool_const(False) is T.false()


class TestInterning:
    def test_same_const_is_identical(self):
        assert T.bv(42, 32) is T.bv(42, 32)

    def test_same_expr_is_identical(self):
        x = T.bv_var("x", 32)
        assert T.add(x, T.bv(1, 32)) is T.add(x, T.bv(1, 32))

    def test_different_width_distinct(self):
        assert T.bv(1, 8) is not T.bv(1, 16)

    def test_commutative_canonicalization(self):
        x = T.bv_var("x", 32)
        assert T.add(T.bv(3, 32), x) is T.add(x, T.bv(3, 32))


class TestSortChecking:
    def test_width_mismatch(self):
        with pytest.raises(T.SortError):
            T.add(T.bv(1, 8), T.bv(1, 16))

    def test_bool_in_bv_op(self):
        with pytest.raises(T.SortError):
            T.add(T.true(), T.true())

    def test_bv_in_bool_op(self):
        with pytest.raises(T.SortError):
            T.band(T.bv(1, 1), T.true())

    def test_ite_branch_mismatch(self):
        with pytest.raises(T.SortError):
            T.ite(T.true(), T.bv(0, 8), T.bv(0, 16))

    def test_ite_cond_must_be_bool(self):
        with pytest.raises(T.SortError):
            T.ite(T.bv(1, 1), T.bv(0, 8), T.bv(0, 8))

    def test_extract_out_of_range(self):
        with pytest.raises(T.SortError):
            T.extract(T.bv_var("x", 8), 8, 0)


class TestConstantFolding:
    def test_add(self):
        assert T.add(T.bv(250, 8), T.bv(10, 8)).const_value() == 4

    def test_sub(self):
        assert T.sub(T.bv(3, 8), T.bv(5, 8)).const_value() == 254

    def test_mul(self):
        assert T.mul(T.bv(16, 8), T.bv(16, 8)).const_value() == 0

    def test_udiv_by_zero_is_all_ones(self):
        assert T.udiv(T.bv(7, 8), T.bv(0, 8)).const_value() == 0xFF

    def test_urem_by_zero_is_dividend(self):
        assert T.urem(T.bv(7, 8), T.bv(0, 8)).const_value() == 7

    def test_sdiv_truncates_toward_zero(self):
        # -7 / 2 == -3 (not -4)
        result = T.sdiv(T.bv(bvops.from_signed(-7, 8), 8), T.bv(2, 8))
        assert bvops.to_signed(result.const_value(), 8) == -3

    def test_srem_sign_follows_dividend(self):
        result = T.srem(T.bv(bvops.from_signed(-7, 8), 8), T.bv(2, 8))
        assert bvops.to_signed(result.const_value(), 8) == -1

    def test_shifts(self):
        assert T.shl(T.bv(1, 8), T.bv(3, 8)).const_value() == 8
        assert T.lshr(T.bv(0x80, 8), T.bv(3, 8)).const_value() == 0x10
        assert T.ashr(T.bv(0x80, 8), T.bv(3, 8)).const_value() == 0xF0

    def test_shift_past_width(self):
        assert T.shl(T.bv(1, 8), T.bv(9, 8)).const_value() == 0
        assert T.lshr(T.bv(0xFF, 8), T.bv(8, 8)).const_value() == 0
        assert T.ashr(T.bv(0x80, 8), T.bv(200, 8)).const_value() == 0xFF

    def test_concat(self):
        term = T.concat(T.bv(0xAB, 8), T.bv(0xCD, 8))
        assert term.width == 16
        assert term.const_value() == 0xABCD

    def test_extract(self):
        assert T.extract(T.bv(0xABCD, 16), 15, 8).const_value() == 0xAB

    def test_zext_sext(self):
        assert T.zext(T.bv(0x80, 8), 8).const_value() == 0x0080
        assert T.sext(T.bv(0x80, 8), 8).const_value() == 0xFF80

    def test_comparisons(self):
        assert T.ult(T.bv(1, 8), T.bv(2, 8)) is T.true()
        assert T.slt(T.bv(0xFF, 8), T.bv(0, 8)) is T.true()  # -1 < 0
        assert T.ule(T.bv(2, 8), T.bv(2, 8)) is T.true()
        assert T.sle(T.bv(1, 8), T.bv(0, 8)) is T.false()


class TestIdentitySimplification:
    def setup_method(self):
        self.x = T.bv_var("x", 32)

    def test_add_zero(self):
        assert T.add(self.x, T.bv(0, 32)) is self.x

    def test_add_reassociates_constants(self):
        one = T.bv(1, 32)
        two = T.bv(2, 32)
        chained = T.add(T.add(self.x, one), two)
        assert chained is T.add(self.x, T.bv(3, 32))

    def test_sub_self(self):
        assert T.sub(self.x, self.x).const_value() == 0

    def test_mul_zero_one(self):
        assert T.mul(self.x, T.bv(0, 32)).const_value() == 0
        assert T.mul(self.x, T.bv(1, 32)) is self.x

    def test_and_identities(self):
        assert T.and_(self.x, T.bv(0, 32)).const_value() == 0
        assert T.and_(self.x, T.bv(0xFFFFFFFF, 32)) is self.x
        assert T.and_(self.x, self.x) is self.x

    def test_or_identities(self):
        assert T.or_(self.x, T.bv(0, 32)) is self.x
        assert T.or_(self.x, self.x) is self.x

    def test_xor_identities(self):
        assert T.xor(self.x, T.bv(0, 32)) is self.x
        assert T.xor(self.x, self.x).const_value() == 0

    def test_double_not(self):
        assert T.not_(T.not_(self.x)) is self.x

    def test_double_neg(self):
        assert T.neg(T.neg(self.x)) is self.x

    def test_shift_zero(self):
        zero = T.bv(0, 32)
        assert T.shl(self.x, zero) is self.x
        assert T.lshr(self.x, zero) is self.x
        assert T.ashr(self.x, zero) is self.x

    def test_shift_by_width_or_more(self):
        assert T.shl(self.x, T.bv(32, 32)).const_value() == 0
        assert T.lshr(self.x, T.bv(99, 32)).const_value() == 0

    def test_eq_self(self):
        assert T.eq(self.x, self.x) is T.true()

    def test_ult_self(self):
        assert T.ult(self.x, self.x) is T.false()

    def test_ult_zero(self):
        assert T.ult(self.x, T.bv(0, 32)) is T.false()

    def test_ule_floor_ceiling(self):
        assert T.ule(T.bv(0, 32), self.x) is T.true()
        assert T.ule(self.x, T.bv(0xFFFFFFFF, 32)) is T.true()

    def test_extract_full_range(self):
        assert T.extract(self.x, 31, 0) is self.x

    def test_extract_of_extract(self):
        inner = T.extract(self.x, 23, 8)
        outer = T.extract(inner, 7, 0)
        assert outer is T.extract(self.x, 15, 8)

    def test_extract_of_concat_selects_part(self):
        y = T.bv_var("y", 16)
        z = T.bv_var("z", 16)
        cat = T.concat(y, z)
        assert T.extract(cat, 15, 0) is z
        assert T.extract(cat, 31, 16) is y

    def test_extract_of_zext_high_bits(self):
        term = T.extract(T.zext(T.bv_var("b", 8), 24), 31, 8)
        assert term.const_value() == 0

    def test_zext_zero_amount(self):
        assert T.zext(self.x, 0) is self.x

    def test_nested_zext_collapses(self):
        b = T.bv_var("b", 8)
        assert T.zext(T.zext(b, 8), 16) is T.zext(b, 24)

    def test_ite_const_cond(self):
        a, b = T.bv(1, 32), T.bv(2, 32)
        assert T.ite(T.true(), a, b) is a
        assert T.ite(T.false(), a, b) is b

    def test_ite_same_branches(self):
        cond = T.eq(self.x, T.bv(1, 32))
        assert T.ite(cond, self.x, self.x) is self.x


class TestBoolSimplification:
    def setup_method(self):
        self.p = T.bool_var("p")
        self.q = T.bool_var("q")

    def test_band(self):
        assert T.band(self.p, T.true()) is self.p
        assert T.band(self.p, T.false()) is T.false()
        assert T.band(self.p, self.p) is self.p
        assert T.band(self.p, T.bnot(self.p)) is T.false()

    def test_bor(self):
        assert T.bor(self.p, T.false()) is self.p
        assert T.bor(self.p, T.true()) is T.true()
        assert T.bor(self.p, T.bnot(self.p)) is T.true()

    def test_bnot_involution(self):
        assert T.bnot(T.bnot(self.p)) is self.p

    def test_bxor(self):
        assert T.bxor(self.p, self.p) is T.false()
        assert T.bxor(self.p, T.false()) is self.p
        assert T.bxor(self.p, T.true()) is T.bnot(self.p)

    def test_implies(self):
        assert T.implies(T.false(), self.p) is T.true()
        assert T.implies(T.true(), self.p) is self.p

    def test_conjoin_disjoin(self):
        assert T.conjoin([]) is T.true()
        assert T.disjoin([]) is T.false()
        assert T.conjoin([self.p, T.true()]) is self.p
        assert T.disjoin([self.p, T.false()]) is self.p

    def test_ne(self):
        x = T.bv_var("x", 8)
        assert T.ne(x, x) is T.false()


class TestTermUtilities:
    def test_variables(self):
        x, y = T.bv_var("x", 32), T.bv_var("y", 32)
        term = T.add(x, T.mul(y, T.bv(3, 32)))
        assert term.variables() == {x, y}

    def test_variables_of_const(self):
        assert T.bv(1, 8).variables() == set()

    def test_size_counts_dag_nodes(self):
        x = T.bv_var("x", 32)
        shared = T.add(x, T.bv(1, 32))
        term = T.mul(shared, shared)
        # mul + add + x + const(1) = 4 distinct nodes
        assert term.size() == 4

    def test_derived_comparisons(self):
        a, b = T.bv(1, 8), T.bv(2, 8)
        assert T.ugt(b, a) is T.true()
        assert T.uge(b, a) is T.true()
        assert T.sgt(b, a) is T.true()
        assert T.sge(a, a) is T.true()
