"""Tests for the word-level query preprocessing pipeline.

Covers the independence slicer, the equality-substitution rewriter, the
pipelined :class:`CachingSolver` (per-slice caching, model stitching,
fast-path accounting) and the end-to-end ablation property: every
``--no-*`` configuration must discover the same path sets as the full
pipeline on the tier-1 workloads, serial and parallel alike.
"""

import multiprocessing
import random

import pytest

from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import WORKLOADS
from repro.smt import terms as T
from repro.smt.evalbv import evaluate
from repro.smt.preprocess import (
    PreprocessConfig,
    rewrite_slice,
    slice_conditions,
    substitute,
)
from repro.smt.solver import CachingSolver, Result, Solver
from repro.spec import rv32im

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def bvv(name, width=8):
    return T.bv_var(name, width)


class TestSliceConditions:
    def test_independent_variables_split(self):
        x, y = bvv("sx"), bvv("sy")
        a = T.ult(x, T.bv(4, 8))
        b = T.eq(y, T.bv(2, 8))
        assert slice_conditions([a, b]) == [[a], [b]]

    def test_shared_variable_merges(self):
        x, y = bvv("sx2"), bvv("sy2")
        a = T.ult(x, T.bv(4, 8))
        b = T.eq(T.add(x, y), T.bv(9, 8))
        c = T.ult(y, T.bv(7, 8))
        assert slice_conditions([a, b, c]) == [[a, b, c]]

    def test_transitive_connection_through_linker(self):
        x, y, z = bvv("sx3"), bvv("sy3"), bvv("sz3")
        a = T.ult(x, T.bv(4, 8))
        b = T.ult(z, T.bv(4, 8))
        link = T.eq(T.add(x, z), y)  # connects all three
        assert slice_conditions([a, b, link]) == [[a, b, link]]

    def test_single_slice_degenerate_case(self):
        x = bvv("sx4")
        conds = [T.ult(x, T.bv(9, 8)), T.ugt(x, T.bv(1, 8))]
        assert slice_conditions(conds) == [conds]

    def test_order_stability(self):
        x, y, z = bvv("sx5"), bvv("sy5"), bvv("sz5")
        a = T.eq(y, T.bv(1, 8))
        b = T.ult(x, T.bv(4, 8))
        c = T.ult(z, y)
        # Slices appear in first-conjunct order: {a, c} then {b}.
        assert slice_conditions([a, b, c]) == [[a, c], [b]]

    def test_empty_input(self):
        assert slice_conditions([]) == []


class TestSubstitute:
    def test_identity_when_disjoint(self):
        x, y = bvv("ba"), bvv("bb")
        term = T.add(x, T.bv(3, 8))
        assert substitute(term, {y: T.bv(1, 8)}) is term

    def test_folds_through_cone(self):
        x, y = bvv("bc"), bvv("bd")
        term = T.ult(T.add(x, y), T.bv(10, 8))
        folded = substitute(term, {x: T.bv(3, 8), y: T.bv(4, 8)})
        assert folded is T.true()

    @pytest.mark.parametrize("seed", range(5))
    def test_substitution_preserves_semantics(self, seed):
        from test_intervals import random_term

        rng = random.Random(200 + seed)
        variables = [bvv(f"bs{seed}_{i}") for i in range(3)]
        for _ in range(40):
            term = random_term(rng, variables, 8, 3)
            pinned = {variables[0]: T.bv(rng.randrange(256), 8)}
            rewritten = substitute(term, pinned)
            point = {var: rng.randrange(256) for var in variables}
            point[variables[0]] = pinned[variables[0]].payload
            assert evaluate(term, point) == evaluate(rewritten, point)


class TestRewriteSlice:
    def test_equality_propagates(self):
        x, y = bvv("ra"), bvv("rb")
        out = rewrite_slice([
            T.eq(x, T.bv(5, 8)),
            T.ult(x, T.bv(10, 8)),          # true under x=5: dropped
            T.eq(y, T.add(x, T.bv(1, 8))),  # folds to y == 6: new binding
        ])
        assert not out.unsat
        assert out.conditions == []
        assert out.bindings[x].payload == 5
        assert out.bindings[y].payload == 6

    def test_contradiction_by_folding(self):
        x = bvv("rc")
        out = rewrite_slice([T.eq(x, T.bv(5, 8)), T.ugt(x, T.bv(9, 8))])
        assert out.unsat

    def test_conflicting_equalities(self):
        x = bvv("rd")
        out = rewrite_slice([T.eq(x, T.bv(3, 8)), T.eq(x, T.bv(4, 8))])
        assert out.unsat

    def test_boolean_variable_pinning(self):
        b = T.bool_var("re")
        x = bvv("rf")
        out = rewrite_slice([b, T.bor(T.bnot(b), T.ult(x, T.bv(4, 8)))])
        assert not out.unsat
        assert out.bindings[b] is T.true()
        assert out.conditions == [T.ult(x, T.bv(4, 8))]

    def test_no_bindings_is_identity(self):
        x = bvv("rg")
        conds = [T.ult(x, T.bv(9, 8)), T.ugt(x, T.bv(2, 8))]
        out = rewrite_slice(conds)
        assert out.conditions == conds and not out.bindings


class TestPipelinedSolver:
    def queries(self, tag):
        x, y, z = bvv(f"x{tag}"), bvv(f"y{tag}"), bvv(f"z{tag}")
        return [
            [T.ult(x, T.bv(10, 8))],
            [T.ult(x, T.bv(10, 8)), T.ugt(x, T.bv(20, 8))],
            [T.eq(T.add(x, y), T.bv(5, 8))],
            [T.eq(x, T.bv(3, 8)), T.eq(y, T.bv(4, 8)), T.ult(z, T.bv(9, 8))],
            [T.ult(x, y), T.ult(y, z), T.ult(z, x)],          # cyclic UNSAT
            [T.ult(x, y), T.ult(y, z)],                        # chain SAT
            [T.eq(T.mul(x, x), T.bv(4, 8)), T.ult(y, T.bv(3, 8))],
            [T.slt(x, T.bv(0, 8)), T.eq(y, T.bv(1, 8))],
            [T.ne(x, T.bv(0, 8)), T.eq(T.urem(y, T.bv(3, 8)), T.bv(1, 8))],
        ]

    @pytest.mark.parametrize(
        "config",
        [
            PreprocessConfig(),
            PreprocessConfig(slicing=False),
            PreprocessConfig(rewrite=False),
            PreprocessConfig(intervals=False),
            PreprocessConfig(slicing=False, rewrite=False, intervals=False),
        ],
        ids=["full", "no-slicing", "no-rewrite", "no-intervals", "off"],
    )
    def test_matches_plain_solver_with_valid_models(self, config):
        solver = CachingSolver(preprocess=config)
        for query in self.queries(f"m{id(config) % 97}"):
            reference = Solver()
            expected = reference.check(query)
            assert solver.check(query) is expected, query
            if expected is Result.SAT:
                model = solver.model()
                assignment = dict(model.items())
                for term in query:
                    for var in term.variables():
                        assignment.setdefault(var, 0)
                assert all(evaluate(term, assignment) for term in query), query

    def test_model_stitching_across_slices(self):
        solver = CachingSolver()
        x, y, z = bvv("stx"), bvv("sty"), bvv("stz")
        query = [
            T.eq(T.add(x, y), T.bv(200, 8)),   # slice 1: needs the core
            T.eq(T.mul(z, z), T.bv(16, 8)),    # slice 2: needs the core
        ]
        assert solver.check(query) is Result.SAT
        model = solver.model()
        assert (model[x] + model[y]) % 256 == 200
        assert (model[z] * model[z]) % 256 == 16
        # Both slices decided by one joint CDCL call.
        assert solver.num_solves == 1
        assert solver.pipeline_stats["joint_solves"] == 1

    def test_slice_reuse_across_different_queries(self):
        """The slicing payoff: a repeated independent fragment hits the
        cache even when the *rest* of the query is new."""
        solver = CachingSolver()
        x, y = bvv("srx"), bvv("sry")
        hard_x = T.eq(T.mul(x, x), T.bv(4, 8))
        assert solver.check([hard_x]) is Result.SAT
        solves_before = solver.num_solves
        # New query: same x-fragment + an unrelated interval-decidable
        # y-fragment.  The x slice must come from the cache.
        assert solver.check([hard_x, T.ult(y, T.bv(9, 8))]) is Result.SAT
        assert solver.num_solves == solves_before
        assert solver.cache.exact_hits >= 1

    def test_interval_fast_path_answers_without_core(self):
        solver = CachingSolver()
        pc = T.bv_var("fp_pc", 32)
        # The classic pc-range branch flip: decided with zero SAT calls.
        assert solver.check([T.ult(pc, T.bv(0x1000, 32))]) is Result.SAT
        assert (
            solver.check(
                [T.ult(pc, T.bv(0x1000, 32)), T.ugt(pc, T.bv(0x2000, 32))]
            )
            is Result.UNSAT
        )
        assert solver.num_solves == 0
        assert solver.fast_path_answers >= 1
        stats = solver.pipeline_statistics
        assert stats["sat_core_solves"] == 0
        assert stats["interval_sat"] + stats["interval_unsat"] >= 1

    def test_division_by_zero_slice(self):
        """SMT-LIB division semantics survive the pipeline (Fig. 2)."""
        x, y = bvv("dvx"), bvv("dvy")
        # x < x/y is only satisfiable because y == 0 makes x/y all-ones.
        query = [T.ult(x, T.udiv(x, y))]
        solver = CachingSolver()
        assert solver.check(query) is Result.SAT
        model = solver.model()
        assignment = {x: model[x], y: model[y]}
        assert evaluate(query[0], assignment)

    def test_tainted_solver_bypasses_pipeline(self):
        solver = CachingSolver()
        x = bvv("tnx")
        solver.add(T.ult(x, T.bv(4, 8)))
        assert solver.check([T.ugt(x, T.bv(9, 8))]) is Result.UNSAT
        assert solver.pipeline_stats["queries"] == 0
        assert len(solver.cache) == 0

    def test_pipeline_statistics_shape(self):
        solver = CachingSolver()
        stats = solver.pipeline_statistics
        assert "sat_core_solves" in stats
        assert "cache_hits" in stats and "cache_misses" in stats
        assert "fast_path_queries" in stats and "slices" in stats


WORKLOAD_CONFIGS = [
    PreprocessConfig(),
    PreprocessConfig(slicing=False),
    PreprocessConfig(rewrite=False),
    PreprocessConfig(intervals=False),
    PreprocessConfig(slicing=False, rewrite=False, intervals=False),
]
CONFIG_IDS = ["full", "no-slicing", "no-rewrite", "no-intervals", "off"]


class TestExplorationAblations:
    """`--no-*` flags must never change what exploration discovers."""

    @pytest.fixture(scope="class")
    def reference(self):
        image = WORKLOADS["bubble-sort"].image(3)
        result = Explorer(
            BinSymExecutor(rv32im(), image), use_cache=False
        ).explore()
        return image, result

    @pytest.mark.parametrize("config", WORKLOAD_CONFIGS, ids=CONFIG_IDS)
    def test_bubble_sort_path_set_invariant(self, reference, config):
        image, expected = reference
        result = Explorer(
            BinSymExecutor(rv32im(), image),
            use_cache=True,
            preprocess=config,
        ).explore()
        assert result.path_set() == expected.path_set()
        assert result.num_paths == 6  # 3!

    def test_uri_parser_signed_comparisons(self):
        """Signed-comparison-heavy workload: pipeline on == pipeline off."""
        image = WORKLOADS["uri-parser"].image(2)
        plain = Explorer(
            BinSymExecutor(rv32im(), image), use_cache=False
        ).explore()
        piped = Explorer(
            BinSymExecutor(rv32im(), image), use_cache=True
        ).explore()
        assert piped.path_set() == plain.path_set()

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_parallel_with_preprocessing_matches_serial(self):
        image = WORKLOADS["bubble-sort"].image(3)
        serial = Explorer(
            BinSymExecutor(rv32im(), image), use_cache=True
        ).explore()
        parallel = Explorer(
            BinSymExecutor(rv32im(), image), jobs=2, use_cache=True
        ).explore()
        assert parallel.path_set() == serial.path_set()
        assert parallel.workers == 2

    def test_stats_attribution_is_exhaustive(self):
        """solved + cached + fast-path + pruned covers every flip query."""
        image = WORKLOADS["bubble-sort"].image(3)
        result = Explorer(
            BinSymExecutor(rv32im(), image), use_cache=True
        ).explore()
        answered = (
            result.num_queries + result.cache_hits + result.fast_path_answers
        )
        assert answered > 0
        assert result.solver_stats["queries"] == answered
        # Fewer core solves than answered queries: the pipeline earns rent.
        assert result.solver_stats["sat_core_solves"] == result.sat_solves
        assert result.sat_solves < answered

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_parallel_solver_stats_sum_exactly(self):
        image = WORKLOADS["bubble-sort"].image(3)
        result = Explorer(
            BinSymExecutor(rv32im(), image), jobs=2, use_cache=True
        ).explore()
        answered = (
            result.num_queries + result.cache_hits + result.fast_path_answers
        )
        assert result.solver_stats["queries"] == answered
        assert result.solver_stats["sat_core_solves"] == result.sat_solves
