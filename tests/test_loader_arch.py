"""Tests for the ELF32 loader/writer, program images and arch components."""

import pytest

from repro.arch import ABI_NAMES, ByteMemory, Hart, RegisterFile, register_index
from repro.arch.memory import MemoryFault, ShadowMemory
from repro.asm import assemble
from repro.concrete import ConcreteInterpreter
from repro.loader import ElfFormatError, Image, read_elf, write_elf
from repro.spec import rv32im


class TestRegisterFile:
    def test_x0_is_hardwired_zero(self):
        regs = RegisterFile(zero_value=0)
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_read_write(self):
        regs = RegisterFile(zero_value=0)
        regs.write(5, 42)
        assert regs.read(5) == 42

    def test_out_of_range(self):
        regs = RegisterFile(zero_value=0)
        with pytest.raises(IndexError):
            regs.read(32)
        with pytest.raises(IndexError):
            regs.write(-1, 0)

    def test_snapshot_roundtrip(self):
        regs = RegisterFile(zero_value=0)
        for i in range(1, 32):
            regs.write(i, i * 3)
        snapshot = regs.snapshot()
        other = RegisterFile(zero_value=0)
        other.load_snapshot(snapshot)
        assert other.read(17) == 51

    def test_generic_value_type(self):
        regs = RegisterFile(zero_value="zero")
        regs.write(1, "hello")
        assert regs.read(1) == "hello"
        assert regs.read(0) == "zero"

    def test_abi_names(self):
        assert register_index("a0") == 10
        assert register_index("ra") == 1
        assert register_index("x31") == 31
        assert ABI_NAMES[2] == "sp"
        with pytest.raises(ValueError):
            register_index("q7")

    def test_dump_contains_names(self):
        regs = RegisterFile(zero_value=0)
        text = regs.dump()
        assert "a0" in text and "sp" in text


class TestByteMemory:
    def test_default_zero(self):
        assert ByteMemory().read_byte(0x1234) == 0

    def test_write_read_roundtrip(self):
        mem = ByteMemory()
        mem.write(0x100, 0xDEADBEEF, 32)
        assert mem.read(0x100, 32) == 0xDEADBEEF
        assert mem.read(0x100, 16) == 0xBEEF
        assert mem.read(0x102, 16) == 0xDEAD
        assert mem.read_byte(0x103) == 0xDE

    def test_page_boundary_access(self):
        mem = ByteMemory()
        mem.write(0xFFE, 0x11223344, 32)  # crosses the 4K page boundary
        assert mem.read(0xFFE, 32) == 0x11223344

    def test_address_wraparound(self):
        mem = ByteMemory()
        mem.write_byte(0xFFFFFFFF, 7)
        assert mem.read_byte(0xFFFFFFFF) == 7

    def test_invalid_width(self):
        with pytest.raises(MemoryFault):
            ByteMemory().read(0, 24)

    def test_bulk_bytes(self):
        mem = ByteMemory()
        mem.write_bytes(0x10, b"hello")
        assert mem.read_bytes(0x10, 5) == b"hello"

    def test_cstring(self):
        mem = ByteMemory()
        mem.write_bytes(0x10, b"hi\x00rest")
        assert mem.read_cstring(0x10) == b"hi"

    def test_clone_is_independent(self):
        mem = ByteMemory()
        mem.write_byte(0, 1)
        copy = mem.clone()
        copy.write_byte(0, 2)
        assert mem.read_byte(0) == 1

    def test_resident_bytes_tracks_pages(self):
        mem = ByteMemory()
        assert mem.resident_bytes == 0
        mem.write_byte(0, 1)
        mem.write_byte(0x5000, 1)
        assert mem.resident_bytes == 2 * 4096


class TestShadowMemory:
    def test_sparse_default_none(self):
        assert ShadowMemory().get(0x42) is None

    def test_set_get_clear(self):
        shadow = ShadowMemory()
        shadow.set(0x42, "taint")
        assert shadow.get(0x42) == "taint"
        shadow.set(0x42, None)
        assert shadow.get(0x42) is None

    def test_len_and_iteration(self):
        shadow = ShadowMemory()
        shadow.set(1, "a")
        shadow.set(2, "b")
        assert len(shadow) == 2
        assert set(shadow.tainted_addresses()) == {1, 2}


class TestHart:
    def test_halt_bookkeeping(self):
        hart = Hart(zero_value=0)
        hart.halt("exit", exit_code=3)
        assert hart.halted and hart.exit_code == 3

    def test_reset(self):
        hart = Hart(zero_value=0)
        hart.halt("exit", 1)
        hart.reset(pc=0x100)
        assert not hart.halted and hart.pc == 0x100 and hart.instret == 0


class TestImage:
    def test_bounds_and_size(self):
        image = Image()
        image.add_segment(0x100, b"abc")
        image.add_segment(0x200, b"defg")
        assert image.total_size() == 7
        assert image.bounds() == (0x100, 0x204)

    def test_empty_segment_skipped(self):
        image = Image()
        image.add_segment(0x100, b"")
        assert not image.segments

    def test_symbol_lookup(self):
        image = Image(symbols={"main": 0x10})
        assert image.symbol("main") == 0x10
        with pytest.raises(KeyError):
            image.symbol("nope")

    def test_load_into_memory(self):
        image = Image()
        image.add_segment(0x30, b"\x01\x02")
        mem = ByteMemory()
        image.load_into(mem)
        assert mem.read_bytes(0x30, 2) == b"\x01\x02"


class TestElf:
    def sample_image(self):
        image = Image(entry=0x10000, symbols={"_start": 0x10000, "buf": 0x20000})
        image.add_segment(0x10000, b"\x13\x00\x00\x00" * 3)
        image.add_segment(0x20000, bytes(range(16)))
        return image

    def test_roundtrip(self):
        original = self.sample_image()
        restored = read_elf(write_elf(original))
        assert restored.entry == original.entry
        assert restored.symbols == original.symbols
        assert sorted(s.base for s in restored.segments) == [0x10000, 0x20000]
        for segment in original.segments:
            match = next(s for s in restored.segments if s.base == segment.base)
            assert match.data == segment.data

    def test_magic_and_class_checks(self):
        with pytest.raises(ElfFormatError):
            read_elf(b"not an elf file at all, sorry......" + b"\x00" * 40)
        blob = bytearray(write_elf(self.sample_image()))
        blob[4] = 2  # ELFCLASS64
        with pytest.raises(ElfFormatError):
            read_elf(bytes(blob))
        blob = bytearray(write_elf(self.sample_image()))
        blob[18] = 0x3E  # EM_X86_64
        with pytest.raises(ElfFormatError):
            read_elf(bytes(blob))

    def test_too_small(self):
        with pytest.raises(ElfFormatError):
            read_elf(b"\x7fELF")

    def test_elf_header_fields(self):
        blob = write_elf(self.sample_image())
        assert blob[:4] == b"\x7fELF"
        assert blob[4] == 1  # ELFCLASS32
        assert blob[5] == 1  # little endian
        import struct

        machine = struct.unpack_from("<H", blob, 18)[0]
        assert machine == 243  # EM_RISCV

    def test_executable_survives_elf_roundtrip(self):
        """Assemble -> ELF -> parse -> run: end-to-end format check."""
        source = "_start:\n li a0, 99\n li a7, 93\n ecall\n"
        image = read_elf(write_elf(assemble(source)))
        interp = ConcreteInterpreter(rv32im())
        interp.load_image(image)
        assert interp.run().exit_code == 99

    def test_bss_style_memsz_extension(self):
        """p_memsz > p_filesz zero-extends the segment."""
        import struct

        blob = bytearray(write_elf(self.sample_image()))
        # Patch the first program header's memsz (offset 52 + 20).
        phoff = struct.unpack_from("<I", blob, 28)[0]
        filesz = struct.unpack_from("<I", blob, phoff + 16)[0]
        struct.pack_into("<I", blob, phoff + 20, filesz + 8)
        restored = read_elf(bytes(blob))
        first = min(restored.segments, key=lambda s: s.base)
        assert len(first.data) == filesz + 8
        assert first.data[-8:] == b"\x00" * 8
