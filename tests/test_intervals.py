"""Tests for the interval abstract domain (smt.intervals).

The load-bearing property is *soundness*: for any term, any interval
environment, and any concrete assignment inside the environment's box,
the concrete value (per the reference evaluator) must lie inside the
abstract value.  The fast-path verdicts then follow: a conjunct that is
abstractly False has no model in the box, and every SAT verdict the
analysis emits is backed by an evaluator-validated witness.
"""

import random

import pytest

from repro.smt import terms as T
from repro.smt.evalbv import evaluate
from repro.smt.intervals import (
    Interval,
    analyze_slice,
    eval_bool,
    eval_interval,
)


def bvv(name, width=8):
    return T.bv_var(name, width)


class TestIntervalBasics:
    def test_top_and_const(self):
        top = Interval.top(8)
        assert (top.lo, top.hi) == (0, 255)
        assert top.is_top and not top.is_const
        c = Interval.const(7, 8)
        assert c.is_const and 7 in c and 8 not in c

    def test_meet_and_join(self):
        a, b = Interval(8, 0, 10), Interval(8, 5, 20)
        assert (a.meet(b).lo, a.meet(b).hi) == (5, 10)
        assert (a.join(b).lo, a.join(b).hi) == (0, 20)
        assert a.meet(Interval(8, 11, 12)) is None

    def test_signed_bounds_pure_and_straddling(self):
        assert Interval(8, 3, 100).signed_bounds() == (3, 100)
        assert Interval(8, 0x80, 0xFF).signed_bounds() == (-128, -1)
        # Straddling the MSB boundary reaches both signed extremes.
        assert Interval(8, 0x70, 0x90).signed_bounds() == (-128, 127)


class TestDivisionEdgeCases:
    """SMT-LIB division/remainder by zero must be modelled exactly."""

    def test_udiv_by_possibly_zero(self):
        x, y = bvv("idx"), bvv("idy")
        env = {x: Interval(8, 10, 20), y: Interval(8, 0, 2)}
        iv = eval_interval(T.udiv(x, y), env)
        # y == 0 yields all-ones; y in [1,2] yields [5, 20].
        assert iv.lo == 5 and iv.hi == 255

    def test_udiv_by_exactly_zero_is_all_ones(self):
        x = bvv("idz")
        env = {x: Interval(8, 10, 20)}
        iv = eval_interval(T.udiv(x, T.bv(0, 8)), env)
        assert (iv.lo, iv.hi) == (255, 255)

    def test_urem_by_possibly_zero_includes_dividend(self):
        x, y = bvv("ira"), bvv("irb")
        env = {x: Interval(8, 100, 120), y: Interval(8, 0, 3)}
        iv = eval_interval(T.urem(x, y), env)
        # rem-by-zero yields the dividend, so 120 must be reachable.
        assert 120 <= iv.hi
        assert iv.lo == 0

    def test_urem_smaller_dividend_is_identity(self):
        x = bvv("irc")
        env = {x: Interval(8, 1, 4)}
        iv = eval_interval(T.urem(x, T.bv(10, 8)), env)
        assert (iv.lo, iv.hi) == (1, 4)


class TestSignedBoundaries:
    def test_slt_constant_refinement_msb(self):
        # x <s 0 over 8 bits == x unsigned in [0x80, 0xff].
        x = bvv("sb1")
        outcome = analyze_slice([T.slt(x, T.bv(0, 8))])
        assert outcome.verdict is True
        assert outcome.witness[x] >= 0x80

    def test_sge_zero_refinement(self):
        x = bvv("sb2")
        cond = T.bnot(T.slt(x, T.bv(0, 8)))  # x >=s 0
        outcome = analyze_slice([cond, T.ugt(x, T.bv(0x7F, 8))])
        assert outcome.verdict is False  # non-negative excludes [0x80, 0xff]

    def test_slt_int_min_is_infeasible(self):
        x = bvv("sb3")
        outcome = analyze_slice([T.slt(x, T.bv(0x80, 8))])  # x <s INT_MIN
        assert outcome.verdict is False

    def test_sext_msb_interval(self):
        x = bvv("sb4")
        env = {x: Interval(8, 0x80, 0xFF)}  # all negative
        iv = eval_interval(T.sext(x, 8), env)
        assert (iv.lo, iv.hi) == (0xFF80, 0xFFFF)


class TestVerdicts:
    def test_provably_false_conjunct(self):
        x = bvv("v1")
        assert eval_bool(T.ult(x, T.bv(5, 8)), {x: Interval(8, 10, 20)}) is False

    def test_provably_true_conjunct(self):
        x = bvv("v2")
        assert eval_bool(T.ult(x, T.bv(50, 8)), {x: Interval(8, 10, 20)}) is True

    def test_unknown_conjunct(self):
        x = bvv("v3")
        assert eval_bool(T.ult(x, T.bv(15, 8)), {x: Interval(8, 10, 20)}) is None

    def test_disequality_trim_detects_unsat(self):
        x = bvv("v4")
        conds = [
            T.eq(x, T.bv(5, 8)),
            T.ne(x, T.bv(5, 8)),
        ]
        assert analyze_slice(conds).verdict is False

    def test_range_plus_disequality_witness(self):
        x = bvv("v5")
        conds = [
            T.ult(x, T.bv(2, 8)),  # x in [0, 1]
            T.ne(x, T.bv(0, 8)),
        ]
        outcome = analyze_slice(conds)
        assert outcome.verdict is True
        assert outcome.witness[x] == 1

    def test_redundant_conjunct_dropped(self):
        x = bvv("v6")
        conds = [T.ult(x, T.bv(10, 8)), T.ult(x, T.bv(200, 8)), T.ult(T.bv(90, 8), x)]
        outcome = analyze_slice(conds)
        # x < 200 is implied by x < 10; probe also cannot fail here, so
        # either verdict True (with witness) or a residual without the
        # redundant conjunct is acceptable — but the redundancy must be
        # seen.  x > 90 makes the slice UNSAT though: [91, 9] is empty.
        assert outcome.verdict is False

    def test_redundancy_without_contradiction(self):
        x = bvv("v7")
        y = bvv("v7y")
        conds = [
            T.ult(x, T.bv(10, 8)),
            T.ult(x, T.bv(200, 8)),  # implied by the first conjunct
            T.eq(T.urem(y, x), T.bv(0, 8)),  # keeps the slice undecidable
        ]
        outcome = analyze_slice(conds)
        if outcome.verdict is None:
            assert T.ult(x, T.bv(200, 8)) in outcome.dropped
        else:
            assert outcome.verdict is True  # probe found a witness

    def test_empty_slice_is_trivially_sat(self):
        outcome = analyze_slice([])
        assert outcome.verdict is True and outcome.witness == {}

    def test_disequality_trim_cannot_self_justify_drop(self):
        """Regression: a ``x != c`` conjunct must never be dropped based
        on the boundary trim it contributed itself — that drop leads the
        joint solve to pick the excluded point and forces a fallback
        re-solve (more CDCL work than no preprocessing at all)."""
        x = bvv("tr1", 4)
        y = bvv("tr1y", 4)
        ne = T.ne(x, T.bv(0, 4))
        conds = [
            T.ult(x, T.bv(2, 4)),                       # x in [0, 1]
            ne,                                          # trims to [1, 1]
            T.eq(T.mul(y, y), T.add(x, T.bv(9, 4))),     # undecidable
        ]
        outcome = analyze_slice(conds)
        assert ne not in outcome.dropped


def random_term(rng, variables, width, depth):
    """Random bitvector term over ``variables`` (all of ``width``)."""
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return rng.choice(variables)
        return T.bv(rng.randrange(1 << width), width)
    op = rng.choice(
        ["add", "sub", "mul", "udiv", "urem", "and", "or", "xor",
         "shl", "lshr", "ashr", "not", "neg", "zext_extract", "sext_extract",
         "ite"]
    )
    a = random_term(rng, variables, width, depth - 1)
    if op == "not":
        return T.not_(a)
    if op == "neg":
        return T.neg(a)
    if op == "zext_extract":
        return T.extract(T.zext(a, 4), width - 1, 0)
    if op == "sext_extract":
        return T.extract(T.sext(a, 4), width - 1, 0)
    b = random_term(rng, variables, width, depth - 1)
    if op == "ite":
        cond = T.ult(a, b)
        c = random_term(rng, variables, width, depth - 1)
        return T.ite(cond, b, c)
    ctor = {
        "add": T.add, "sub": T.sub, "mul": T.mul, "udiv": T.udiv,
        "urem": T.urem, "and": T.and_, "or": T.or_, "xor": T.xor,
        "shl": T.shl, "lshr": T.lshr, "ashr": T.ashr,
    }[op]
    return ctor(a, b)


class TestAbstractSoundness:
    """Concrete evaluation inside the box stays inside the abstraction."""

    @pytest.mark.parametrize("seed", range(8))
    def test_interval_contains_concrete_value(self, seed):
        rng = random.Random(seed)
        width = 8
        variables = [bvv(f"p{seed}_{i}") for i in range(3)]
        for trial in range(60):
            term = random_term(rng, variables, width, 3)
            if term.is_const:
                continue
            env = {}
            point = {}
            for var in variables:
                lo = rng.randrange(1 << width)
                hi = rng.randrange(lo, 1 << width)
                env[var] = Interval(width, lo, hi)
                point[var] = rng.randrange(lo, hi + 1)
            abstract = eval_interval(term, env)
            concrete = evaluate(term, point)
            assert abstract.lo <= concrete <= abstract.hi, (
                term, env, point, abstract, concrete,
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_bool_verdict_matches_concrete(self, seed):
        rng = random.Random(100 + seed)
        width = 8
        variables = [bvv(f"q{seed}_{i}") for i in range(2)]
        comparisons = [T.eq, T.ult, T.ule, T.slt, T.sle]
        for trial in range(80):
            a = random_term(rng, variables, width, 2)
            b = random_term(rng, variables, width, 2)
            cond = rng.choice(comparisons)(a, b)
            if cond.is_const:
                continue
            env = {}
            point = {}
            for var in variables:
                lo = rng.randrange(1 << width)
                hi = rng.randrange(lo, 1 << width)
                env[var] = Interval(width, lo, hi)
                point[var] = rng.randrange(lo, hi + 1)
            verdict = eval_bool(cond, env)
            concrete = bool(evaluate(cond, point))
            if verdict is not None:
                assert verdict == concrete, (cond, env, point)
