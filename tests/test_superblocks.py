"""Superblock trace compilation (PR 6): differential and unit tests.

The translation layer must be observationally invisible: for any
program, input, search strategy and job count, exploring with
superblocks on and off must discover identical path sets with identical
query attribution — stitching only changes how instructions are
*dispatched*.  These tests pin that equivalence over the Fig. 6
workloads (randomized over strategies and seeds, serial and
``jobs=4``), exercise the self-modifying-code invalidation path (a SUT
that stores into its own fetched page), the fuel-boundary deopt, and
unit-test the classifier, the trace scanner, the successor prediction
and the shared block cache underneath.
"""

import random

import pytest

from repro.arch.hart import HaltReason
from repro.arch.memory import ByteMemory
from repro.asm import assemble
from repro.baselines.vp import VpExecutor
from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import WORKLOADS
from repro.spec import rv32im
from repro.spec import superblock as sb
from repro.spec.superblock import (
    MAX_BLOCK_LEN,
    Superblock,
    SuperblockEngine,
    _static_target,
)

_ATTRIBUTION_KEYS = (
    "sat_checks",
    "unsat_checks",
    "cache_hits",
    "fast_path_answers",
    "sat_solves",
    "pruned_queries",
    "total_instructions",
)

_FIG6 = (
    ("bubble-sort", 4),
    ("insertion-sort", 4),
    ("base64-encode", 2),
    ("uri-parser", None),
    ("clif-parser", None),
)

_BARRIER = sb._BARRIER


def _explore(image, superblocks, engine_cls=BinSymExecutor, **kwargs):
    engine = engine_cls(rv32im(), image)
    return Explorer(
        engine, use_cache=True, superblocks=superblocks, **kwargs
    ).explore()


def _attribution(result):
    return tuple(getattr(result, key) for key in _ATTRIBUTION_KEYS)


def _assignments(result):
    return [
        tuple(
            sorted(
                (var.payload, value)
                for var, value in path.assignment.values.items()
            )
        )
        for path in result.paths
    ]


def _memory_for(source):
    """Assemble a snippet into a fresh ByteMemory; return image too."""
    image = assemble(source, isa=rv32im())
    memory = ByteMemory()
    image.load_into(memory)
    return image, memory


@pytest.fixture
def isa():
    return rv32im()


@pytest.fixture
def engine(isa):
    # A private engine (not isa.superblocks) so unit tests never leak
    # hotness or cached blocks into the shared per-ISA instance.
    return SuperblockEngine(isa)


# ---------------------------------------------------------------------------
# Classification, successor prediction, trace scanning
# ---------------------------------------------------------------------------


class TestClassification:
    def _classify(self, engine, source, label="probe"):
        image, memory = _memory_for(source)
        pc = image.symbols[label]
        return engine._classify_word(memory.read_word(pc), pc), pc

    def test_alu_is_plain_without_pc(self, engine):
        info, _pc = self._classify(
            engine, "probe:\n    add t0, t1, t2\n"
        )
        kind, wpc, _slots, needs_pc, has_store = info
        assert kind == "plain" and wpc is None
        assert not needs_pc and not has_store

    def test_load_is_plain_but_needs_pc(self, engine):
        """Loads pin hart.pc: concretization records its site."""
        info, _pc = self._classify(engine, "probe:\n    lw t0, 0(t1)\n")
        assert info[0] == "plain" and info[3]

    def test_direct_jal_is_plain_with_static_target(self, engine):
        source = "probe:\n    jal zero, away\n    nop\naway:\n    nop\n"
        info, pc = self._classify(engine, source)
        kind, wpc, slots = info[0], info[1], info[2]
        assert kind == "plain" and wpc is not None
        assert _static_target(wpc, slots, pc) == pc + 8

    def test_branch_is_cond_with_fallthrough(self, engine):
        info, _pc = self._classify(
            engine, "probe:\n    beq t0, t1, probe\n"
        )
        assert info[0] == "cond"
        assert info[2]  # the not-taken arm writes no PC: pc+4 possible

    def test_ecall_ebreak_fence_are_barriers(self, engine):
        for insn in ("ecall", "ebreak", "fence"):
            info, _pc = self._classify(engine, f"probe:\n    {insn}\n")
            assert info is _BARRIER, insn

    def test_illegal_word_is_barrier(self, engine):
        assert engine._classify_word(0x0000_0000, 0x10000) is _BARRIER

    def test_jalr_target_is_dynamic(self, engine):
        info, pc = self._classify(engine, "probe:\n    jalr zero, t0, 0\n")
        kind, wpc, slots = info[0], info[1], info[2]
        assert kind == "plain" and wpc is not None
        assert _static_target(wpc, slots, pc) is None

    def test_backward_branch_predicted_taken(self, engine):
        source = "back:\n    nop\nprobe:\n    bne t0, t1, back\n"
        info, pc = self._classify(engine, source)
        predicted, side_exits = engine._successors(info, pc)
        assert predicted == pc - 4  # the loop back-edge
        assert side_exits == (pc + 4,)

    def test_forward_branch_predicted_fallthrough(self, engine):
        source = "probe:\n    bne t0, t1, fwd\n    nop\nfwd:\n    nop\n"
        info, pc = self._classify(engine, source)
        predicted, side_exits = engine._successors(info, pc)
        assert predicted == pc + 4
        assert side_exits == (pc + 8,)


class TestScan:
    def test_trace_ends_at_barrier(self, engine):
        _image, memory = _memory_for(
            "entry:\n    add t0, t1, t2\n    sub t3, t0, t1\n    ecall\n"
        )
        words, exit_pc = engine._scan(0x10000, memory)
        assert len(words) == 2
        assert exit_pc == 0x10008  # the ecall's own pc

    def test_single_instruction_does_not_stitch(self, engine):
        _image, memory = _memory_for("entry:\n    add t0, t1, t2\n    ecall\n")
        assert engine._scan(0x10000, memory) is None

    def test_scan_follows_direct_jump(self, engine):
        source = (
            "entry:\n    add t0, t1, t2\n    jal zero, land\n"
            "    ecall\nland:\n    sub t3, t0, t1\n    ecall\n"
        )
        _image, memory = _memory_for(source)
        words, _exit_pc = engine._scan(0x10000, memory)
        pcs = [pc for pc, _word in words]
        assert 0x10008 not in pcs  # the skipped ecall
        assert pcs[-1] == 0x1000C  # the landing pad

    def test_scan_stitches_through_predicted_loop(self, engine):
        """A hot loop body closes on itself: the scan stitches the
        backward branch and stops when it loops back into the block."""
        image, memory = _memory_for(
            "entry:\n    li t0, 9\nloop:\n    addi t1, t1, 1\n"
            "    addi t0, t0, -1\n    bne t0, zero, loop\n    ecall\n"
        )
        loop = image.symbols["loop"]
        words, exit_pc = engine._scan(loop, memory)
        assert [pc for pc, _ in words] == [loop, loop + 4, loop + 8]
        assert exit_pc == loop  # predicted back-edge re-enters the block

    def test_scan_caps_block_length(self, engine):
        body = "".join("    addi t0, t0, 1\n" for _ in range(MAX_BLOCK_LEN + 9))
        _image, memory = _memory_for("entry:\n" + body + "    ecall\n")
        words, _exit_pc = engine._scan(0x10000, memory)
        assert len(words) == MAX_BLOCK_LEN


class TestBlockCache:
    SOURCE = "entry:\n    add t0, t1, t2\n    sub t3, t0, t1\n    ecall\n"

    def test_acquire_builds_once(self, isa, engine):
        _image, memory = _memory_for(self.SOURCE)
        from repro.concrete.interpreter import ConcreteInterpreter as CI

        domain, key = CI(isa).domain, CI._domain_key
        block, built = engine.acquire(0x10000, memory, domain, key)
        assert built and isinstance(block, Superblock)
        again, rebuilt = engine.acquire(0x10000, memory, domain, key)
        assert again is block and not rebuilt

    def test_acquire_revalidates_changed_code(self, isa, engine):
        _image, memory = _memory_for(self.SOURCE)
        from repro.concrete.interpreter import ConcreteInterpreter as CI

        domain, key = CI(isa).domain, CI._domain_key
        block, _ = engine.acquire(0x10000, memory, domain, key)
        # Overwrite the second instruction with addi t3, t0, 1.
        _donor_image, donor = _memory_for("entry:\n    addi t3, t0, 1\n")
        word = donor.read_word(0x10000)
        memory.write_bytes(0x10004, word.to_bytes(4, "little"))
        fresh, _ = engine.acquire(0x10000, memory, domain, key)
        assert fresh is not block
        assert fresh.words != block.words

    def test_cache_capacity_evicts_oldest(self, isa, engine, monkeypatch):
        monkeypatch.setattr(sb, "BLOCK_CACHE_CAPACITY", 2)
        body = "".join("    addi t0, t0, 1\n" for _ in range(8))
        _image, memory = _memory_for("entry:\n" + body + "    ecall\n")
        from repro.concrete.interpreter import ConcreteInterpreter as CI

        domain, key = CI(isa).domain, CI._domain_key
        for offset in (0, 4, 8):
            engine.acquire(0x10000 + offset, memory, domain, key)
        assert len(engine._blocks) == 2
        keys = list(engine._blocks)
        assert all(entry_pc != 0x10000 for _dk, entry_pc, _w in keys)

    def test_engine_shared_per_isa(self, isa):
        """Interpreters over one ISA bind the same lazy engine, so
        hotness and compiled blocks are shared (and fork-inherited)."""
        assert isa.superblocks is isa.superblocks
        image = assemble(self.SOURCE)
        first = ConcreteInterpreter(isa)
        second = ConcreteInterpreter(isa)
        first.load_image(image)
        second.load_image(image)
        assert first._sb_engine is second._sb_engine is isa.superblocks


# ---------------------------------------------------------------------------
# Self-modifying code: store into the fetched page
# ---------------------------------------------------------------------------

# Two passes over a hot loop; between them the SUT patches the loop's
# own first instruction (addi t1, t1, 1 -> addi t1, t1, 2) by loading
# the word, adding 1 << 20 to its I-immediate, and storing it back.
_SMC = """\
_start:
    li s0, 2
    la s1, loop
    li s3, 0x100
    slli s3, s3, 12         # 1 << 20: +1 on an I-type immediate
outer:
    li t0, 50
    li t1, 0
loop:
    addi t1, t1, 1          # patched to addi t1, t1, 2 after pass one
    addi t0, t0, -1
    bne t0, zero, loop
    addi s0, s0, -1
    beq s0, zero, done
    lw s2, 0(s1)
    add s2, s2, s3
    sw s2, 0(s1)            # store into the fetched page
    jal zero, outer
done:
    mv a0, t1
    li a7, 93
    ecall
"""


class TestSelfModifyingCode:
    def run_concrete(self, superblocks):
        interp = ConcreteInterpreter(rv32im(), superblocks=superblocks)
        interp.load_image(assemble(_SMC))
        hart = interp.run()
        return hart, interp

    def test_concrete_differential(self):
        on, interp_on = self.run_concrete(True)
        off, interp_off = self.run_concrete(False)
        # Pass one counts 50 by ones, pass two 100 by twos.
        assert on.exit_code == off.exit_code == 100
        assert on.instret == off.instret
        assert interp_off.sb_hits == 0
        # The hot loop really ran as a block, and the patch invalidated.
        assert interp_on.sb_hits > 0
        assert interp_on.sb_invalidations >= 1

    def test_patched_block_is_rebuilt_not_stale(self):
        """After invalidation the new code must execute (the stale
        block would keep adding 1 and exit with 100 - 50 missing)."""
        hart, interp = self.run_concrete(True)
        assert hart.exit_code == 100
        assert interp.sb_blocks_built > 1  # re-stitched after the patch

    def test_symbolic_differential(self):
        """The same SMC kernel with a symbolic tail branch: exploration
        results are superblock-invariant even while code mutates."""
        source = _SMC.replace(
            "done:\n    mv a0, t1\n    li a7, 93\n    ecall\n",
            """\
done:
    li a0, 0x30000
    li a1, 1
    li a7, 1337
    ecall
    li t5, 0x30000
    lbu t6, 0(t5)
    li t4, 100
    bltu t6, t4, low
    li a0, 1
    li a7, 93
    ecall
low:
    li a0, 0
    li a7, 93
    ecall
""",
        )
        image = assemble(source, isa=rv32im())
        on = _explore(image, True)
        off = _explore(image, False)
        assert on.num_paths == off.num_paths == 2
        assert on.path_set() == off.path_set()
        assert _attribution(on) == _attribution(off)
        assert _assignments(on) == _assignments(off)
        assert on.superblock_stats.get("sb_invalidations", 0) >= 1


# ---------------------------------------------------------------------------
# Fuel boundary: OUT_OF_FUEL truncation must be bit-identical
# ---------------------------------------------------------------------------


class TestFuelBoundary:
    @pytest.mark.parametrize("budget", [7, 64, 65, 150, 151, 152, 153])
    def test_truncation_identical(self, budget):
        source = (
            "entry:\n    li t0, 1000\nloop:\n    addi t1, t1, 1\n"
            "    addi t0, t0, -1\n    bne t0, zero, loop\n"
            "    li a7, 93\n    li a0, 0\n    ecall\n"
        )
        image = assemble(source)
        harts = []
        for superblocks in (True, False):
            interp = ConcreteInterpreter(rv32im(), superblocks=superblocks)
            interp.load_image(image)
            interp.run()  # warm: promote the loop, build blocks
            interp.load_image(image)
            harts.append(interp.run(max_steps=budget))
        on, off = harts
        assert on.halt_reason == off.halt_reason == HaltReason.OUT_OF_FUEL
        assert on.instret == off.instret == budget
        assert on.pc == off.pc
        assert on.regs.read(6) == off.regs.read(6)  # t1


# ---------------------------------------------------------------------------
# step() stays per-instruction (manual harnesses, tracers, debuggers)
# ---------------------------------------------------------------------------


def test_bare_step_retires_exactly_one_instruction():
    source = (
        "entry:\n    li t0, 20\nloop:\n    addi t1, t1, 1\n"
        "    addi t0, t0, -1\n    bne t0, zero, loop\n"
        "    li a7, 93\n    li a0, 0\n    ecall\n"
    )
    image = assemble(source)
    interp = ConcreteInterpreter(rv32im(), superblocks=True)
    interp.load_image(image)
    interp.run()  # blocks now exist for the loop
    interp.load_image(image)
    for expected in range(1, 30):
        interp.step()
        assert interp.hart.instret == expected
    assert interp.sb_hits > 0  # the run() pass did use blocks


# ---------------------------------------------------------------------------
# Superblock-on vs superblock-off differentials (the PR's contract)
# ---------------------------------------------------------------------------


class TestSuperblockDifferential:
    @pytest.mark.parametrize("name,scale", _FIG6)
    def test_workload_identity_serial(self, name, scale):
        image = WORKLOADS[name].image(scale or WORKLOADS[name].default_scale)
        on = _explore(image, True)
        off = _explore(image, False)
        assert on.path_set() == off.path_set()
        assert _attribution(on) == _attribution(off)
        assert _assignments(on) == _assignments(off)
        # The layer engaged, and block-retired instructions are a
        # subset of the unchanged architectural totals.
        assert on.superblock_hits > 0
        assert 0 < on.superblock_instructions <= on.total_instructions
        assert off.superblock_stats == {}

    def test_randomized_strategies_and_seeds(self):
        rng = random.Random(6)
        for _ in range(6):
            name, scale = rng.choice(_FIG6)
            image = WORKLOADS[name].image(
                scale or WORKLOADS[name].default_scale
            )
            strategy = rng.choice(["dfs", "bfs", "random", "coverage"])
            seed = rng.randrange(1000)
            on = _explore(image, True, strategy=strategy, seed=seed)
            off = _explore(image, False, strategy=strategy, seed=seed)
            assert on.path_set() == off.path_set(), (name, strategy, seed)
            assert _attribution(on) == _attribution(off), (
                name, strategy, seed,
            )
            assert _assignments(on) == _assignments(off), (
                name, strategy, seed,
            )

    @pytest.mark.parametrize(
        "name,scale", [("bubble-sort", 4), ("uri-parser", None)]
    )
    def test_workload_identity_parallel(self, name, scale):
        """jobs=4, superblocks on/off: identical path sets and totals.

        Parallel per-tier attribution depends on task->worker placement
        (each worker owns its cache); the pinned invariant is the path
        set, the answered-query total and the instruction total.
        """
        image = WORKLOADS[name].image(scale or WORKLOADS[name].default_scale)
        serial = _explore(image, True)
        for superblocks in (True, False):
            result = _explore(image, superblocks, jobs=4)
            assert result.path_set() == serial.path_set(), superblocks
            assert result.num_paths == serial.num_paths
            answered = (
                result.num_queries
                + result.cache_hits
                + result.fast_path_answers
                + result.pruned_queries
            )
            serial_answered = (
                serial.num_queries
                + serial.cache_hits
                + serial.fast_path_answers
                + serial.pruned_queries
            )
            assert answered == serial_answered, superblocks
            assert result.total_instructions == serial.total_instructions
            if superblocks:
                assert result.superblock_stats.get("sb_hits", 0) > 0

    @pytest.mark.parametrize("snapshots", [True, False])
    def test_composes_with_snapshot_ablation(self, snapshots):
        """Superblocks and PR 5's snapshot layer toggle independently;
        every combination discovers the same paths with the same
        attribution."""
        image = WORKLOADS["uri-parser"].image()
        on = _explore(image, True, snapshots=snapshots)
        off = _explore(image, False, snapshots=snapshots)
        assert on.path_set() == off.path_set()
        assert _attribution(on) == _attribution(off)
        assert _assignments(on) == _assignments(off)

    def test_vp_engine_keeps_superblocks_off(self):
        """The SymEx-VP-style engine models a per-instruction fetch
        quantum on its TLM bus; superblocks stay off by construction."""
        image = WORKLOADS["uri-parser"].image()
        result = _explore(image, True, engine_cls=VpExecutor)
        assert result.superblock_stats == {}
