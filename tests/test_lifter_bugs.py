"""Tests for the five angr lifter bugs and differential lifter testing.

Reproduces the Sect. V-A accuracy experiment: each historical bug is
demonstrated by a witness program, the differential tester rediscovers
every bug class automatically, and both *fixed* lifters (VEX and DBA)
are certified against the formal specification.
"""

import pytest

from repro.baselines.dba import DbaEngine
from repro.baselines.vexir import FIVE_ANGR_BUGS, VexEngine
from repro.baselines.vexir.lifter import (
    BUG_DESCRIPTIONS,
    VexLifter,
)
from repro.eval.bugs import BUG_WITNESSES, run_bug_witnesses, run_fig5
from repro.eval.difftest import (
    BUG_MNEMONIC_CLASSES,
    bug_classes_for,
    difftest_engine,
)
from repro.spec import rv32im


class TestBugCatalogue:
    def test_five_bugs_defined(self):
        assert len(FIVE_ANGR_BUGS) == 5
        assert FIVE_ANGR_BUGS == set(BUG_DESCRIPTIONS)

    def test_unknown_bug_flag_rejected(self):
        with pytest.raises(ValueError):
            VexLifter(rv32im(), bugs=frozenset({"made-up-bug"}))

    def test_every_bug_has_witness(self):
        assert {w.bug for w in BUG_WITNESSES} == FIVE_ANGR_BUGS


class TestWitnesses:
    """Each witness: spec == fixed-lifter == correct, buggy differs."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        return {o.bug: o for o in run_bug_witnesses()}

    @pytest.mark.parametrize("bug", sorted(FIVE_ANGR_BUGS))
    def test_bug_reproduced(self, outcomes, bug):
        outcome = outcomes[bug]
        assert outcome.spec_exit == outcome.correct_exit, "spec wrong!"
        assert outcome.fixed_lifter_exit == outcome.correct_exit, "fix wrong!"
        assert outcome.buggy_lifter_exit != outcome.correct_exit, (
            f"{bug} not observable through its witness"
        )


class TestDifferentialTesting:
    def test_fixed_vex_lifter_matches_spec(self):
        divergences = difftest_engine(
            lambda isa, img: VexEngine(isa, img), iterations=300, seed=1
        )
        assert divergences == [], [d.describe() for d in divergences]

    def test_fixed_dba_lifter_matches_spec(self):
        divergences = difftest_engine(
            lambda isa, img: DbaEngine(isa, img), iterations=300, seed=2
        )
        assert divergences == [], [d.describe() for d in divergences]

    def test_all_five_bugs_rediscovered(self):
        divergences = difftest_engine(
            lambda isa, img: VexEngine(isa, img, bugs=FIVE_ANGR_BUGS),
            iterations=600,
            seed=3,
        )
        assert bug_classes_for(divergences) == FIVE_ANGR_BUGS

    @pytest.mark.parametrize("bug", sorted(FIVE_ANGR_BUGS))
    def test_single_bug_isolated(self, bug):
        """Each bug alone only produces divergences in its own class."""
        divergences = difftest_engine(
            lambda isa, img: VexEngine(isa, img, bugs=frozenset({bug})),
            iterations=400,
            seed=4,
        )
        assert divergences, f"{bug}: no divergence found"
        mnemonics = {d.mnemonic for d in divergences}
        assert mnemonics <= BUG_MNEMONIC_CLASSES[bug], (
            f"{bug} leaked into {mnemonics - BUG_MNEMONIC_CLASSES[bug]}"
        )


class TestFig5:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {o.engine: o for o in run_fig5()}

    def test_correct_engines_find_real_failure(self, outcomes):
        for key in ("binsym", "binsec", "symex-vp", "angr"):
            outcome = outcomes[key]
            assert not outcome.false_positive, key
            assert not outcome.false_negative, key
            assert outcome.ne_assert_failures == 1, key

    def test_buggy_angr_false_positive_and_negative(self, outcomes):
        buggy = outcomes["angr-buggy"]
        assert buggy.false_positive
        assert buggy.false_negative
