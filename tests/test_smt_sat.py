"""Unit and property tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SAT, UNSAT, SatSolver


def make_solver(num_vars):
    solver = SatSolver()
    variables = [solver.new_var() for _ in range(num_vars)]
    return solver, variables


class TestBasics:
    def test_empty_formula_is_sat(self):
        solver = SatSolver()
        assert solver.solve() is SAT

    def test_unit_clause(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.solve() is SAT
        assert solver.value(a) is True

    def test_negative_unit_clause(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([-a])
        assert solver.solve() is SAT
        assert solver.value(a) is False

    def test_contradictory_units(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.add_clause([-a]) is False
        assert solver.solve() is UNSAT

    def test_simple_implication_chain(self):
        solver, v = make_solver(4)
        solver.add_clause([v[0]])
        solver.add_clause([-v[0], v[1]])
        solver.add_clause([-v[1], v[2]])
        solver.add_clause([-v[2], v[3]])
        assert solver.solve() is SAT
        assert all(solver.value(x) for x in v)

    def test_tautology_is_dropped(self):
        solver, (a,) = make_solver(1)
        assert solver.add_clause([a, -a]) is True
        assert solver.solve() is SAT

    def test_duplicate_literals_collapse(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a, a, a])
        assert solver.solve() is SAT
        assert solver.value(a) is True

    def test_two_sat_conflict(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        solver.add_clause([a, -b])
        solver.add_clause([-a, b])
        solver.add_clause([-a, -b])
        assert solver.solve() is UNSAT

    def test_model_satisfies_all_clauses(self):
        solver, v = make_solver(5)
        clauses = [[v[0], -v[1]], [v[1], v[2]], [-v[2], v[3], -v[4]], [v[4], -v[0]]]
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SAT
        for clause in clauses:
            assert any(
                solver.value(abs(lit)) == (lit > 0) for lit in clause
            ), f"clause {clause} falsified"


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        assert solver.solve([-a]) is SAT
        assert solver.value(a) is False
        assert solver.value(b) is True

    def test_conflicting_assumption(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.solve([-a]) is UNSAT

    def test_assumptions_do_not_persist(self):
        solver, (a,) = make_solver(1)
        assert solver.solve([-a]) is SAT
        assert solver.solve([a]) is SAT

    def test_contradictory_assumptions(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([-a, b])
        assert solver.solve([a, -b]) is UNSAT

    def test_many_assumptions(self):
        solver, v = make_solver(8)
        for i in range(7):
            solver.add_clause([-v[i], v[i + 1]])
        assert solver.solve([v[0]]) is SAT
        assert all(solver.value(x) for x in v)
        assert solver.solve([v[0], -v[7]]) is UNSAT

    def test_incremental_clause_addition(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        assert solver.solve() is SAT
        solver.add_clause([-a])
        assert solver.solve() is SAT
        assert solver.value(b) is True
        solver.add_clause([-b])
        assert solver.solve() is UNSAT


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [1, 2, 3])
    def test_php_unsat(self, holes):
        """holes+1 pigeons into `holes` holes is UNSAT."""
        pigeons = holes + 1
        solver = SatSolver()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        assert solver.solve() is UNSAT

    def test_php_equal_is_sat(self):
        n = 3
        solver = SatSolver()
        var = {}
        for p in range(n):
            for h in range(n):
                var[p, h] = solver.new_var()
        for p in range(n):
            solver.add_clause([var[p, h] for h in range(n)])
        for h in range(n):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        assert solver.solve() is SAT


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, problem):
        num_vars, clauses = problem
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(num_vars)]
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        expected = brute_force_sat(num_vars, clauses)
        if not ok:
            assert expected is False
            return
        result = solver.solve()
        assert (result is SAT) == expected
        if result is SAT:
            for clause in clauses:
                assert any(
                    solver.value(abs(lit)) == (lit > 0) for lit in clause
                )

    @given(random_cnf(), st.lists(st.integers(min_value=1, max_value=4), max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_assumptions_match_brute_force(self, problem, assumed_vars):
        num_vars, clauses = problem
        assumptions = [v for v in assumed_vars if v <= num_vars]
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        augmented = clauses + [[a] for a in assumptions]
        expected = brute_force_sat(num_vars, augmented)
        if not ok:
            assert brute_force_sat(num_vars, clauses) is False
            return
        assert (solver.solve(assumptions) is SAT) == expected


class TestStatistics:
    def test_statistics_populated(self):
        solver, v = make_solver(6)
        for i in range(5):
            solver.add_clause([-v[i], v[i + 1]])
        solver.add_clause([v[0]])
        solver.solve()
        assert solver.statistics["propagations"] > 0
