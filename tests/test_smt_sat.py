"""Unit and property tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SAT, UNSAT, SatSolver
from repro.smt.sat import _Clause, _GLUE_LBD


def make_solver(num_vars):
    solver = SatSolver()
    variables = [solver.new_var() for _ in range(num_vars)]
    return solver, variables


class TestBasics:
    def test_empty_formula_is_sat(self):
        solver = SatSolver()
        assert solver.solve() is SAT

    def test_unit_clause(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.solve() is SAT
        assert solver.value(a) is True

    def test_negative_unit_clause(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([-a])
        assert solver.solve() is SAT
        assert solver.value(a) is False

    def test_contradictory_units(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.add_clause([-a]) is False
        assert solver.solve() is UNSAT

    def test_simple_implication_chain(self):
        solver, v = make_solver(4)
        solver.add_clause([v[0]])
        solver.add_clause([-v[0], v[1]])
        solver.add_clause([-v[1], v[2]])
        solver.add_clause([-v[2], v[3]])
        assert solver.solve() is SAT
        assert all(solver.value(x) for x in v)

    def test_tautology_is_dropped(self):
        solver, (a,) = make_solver(1)
        assert solver.add_clause([a, -a]) is True
        assert solver.solve() is SAT

    def test_duplicate_literals_collapse(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a, a, a])
        assert solver.solve() is SAT
        assert solver.value(a) is True

    def test_two_sat_conflict(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        solver.add_clause([a, -b])
        solver.add_clause([-a, b])
        solver.add_clause([-a, -b])
        assert solver.solve() is UNSAT

    def test_model_satisfies_all_clauses(self):
        solver, v = make_solver(5)
        clauses = [[v[0], -v[1]], [v[1], v[2]], [-v[2], v[3], -v[4]], [v[4], -v[0]]]
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SAT
        for clause in clauses:
            assert any(
                solver.value(abs(lit)) == (lit > 0) for lit in clause
            ), f"clause {clause} falsified"


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        assert solver.solve([-a]) is SAT
        assert solver.value(a) is False
        assert solver.value(b) is True

    def test_conflicting_assumption(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        assert solver.solve([-a]) is UNSAT

    def test_assumptions_do_not_persist(self):
        solver, (a,) = make_solver(1)
        assert solver.solve([-a]) is SAT
        assert solver.solve([a]) is SAT

    def test_contradictory_assumptions(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([-a, b])
        assert solver.solve([a, -b]) is UNSAT

    def test_many_assumptions(self):
        solver, v = make_solver(8)
        for i in range(7):
            solver.add_clause([-v[i], v[i + 1]])
        assert solver.solve([v[0]]) is SAT
        assert all(solver.value(x) for x in v)
        assert solver.solve([v[0], -v[7]]) is UNSAT

    def test_incremental_clause_addition(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        assert solver.solve() is SAT
        solver.add_clause([-a])
        assert solver.solve() is SAT
        assert solver.value(b) is True
        solver.add_clause([-b])
        assert solver.solve() is UNSAT


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [1, 2, 3])
    def test_php_unsat(self, holes):
        """holes+1 pigeons into `holes` holes is UNSAT."""
        pigeons = holes + 1
        solver = SatSolver()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        assert solver.solve() is UNSAT

    def test_php_equal_is_sat(self):
        n = 3
        solver = SatSolver()
        var = {}
        for p in range(n):
            for h in range(n):
                var[p, h] = solver.new_var()
        for p in range(n):
            solver.add_clause([var[p, h] for h in range(n)])
        for h in range(n):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        assert solver.solve() is SAT


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, problem):
        num_vars, clauses = problem
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(num_vars)]
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        expected = brute_force_sat(num_vars, clauses)
        if not ok:
            assert expected is False
            return
        result = solver.solve()
        assert (result is SAT) == expected
        if result is SAT:
            for clause in clauses:
                assert any(
                    solver.value(abs(lit)) == (lit > 0) for lit in clause
                )

    @given(random_cnf(), st.lists(st.integers(min_value=1, max_value=4), max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_assumptions_match_brute_force(self, problem, assumed_vars):
        num_vars, clauses = problem
        assumptions = [v for v in assumed_vars if v <= num_vars]
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        augmented = clauses + [[a] for a in assumptions]
        expected = brute_force_sat(num_vars, augmented)
        if not ok:
            assert brute_force_sat(num_vars, clauses) is False
            return
        assert (solver.solve(assumptions) is SAT) == expected


class TestStatistics:
    def test_statistics_populated(self):
        solver, v = make_solver(6)
        for i in range(5):
            solver.add_clause([-v[i], v[i + 1]])
        solver.add_clause([v[0]])
        solver.solve()
        assert solver.statistics["propagations"] > 0


def load_clauses(clauses, num_vars, trail_reuse=True):
    solver = SatSolver(trail_reuse=trail_reuse)
    for _ in range(num_vars):
        solver.new_var()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    return solver, ok


def random_instance(rng, num_vars, num_clauses, max_width=3):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, max_width)
        clauses.append(
            [rng.randint(1, num_vars) * rng.choice((1, -1)) for _ in range(width)]
        )
    return clauses


class TestUnsatCores:
    """Assumption-level core soundness: a core must be UNSAT standing
    alone and a subset of the assumptions it was extracted from."""

    def assert_core_sound(self, clauses, num_vars, assumptions, core):
        assert set(core) <= set(assumptions)
        fresh, ok = load_clauses(clauses, num_vars)
        if ok:
            assert fresh.solve(core) is UNSAT

    def test_contradictory_assumption_pair(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([a, b])
        assert solver.solve([a, -a]) is UNSAT
        core = solver.unsat_core()
        assert set(core) == {a, -a}

    def test_core_excludes_irrelevant_assumptions(self):
        solver, (a, b, c, d) = make_solver(4)
        solver.add_clause([-a, b])
        assert solver.solve([c, d, a, -b]) is UNSAT
        core = solver.unsat_core()
        self.assert_core_sound([[-a, b]], 4, [c, d, a, -b], core)
        minimized = solver.minimize_core(core)
        assert set(minimized) <= set(core)
        assert set(minimized) == {a, -b}

    def test_formula_level_unsat_yields_empty_core(self):
        solver, (a,) = make_solver(1)
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve([a]) is UNSAT
        assert solver.unsat_core() == []

    def test_core_from_propagation_chain(self):
        solver, v = make_solver(8)
        for i in range(7):
            solver.add_clause([-v[i], v[i + 1]])
        assert solver.solve([v[3], v[0], -v[7]]) is UNSAT
        core = solver.unsat_core()
        self.assert_core_sound(
            [[-v[i], v[i + 1]] for i in range(7)], 8, [v[3], v[0], -v[7]], core
        )
        minimized = solver.minimize_core(core)
        # v[0] is redundant given v[3]; minimization must notice.
        assert set(minimized) == {v[3], -v[7]}

    @given(random_cnf(), st.lists(st.integers(min_value=1, max_value=8), max_size=5),
           st.randoms(use_true_random=False))
    @settings(max_examples=120, deadline=None)
    def test_random_cores_sound(self, problem, assumed, rng):
        num_vars, clauses = problem
        assumptions = []
        for var in assumed:
            if var <= num_vars:
                lit = var if rng.random() < 0.5 else -var
                assumptions.append(lit)
        solver, ok = load_clauses(clauses, num_vars)
        if not ok:
            return
        if solver.solve(assumptions) is UNSAT:
            core = solver.unsat_core()
            if core:
                self.assert_core_sound(clauses, num_vars, assumptions, core)
                minimized = solver.minimize_core(core)
                self.assert_core_sound(clauses, num_vars, assumptions, minimized)
            else:
                # Empty core: the clause set itself must be UNSAT.
                assert brute_force_sat(num_vars, clauses) is False


class TestTrailReuse:
    """Trail reuse is invisible except in the statistics."""

    def shared_prefix_queries(self, num_vars):
        prefix = [v for v in range(1, num_vars + 1)]
        queries = []
        for i in range(num_vars):
            queries.append(prefix[:i] + [-prefix[i]])
            queries.append(prefix[: i + 1])
        return queries

    def test_matches_no_reuse_solver(self):
        rng = random.Random(7)
        for round_no in range(30):
            num_vars = rng.randint(3, 8)
            clauses = random_instance(rng, num_vars, rng.randint(2, 20))
            with_reuse, ok1 = load_clauses(clauses, num_vars, trail_reuse=True)
            without, ok2 = load_clauses(clauses, num_vars, trail_reuse=False)
            assert ok1 == ok2
            if not ok1:
                continue
            for query in self.shared_prefix_queries(num_vars):
                expected = brute_force_sat(
                    num_vars, clauses + [[lit] for lit in query]
                )
                assert (with_reuse.solve(query) is SAT) == expected
                assert (without.solve(query) is SAT) == expected

    def test_trail_actually_reused(self):
        solver, v = make_solver(12)
        for i in range(11):
            solver.add_clause([-v[i], v[i + 1]])
        prefix = [v[0], v[2], v[4]]
        assert solver.solve(prefix + [v[6]]) is SAT
        assert solver.solve(prefix + [v[8]]) is SAT
        assert solver.statistics["trail_reused_lits"] > 0

    def test_no_reuse_when_disabled(self):
        solver = SatSolver(trail_reuse=False)
        v = [solver.new_var() for _ in range(6)]
        for i in range(5):
            solver.add_clause([-v[i], v[i + 1]])
        assert solver.solve([v[0], v[1]]) is SAT
        assert solver.solve([v[0], v[2]]) is SAT
        assert solver.statistics["trail_reused_lits"] == 0

    def test_add_clause_cancels_standing_trail(self):
        solver, (a, b, c) = make_solver(3)
        solver.add_clause([a, b])
        assert solver.solve([a, c]) is SAT
        # The trail is still standing; adding a clause must fall back
        # to level 0 and stay sound.
        solver.add_clause([-c])
        assert solver.solve([a, c]) is UNSAT
        assert solver.solve([a]) is SAT
        assert solver.value(c) is False

    def test_flipped_prefix_invalidates_reuse(self):
        solver, (a, b) = make_solver(2)
        solver.add_clause([-a, b])
        assert solver.solve([a, b]) is SAT
        assert solver.solve([-a]) is SAT
        assert solver.value(a) is False


class LegacyAnalyzeSolver(SatSolver):
    """SatSolver with the pre-PR4 minimization (O(n) literal scan).

    Differential oracle for the ``_analyze`` satellite: the set-based
    membership test must reproduce this byte-for-byte — same learned
    clauses, same propagation/decision/conflict counts.
    """

    def _analyze(self, conflict):
        def seen_lit(var, learned):
            return any(abs(lit) == var for lit in learned)

        learned = [0]
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        clause = conflict
        current_level = self._decision_level()
        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 1 if lit != 0 else 0
            for q in clause.lits[start:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._reason[var]
            if clause is not None and clause.lits[0] != lit:
                pos = clause.lits.index(lit)
                clause.lits[0], clause.lits[pos] = clause.lits[pos], clause.lits[0]
        learned[0] = -lit
        minimized = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason is None:
                minimized.append(q)
                continue
            redundant = all(
                seen_lit(abs(r), learned) or self._level[abs(r)] == 0
                for r in reason.lits[1:]
            )
            if not redundant:
                minimized.append(q)
        learned = minimized
        if len(learned) == 1:
            return learned, 0
        max_index = 1
        max_level = self._level[abs(learned[1])]
        for i in range(2, len(learned)):
            lvl = self._level[abs(learned[i])]
            if lvl > max_level:
                max_level = lvl
                max_index = i
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, max_level


def php_clauses(pigeons, holes):
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses, pigeons * holes


class TestAnalyzeDifferential:
    """The set-based clause minimization is a pure speedup: identical
    learned clauses and search trajectory as the linear-scan original."""

    def run_both(self, clauses, num_vars, assumptions=()):
        results = []
        for cls in (SatSolver, LegacyAnalyzeSolver):
            solver = cls()
            for _ in range(num_vars):
                solver.new_var()
            ok = True
            for clause in clauses:
                ok = solver.add_clause(clause) and ok
            answer = solver.solve(assumptions) if ok else UNSAT
            results.append(
                (
                    answer,
                    [list(c.lits) for c in solver._learned],
                    solver.statistics["conflicts"],
                    solver.statistics["decisions"],
                    solver.statistics["propagations"],
                )
            )
        return results

    @pytest.mark.parametrize("pigeons,holes", [(4, 3), (5, 4)])
    def test_php_identical_trajectory(self, pigeons, holes):
        clauses, num_vars = php_clauses(pigeons, holes)
        new, legacy = self.run_both(clauses, num_vars)
        assert new == legacy

    def test_random_instances_identical_trajectory(self):
        rng = random.Random(42)
        for _ in range(40):
            num_vars = rng.randint(4, 10)
            clauses = random_instance(rng, num_vars, rng.randint(5, 40))
            assumptions = [
                rng.randint(1, num_vars) * rng.choice((1, -1))
                for _ in range(rng.randint(0, 3))
            ]
            new, legacy = self.run_both(clauses, num_vars, assumptions)
            assert new == legacy


class TestLbdManagement:
    def test_learned_clauses_carry_lbd(self):
        clauses, num_vars = php_clauses(5, 4)
        solver, ok = load_clauses(clauses, num_vars)
        assert ok
        assert solver.solve() is UNSAT
        assert solver._learned, "PHP must learn clauses"
        assert all(c.lbd >= 1 for c in solver._learned)

    def test_reduce_db_spares_glue_and_binary_clauses(self):
        solver, v = make_solver(10)

        def learned(lits, lbd):
            clause = _Clause(list(lits), learned=True, lbd=lbd)
            solver._learned.append(clause)
            solver._watches[solver._widx(lits[0])].append(clause)
            solver._watches[solver._widx(lits[1])].append(clause)
            return clause

        glue = learned([v[0], v[1], v[2]], _GLUE_LBD)
        binary = learned([v[3], v[4]], 9)
        locals_ = [
            learned([v[i], v[(i + 1) % 10], v[(i + 2) % 10]], 3 + i)
            for i in range(6)
        ]
        solver._max_learned = 2
        solver._reduce_db()
        kept = {id(c) for c in solver._learned}
        assert id(glue) in kept
        assert id(binary) in kept
        assert solver.statistics["learned_deleted"] == len(locals_) // 2
        # Highest-LBD (most "local") clauses go first.
        dropped_lbds = [c.lbd for c in locals_ if id(c) not in kept]
        kept_lbds = [c.lbd for c in locals_ if id(c) in kept]
        assert min(dropped_lbds) > max(kept_lbds)
        # Dropped clauses must also vanish from the watch lists.
        for watch_list in solver._watches:
            assert all(id(c) in kept for c in watch_list)
