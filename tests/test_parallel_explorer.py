"""Tests for multi-process exploration (core.parallel).

The load-bearing property: the flip-expansion rules fully determine the
reachable (assignment, bound) tree, so parallel exploration must
discover exactly the serial path set — only completion order may vary.
"""

import multiprocessing

import pytest

from repro.asm import assemble
from repro.core import BinSymExecutor, Explorer, ProcessPoolExplorer
from repro.core.parallel import MAX_ITEM_FAILURES, default_jobs
from repro.eval.engines import make_engine
from repro.eval.query_stats import RecordingSolver
from repro.eval.workloads import WORKLOADS
from repro.spec import rv32im

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")

# The quickstart example's PIN check: 5 paths, one per matched prefix.
PIN_CHECK = """\
_start:
    li a0, 0x30000
    li a1, 4
    li a7, 1337
    ecall
    li s0, 0x30000
    la s1, secret
    li t0, 0
check:
    li t1, 4
    beq t0, t1, unlocked
    add t2, s0, t0
    lbu t3, 0(t2)
    add t2, s1, t0
    lbu t4, 0(t2)
    bne t3, t4, locked
    addi t0, t0, 1
    j check
unlocked:
    li a0, 1
    li a7, 93
    ecall
locked:
    li a0, 0
    li a7, 93
    ecall
.data
secret:
    .byte 0x13, 0x37, 0x42, 0x99
"""

FAILING = """\
_start:
    li a0, 0x30000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x30000
    lbu t1, 0(t0)
    li t2, 7
    beq t1, t2, lucky
    li a0, 0
    li a7, 93
    ecall
lucky:
    ebreak
"""


def build_executor(source):
    return BinSymExecutor(rv32im(), assemble(source))


@needs_fork
class TestParallelMatchesSerial:
    def compare(self, executor_factory, jobs=2, **kwargs):
        serial = Explorer(executor_factory(), **kwargs).explore()
        parallel = Explorer(executor_factory(), jobs=jobs, **kwargs).explore()
        assert parallel.workers == jobs
        assert parallel.num_paths == serial.num_paths
        assert parallel.path_set() == serial.path_set()
        return serial, parallel

    def test_quickstart_pin_check(self):
        serial, parallel = self.compare(lambda: build_executor(PIN_CHECK))
        assert serial.num_paths == 5
        assert parallel.exit_codes == {0, 1}

    def test_base64_workload(self):
        image = WORKLOADS["base64-encode"].image(1)
        expected = WORKLOADS["base64-encode"].expected_paths(1)
        serial, parallel = self.compare(
            lambda: BinSymExecutor(rv32im(), image)
        )
        assert parallel.num_paths == expected

    def test_assertion_failures_found(self):
        _, parallel = self.compare(lambda: build_executor(FAILING))
        assert len(parallel.assertion_failures) == 1

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "random", "coverage"])
    def test_all_strategies(self, strategy):
        self.compare(lambda: build_executor(PIN_CHECK), strategy=strategy, seed=3)

    def test_baseline_engine_gets_parallelism(self):
        image = WORKLOADS["bubble-sort"].image(3)
        isa = rv32im()
        self.compare(lambda: make_engine("binsec", isa, image))


@needs_fork
class TestParallelStats:
    def test_worker_stats_aggregate_exactly(self):
        serial = Explorer(build_executor(PIN_CHECK), use_cache=False).explore()
        parallel = Explorer(
            build_executor(PIN_CHECK), jobs=2, use_cache=False
        ).explore()
        # Same exploration tree => same total work, regardless of which
        # worker performed it.
        assert parallel.num_queries == serial.num_queries
        assert parallel.sat_checks == serial.sat_checks
        assert parallel.unsat_checks == serial.unsat_checks
        assert parallel.total_instructions == serial.total_instructions
        assert parallel.solver_time > 0.0
        assert parallel.wall_time > 0.0

    def test_max_paths_truncates(self):
        result = Explorer(build_executor(PIN_CHECK), jobs=2, max_paths=2).explore()
        assert result.num_paths <= 2
        assert result.truncated

    def test_summary_mentions_workers(self):
        result = Explorer(build_executor(FAILING), jobs=2).explore()
        assert "[2 workers]" in result.summary()


class TestFallbacks:
    def test_jobs_one_stays_in_process(self):
        result = Explorer(build_executor(FAILING), jobs=1).explore()
        assert result.workers == 1
        assert result.num_paths == 2

    def test_pool_explorer_fallback_path(self):
        result = ProcessPoolExplorer(build_executor(FAILING), jobs=1).explore()
        assert result.workers == 1
        assert result.num_paths == 2

    def test_explicit_solver_pins_serial(self):
        solver = RecordingSolver()
        result = Explorer(build_executor(FAILING), solver=solver, jobs=4).explore()
        assert result.workers == 1
        assert solver.stats.queries == result.num_queries
        assert result.num_paths == 2

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


@needs_fork
class TestWorkerFailure:
    def test_worker_exception_propagates(self):
        class ExplodingExecutor:
            def execute(self, assignment):
                raise RuntimeError("boom")

            def input_variables(self):
                return []

        with pytest.raises(RuntimeError, match="worker failed"):
            ProcessPoolExplorer(ExplodingExecutor(), jobs=2).explore()

    def test_hard_killed_worker_recovered(self):
        """A worker that dies without replying must neither hang nor
        crash the campaign: the supervisor retries its item, and — since
        this executor dies on *every* run — abandons it after the retry
        budget as an explicitly counted incomplete path."""
        import os

        class DyingExecutor:
            def execute(self, assignment):
                os._exit(3)

            def input_variables(self):
                return []

        result = ProcessPoolExplorer(DyingExecutor(), jobs=2).explore()
        assert result.num_paths == 0
        assert result.incomplete_paths == 1
        assert result.worker_deaths == MAX_ITEM_FAILURES
        assert "incomplete" in result.summary()

    def test_worker_death_mid_campaign_recovers_full_path_set(self):
        """Killing a worker once, mid-campaign, loses no paths: the held
        item is requeued and a respawned worker completes it."""
        import os

        from repro.core import BinSymExecutor
        from repro.spec import rv32im

        isa = rv32im()

        class KillOnceExecutor(BinSymExecutor):
            def execute(self, assignment, capture_from=None, resume=None):
                flag = os.environ.get("_TEST_KILL_ONCE")
                if flag and not os.path.exists(flag):
                    with open(flag, "w") as handle:
                        handle.write("dead")
                    os._exit(9)
                return super().execute(
                    assignment, capture_from=capture_from, resume=resume
                )

        import tempfile

        baseline = Explorer(build_executor(PIN_CHECK), jobs=1).explore()
        with tempfile.TemporaryDirectory() as tmp:
            os.environ["_TEST_KILL_ONCE"] = os.path.join(tmp, "killed")
            try:
                executor = KillOnceExecutor(isa, assemble(PIN_CHECK, isa=isa))
                result = ProcessPoolExplorer(executor, jobs=2).explore()
            finally:
                del os.environ["_TEST_KILL_ONCE"]
        assert result.path_set() == baseline.path_set()
        assert result.worker_deaths == 1
        assert result.incomplete_paths == 0


@needs_fork
class TestQueryDigest:
    def test_digest_stable_across_fork(self):
        """Terms interned *after* the fork must digest identically in
        parent and child — the property cross-worker dedup relies on."""
        import multiprocessing as mp

        from repro.core.scheduler import query_digest
        from repro.smt import terms as T

        def fresh_query():
            x = T.bv_var("digest_probe", 16)
            return [T.ult(x, T.bv(0x1234, 16)), T.eq(x, T.bv(7, 16))]

        context = mp.get_context("fork")
        parent_conn, child_conn = context.Pipe()

        def child_main(conn):
            conn.send(query_digest(fresh_query()))
            conn.close()

        process = context.Process(target=child_main, args=(child_conn,))
        process.start()
        child_digest = parent_conn.recv()
        process.join(timeout=10)
        assert child_digest == query_digest(fresh_query())

    def test_digest_distinguishes_order_and_structure(self):
        from repro.core.scheduler import query_digest
        from repro.smt import terms as T

        x = T.bv_var("digest_probe2", 8)
        a, b = T.ult(x, T.bv(3, 8)), T.eq(x, T.bv(1, 8))
        assert query_digest([a, b]) != query_digest([b, a])
        assert query_digest([a]) != query_digest([b])
        assert query_digest([a, b]) == query_digest([a, b])
