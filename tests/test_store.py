"""Persistent cross-run artifact store (PR 10: ``--store DIR``).

The contract this file pins: a warm start from an on-disk store is
**bit-identical** to a cold run (same path set, conserved query
attribution) and strictly cheaper (fewer SAT-core solves); every
artifact is verified on load (wrapper digest, format version, semantic
re-check) so torn writes, bit flips and version skew are quarantined
or rejected — never served; I/O failure disables the tier for the run
and wiping the store mid-campaign degrades to cold behaviour.  Store
keys are content-addressed (:mod:`repro.smt.digest`), so they survive
interner resets and process restarts.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

import pytest

from repro.core import Explorer
from repro.core.store import (
    FORMAT_VERSION,
    ArtifactStore,
    read_wrapper,
    state_digest,
    validate_query_state,
)
from repro.smt import terms as T
from repro.smt.digest import store_key, term_digest
from repro.smt.solver import Model, Result
from tests.test_faults import build_executor, needs_fork


def bvv(name, width=8):
    return T.bv_var(name, width)


def sat_query():
    x = bvv("x")
    conds = [T.ult(x, T.bv(10, 8)), T.ugt(x, T.bv(3, 8))]
    return frozenset(conds), conds, Model({x: 5})


def unsat_query():
    x = bvv("y")
    conds = [T.ult(x, T.bv(4, 8)), T.ugt(x, T.bv(9, 8))]
    return frozenset(conds), conds


class TestStoreRoundTrip:
    def test_sat_round_trip(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.SAT, model=model)
        assert store.stores == 1
        warm = store.load_query(key, conds)
        assert warm is not None
        verdict, warm_model, core = warm
        assert verdict is Result.SAT and core is None
        assert warm_model[bvv("x")] == 5
        assert store.hits == 1 and store.quarantines == 0

    def test_unsat_round_trip_returns_core(self, tmp_path):
        key, conds = unsat_query()
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.UNSAT, core=key)
        warm = store.load_query(key, conds)
        assert warm is not None
        verdict, model, core = warm
        assert verdict is Result.UNSAT and model is None
        assert core == key

    def test_missing_entry_is_a_silent_miss(self, tmp_path):
        key, conds, _ = sat_query()
        store = ArtifactStore(str(tmp_path))
        assert store.load_query(key, conds) is None
        assert store.quarantines == 0 and not store.disabled

    def test_keys_survive_interner_reset(self, tmp_path):
        """The restart-stability claim at its smallest: the same
        conditions, re-interned from scratch, address the same file."""
        key, _, model = sat_query()
        name = store_key(key)
        ArtifactStore(str(tmp_path)).save_query(key, Result.SAT, model=model)
        T.reset_interner()
        key2, conds2, _ = sat_query()
        assert store_key(key2) == name
        warm = ArtifactStore(str(tmp_path)).load_query(key2, conds2)
        assert warm is not None and warm[0] is Result.SAT

    def test_first_writer_wins(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.SAT, model=model)
        store.save_query(key, Result.SAT, model=model)
        assert store.stores == 1  # second write skipped, not re-written


class TestVerificationOnLoad:
    def _entry_path(self, store, key):
        return os.path.join(store.root, "queries", store_key(key) + ".json")

    def test_truncated_file_is_quarantined(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.SAT, model=model)
        path = self._entry_path(store, key)
        with open(path, "r+") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert store.load_query(key, conds) is None
        assert store.quarantines == 1
        assert os.path.exists(path + ".quarantined")
        assert not os.path.exists(path)
        # The quarantined entry reads as a miss forever after.
        assert store.load_query(key, conds) is None
        assert store.quarantines == 1

    def test_bit_flip_is_quarantined(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.set_corruptor(lambda kind, ordinal: kind == "store")
        store.save_query(key, Result.SAT, model=model)
        store.set_corruptor(None)
        assert store.load_query(key, conds) is None
        assert store.quarantines == 1

    def test_semantic_forgery_with_refreshed_digest_is_quarantined(
        self, tmp_path
    ):
        """A forged model whose wrapper digest was recomputed passes
        the structural checks; the semantic re-evaluation catches it."""
        x = bvv("x")
        conds = [T.eq(x, T.bv(3, 8))]
        key = frozenset(conds)
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.SAT, model=Model({x: 3}))
        path = self._entry_path(store, key)
        state = read_wrapper(path)
        state["model"] = [["x", 8, 4]]  # x=4 cannot satisfy x==3
        body = json.dumps({"digest": state_digest(state), "state": state})
        os.replace(path, path + ".bak")
        with open(path, "w") as handle:
            handle.write(body)
        assert store.load_query(key, conds) is None
        assert store.quarantines == 1

    def test_version_skew_is_rejected_but_left_in_place(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.SAT, model=model)
        path = self._entry_path(store, key)
        state = read_wrapper(path)
        state["version"] = FORMAT_VERSION + 1
        body = json.dumps({"digest": state_digest(state), "state": state})
        with open(path, "w") as handle:
            handle.write(body)
        assert store.load_query(key, conds) is None
        assert store.skews == 1 and store.quarantines == 0
        # Skewed files belong to another format generation: left for
        # that generation (or fsck), never renamed.
        assert os.path.exists(path)

    def test_torn_write_hook_quarantines_on_next_read(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.set_fault_hook(lambda op, ordinal: "torn" if op == "write" else None)
        store.save_query(key, Result.SAT, model=model)
        store.set_fault_hook(None)
        assert store.load_query(key, conds) is None
        assert store.quarantines == 1

    def test_iofail_disables_the_tier_softly(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.set_fault_hook(lambda op, ordinal: "iofail")
        store.save_query(key, Result.SAT, model=model)
        assert store.disabled
        assert store.statistics["store_disabled"] == 1
        # Every later operation is a total no-op, not an error.
        store.set_fault_hook(None)
        store.save_query(key, Result.SAT, model=model)
        assert store.load_query(key, conds) is None
        assert store.stores == 0

    def test_wiped_store_reads_as_cold(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.SAT, model=model)
        shutil.rmtree(str(tmp_path))
        assert store.load_query(key, conds) is None
        assert store.quarantines == 0

    def test_validate_rejects_foreign_key_name(self, tmp_path):
        key, conds, model = sat_query()
        store = ArtifactStore(str(tmp_path))
        store.save_query(key, Result.SAT, model=model)
        state = read_wrapper(self._entry_path(store, key))
        with pytest.raises(ValueError):
            validate_query_state(state, name="0" * 32)


class TestWarmExploration:
    """Cold run writes the store; warm run re-reads it bit-identically."""

    def _explore(self, store_dir, **kwargs):
        return Explorer(
            build_executor(), store_dir=store_dir, **kwargs
        ).explore()

    def test_warm_run_is_bit_identical_and_cheaper(self):
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as tmp:
            cold = self._explore(tmp)
            assert cold.path_set() == baseline.path_set()
            cold_solves = cold.solver_stats.get("sat_core_solves", 0)
            assert cold_solves > 0
            # Fresh interner = the next process of a restart: content
            # digests must re-address every artifact the cold run wrote.
            T.reset_interner()
            warm = self._explore(tmp)
        assert warm.path_set() == baseline.path_set()
        assert warm.store_hits > 0
        assert warm.store_quarantines == 0 and warm.store_disabled == 0
        assert warm.solver_stats.get("sat_core_solves", 0) < cold_solves
        # Attribution conservation: a warm hit is a cache hit, so the
        # total answered work is identical between cold and warm.
        def attribution(result):
            return (
                result.num_queries
                + result.cache_hits
                + result.fast_path_answers
                + result.pruned_queries
                + result.unknown_queries
            )

        assert attribution(warm) == attribution(cold)

    @needs_fork
    def test_warm_run_with_pool(self):
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as tmp:
            cold = self._explore(tmp, jobs=2)
            assert cold.path_set() == baseline.path_set()
            T.reset_interner()
            warm = self._explore(tmp, jobs=2)
        assert warm.path_set() == baseline.path_set()
        assert warm.store_hits > 0
        assert warm.store_quarantines == 0 and warm.store_disabled == 0

    def test_summary_reports_store_section(self):
        with tempfile.TemporaryDirectory() as tmp:
            cold = self._explore(tmp)
            T.reset_interner()
            warm = self._explore(tmp)
        assert "store:" in warm.summary()
        assert "store:" not in Explorer(build_executor()).explore().summary()
        assert cold.store_hits == 0

    def test_true_cold_process_warm_start(self):
        """The store written by a *separate OS process* warms this one:
        no shared interner, no shared memo, only the directory."""
        with tempfile.TemporaryDirectory() as tmp:
            script = (
                "import sys; sys.path.insert(0, {src!r}); "
                "sys.path.insert(0, {root!r}); "
                "from repro.core import Explorer; "
                "from tests.test_faults import build_executor; "
                "r = Explorer(build_executor(), store_dir={tmp!r}).explore(); "
                "print(len(r.path_set()))"
            ).format(
                src=os.path.join(os.path.dirname(__file__), "..", "src"),
                root=os.path.join(os.path.dirname(__file__), ".."),
                tmp=tmp,
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            )
            assert int(proc.stdout.strip()) > 0
            baseline = Explorer(build_executor()).explore()
            warm = self._explore(tmp)
        assert warm.path_set() == baseline.path_set()
        assert warm.store_hits > 0
        assert warm.store_quarantines == 0


class TestCheckpointTimesStore:
    """Satellite: crash-safe checkpoints and the warm store compose."""

    def test_resume_with_warm_store_completes_cold_path_set(self):
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as ckpt, \
                tempfile.TemporaryDirectory() as store:
            # Populate the store with a full cold campaign first.
            cold = Explorer(build_executor(), store_dir=store).explore()
            assert cold.path_set() == baseline.path_set()
            T.reset_interner()
            cut = Explorer(
                build_executor(),
                store_dir=store,
                checkpoint_dir=ckpt,
                deadline=0.0,
            ).explore()
            assert cut.deadline_expired
            resumed = Explorer(
                build_executor(),
                store_dir=store,
                checkpoint_dir=ckpt,
                resume=True,
            ).explore()
        assert resumed.path_set() == baseline.path_set()
        assert resumed.incomplete_paths == 0
        assert cut.store_hits + resumed.store_hits > 0
        assert resumed.store_quarantines == 0 and resumed.store_disabled == 0

    @needs_fork
    def test_resume_with_warm_store_and_pool(self):
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as ckpt, \
                tempfile.TemporaryDirectory() as store:
            cold = Explorer(build_executor(), store_dir=store).explore()
            assert cold.path_set() == baseline.path_set()
            T.reset_interner()
            cut = Explorer(
                build_executor(),
                jobs=4,
                store_dir=store,
                checkpoint_dir=ckpt,
                deadline=0.0,
            ).explore()
            assert cut.deadline_expired
            resumed = Explorer(
                build_executor(),
                jobs=4,
                store_dir=store,
                checkpoint_dir=ckpt,
                resume=True,
            ).explore()
        assert resumed.path_set() == baseline.path_set()
        assert resumed.incomplete_paths == 0
        assert resumed.store_quarantines == 0 and resumed.store_disabled == 0


class TestCertificatePersistence:
    def test_certify_run_persists_and_reloads_certificates(self):
        from repro.smt.preprocess import PreprocessConfig

        with tempfile.TemporaryDirectory() as tmp:
            result = Explorer(
                build_executor(),
                store_dir=tmp,
                preprocess=PreprocessConfig(certify=True),
            ).explore()
            assert result.certificates and not result.certificate_failures
            store = ArtifactStore(tmp, certify=True)
            certs = store.load_certificates()
        assert len(certs) == len(result.certificates)

    def test_certificate_state_round_trip(self):
        from repro.core.certificates import (
            certificate_from_state,
            certificate_to_state,
        )
        from repro.smt.preprocess import PreprocessConfig

        result = Explorer(
            build_executor(), preprocess=PreprocessConfig(certify=True)
        ).explore()
        for cert in result.certificates:
            state = certificate_to_state(cert)
            json.loads(json.dumps(state))  # JSON-stable
            assert certificate_from_state(state) == cert


class TestDigestStability:
    def test_term_digest_survives_interner_reset(self):
        before = term_digest(T.ult(bvv("x"), T.bv(10, 8)))
        T.reset_interner()
        after = term_digest(T.ult(bvv("x"), T.bv(10, 8)))
        assert before == after

    def test_store_key_ignores_order_and_duplicates(self):
        x = bvv("x")
        a, b = T.ult(x, T.bv(10, 8)), T.ugt(x, T.bv(3, 8))
        assert store_key(frozenset([a, b])) == store_key(frozenset([b, a]))
        assert store_key([a, b, a]) == store_key([a, b])
        assert store_key([a]) != store_key([b])
