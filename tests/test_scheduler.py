"""Tests for the exploration work-queue layer (core.scheduler)."""

import pytest

from repro.core.scheduler import (
    Frontier,
    RunStats,
    WorkItem,
    deserialize_assignment,
    serialize_assignment,
)
from repro.core.state import InputAssignment
from repro.core.strategy import STRATEGIES, CoverageGuided, make_strategy
from repro.smt import terms as T


def items(count):
    return [WorkItem(InputAssignment(), bound=i, novelty=i % 3) for i in range(count)]


class TestFrontier:
    def test_dfs_pops_lifo(self):
        frontier = Frontier("dfs")
        batch = items(5)
        for item in batch:
            frontier.push(item)
        assert [frontier.pop() for _ in range(5)] == batch[::-1]

    def test_bfs_pops_fifo(self):
        frontier = Frontier("bfs")
        batch = items(5)
        for item in batch:
            frontier.push(item)
        assert [frontier.pop() for _ in range(5)] == batch

    def test_accounting(self):
        frontier = Frontier("dfs")
        for item in items(4):
            frontier.push(item)
        frontier.pop()
        frontier.pop()
        assert frontier.pushed == 4
        assert frontier.popped == 2
        assert frontier.peak == 4
        assert len(frontier) == 2
        assert bool(frontier)

    def test_accepts_strategy_instance(self):
        frontier = Frontier(CoverageGuided())
        frontier.push(WorkItem(InputAssignment(), 0))
        assert len(frontier) == 1


class TestStrategyDeterminism:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_pop_order_is_deterministic_per_seed(self, name):
        def pop_order(seed):
            frontier = Frontier(name, seed=seed)
            batch = items(12)
            for item in batch:
                frontier.push(item)
            return [batch.index(frontier.pop()) for _ in range(12)]

        assert pop_order(7) == pop_order(7)

    def test_random_seed_changes_order(self):
        def pop_order(seed):
            strategy = make_strategy("random", seed)
            batch = items(16)
            for item in batch:
                strategy.push(item)
            return [batch.index(strategy.pop()) for _ in range(16)]

        orders = {tuple(pop_order(seed)) for seed in range(6)}
        assert len(orders) > 1  # astronomically unlikely to collide

    def test_coverage_prefers_novelty_then_fifo(self):
        strategy = make_strategy("coverage")
        low_a = WorkItem(InputAssignment(), 0, novelty=1)
        high = WorkItem(InputAssignment(), 1, novelty=9)
        low_b = WorkItem(InputAssignment(), 2, novelty=1)
        for item in (low_a, high, low_b):
            strategy.push(item)
        assert strategy.pop() is high
        assert strategy.pop() is low_a  # FIFO among equal novelty
        assert strategy.pop() is low_b

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("astar")


class TestRunStats:
    def test_merge_accumulates(self):
        a = RunStats(sat_checks=2, unsat_checks=1, cache_hits=3,
                     pruned_queries=1, solver_time=0.5, covered_pcs={4, 8})
        b = RunStats(sat_checks=1, unsat_checks=4, cache_hits=0,
                     pruned_queries=2, solver_time=0.25, covered_pcs={8, 12})
        a.merge(b)
        assert (a.sat_checks, a.unsat_checks) == (3, 5)
        assert a.cache_hits == 3
        assert a.pruned_queries == 3
        assert a.solver_time == pytest.approx(0.75)
        assert a.covered_pcs == {4, 8, 12}


class TestAssignmentSerialization:
    def test_roundtrip_reinterns_variables(self):
        x = T.bv_var("in_0", 8)
        y = T.bv_var("reg_10", 32)
        flag = T.bool_var("flag")
        assignment = InputAssignment({x: 0x41, y: 0xDEADBEEF, flag: 1})
        payload = serialize_assignment(assignment)
        restored = deserialize_assignment(payload)
        # Interned variables: identical term objects, identical values.
        assert restored.values == {x: 0x41, y: 0xDEADBEEF, flag: 1}

    def test_payload_is_plain_data(self):
        import pickle

        x = T.bv_var("in_0", 8)
        payload = serialize_assignment(InputAssignment({x: 7}))
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_empty_assignment(self):
        assert deserialize_assignment(serialize_assignment(InputAssignment())).values == {}
