"""DRAT proof checking: certification on random CNF, rejection on tampering.

The checker's value is *independence*: it re-derives every learned
clause by reverse unit propagation over plain occurrence lists, sharing
no code with the solver's two-watched-literal loop.  These tests drive
the full chain — CDCL with ``proof_log=True`` → :mod:`repro.smt.drat` —
over random instances, then tamper with logs in ways that are
*guaranteed* invalid (a mutation that merely weakens a clause can leave
a proof valid, so the fuzz uses fresh-variable mutations that can never
be derivable from the inputs).
"""

import random

import pytest

from repro.smt import drat
from repro.smt.sat import SAT, UNSAT, SatSolver


def random_instance(rng, num_vars, num_clauses, max_width=3):
    return [
        [
            rng.randint(1, num_vars) * rng.choice((1, -1))
            for _ in range(rng.randint(1, max_width))
        ]
        for _ in range(num_clauses)
    ]


def solve_logged(clauses, num_vars, assumptions=()):
    solver = SatSolver(proof_log=True)
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver, solver.solve(list(assumptions))


class TestProofCertification:
    """Every answer the logging solver produces must check."""

    def test_unsat_answers_certify(self):
        rng = random.Random(7)
        certified = 0
        for _ in range(60):
            clauses = random_instance(rng, num_vars=6, num_clauses=26)
            solver, outcome = solve_logged(clauses, 6)
            if outcome is UNSAT:
                drat.check_unsat(solver.proof)
                certified += 1
        assert certified >= 10  # the schedule must actually exercise UNSAT

    def test_sat_logs_are_valid_proofs(self):
        # A SAT run's log (inputs + learned clauses + deletions) must
        # still replay: every learned clause is RUP even when the
        # search ends in a model.
        rng = random.Random(11)
        checked = 0
        for _ in range(40):
            clauses = random_instance(rng, num_vars=8, num_clauses=14)
            solver, outcome = solve_logged(clauses, 8)
            if outcome is SAT:
                checker = drat.check_proof(solver.proof)
                assert checker.events_checked == len(solver.proof)
                checked += 1
        assert checked >= 10

    def test_assumption_cores_certify(self):
        rng = random.Random(23)
        certified = 0
        for _ in range(60):
            clauses = random_instance(rng, num_vars=6, num_clauses=18)
            assumptions = sorted(
                {rng.randint(1, 6) * rng.choice((1, -1)) for _ in range(4)}
            )
            solver, outcome = solve_logged(clauses, 6, assumptions)
            if outcome is UNSAT:
                drat.check_core(solver.proof, solver.unsat_core())
                certified += 1
        assert certified >= 10

    def test_minimized_cores_certify(self):
        # minimize_core's probing solves extend the same log; the core
        # it returns must certify against the grown clause database.
        rng = random.Random(31)
        certified = 0
        for _ in range(40):
            clauses = random_instance(rng, num_vars=6, num_clauses=14)
            assumptions = sorted(
                {rng.randint(1, 6) * rng.choice((1, -1)) for _ in range(5)}
            )
            solver, outcome = solve_logged(clauses, 6, assumptions)
            if outcome is UNSAT:
                core = solver.minimize_core(solver.unsat_core(), budget=4)
                drat.check_core(solver.proof, core)
                certified += 1
        assert certified >= 5

    def test_level_zero_conflict_certifies(self):
        solver, outcome = solve_logged([[1], [-1]], 1)
        assert outcome is UNSAT
        drat.check_unsat(solver.proof)

    def test_partial_core_is_rejected(self):
        # x and -x are jointly contradictory; either alone is not, so a
        # "core" naming only one literal must fail certification.
        solver, outcome = solve_logged([[1, 2]], 2, assumptions=[1, -1])
        assert outcome is UNSAT
        checker = drat.check_proof(solver.proof)
        checker.check_core(solver.unsat_core())
        with pytest.raises(drat.ProofError):
            checker.check_core([1])


def php_proof(holes):
    """Proof log of a pigeonhole instance (UNSAT, propagation-free)."""

    def var(pigeon, hole):
        return pigeon * holes + hole + 1

    pigeons = holes + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    solver, outcome = solve_logged(clauses, pigeons * holes)
    assert outcome is UNSAT
    return list(solver.proof)


def unsat_proofs(count, seed, num_vars=6, num_clauses=26):
    """Yield proof logs of random UNSAT instances."""
    rng = random.Random(seed)
    produced = 0
    while produced < count:
        clauses = random_instance(rng, num_vars, num_clauses)
        solver, outcome = solve_logged(clauses, num_vars)
        if outcome is UNSAT:
            produced += 1
            yield list(solver.proof), rng


class TestTamperRejection:
    """Guaranteed-invalid mutations must always be rejected."""

    FRESH = 10_000  # a variable no random instance ever mentions

    def test_bogus_deletion_rejected_everywhere(self):
        # Deleting a clause over a fresh variable can never name a live
        # clause, so inserting it at *any* position must be rejected.
        for proof, rng in unsat_proofs(10, seed=3):
            position = rng.randrange(len(proof) + 1)
            tampered = (
                proof[:position] + [("d", (self.FRESH,))] + proof[position:]
            )
            with pytest.raises(drat.ProofError):
                drat.check_proof(tampered)

    def test_bogus_addition_rejected(self):
        # A fresh-variable unit is never RUP over clauses that do not
        # mention the variable — unless the prefix already implies the
        # empty clause, which the precondition filters out.  Pigeonhole
        # formulas guarantee coverage: UNSAT, yet clause-only (no
        # units), so unit propagation alone can never conflict and the
        # precondition always holds.
        rejected = 0
        proofs = [php_proof(holes) for holes in (2, 3, 4)]
        proofs.extend(proof for proof, _rng in unsat_proofs(10, seed=5))
        for proof in proofs:
            position = next(
                i for i, (tag, _) in enumerate(proof) if tag == "a"
            )
            prefix = drat.ProofChecker()
            prefix.feed(proof[:position])
            if prefix._prop.propagates_to_conflict(()):
                continue  # inputs alone are already conflicting
            tampered = proof[:position] + [("a", (self.FRESH,))]
            with pytest.raises(drat.ProofError):
                drat.check_proof(tampered)
            rejected += 1
        assert rejected >= 3

    def test_dropped_input_clause_breaks_proof(self):
        # Removing the input clause a learned clause depends on makes
        # some later RUP step (or the final UNSAT claim) underivable.
        for proof, rng in unsat_proofs(5, seed=9):
            inputs = [i for i, (tag, _) in enumerate(proof) if tag == "i"]
            victim = rng.choice(inputs)
            tampered = proof[:victim] + proof[victim + 1 :]
            try:
                drat.check_unsat(tampered)
            except drat.ProofError:
                continue  # rejected, as desired
            # Dropping a redundant input can leave the proof valid;
            # what must NEVER happen is certifying with the removed
            # clause still claimed present — re-check determinism:
            drat.check_unsat(proof)

    def test_shrunk_log_rejected(self):
        proof, _rng = next(unsat_proofs(1, seed=13))
        checker = drat.ProofChecker()
        checker.feed(proof)
        with pytest.raises(drat.ProofError):
            checker.feed(proof[:-1])

    def test_unknown_tag_rejected(self):
        with pytest.raises(drat.ProofError):
            drat.check_proof([("x", (1,))])

    def test_double_deletion_rejected(self):
        events = [("i", (1, 2)), ("d", (1, 2)), ("d", (1, 2))]
        with pytest.raises(drat.ProofError):
            drat.check_proof(events)

    def test_empty_claim_without_derivation_rejected(self):
        # A satisfiable clause set whose log claims UNSAT must fail.
        checker = drat.check_proof([("i", (1, 2)), ("i", (-1, 2))])
        with pytest.raises(drat.ProofError):
            checker.check_unsat()
