"""Tests for the disassembler and the tracing interpreter."""

import pytest

from repro.asm import assemble
from repro.asm.disasm import Disassembler, disassemble_image, disassemble_word
from repro.asm.encoder import encode_instruction
from repro.concrete.tracer import TracingInterpreter
from repro.spec import rv32im, rv32im_zimadd
from repro.spec.opcodes import RV32I_ENCODINGS, RV32M_ENCODINGS


class TestDisassembleWord:
    CASES = [
        (0x002081B3, "add gp, ra, sp"),
        (0xFFF10093, "addi ra, sp, -1"),
        (0x00832283, "lw t0, 8(t1)"),
        (0x00532423, "sw t0, 8(t1)"),
        (0xFFFFF3B7, "lui t2, 0xfffff"),
        (0x41F5D513, "srai a0, a1, 31"),
        (0x027352B3, "divu t0, t1, t2"),
        (0x00000073, "ecall"),
        (0x00100073, "ebreak"),
        (0x0000000F, "fence"),
    ]

    @pytest.mark.parametrize("word,expected", CASES, ids=[c[1] for c in CASES])
    def test_known_words(self, word, expected):
        assert disassemble_word(word) == expected

    def test_branch_with_pc_resolves_target(self):
        image = assemble("_start:\nloop:\n nop\n beq x1, x2, loop\n")
        text = disassemble_word(
            int.from_bytes(image.segments[0].data[4:8], "little"), pc=0x10004
        )
        assert text.startswith("beq ra, sp, -4")
        assert "0x10000" in text

    def test_illegal_word_renders_as_data(self):
        assert disassemble_word(0xFFFFFFFF) == ".word 0xffffffff"

    def test_custom_instruction_with_extended_isa(self):
        isa = rv32im_zimadd()
        word = encode_instruction(isa.decoder.by_name("madd"), rd=4, rs1=1,
                                  rs2=2, rs3=3)
        assert disassemble_word(word, isa=isa) == "madd tp, ra, sp, gp"
        assert disassemble_word(word) == f".word {word:#010x}"  # base ISA


class TestRoundTrip:
    """encode -> disassemble -> parse -> encode is the identity."""

    @pytest.mark.parametrize(
        "encoding",
        [e for e in RV32I_ENCODINGS + RV32M_ENCODINGS],
        ids=lambda e: e.name,
    )
    def test_roundtrip(self, encoding):
        word = encode_instruction(
            encoding, rd=5, rs1=6, rs2=7, rs3=8,
            imm=16 if encoding.fmt in ("i", "load", "s", "b", "u", "j", "shift") else 0,
        )
        text = disassemble_word(word, pc=0x10000)
        text = text.split("#")[0].strip()  # drop resolved-target comment
        image = assemble(f"_start:\n {text}\n")
        (reencoded,) = [
            int.from_bytes(image.segments[0].data[:4], "little")
        ]
        assert reencoded == word, f"{encoding.name}: {text}"


class TestDisassembleImage:
    def test_listing_with_labels(self):
        image = assemble("_start:\n nop\nloop:\n j loop\n")
        listing = disassemble_image(image)
        assert "_start:" in listing
        assert "loop:" in listing
        assert "addi zero, zero, 0" in listing  # nop canonicalizes


class TestTracer:
    def test_trace_records_instructions(self):
        tracer = TracingInterpreter(rv32im())
        tracer.load_image(assemble("_start:\n li a0, 7\n li a7, 93\n ecall\n"))
        hart = tracer.run()
        assert hart.exit_code == 7
        assert len(tracer.trace) == 3
        assert tracer.trace[0].text == "addi a0, zero, 7"
        assert tracer.trace[0].register_writes == ((10, 7),)

    def test_trace_renders(self):
        tracer = TracingInterpreter(rv32im())
        tracer.load_image(assemble("_start:\n li a0, 1\n li a7, 93\n ecall\n"))
        tracer.run()
        text = tracer.render()
        assert "0x00010000:" in text
        assert "addi a0, zero, 1" in text

    def test_trace_entry_cap(self):
        tracer = TracingInterpreter(rv32im(), max_entries=5)
        source = "_start:\n" + " nop\n" * 20 + " li a7, 93\n li a0, 0\n ecall\n"
        tracer.load_image(assemble(source))
        tracer.run()
        assert len(tracer.trace) == 5  # capped
        assert tracer.hart.halted  # but execution continued
