"""Tests for the incremental solver facade: scopes, assumptions, models."""

import pytest

from repro.smt import terms as T
from repro.smt.evalbv import EvalError, evaluate
from repro.smt.solver import Model, Result, Solver, is_satisfiable, solve_for_model


class TestCheckBasics:
    def test_empty_is_sat(self):
        assert Solver().check() is Result.SAT

    def test_true_assertion(self):
        solver = Solver()
        solver.add(T.true())
        assert solver.check() is Result.SAT

    def test_false_assertion(self):
        solver = Solver()
        solver.add(T.false())
        assert solver.check() is Result.UNSAT

    def test_add_requires_bool(self):
        solver = Solver()
        with pytest.raises(TypeError):
            solver.add(T.bv(1, 8))

    def test_simple_equation(self):
        x = T.bv_var("x", 32)
        solver = Solver()
        solver.add(T.eq(T.add(x, T.bv(1, 32)), T.bv(0, 32)))
        assert solver.check() is Result.SAT
        assert solver.model()[x] == 0xFFFFFFFF

    def test_conflicting_equations(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.add(T.eq(x, T.bv(1, 8)))
        solver.add(T.eq(x, T.bv(2, 8)))
        assert solver.check() is Result.UNSAT


class TestAssumptions:
    def test_assumption_restricts(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.add(T.ult(x, T.bv(10, 8)))
        assert solver.check([T.eq(x, T.bv(5, 8))]) is Result.SAT
        assert solver.check([T.eq(x, T.bv(15, 8))]) is Result.UNSAT
        # Assumptions are per-query.
        assert solver.check() is Result.SAT

    def test_const_assumptions_short_circuit(self):
        solver = Solver()
        assert solver.check([T.true()]) is Result.SAT
        assert solver.check([T.false()]) is Result.UNSAT

    def test_assumption_type_error(self):
        solver = Solver()
        with pytest.raises(TypeError):
            solver.check([T.bv(1, 1)])

    def test_flip_branch_pattern(self):
        """The concolic executor's workhorse: prefix + negated branch."""
        x = T.bv_var("x", 32)
        branch1 = T.ult(x, T.bv(100, 32))
        branch2 = T.eq(T.and_(x, T.bv(1, 32)), T.bv(1, 32))
        solver = Solver()
        assert solver.check([branch1, branch2]) is Result.SAT
        model = solver.model()
        assert model[x] < 100 and model[x] & 1 == 1
        assert solver.check([branch1, T.bnot(branch2)]) is Result.SAT
        model = solver.model()
        assert model[x] < 100 and model[x] & 1 == 0


class TestScopes:
    def test_push_pop_restores(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.add(T.ult(x, T.bv(10, 8)))
        solver.push()
        solver.add(T.eq(x, T.bv(20, 8)))
        assert solver.check() is Result.UNSAT
        solver.pop()
        assert solver.check() is Result.SAT

    def test_nested_scopes(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.push()
        solver.add(T.ugt(x, T.bv(5, 8)))
        solver.push()
        solver.add(T.ult(x, T.bv(5, 8)))
        assert solver.check() is Result.UNSAT
        solver.pop()
        assert solver.check() is Result.SAT
        assert solver.model()[x] > 5
        solver.pop()
        assert solver.scope_depth == 0

    def test_model_after_pop(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.push()
        solver.add(T.eq(x, T.bv(7, 8)))
        assert solver.check() is Result.SAT
        assert solver.model()[x] == 7


class TestModel:
    def test_model_requires_sat(self):
        solver = Solver()
        solver.add(T.false())
        solver.check()
        with pytest.raises(RuntimeError):
            solver.model()

    def test_model_requires_check(self):
        with pytest.raises(RuntimeError):
            Solver().model()

    def test_unconstrained_vars_default_zero(self):
        x = T.bv_var("unseen_var", 32)
        model = Model({})
        assert model[x] == 0
        assert model.eval(T.add(x, T.bv(5, 32))) == 5

    def test_model_eval_consistency(self):
        x = T.bv_var("x", 16)
        y = T.bv_var("y", 16)
        term = T.mul(T.add(x, y), T.bv(3, 16))
        solver = Solver()
        solver.add(T.eq(term, T.bv(33, 16)))
        assert solver.check() is Result.SAT
        model = solver.model()
        assert model.eval(term) == 33

    def test_bool_var_in_model(self):
        p = T.bool_var("p")
        solver = Solver()
        solver.add(p)
        assert solver.check() is Result.SAT
        assert solver.model()[p] == 1

    def test_model_iteration(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.add(T.eq(x, T.bv(3, 8)))
        solver.check()
        model = solver.model()
        assert x in model
        assert dict(model.items())[x] == 3
        assert len(model) >= 1
        assert model.get(T.bv_var("nope", 8), 42) == 42


class TestHelpers:
    def test_is_satisfiable(self):
        x = T.bv_var("x", 8)
        assert is_satisfiable(T.eq(x, T.bv(1, 8)))
        assert not is_satisfiable(T.ne(x, x))

    def test_solve_for_model(self):
        x = T.bv_var("x", 8)
        model = solve_for_model(T.eq(T.mul(x, T.bv(3, 8)), T.bv(9, 8)))
        assert model is not None
        assert (model[x] * 3) % 256 == 9
        assert solve_for_model(T.false()) is None

    def test_statistics(self):
        x = T.bv_var("x", 8)
        solver = Solver()
        solver.add(T.eq(x, T.bv(1, 8)))
        solver.check()
        stats = solver.statistics
        assert stats["checks"] == 1
        assert stats["sat_vars"] > 0


class TestEvaluator:
    def test_unbound_variable_raises(self):
        x = T.bv_var("x", 8)
        with pytest.raises(EvalError):
            evaluate(T.add(x, T.bv(1, 8)), {})

    def test_lookup_by_term_or_name(self):
        x = T.bv_var("x", 8)
        assert evaluate(x, {x: 5}) == 5
        assert evaluate(x, {"x": 5}) == 5

    def test_value_truncation(self):
        x = T.bv_var("x", 8)
        assert evaluate(x, {"x": 0x1FF}) == 0xFF

    def test_deep_term_no_recursion_error(self):
        x = T.bv_var("x", 32)
        term = x
        for i in range(3000):
            term = T.add(term, T.bv_var(f"v{i % 7}", 32))
        env = {f"v{i}": i for i in range(7)}
        env["x"] = 1
        evaluate(term, env)  # must not raise RecursionError

    def test_bool_ops(self):
        p, q = T.bool_var("p"), T.bool_var("q")
        term = T.band(p, T.bnot(q))
        assert evaluate(term, {"p": 1, "q": 0}) == 1
        assert evaluate(term, {"p": 1, "q": 1}) == 0
