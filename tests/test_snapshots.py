"""Snapshot-resumed exploration (PR 5): differential and unit tests.

The snapshot layer must be observationally invisible: for any program,
input, search strategy and job count, exploring with snapshots on and
off must discover identical path sets with identical query attribution
— snapshots only change how much of each path is *re-executed*.  These
tests pin that equivalence over the Fig. 6 workloads (randomized over
strategies and seeds, serial and ``jobs=4``), exercise the eviction →
re-execution fallback and the capture-safety guards, and unit-test the
copy-on-write memory, the snapshot pool, the bounded digest memo and
the interval-domain UNSAT cores that ride along in this PR.
"""

import itertools
import random

import pytest

from repro.arch.memory import ByteMemory, ShadowMemory
from repro.arch.regfile import RegisterFile
from repro.asm import assemble
from repro.core import BinSymExecutor, Explorer, InputAssignment
from repro.core.scheduler import WorkItem
from repro.core.snapshots import SnapshotPool, StateSnapshot
from repro.core import scheduler
from repro.baselines.vp import VpExecutor
from repro.eval.workloads import WORKLOADS
from repro.smt import terms as T
from repro.smt.evalbv import evaluate
from repro.smt.intervals import analyze_slice
from repro.spec import rv32im

_ATTRIBUTION_KEYS = (
    "sat_checks",
    "unsat_checks",
    "cache_hits",
    "fast_path_answers",
    "sat_solves",
    "pruned_queries",
    "total_instructions",
)

_FIG6 = (
    ("bubble-sort", 4),
    ("insertion-sort", 4),
    ("base64-encode", 2),
    ("uri-parser", None),
    ("clif-parser", None),
)


def _explore(image, snapshots, engine_cls=BinSymExecutor, **kwargs):
    engine = engine_cls(rv32im(), image)
    return Explorer(engine, use_cache=True, snapshots=snapshots, **kwargs).explore()


def _attribution(result):
    return tuple(getattr(result, key) for key in _ATTRIBUTION_KEYS)


def _assignments(result):
    """Per-path input assignments in discovery order (exact identity)."""
    return [
        tuple(
            sorted(
                (var.payload, value)
                for var, value in path.assignment.values.items()
            )
        )
        for path in result.paths
    ]


# ---------------------------------------------------------------------------
# Copy-on-write memory
# ---------------------------------------------------------------------------


class TestCowMemory:
    def test_snapshot_isolated_from_later_writes(self):
        memory = ByteMemory()
        memory.write_bytes(0x1000, b"hello")
        pages = memory.snapshot_pages()
        assert memory.shared_pages == 1
        memory.write_byte(0x1001, 0xAA)  # privatizes the page
        assert memory.shared_pages == 0
        resumed = ByteMemory.adopt(pages)
        assert resumed.read_bytes(0x1000, 5) == b"hello"
        assert memory.read_byte(0x1001) == 0xAA

    def test_adopted_memory_writes_do_not_leak_back(self):
        memory = ByteMemory()
        memory.write_bytes(0x2000, b"abcd")
        twin = memory.fork()
        twin.write_byte(0x2000, ord("X"))
        assert memory.read_byte(0x2000) == ord("a")
        assert twin.read_byte(0x2000) == ord("X")
        # Unwritten pages stay physically shared.
        memory.write_bytes(0x5000, b"z")
        assert twin.read_byte(0x5000) == 0

    def test_refcounts_two_snapshots_one_release(self):
        memory = ByteMemory()
        memory.write_byte(0x3000, 1)
        first = memory.snapshot_pages()
        second = memory.snapshot_pages()
        assert memory._shared[0x3] == 2
        memory.release_pages(first)
        assert memory._shared[0x3] == 1
        memory.release_pages(second)
        assert memory.shared_pages == 0
        # With no outstanding references the write mutates in place.
        page = memory._pages[0x3]
        memory.write_byte(0x3001, 7)
        assert memory._pages[0x3] is page

    def test_release_after_privatization_is_a_noop(self):
        memory = ByteMemory()
        memory.write_byte(0x4000, 1)
        pages = memory.snapshot_pages()
        memory.write_byte(0x4000, 2)  # privatize
        memory.release_pages(pages)  # stale alias: must not underflow
        assert memory.read_byte(0x4000) == 2
        assert pages[0x4][0] == 1

    def test_bulk_write_respects_cow(self):
        memory = ByteMemory()
        memory.write_bytes(0x1000, bytes(range(16)))
        pages = memory.snapshot_pages()
        memory.write_bytes(0x1000, b"\xff" * 16)
        assert ByteMemory.adopt(pages).read_bytes(0x1000, 3) == b"\x00\x01\x02"

    def test_shadow_fork_isolated(self):
        shadow: ShadowMemory = ShadowMemory()
        var = T.bv_var("cow_shadow", 8)
        shadow.set(0x10, var)
        twin = shadow.fork()
        twin.set(0x10, None)
        twin.set(0x11, var)
        assert shadow.get(0x10) is var and shadow.get(0x11) is None

    def test_regfile_fork_isolated(self):
        regs: RegisterFile = RegisterFile(0)
        regs.write(5, 42)
        twin = regs.fork()
        twin.write(5, 7)
        assert regs.read(5) == 42 and twin.read(5) == 7

    def test_hart_fork_isolated(self):
        from repro.arch.hart import Hart

        hart: Hart = Hart(0, pc=0x1000)
        hart.regs.write(3, 9)
        hart.instret = 17
        twin = hart.fork(0)
        twin.regs.write(3, 1)
        twin.pc = 0x2000
        assert (hart.pc, hart.instret, hart.regs.read(3)) == (0x1000, 17, 9)
        assert (twin.pc, twin.instret, twin.regs.read(3)) == (0x2000, 17, 1)


# ---------------------------------------------------------------------------
# Snapshot pool
# ---------------------------------------------------------------------------


def _dummy_snapshot(n_pages=1):
    return StateSnapshot(
        pc=0,
        instret=0,
        pages={i: bytearray(4096) for i in range(n_pages)},
        shadow={},
        regs=(),
        records=(),
        stdout=b"",
        stdout_shadow=(),
        inputs_count=0,
    )


class TestSnapshotPool:
    def test_lru_eviction_by_bytes(self):
        pool = SnapshotPool(max_bytes=3 * 4096)
        handles = [pool.add(_dummy_snapshot()) for _ in range(3)]
        assert len(pool) == 3 and pool.evictions == 0
        assert pool.get(handles[0]) is not None  # touch: now most recent
        pool.add(_dummy_snapshot())  # evicts handles[1], the oldest
        assert pool.get(handles[1]) is None
        assert pool.get(handles[0]) is not None
        assert pool.evictions == 1 and pool.misses == 1
        assert pool.resident_bytes <= pool.max_bytes

    def test_oversized_snapshot_rejected(self):
        pool = SnapshotPool(max_bytes=4096)
        assert pool.add(_dummy_snapshot(n_pages=4)) is None
        assert len(pool) == 0

    def test_discard_reclassifies_hit_as_miss(self):
        pool = SnapshotPool()
        handle = pool.add(_dummy_snapshot())
        assert pool.get(handle) is not None
        assert (pool.hits, pool.misses) == (1, 0)
        pool.discard(handle)  # caller found the snapshot stale
        assert (pool.hits, pool.misses) == (0, 1)
        assert len(pool) == 0 and pool.resident_bytes == 0
        pool.discard(handle)  # double-discard is a no-op
        assert (pool.hits, pool.misses) == (0, 1)

    def test_eviction_releases_source_pages(self):
        """Evicting a snapshot hands its page refs back to the live
        capturing memory, un-marking pages nothing else protects."""
        import weakref

        memory = ByteMemory()
        memory.write_byte(0x1000, 1)
        snapshot = _dummy_snapshot()
        snapshot.pages = memory.snapshot_pages()
        snapshot.source = weakref.ref(memory)
        pool = SnapshotPool(max_bytes=2 * 4096)
        pool.add(snapshot)
        assert memory.shared_pages == 1
        pool.add(_dummy_snapshot(n_pages=2))  # evicts the first
        assert pool.evictions == 1
        assert memory.shared_pages == 0


# ---------------------------------------------------------------------------
# Bounded digest memo (satellite)
# ---------------------------------------------------------------------------


def test_digest_memo_bounded_and_stable(monkeypatch):
    from repro.smt import digest

    monkeypatch.setattr(digest, "DIGEST_MEMO_CAPACITY", 8)
    monkeypatch.setattr(digest, "_DIGEST_MEMO", {})
    variables = [T.bv_var(f"digest_lru_{i}", 32) for i in range(40)]
    terms = [T.eq(v, T.bv(i, 32)) for i, v in enumerate(variables)]
    first = [scheduler.term_digest(t) for t in terms]
    assert len(digest._DIGEST_MEMO) <= 8
    # Evicted digests recompute to the same value (pure structural hash).
    again = [scheduler.term_digest(t) for t in terms]
    assert first == again
    assert len(digest._DIGEST_MEMO) <= 8


def test_digest_memo_lru_keeps_hot_entries(monkeypatch):
    from repro.smt import digest

    monkeypatch.setattr(digest, "DIGEST_MEMO_CAPACITY", 4)
    monkeypatch.setattr(digest, "_DIGEST_MEMO", {})
    hot = T.bv_var("digest_hot", 8)
    scheduler.term_digest(hot)
    for i in range(16):
        scheduler.term_digest(T.bv_var(f"digest_cold_{i}", 8))
        scheduler.term_digest(hot)  # touch: must survive the churn
    assert hot in digest._DIGEST_MEMO


# ---------------------------------------------------------------------------
# Interval-domain UNSAT cores (satellite)
# ---------------------------------------------------------------------------


class TestIntervalCores:
    def test_single_infeasible_conjunct(self):
        x = T.bv_var("ivc_x", 8)
        filler = T.ult(T.bv_var("ivc_y", 8), T.bv(5, 8))
        infeasible = T.ult(x, T.bv(0, 8))  # var < 0 is empty
        outcome = analyze_slice([filler, infeasible])
        assert outcome.verdict is False
        assert outcome.core == [infeasible]

    def test_empty_meet_core_excludes_unrelated(self):
        x, y = T.bv_var("ivc_mx", 8), T.bv_var("ivc_my", 8)
        lo = T.ult(T.bv(10, 8), x)  # x > 10
        hi = T.ult(x, T.bv(5, 8))  # x < 5
        unrelated = T.ule(y, T.bv(100, 8))
        outcome = analyze_slice([unrelated, lo, hi])
        assert outcome.verdict is False
        assert set(outcome.core) == {lo, hi}

    def test_disequality_trim_core(self):
        x = T.bv_var("ivc_tx", 8)
        conds = [T.ule(x, T.bv(0, 8)), T.bnot(T.eq(x, T.bv(0, 8)))]
        outcome = analyze_slice(conds)
        assert outcome.verdict is False
        assert set(outcome.core) == set(conds)

    def test_box_refutation_core_excludes_unrelated(self):
        x, y = T.bv_var("ivc_bx", 8), T.bv_var("ivc_by", 8)
        bound = T.ule(x, T.bv(3, 8))
        # x + 1 < 1 is false whenever x <= 3 (no wraparound in range).
        refuted = T.ult(T.add(x, T.bv(1, 8)), T.bv(1, 8))
        unrelated = T.ule(y, T.bv(9, 8))
        outcome = analyze_slice([unrelated, bound, refuted])
        assert outcome.verdict is False
        assert refuted in outcome.core
        assert unrelated not in outcome.core

    def test_cores_sound_fuzz(self):
        """Every reported core must itself be UNSAT (brute force)."""
        rng = random.Random(20260730)
        variables = [T.bv_var(f"ivc_f{i}", 8) for i in range(3)]
        comparisons = {
            "eq": T.eq, "ult": T.ult, "ule": T.ule, "slt": T.slt, "sle": T.sle
        }

        def rand_cond():
            var = rng.choice(variables)
            const = T.bv(rng.randrange(0, 16), 8)
            op = rng.choice(sorted(comparisons) + ["neq"])
            if op == "neq":
                return T.bnot(T.eq(var, const))
            build = comparisons[op]
            return build(var, const) if rng.random() < 0.5 else build(const, var)

        refuted = 0
        for _ in range(600):
            conds = [rand_cond() for _ in range(rng.randrange(1, 6))]
            outcome = analyze_slice(conds)
            if outcome.verdict is not False:
                continue
            refuted += 1
            core = outcome.core
            assert core and set(core) <= set(conds)
            core_vars = sorted(
                {v for cond in core for v in cond.free_vars()},
                key=lambda v: str(v.payload),
            )
            satisfiable = any(
                all(evaluate(cond, dict(zip(core_vars, point))) for cond in core)
                for point in itertools.product(range(256), repeat=len(core_vars))
            )
            assert not satisfiable, (conds, core)
        assert refuted > 50  # the fuzz actually exercised the UNSAT paths

    def test_interval_core_reaches_query_cache(self):
        """An interval refutation's core feeds UNSAT subsumption."""
        from repro.smt.solver import CachingSolver, Result

        solver = CachingSolver()
        x = T.bv_var("ivc_cache_x", 8)
        contradiction = [T.ult(T.bv(10, 8), x), T.ult(x, T.bv(5, 8))]
        # Same slice (same variable), but irrelevant to the conflict:
        # the reported core must exclude it, making the minimal set
        # strictly smaller than the cache key.
        padding = T.bnot(T.eq(x, T.bv(7, 8)))
        assert solver.check(contradiction + [padding]) is Result.UNSAT
        assert solver.pipeline_stats["interval_unsat"] >= 1
        assert solver.pipeline_stats["unsat_cores"] >= 1
        # A *different* superset of the two-conjunct core is subsumed
        # without any new solve or interval pass.
        other = T.ule(T.bv_var("ivc_cache_z", 8), T.bv(3, 8))
        solves_before = solver.num_solves
        assert solver.check(contradiction + [other]) is Result.UNSAT
        assert solver.num_solves == solves_before
        assert solver.cache.subsumption_hits >= 1


# ---------------------------------------------------------------------------
# Snapshot-on vs snapshot-off differentials (the PR's contract)
# ---------------------------------------------------------------------------


class TestSnapshotDifferential:
    @pytest.mark.parametrize("name,scale", _FIG6)
    def test_workload_identity_serial(self, name, scale):
        image = WORKLOADS[name].image(scale or WORKLOADS[name].default_scale)
        on = _explore(image, snapshots=True)
        off = _explore(image, snapshots=False)
        assert on.path_set() == off.path_set()
        assert _attribution(on) == _attribution(off)
        assert _assignments(on) == _assignments(off)
        # The point of the layer: most runs resume, replay drops.
        assert on.resumed_runs == on.num_paths - 1
        assert on.executed_instructions < off.executed_instructions
        assert off.executed_instructions == off.total_instructions

    def test_randomized_strategies_and_seeds(self):
        rng = random.Random(5)
        for _ in range(6):
            name, scale = rng.choice(_FIG6)
            image = WORKLOADS[name].image(scale or WORKLOADS[name].default_scale)
            strategy = rng.choice(["dfs", "bfs", "random", "coverage"])
            seed = rng.randrange(1000)
            on = _explore(image, True, strategy=strategy, seed=seed)
            off = _explore(image, False, strategy=strategy, seed=seed)
            assert on.path_set() == off.path_set(), (name, strategy, seed)
            assert _attribution(on) == _attribution(off), (name, strategy, seed)
            assert _assignments(on) == _assignments(off), (name, strategy, seed)

    @pytest.mark.parametrize("name,scale", [("bubble-sort", 4), ("uri-parser", None)])
    def test_workload_identity_parallel(self, name, scale):
        """jobs=4, snapshots on/off: identical path sets, exact totals.

        Parallel per-tier attribution depends on task->worker placement
        (each worker owns its cache), so the pinned invariant is the
        one the repo has guaranteed since PR 1: the discovered path set
        and the total number of answered queries.
        """
        image = WORKLOADS[name].image(scale or WORKLOADS[name].default_scale)
        serial = _explore(image, snapshots=True)
        for snap in (True, False):
            result = _explore(image, snap, jobs=4)
            assert result.path_set() == serial.path_set(), snap
            assert result.num_paths == serial.num_paths
            answered = (
                result.num_queries
                + result.cache_hits
                + result.fast_path_answers
                + result.pruned_queries
            )
            serial_answered = (
                serial.num_queries
                + serial.cache_hits
                + serial.fast_path_answers
                + serial.pruned_queries
            )
            assert answered == serial_answered, snap
            assert result.total_instructions == serial.total_instructions

    def test_vp_engine_inherits_snapshots(self):
        """The SymEx-VP-style engine resumes through the TLM bus."""
        image = WORKLOADS["uri-parser"].image()
        on = _explore(image, True, engine_cls=VpExecutor)
        off = _explore(image, False, engine_cls=VpExecutor)
        assert on.path_set() == off.path_set()
        assert _attribution(on) == _attribution(off)
        assert on.resumed_runs > 0

    def test_eviction_fallback_preserves_results(self):
        """A starved pool forces re-execution, never wrong results."""
        image = WORKLOADS["bubble-sort"].image(4)
        engine = BinSymExecutor(rv32im(), image)
        engine.snapshot_pool.max_bytes = 3 * 4096 * 4  # a few snapshots
        starved = Explorer(engine, use_cache=True, snapshots=True).explore()
        reference = _explore(image, snapshots=False)
        assert starved.path_set() == reference.path_set()
        assert _attribution(starved) == _attribution(reference)
        assert starved.snapshot_stats["snap_pool_evictions"] > 0
        assert starved.snapshot_stats["snap_fallback_runs"] > 0
        assert starved.resumed_runs + starved.snapshot_stats[
            "snap_fallback_runs"
        ] == starved.num_paths - 1


# ---------------------------------------------------------------------------
# Capture-safety guards
# ---------------------------------------------------------------------------

_DATA = 0x0002_0000


def _explore_source(source, snapshots, **kwargs):
    image = assemble(source, isa=rv32im())
    engine = BinSymExecutor(rv32im(), image)
    result = Explorer(
        engine, use_cache=True, snapshots=snapshots, **kwargs
    ).explore()
    return result


class TestCaptureGuards:
    def test_symbolic_stdout_rebased_on_resume(self):
        """stdout written from symbolic memory *before* the divergence
        must reflect each path's own input, not the parent's."""
        source = f"""\
_start:
    li a0, {_DATA}
    li a1, 1
    li a7, 1337
    ecall                   # make_symbolic(buf, 1)
    li a1, {_DATA}
    li a2, 1
    li a7, 64
    ecall                   # write(buf, 1): symbolic byte to stdout
    li t0, {_DATA}
    lbu t1, 0(t0)
    li t2, 65
    bltu t1, t2, low
    li a0, 1
    j done
low:
    li a0, 0
done:
    li a7, 93
    ecall
"""
        on = _explore_source(source, True)
        off = _explore_source(source, False)
        assert on.num_paths == off.num_paths == 2
        assert on.path_set() == off.path_set()
        assert {p.stdout for p in on.paths} == {p.stdout for p in off.paths}
        # Each path's stdout byte equals its own input assignment.
        for path in on.paths:
            expected = dict(
                (var.payload, value) for var, value in path.assignment.values.items()
            ).get(f"in_{_DATA:08x}", 0)
            assert path.stdout == bytes([expected])
        assert on.resumed_runs == 1

    def test_symbolic_syscall_argument_disables_capture(self):
        """A write() with an input-dependent length is not re-derivable
        from terms; capture stops and children fall back to re-execution
        — results stay identical to the snapshot-off build."""
        source = f"""\
_start:
    li a0, {_DATA}
    li a1, 1
    li a7, 1337
    ecall                   # make_symbolic(buf, 1)
    li t0, {_DATA}
    lbu t1, 0(t0)
    andi t1, t1, 1
    li a1, {_DATA}
    mv a2, t1               # symbolic length: 0 or 1 bytes
    li a7, 64
    ecall                   # write(buf, len)
    li t2, 1
    bltu t1, t2, zero_len
    li a0, 1
    j done
zero_len:
    li a0, 0
done:
    li a7, 93
    ecall
"""
        on = _explore_source(source, True)
        off = _explore_source(source, False)
        assert on.path_set() == off.path_set()
        assert _attribution(on) == _attribution(off)
        assert {p.stdout for p in on.paths} == {p.stdout for p in off.paths}
        # The guard refused to capture past the unsafe syscall.
        assert on.resumed_runs == 0

    def test_late_input_discovery_falls_back(self):
        """A snapshot captured before another path's make_symbolic ran
        is stale (its reset-time input application is incomplete); the
        inputs_count guard forces re-execution."""
        source = f"""\
_start:
    li a0, {_DATA}
    li a1, 1
    li a7, 1337
    ecall                   # make_symbolic(buf, 1)
    li t0, {_DATA}
    lbu t1, 0(t0)
    li t2, 7
    bltu t1, t2, small
    li a0, {_DATA + 8}
    li a1, 1
    li a7, 1337
    ecall                   # second region, only on the >= 7 branch
    lbu t3, 8(t0)
    li t2, 3
    bltu t3, t2, small
    li a0, 2
    j done
small:
    li a0, 0
done:
    li a7, 93
    ecall
"""
        on = _explore_source(source, True)
        off = _explore_source(source, False)
        assert on.path_set() == off.path_set()
        assert _attribution(on) == _attribution(off)
        assert _assignments(on) == _assignments(off)


# ---------------------------------------------------------------------------
# Driver plumbing
# ---------------------------------------------------------------------------


class TestPlumbing:
    def test_workitem_snapshot_defaults(self):
        item = WorkItem(InputAssignment(), 0)
        assert item.snapshot is None and item.divergence is None

    def test_instret_identical_for_resumed_paths(self):
        """RunResult.instret reports full path length on resume."""
        image = WORKLOADS["uri-parser"].image()
        on = _explore(image, True)
        off = _explore(image, False)
        assert sorted(p.instret for p in on.paths) == sorted(
            p.instret for p in off.paths
        )
        assert on.executed_instructions == (
            on.total_instructions - on.saved_instructions
        )

    def test_no_snapshots_leaves_stats_empty_serial(self):
        """--no-snapshots: no snapshot stats block, serial == parallel."""
        image = WORKLOADS["uri-parser"].image()
        result = _explore(image, snapshots=False)
        assert result.snapshot_stats == {}
        assert result.resumed_runs == 0

    def test_oversized_state_disables_capture(self):
        """State bigger than the whole pool budget: capture latches off
        after one rejected attempt, results stay identical."""
        image = WORKLOADS["uri-parser"].image()
        engine = BinSymExecutor(rv32im(), image)
        engine.snapshot_pool.max_bytes = 1  # every snapshot is oversized
        result = Explorer(engine, use_cache=True, snapshots=True).explore()
        reference = _explore(image, snapshots=False)
        assert result.path_set() == reference.path_set()
        assert _attribution(result) == _attribution(reference)
        assert result.snapshot_stats["snap_captured"] == 0
        assert result.resumed_runs == 0
        # The rejected attempt released its page references, so the
        # live memory is not left copy-on-write-protected forever.
        assert engine.interpreter.memory.shared_pages == 0

    def test_effect_before_branch_blocks_capture(self):
        """A primitive mutating state before the instruction's branch
        stamps _effect_instret, which must veto capture (the captured
        state would not be instruction-start state)."""
        from repro.core.interpreter import SymbolicInterpreter
        from repro.core.symvalue import SymValue

        image = WORKLOADS["uri-parser"].image()
        interp = SymbolicInterpreter(rv32im(), image)
        interp.reset(InputAssignment())
        interp.configure_capture(SnapshotPool(), 0)
        var = T.bv_var("effect_guard", 8)

        def record():
            value = SymValue(1, 1, T.bool_to_bv(T.eq(var, T.bv(1, 8))))
            interp.plan_branch(value)

        record()
        assert len(interp.captured) == 1  # clean instruction: captured
        interp.hart.instret += 1
        interp.plan_write_reg(5, SymValue(3, 32))  # effect first...
        record()  # ...then the branch: capture must be vetoed
        assert len(interp.captured) == 1
        interp.hart.instret += 1
        record()  # next instruction is clean again
        assert len(interp.captured) == 2

    def test_non_snapshot_engine_unaffected(self):
        """Engines without snapshot support never see the new kwargs."""
        from repro.eval.engines import make_engine

        image = WORKLOADS["uri-parser"].image()
        engine = make_engine("binsec", rv32im(), image)
        result = Explorer(engine, use_cache=True, snapshots=True).explore()
        assert result.snapshot_stats == {}
        assert result.resumed_runs == 0
        assert result.executed_instructions == result.total_instructions
