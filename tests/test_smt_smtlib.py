"""Tests for the SMT-LIB v2 printer (Fig. 2 query reproduction)."""

from repro.smt import terms as T
from repro.smt.smtlib import declarations, script, term_to_smtlib


class TestTermPrinting:
    def test_const_hex(self):
        assert term_to_smtlib(T.bv(0xAB, 8)) == "#xab"

    def test_const_binary_for_odd_width(self):
        assert term_to_smtlib(T.bv(0b101, 3)) == "#b101"

    def test_bool_consts(self):
        assert term_to_smtlib(T.true()) == "true"
        assert term_to_smtlib(T.false()) == "false"

    def test_variable(self):
        assert term_to_smtlib(T.bv_var("x", 32)) == "x"

    def test_weird_variable_name_is_quoted(self):
        assert term_to_smtlib(T.bv_var("mem[4]", 8)) == "|mem[4]|"

    def test_binary_op(self):
        x = T.bv_var("x", 8)
        assert term_to_smtlib(T.add(x, T.bv(1, 8))) == "(bvadd x #x01)"

    def test_comparison(self):
        x, y = T.bv_var("x", 8), T.bv_var("y", 8)
        assert term_to_smtlib(T.ult(x, y)) == "(bvult x y)"

    def test_extract(self):
        x = T.bv_var("x", 16)
        assert term_to_smtlib(T.extract(x, 7, 0)) == "((_ extract 7 0) x)"

    def test_extensions(self):
        x = T.bv_var("x", 8)
        assert term_to_smtlib(T.zext(x, 8)) == "((_ zero_extend 8) x)"
        assert term_to_smtlib(T.sext(x, 8)) == "((_ sign_extend 8) x)"

    def test_ite(self):
        x = T.bv_var("x", 8)
        cond = T.eq(x, T.bv(0, 8))
        rendered = term_to_smtlib(T.ite(cond, T.bv(1, 8), x))
        assert rendered == "(ite (= x #x00) #x01 x)"

    def test_shared_subterm_gets_let(self):
        x = T.bv_var("x", 8)
        shared = T.add(x, T.bv(1, 8))
        term = T.mul(shared, shared)
        rendered = term_to_smtlib(term)
        assert rendered.startswith("(let ((.t0 (bvadd x #x01)))")
        assert "(bvmul .t0 .t0)" in rendered

    def test_bool_connectives(self):
        p, q = T.bool_var("p"), T.bool_var("q")
        assert term_to_smtlib(T.band(p, q)) == "(and p q)"
        assert term_to_smtlib(T.bnot(p)) == "(not p)"


class TestScript:
    def test_divu_bltu_query_matches_paper_shape(self):
        """The Fig. 2 artifact: DIVU followed by BLTU, check-sat."""
        x = T.bv_var("x", 32)
        y = T.bv_var("y", 32)
        # DIVU a1,a0,a1 with div-by-zero producing all-ones:
        z = T.ite(T.eq(y, T.bv(0, 32)), T.bv(0xFFFFFFFF, 32), T.udiv(x, y))
        # BLTU a0,a1,fail -> branch condition x <u z:
        branch = T.ult(x, z)
        text = script([branch])
        assert text.splitlines()[0] == "(set-logic QF_BV)"
        assert "(declare-const x (_ BitVec 32))" in text
        assert "(declare-const y (_ BitVec 32))" in text
        assert "bvudiv" in text
        assert "#xffffffff" in text
        assert "bvult" in text
        assert text.rstrip().endswith("(check-sat)")

    def test_declarations_deduplicate(self):
        x = T.bv_var("x", 8)
        lines = declarations([T.ult(x, T.bv(1, 8)), T.eq(x, T.bv(0, 8))])
        assert lines == ["(declare-const x (_ BitVec 8))"]

    def test_bool_declaration(self):
        p = T.bool_var("p")
        assert declarations([p]) == ["(declare-const p Bool)"]

    def test_multiple_assertions(self):
        x = T.bv_var("x", 8)
        text = script([T.ugt(x, T.bv(1, 8)), T.ult(x, T.bv(5, 8))])
        assert text.count("(assert ") == 2
