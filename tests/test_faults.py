"""Fault-tolerance invariants (core.faults / core.checkpoint / budgets).

The contract this file pins: exploration under *any* fault schedule —
worker kills, solver give-ups, snapshot eviction storms, queue hiccups,
interrupts — yields either the identical path set of a fault-free run,
or a strict subset whose shortfall is explicitly reported through the
``unknown_queries`` / ``incomplete_paths`` counters (and the
``interrupted`` flag).  Silent path loss is the one outcome that must
never happen.
"""

import multiprocessing
import os
import tempfile

import pytest

from repro.asm import assemble
from repro.core import BinSymExecutor, Explorer, FaultPlan
from repro.core.checkpoint import CHECKPOINT_FILENAME, CheckpointManager
from repro.smt import terms as T
from repro.smt.preprocess import PreprocessConfig
from repro.smt.solver import CachingSolver, Result, Solver
from repro.spec import rv32im

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")

# The quickstart PIN check: 5 paths (one per matched prefix), deep
# enough that kills, evictions and give-ups all have branches to hit.
PIN_CHECK = """\
_start:
    li a0, 0x30000
    li a1, 4
    li a7, 1337
    ecall
    li s0, 0x30000
    la s1, secret
    li t0, 0
check:
    li t1, 4
    beq t0, t1, unlocked
    add t2, s0, t0
    lbu t3, 0(t2)
    add t2, s1, t0
    lbu t4, 0(t2)
    bne t3, t4, locked
    addi t0, t0, 1
    j check
unlocked:
    li a0, 1
    li a7, 93
    ecall
locked:
    li a0, 0
    li a7, 93
    ecall
.data
secret:
    .byte 0x13, 0x37, 0x42, 0x99
"""


def build_executor(source=PIN_CHECK):
    isa = rv32im()
    return BinSymExecutor(isa, assemble(source, isa=isa))


def assert_subset_or_accounted(faulty, baseline):
    """The central invariant: subset, and any shortfall is counted."""
    faulty_set = faulty.path_set()
    baseline_set = baseline.path_set()
    assert faulty_set <= baseline_set, (
        f"faulty run invented paths: {faulty_set - baseline_set}"
    )
    degraded = (
        faulty.unknown_queries + faulty.incomplete_paths + int(faulty.interrupted)
    )
    if faulty_set != baseline_set:
        assert degraded > 0, (
            "paths were lost without any degradation being reported"
        )


class TestFaultPlanParse:
    def test_full_spec_round_trip(self):
        plan = FaultPlan.parse("kill=30,unknown=20,evict=50,hiccup=10,stop=5,seed=7")
        assert plan == FaultPlan(
            seed=7,
            kill_rate=30,
            unknown_rate=20,
            evict_rate=50,
            hiccup_rate=10,
            interrupt_after=5,
        )
        assert plan.active

    def test_empty_and_default_plans_inactive(self):
        assert not FaultPlan().active
        assert not FaultPlan.parse("").active
        assert FaultPlan(interrupt_after=0).active

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="crash"):
            FaultPlan.parse("crash=10")

    def test_non_integer_value_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            FaultPlan.parse("kill=lots")

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=3, kill_rate=50)
        draws = [plan.should_kill("w0", n) for n in range(64)]
        assert draws == [plan.should_kill("w0", n) for n in range(64)]
        assert any(draws) and not all(draws)
        # A different seed or scope draws a different schedule.
        other = FaultPlan(seed=4, kill_rate=50)
        assert draws != [other.should_kill("w0", n) for n in range(64)]
        assert draws != [plan.should_kill("w1", n) for n in range(64)]

    def test_rates_clamp_sanely(self):
        always = FaultPlan(kill_rate=100)
        assert all(always.should_kill("w", n) for n in range(16))
        never = FaultPlan(kill_rate=0, hiccup_rate=0)
        assert not any(never.should_kill("w", n) for n in range(16))
        assert never.hiccup_delay("w", 0) == 0.0

    def test_hiccup_delay_bounded(self):
        plan = FaultPlan(hiccup_rate=100)
        delays = [plan.hiccup_delay("w", n) for n in range(16)]
        assert all(0.001 <= d <= 0.005 for d in delays)

    def test_solver_hook_gating(self):
        assert FaultPlan(unknown_rate=0).solver_hook("s") is None
        hook = FaultPlan(seed=1, unknown_rate=100).solver_hook("s")
        assert hook is not None and hook(1)


def _hard_query():
    """A query the interval/rewrite fast paths cannot answer and the
    CDCL core cannot decide by propagation alone (>100 conflicts), so
    a conflict budget reliably runs out."""
    x = T.bv_var("budget_x", 8)
    y = T.bv_var("budget_y", 8)
    z = T.bv_var("budget_z", 8)
    return [
        T.eq(T.mul(x, y), z),
        T.eq(T.mul(y, z), x),
        T.eq(T.mul(z, x), y),
        T.ult(T.bv(1, 8), x),
        T.ult(x, y),
        T.ult(y, z),
    ]


class TestSolverDegradation:
    def test_conflict_budget_yields_unknown(self):
        solver = Solver(conflict_budget=0)
        verdict = solver.check(_hard_query())
        assert verdict is Result.UNKNOWN
        assert solver.num_unknowns == 1
        assert solver.statistics["unknowns"] == 1
        # The same solver, unbudgeted, answers the query exactly.
        assert Solver().check(_hard_query()) is Result.SAT

    def test_fault_hook_yields_unknown(self):
        solver = Solver()
        solver.set_fault_hook(lambda ordinal: True)
        assert solver.check(_hard_query()) is Result.UNKNOWN
        solver.set_fault_hook(None)
        assert solver.check(_hard_query()) is Result.SAT

    def test_unknown_is_never_cached(self):
        solver = CachingSolver(preprocess=PreprocessConfig())
        # Give up on the first CDCL solve only: if the UNKNOWN verdict
        # leaked into the cache, the retry would wrongly hit it.
        solver.set_fault_hook(lambda ordinal: ordinal == 1)
        assert solver.check(_hard_query()) is Result.UNKNOWN
        assert solver.check(_hard_query()) is Result.SAT
        stats = solver.pipeline_statistics
        assert stats["unknown_queries"] == 1
        assert stats["cache_hits"] == 0

    def test_budget_threads_through_config(self):
        config = PreprocessConfig(conflict_budget=0)
        solver = CachingSolver(preprocess=config)
        assert solver.check(_hard_query()) is Result.UNKNOWN
        assert solver.pipeline_statistics["unknown_queries"] == 1

    def test_unknown_queries_degrade_exploration_soundly(self):
        """Every CDCL solve abandoned: no branch is ever flipped, so
        only the seed path survives — and the shortfall is counted."""
        baseline = Explorer(build_executor(), use_cache=True).explore()
        degraded = Explorer(
            build_executor(),
            use_cache=True,
            faults=FaultPlan(unknown_rate=100),
        ).explore()
        assert_subset_or_accounted(degraded, baseline)
        assert degraded.unknown_queries > 0
        assert degraded.num_paths < baseline.num_paths
        assert "unknown" in degraded.summary()


class TestInterrupt:
    def test_interrupt_returns_partial_result(self):
        result = Explorer(
            build_executor(), faults=FaultPlan(interrupt_after=2)
        ).explore()
        assert result.interrupted
        assert result.num_paths == 2
        assert "[interrupted]" in result.summary()

    @needs_fork
    def test_interrupt_pool_returns_partial_result(self):
        result = Explorer(
            build_executor(), jobs=2, faults=FaultPlan(interrupt_after=2)
        ).explore()
        assert result.interrupted
        assert result.num_paths >= 2


class TestCheckpoint:
    def test_journal_written_and_complete(self):
        with tempfile.TemporaryDirectory() as tmp:
            result = Explorer(build_executor(), checkpoint_dir=tmp).explore()
            assert result.num_paths == 5
            assert os.path.exists(os.path.join(tmp, CHECKPOINT_FILENAME))
            state = CheckpointManager(tmp, strategy="dfs", seed=0).load()
            assert state.complete
            assert len(state.paths) == result.num_paths
            assert not state.frontier

    def test_resume_of_complete_campaign_is_a_noop(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Explorer(build_executor(), checkpoint_dir=tmp).explore()
            resumed = Explorer(
                build_executor(), checkpoint_dir=tmp, resume=True
            ).explore()
            assert resumed.path_set() == baseline.path_set()
            assert resumed.total_instructions == baseline.total_instructions

    def test_strategy_mismatch_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            Explorer(build_executor(), checkpoint_dir=tmp).explore()
            with pytest.raises(ValueError, match="strategy"):
                Explorer(
                    build_executor(),
                    strategy="bfs",
                    checkpoint_dir=tmp,
                    resume=True,
                ).explore()

    @pytest.mark.parametrize("stop_after", [1, 2, 3])
    def test_kill_then_resume_completes_path_set(self, stop_after):
        """The PR's acceptance bar: interrupt mid-campaign, resume from
        the journal, and the union is exactly the uninterrupted set —
        with no recorded path executed twice."""
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as tmp:
            partial = Explorer(
                build_executor(),
                checkpoint_dir=tmp,
                faults=FaultPlan(interrupt_after=stop_after),
            ).explore()
            assert partial.interrupted
            assert partial.num_paths == stop_after
            resumed = Explorer(
                build_executor(), checkpoint_dir=tmp, resume=True
            ).explore()
        assert resumed.path_set() == baseline.path_set()
        assert not resumed.interrupted
        # Restored paths are not re-executed: the exactly-once counter
        # accounting makes the resumed total equal the uninterrupted
        # run's, not partial + a full re-run.
        assert resumed.total_instructions == baseline.total_instructions

    @needs_fork
    def test_kill_then_resume_with_pool(self):
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as tmp:
            partial = Explorer(
                build_executor(),
                jobs=4,
                checkpoint_dir=tmp,
                faults=FaultPlan(interrupt_after=2),
            ).explore()
            assert partial.interrupted
            resumed = Explorer(
                build_executor(), jobs=4, checkpoint_dir=tmp, resume=True
            ).explore()
        assert resumed.path_set() == baseline.path_set()

    @pytest.mark.parametrize("strategy", ["bfs", "random", "coverage"])
    def test_resume_respects_strategy(self, strategy):
        baseline = Explorer(
            build_executor(), strategy=strategy, seed=5
        ).explore()
        with tempfile.TemporaryDirectory() as tmp:
            Explorer(
                build_executor(),
                strategy=strategy,
                seed=5,
                checkpoint_dir=tmp,
                faults=FaultPlan(interrupt_after=2),
            ).explore()
            resumed = Explorer(
                build_executor(),
                strategy=strategy,
                seed=5,
                checkpoint_dir=tmp,
                resume=True,
            ).explore()
        assert resumed.path_set() == baseline.path_set()


CHAOS_MATRIX = [
    ("dfs", 0, 1),
    ("bfs", 1, 1),
    ("random", 2, 1),
    ("coverage", 3, 1),
    ("dfs", 4, 4),
    ("random", 5, 4),
]


class TestChaosInvariant:
    """Randomized (seeded) fault schedules against the central invariant."""

    @pytest.mark.parametrize("strategy,fault_seed,jobs", CHAOS_MATRIX)
    def test_any_schedule_is_subset_or_accounted(
        self, strategy, fault_seed, jobs
    ):
        if jobs > 1 and not HAS_FORK:
            pytest.skip("fork start method unavailable")
        baseline = Explorer(
            build_executor(), strategy=strategy, seed=1, use_cache=True
        ).explore()
        assert baseline.num_paths == 5
        plan = FaultPlan(
            seed=fault_seed,
            kill_rate=20,
            unknown_rate=15,
            evict_rate=50,
            hiccup_rate=10,
        )
        faulty = Explorer(
            build_executor(),
            strategy=strategy,
            seed=1,
            jobs=jobs,
            use_cache=True,
            faults=plan,
        ).explore()
        assert_subset_or_accounted(faulty, baseline)

    def test_inactive_plan_changes_nothing(self):
        baseline = Explorer(build_executor(), use_cache=True).explore()
        noop = Explorer(
            build_executor(), use_cache=True, faults=FaultPlan()
        ).explore()
        assert noop.path_set() == baseline.path_set()
        assert noop.unknown_queries == 0
        assert noop.incomplete_paths == 0
        assert not noop.interrupted


class TestSnapshotBudgetChaos:
    """PR 5's eviction contract under starvation: a zero/tiny snapshot
    pool only costs re-execution, never paths — serial and pooled."""

    @pytest.mark.parametrize("max_bytes", [1, 3 * 4096])
    def test_starved_pool_serial(self, max_bytes):
        baseline = Explorer(build_executor()).explore()
        engine = build_executor()
        engine.snapshot_pool.max_bytes = max_bytes
        result = Explorer(engine).explore()
        assert result.path_set() == baseline.path_set()

    @needs_fork
    @pytest.mark.parametrize("max_bytes", [1, 3 * 4096])
    def test_starved_pool_jobs_four(self, max_bytes):
        baseline = Explorer(build_executor()).explore()
        engine = build_executor()
        engine.snapshot_pool.max_bytes = max_bytes
        result = Explorer(engine, jobs=4).explore()
        assert result.path_set() == baseline.path_set()
        assert result.workers == 4

    @needs_fork
    def test_eviction_storm_with_pool(self):
        baseline = Explorer(build_executor()).explore()
        result = Explorer(
            build_executor(),
            jobs=4,
            faults=FaultPlan(seed=9, evict_rate=100),
        ).explore()
        assert result.path_set() == baseline.path_set()
