"""Property-based cross-interpreter invariants.

The fundamental concolic soundness property: for any program and any
concrete input, the *concrete* interpreter and every *symbolic* engine
must compute identical final states — symbolic execution with concrete
inputs is just execution.  Hypothesis generates random straight-line
programs (valid instruction words over restricted operand ranges) and
random inputs; all engines must agree on the full register file.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.encoder import encode_instruction
from repro.baselines.dba import DbaEngine
from repro.baselines.vexir import VexEngine
from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer, InputAssignment
from repro.core.interpreter import SymbolicInterpreter
from repro.loader.image import Image
from repro.spec import rv32im

_ENTRY = 0x10000
_DATA = 0x20000

# Instructions safe for random straight-line programs (no control flow,
# no environment interaction; loads/stores use confined offsets).
_STRAIGHT_LINE = [
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
    "mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu",
    "addi", "andi", "ori", "xori", "slti", "sltiu", "slli", "srli", "srai",
    "lui", "auipc",
]


@st.composite
def straight_line_program(draw):
    """A random instruction sequence + random initial register values."""
    isa = rv32im()
    length = draw(st.integers(min_value=1, max_value=12))
    words = []
    for _ in range(length):
        name = draw(st.sampled_from(_STRAIGHT_LINE))
        encoding = isa.decoder.by_name(name)
        # Registers x1..x15 so programs interfere with themselves often.
        kwargs = dict(
            rd=draw(st.integers(1, 15)),
            rs1=draw(st.integers(1, 15)),
            rs2=draw(st.integers(1, 15)),
        )
        if encoding.fmt == "shift":
            kwargs["imm"] = draw(st.integers(0, 31))
        elif encoding.fmt == "i":
            kwargs["imm"] = draw(st.integers(-2048, 2047))
        elif encoding.fmt == "u":
            kwargs["imm"] = draw(st.integers(0, (1 << 20) - 1))
        words.append(encode_instruction(encoding, **kwargs))
    initial_regs = [0] + [
        draw(st.integers(0, 0xFFFFFFFF)) for _ in range(15)
    ] + [0] * 16
    return words, initial_regs


def build_image(words):
    image = Image(entry=_ENTRY)
    blob = b"".join(w.to_bytes(4, "little") for w in words)
    image.add_segment(_ENTRY, blob)
    return image


def run_concrete(words, regs):
    interp = ConcreteInterpreter(rv32im())
    interp.load_image(build_image(words))
    for i in range(1, 16):
        interp.hart.regs.write(i, regs[i])
    for _ in range(len(words)):
        interp.step()
    return [interp.hart.regs.read(i) for i in range(32)]


def run_binsym(words, regs):
    interp = SymbolicInterpreter(rv32im(), build_image(words))
    interp.reset(InputAssignment())
    from repro.core.symvalue import SymValue

    for i in range(1, 16):
        interp.hart.regs.write(i, SymValue(regs[i], 32))
    for _ in range(len(words)):
        interp.step()
    return [interp.hart.regs.read(i).concrete for i in range(32)]


def run_ir_engine(factory, words, regs):
    from repro.core.symvalue import SymValue

    engine = factory(rv32im(), build_image(words))
    engine._reset(InputAssignment())
    for i in range(1, 16):
        engine.write_reg(i, SymValue(regs[i], 32))
    for _ in range(len(words)):
        engine.step()
    return [engine.read_reg(i).concrete for i in range(32)]


@given(straight_line_program())
@settings(max_examples=150, deadline=None)
def test_all_engines_agree_on_straight_line_code(program):
    words, regs = program
    reference = run_concrete(words, regs)
    assert run_binsym(words, regs) == reference, "BinSym diverged"
    assert run_ir_engine(DbaEngine, words, regs) == reference, "DBA diverged"
    assert run_ir_engine(VexEngine, words, regs) == reference, "VEX diverged"


@given(straight_line_program())
@settings(max_examples=50, deadline=None)
def test_force_terms_does_not_change_results(program):
    """The concrete fast path is a pure optimization."""
    words, regs = program
    plain = run_binsym(words, regs)

    interp = SymbolicInterpreter(rv32im(), build_image(words), force_terms=True)
    interp.reset(InputAssignment())
    from repro.core.symvalue import SymValue

    for i in range(1, 16):
        interp.hart.regs.write(i, SymValue(regs[i], 32))
    for _ in range(len(words)):
        interp.step()
    forced = [interp.hart.regs.read(i).concrete for i in range(32)]
    assert forced == plain


class TestExplorationInvariants:
    """Structural invariants of full explorations on small programs."""

    SOURCE = """\
_start:
    li a0, 0x20000
    li a1, 2
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li a0, 0
    li t3, 65
    bltu t1, t3, skip1
    addi a0, a0, 1
skip1:
    bltu t1, t2, skip2
    addi a0, a0, 2
skip2:
    beq t1, t2, skip3
    addi a0, a0, 4
skip3:
    li a7, 93
    ecall
"""

    @pytest.fixture(scope="class")
    def exploration(self):
        from repro.asm import assemble

        image = assemble(self.SOURCE)
        executor = BinSymExecutor(rv32im(), image)
        return Explorer(executor).explore(), executor

    def test_no_duplicate_paths(self, exploration):
        result, executor = exploration
        # Re-execute each path's input; the branch signature must be
        # unique across paths (each input reaches a distinct path).
        signatures = set()
        for path in result.paths:
            run = executor.execute(path.assignment)
            signature = run.trace.signature()
            assert signature not in signatures, "duplicate path explored"
            signatures.add(signature)

    def test_inputs_replay_to_same_outcome(self, exploration):
        result, executor = exploration
        for path in result.paths:
            replay = executor.execute(path.assignment)
            assert replay.exit_code == path.exit_code
            assert replay.halt_reason == path.halt_reason

    def test_every_path_terminates_cleanly(self, exploration):
        result, _ = exploration
        assert all(p.halt_reason == "exit" for p in result.paths)
