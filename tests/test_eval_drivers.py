"""Tests for the experiment drivers (Table I, Fig. 6, reports, LOC)."""

import pytest

from repro.eval.engines import ENGINE_ORDER, explore_with, make_engine
from repro.eval.fig6 import render_fig6, run_fig6
from repro.eval.report import csv_lines, format_table, log_bar_chart
from repro.eval.table1 import main as table1_main, render_table1, run_table1
from repro.eval.workloads import WORKLOADS, build
from repro.spec import rv32im


class TestEngineFactory:
    def test_all_keys_construct(self):
        image = build("bubble-sort", 2)
        isa = rv32im()
        for key in ENGINE_ORDER + ("angr-buggy",):
            engine = make_engine(key, isa, image)
            assert hasattr(engine, "execute")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            make_engine("klee", rv32im(), build("bubble-sort", 2))

    def test_explore_with_defaults(self):
        result = explore_with("binsym", build("bubble-sort", 2))
        assert result.num_paths == 2


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(scale=2, benchmarks=("bubble-sort", "uri-parser"))

    def test_counts_collected_for_all_engines(self, rows):
        for row in rows:
            assert set(row.counts) == {"angr-buggy", "binsec", "symex-vp", "binsym"}

    def test_correct_engines_agree(self, rows):
        for row in rows:
            reference = row.counts["binsym"]
            assert row.counts["binsec"] == reference
            assert row.counts["symex-vp"] == reference

    def test_bubble_sort_row(self, rows):
        row = next(r for r in rows if r.benchmark == "bubble-sort")
        assert row.reference_count == 2
        assert not row.angr_misses_paths()  # no affected instructions

    def test_render_contains_dagger_note(self, rows):
        text = render_table1(rows)
        assert "Table I" in text
        assert "†" in text

    def test_main_runs(self, capsys):
        assert table1_main(["--scale", "2", "--benchmark", "bubble-sort"]) == 0
        out = capsys.readouterr().out
        assert "bubble-sort" in out


class TestFig6Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(scale=2, repeats=1, benchmarks=("bubble-sort",))

    def test_all_engines_timed(self, result):
        assert set(result.means) == {"binsec", "binsym", "symex-vp", "angr"}
        for means in result.means.values():
            assert len(means) == 1 and means[0] > 0

    def test_ordering_helper(self, result):
        ordering = result.ordering_for("bubble-sort")
        assert sorted(ordering) == sorted(result.means)

    def test_render(self, result):
        text = render_fig6(result)
        assert "log scale" in text
        assert "CSV:" in text
        assert "bubble-sort" in text


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_log_bar_chart_monotone(self):
        chart = log_bar_chart(["g"], {"fast": [0.01], "slow": [10.0]})
        fast_line = next(l for l in chart.splitlines() if "fast" in l)
        slow_line = next(l for l in chart.splitlines() if "slow" in l)
        assert slow_line.count("#") > fast_line.count("#")

    def test_log_bar_chart_empty(self):
        assert log_bar_chart(["g"], {"a": [0.0]}) == "(no data)"

    def test_csv_lines(self):
        lines = csv_lines(["a", "b"], [[1, 2], [3, 4]])
        assert lines == ["a,b", "1,2", "3,4"]


class TestLocReport:
    def test_counts_positive(self):
        from pathlib import Path

        import repro
        from repro.eval.loc_report import count_loc, package_loc

        root = Path(repro.__file__).parent
        totals = package_loc(root)
        assert totals["core"] > 500
        assert totals["spec"] > 800
        assert count_loc(root / "__init__.py") > 0

    def test_main_runs(self, capsys):
        from repro.eval.loc_report import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "BinSym core" in out


class TestBugsDriverMain:
    def test_main_runs(self, capsys):
        from repro.eval.bugs import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out
        assert "FP" in out
        assert "division by zero" in out


class TestExplorationStatistics:
    def test_solver_time_and_coverage_tracked(self):
        result = explore_with("binsym", build("bubble-sort", 3))
        assert result.num_paths == 6
        assert result.solver_time > 0
        assert len(result.covered_branches) == 1  # one compare-exchange site
        assert "in solver" in result.summary()


class TestRunAllReport:
    def test_generate_report_sections(self, tmp_path):
        from repro.eval.run_all import generate_report, main

        report = generate_report(repeats=1, scale=2)
        assert "# BinSym reproduction — experiment report" in report
        assert "Table I" in report
        assert "Fig. 6" in report
        assert "SMT query complexity" in report
        assert "LOC split" in report

        out = tmp_path / "report.md"
        assert main(["-o", str(out), "--scale", "2"]) == 0
        assert out.read_text().startswith("# BinSym reproduction")
