"""Tests for encodings, the decoder and the YAML encoding loader."""

import pytest

from repro.asm.encoder import encode_instruction
from repro.spec import (
    Encoding,
    IllegalInstruction,
    encodings_from_yaml,
    rv32i,
    rv32im,
    rv32im_zimadd,
)
from repro.spec.decoder import Decoder
from repro.spec.opcodes import RV32I_ENCODINGS, RV32M_ENCODINGS
from repro.spec import fields
from repro.spec.yamlite import YamlError, parse_yaml


class TestKnownEncodings:
    """Golden encodings cross-checked against the RISC-V spec tables."""

    GOLDEN = {
        # word: mnemonic  (assembled with GNU as independently)
        0x00000033: "add",    # add x0, x0, x0
        0x40000033: "sub",
        0x02005033: "divu",
        0x02000033: "mul",
        0x00000013: "addi",   # addi x0, x0, 0 (canonical NOP)
        0x00001013: "slli",
        0x40005013: "srai",
        0x00002003: "lw",
        0x00002023: "sw",
        0x00000063: "beq",
        0x0000006F: "jal",
        0x00000067: "jalr",
        0x00000037: "lui",
        0x00000017: "auipc",
        0x00000073: "ecall",
        0x00100073: "ebreak",
        0x0000000F: "fence",
    }

    def test_golden_words_decode(self):
        decoder = rv32im().decoder
        for word, name in self.GOLDEN.items():
            assert decoder.decode(word).name == name, f"{word:#x}"

    def test_all_encodings_self_consistent(self):
        for encoding in RV32I_ENCODINGS + RV32M_ENCODINGS:
            assert encoding.match & ~encoding.mask == 0, encoding.name
            assert encoding.matches(encoding.match)

    def test_counts(self):
        assert len(RV32I_ENCODINGS) == 40
        assert len(RV32M_ENCODINGS) == 8


class TestDecoder:
    def test_illegal_instruction_raises(self):
        with pytest.raises(IllegalInstruction):
            rv32im().decoder.decode(0xFFFFFFFF)

    def test_illegal_zero_word(self):
        with pytest.raises(IllegalInstruction):
            rv32im().decoder.decode(0)

    def test_try_decode_returns_none(self):
        assert rv32im().decoder.try_decode(0) is None

    def test_m_extension_requires_isa(self):
        word = 0x02005033  # divu
        assert rv32im().decoder.decode(word).name == "divu"
        with pytest.raises(IllegalInstruction):
            rv32i().decoder.decode(word)

    def test_by_name(self):
        decoder = rv32im().decoder
        assert decoder.by_name("ADD").name == "add"
        assert "divu" in decoder
        assert "madd" not in decoder

    def test_conflicting_encodings_rejected(self):
        clash = Encoding("fake", 0x7F, 0x33, ("rd", "rs1", "rs2"), "r", "x")
        with pytest.raises(ValueError):
            Decoder(
                [
                    Encoding("a", 0x7F, 0x33, ("rd", "rs1", "rs2"), "r", "x"),
                    clash._replace_name("b") if hasattr(clash, "_replace_name")
                    else Encoding("b", 0x7F, 0x33, ("rd", "rs1", "rs2"), "r", "x"),
                ]
            )

    def test_specific_masks_win(self):
        # ecall (mask 0xffffffff) must not be shadowed by generic I-type.
        assert rv32im().decoder.decode(0x00000073).name == "ecall"


class TestEncodeDecodeRoundTrip:
    """decode(encode(x)) == x for every instruction and operand mix."""

    @pytest.mark.parametrize(
        "encoding", RV32I_ENCODINGS + RV32M_ENCODINGS, ids=lambda e: e.name
    )
    def test_roundtrip_fields(self, encoding):
        decoder = rv32im().decoder
        cases = [
            dict(rd=1, rs1=2, rs2=3, rs3=4, imm=0),
            dict(rd=31, rs1=31, rs2=31, rs3=31, imm=4),
            dict(rd=17, rs1=5, rs2=9, rs3=13, imm=-4 if encoding.fmt in ("i", "load", "s", "b") else 8),
        ]
        for case in cases:
            word = encode_instruction(encoding, **case)
            decoded = decoder.decode(word)
            assert decoded.name == encoding.name
            if "rd" in encoding.fields:
                assert fields.rd(word) == case["rd"]
            if "rs1" in encoding.fields:
                assert fields.rs1(word) == case["rs1"]
            if "rs2" in encoding.fields:
                assert fields.rs2(word) == case["rs2"]
            if "rs3" in encoding.fields:
                assert fields.rs3(word) == case["rs3"]


class TestImmediates:
    def test_imm_i_sign_extension(self):
        word = encode_instruction(rv32im().decoder.by_name("addi"), rd=1, rs1=1, imm=-1)
        assert fields.imm_i(word) == 0xFFFFFFFF

    def test_imm_b_round_trip(self):
        enc = rv32im().decoder.by_name("beq")
        for offset in (-4096, -2, 0, 2, 4094, 256, -256):
            word = encode_instruction(enc, rs1=1, rs2=2, imm=offset)
            assert fields.imm_b(word) == offset & 0xFFFFFFFF

    def test_imm_j_round_trip(self):
        enc = rv32im().decoder.by_name("jal")
        for offset in (-1048576, -2, 0, 2, 1048574, 2048, -4096):
            word = encode_instruction(enc, rd=1, imm=offset)
            assert fields.imm_j(word) == offset & 0xFFFFFFFF

    def test_imm_s_round_trip(self):
        enc = rv32im().decoder.by_name("sw")
        for offset in (-2048, -1, 0, 1, 2047):
            word = encode_instruction(enc, rs1=1, rs2=2, imm=offset)
            assert fields.imm_s(word) == offset & 0xFFFFFFFF

    def test_imm_u(self):
        enc = rv32im().decoder.by_name("lui")
        word = encode_instruction(enc, rd=1, imm=0xFFFFF)
        assert fields.imm_u(word) == 0xFFFFF000


class TestYamlSubset:
    def test_parse_nested_mapping(self):
        doc = parse_yaml("a:\n  b: 1\n  c: [x, y]\nd: 'hello'\n")
        assert doc == {"a": {"b": 1, "c": ["x", "y"]}, "d": "hello"}

    def test_comments_and_blanks(self):
        doc = parse_yaml("# header\n\nkey: value # trailing\n")
        assert doc == {"key": "value"}

    def test_booleans_and_ints(self):
        doc = parse_yaml("a: true\nb: 0x10\nc: null\n")
        assert doc == {"a": True, "b": 16, "c": None}

    def test_bad_line_raises(self):
        with pytest.raises(YamlError):
            parse_yaml("not a mapping\n")

    def test_madd_yaml_from_paper(self):
        from repro.spec.zimadd import MADD_YAML

        encodings = encodings_from_yaml(MADD_YAML)
        assert len(encodings) == 1
        madd = encodings[0]
        assert madd.name == "madd"
        assert madd.mask == 0x600007F
        assert madd.match == 0x2000043
        assert madd.fmt == "r4"
        assert madd.fields == ("rd", "rs1", "rs2", "rs3")

    def test_encoding_pattern_mismatch_rejected(self):
        bad = """\
bogus:
  encoding: '00000000000000000000000000000000'
  mask: '0x600007f'
  match: '0x2000043'
  variable_fields: [rd, rs1, rs2, rs3]
"""
        with pytest.raises(ValueError):
            encodings_from_yaml(bad)


class TestIsaComposition:
    def test_extension_names(self):
        assert rv32im().name == "rv32i+rv32m"
        assert rv32im_zimadd().name == "rv32i+rv32m+zimadd"

    def test_mnemonics_listing(self):
        isa = rv32im()
        names = isa.mnemonics()
        assert "add" in names and "divu" in names
        assert len(names) == 48

    def test_semantics_lookup(self):
        isa = rv32im()
        assert callable(isa.semantics_for("divu"))
        assert isa.has_instruction("DIVU")
        assert not isa.has_instruction("madd")

    def test_duplicate_semantics_rejected(self):
        from repro.spec.isa import Extension, ISA

        ext = rv32im().extensions[0]
        with pytest.raises(ValueError):
            ISA([ext, ext])

    def test_encoding_without_semantics_rejected(self):
        from repro.spec.isa import Extension

        enc = RV32I_ENCODINGS[0]
        with pytest.raises(ValueError):
            Extension("broken", (enc,), {})
