"""Property-based memory-system tests across all engines.

Random store/load sequences with mixed widths and overlapping addresses
must behave identically in the emulator, BinSym and both IR engines —
including partial overwrites of symbolic data where shadow bytes must be
surgically replaced.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.memory import ByteMemory
from repro.asm.encoder import encode_instruction
from repro.baselines.dba import DbaEngine
from repro.baselines.vexir import VexEngine
from repro.concrete import ConcreteInterpreter
from repro.core import InputAssignment
from repro.core.interpreter import SymbolicInterpreter
from repro.core.symvalue import SymValue
from repro.loader.image import Image
from repro.smt import terms as T
from repro.spec import rv32im

_ENTRY = 0x10000
_DATA = 0x20000
_WINDOW = 64


@st.composite
def memory_program(draw):
    """Random store/load instruction sequence within the data window."""
    isa = rv32im()
    words = []
    length = draw(st.integers(2, 10))
    for _ in range(length):
        kind = draw(st.sampled_from(["sb", "sh", "sw", "lb", "lbu", "lh",
                                     "lhu", "lw"]))
        encoding = isa.decoder.by_name(kind)
        offset = draw(st.integers(0, _WINDOW - 4))
        if kind.startswith("s"):
            word = encode_instruction(
                encoding, rs1=1, rs2=draw(st.integers(2, 9)), imm=offset
            )
        else:
            word = encode_instruction(
                encoding, rd=draw(st.integers(2, 9)), rs1=1, imm=offset
            )
        words.append(word)
    regs = [draw(st.integers(0, 0xFFFFFFFF)) for _ in range(10)]
    return words, regs


def _image(words):
    image = Image(entry=_ENTRY)
    image.add_segment(_ENTRY, b"".join(w.to_bytes(4, "little") for w in words))
    return image


@given(memory_program())
@settings(max_examples=100, deadline=None)
def test_memory_ops_agree_across_engines(program):
    words, regs = program
    isa = rv32im()
    image = _image(words)

    # Reference: the spec-derived emulator.
    concrete = ConcreteInterpreter(isa)
    concrete.load_image(image)
    concrete.hart.regs.write(1, _DATA)
    for i in range(2, 10):
        concrete.hart.regs.write(i, regs[i - 2])
    for _ in words:
        concrete.step()
    expected_regs = [concrete.hart.regs.read(i) for i in range(32)]
    expected_mem = concrete.memory.read_bytes(_DATA, _WINDOW)

    # BinSym (concrete run).
    binsym = SymbolicInterpreter(isa, image)
    binsym.reset(InputAssignment())
    binsym.hart.regs.write(1, SymValue(_DATA, 32))
    for i in range(2, 10):
        binsym.hart.regs.write(i, SymValue(regs[i - 2], 32))
    for _ in words:
        binsym.step()
    assert [binsym.hart.regs.read(i).concrete for i in range(32)] == expected_regs
    assert binsym.memory.read_bytes(_DATA, _WINDOW) == expected_mem

    # IR engines.
    for factory in (DbaEngine, VexEngine):
        engine = factory(isa, image)
        engine._reset(InputAssignment())
        engine.write_reg(1, SymValue(_DATA, 32))
        for i in range(2, 10):
            engine.write_reg(i, SymValue(regs[i - 2], 32))
        for _ in words:
            engine.step()
        assert [
            engine.read_reg(i).concrete for i in range(32)
        ] == expected_regs, factory.__name__
        assert engine.memory.read_bytes(_DATA, _WINDOW) == expected_mem


@given(st.integers(0, 0xFF), st.integers(0, 3))
@settings(max_examples=50, deadline=None)
def test_partial_overwrite_of_symbolic_word(byte_value, lane):
    """Storing a concrete byte into a symbolic word must clear exactly
    that lane's shadow and keep the remaining lanes symbolic."""
    isa = rv32im()
    image = Image(entry=_ENTRY)
    image.add_segment(_ENTRY, b"\x13\x00\x00\x00")  # nop
    interp = SymbolicInterpreter(isa, image)
    interp.reset(InputAssignment())
    interp.make_symbolic(_DATA, 4)
    interp._store(_DATA + lane, SymValue(byte_value, 8), 8)
    loaded = interp._load(_DATA, 32)
    assert (loaded.concrete >> (8 * lane)) & 0xFF == byte_value
    assert loaded.term is not None  # other lanes still symbolic
    assert interp.shadow.get(_DATA + lane) is None
    for i in range(4):
        if i != lane:
            assert interp.shadow.get(_DATA + i) is not None


@given(st.binary(min_size=1, max_size=8), st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_byte_memory_roundtrip_anywhere(data, base):
    memory = ByteMemory()
    memory.write_bytes(base, data)
    assert memory.read_bytes(base, len(data)) == data
