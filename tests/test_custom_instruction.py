"""Sect. IV case-study tests: the custom MADD instruction end to end.

The extensibility claim: once the encoding (7 lines of YAML, Fig. 3) and
the semantics (7 lines of DSL, Fig. 4) exist, *every* downstream tool —
decoder, assembler-level encoding, emulator, BinSym — supports the
instruction with zero modifications.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import Assembler, encode_instruction
from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer
from repro.smt import bvops
from repro.spec import IllegalInstruction, rv32im, rv32im_zimadd
from repro.spec.zimadd import ENCODINGS, MADD_YAML

WORD = 0xFFFFFFFF


def madd_word(rd, rs1, rs2, rs3):
    return encode_instruction(ENCODINGS[0], rd=rd, rs1=rs1, rs2=rs2, rs3=rs3)


def run_madd(a, b, c):
    """Execute madd x4, x1, x2, x3 with the given register values."""
    isa = rv32im_zimadd()
    interp = ConcreteInterpreter(isa)
    interp.memory.write(0x1000, madd_word(4, 1, 2, 3), 32)
    interp.hart.pc = 0x1000
    interp.hart.regs.write(1, a)
    interp.hart.regs.write(2, b)
    interp.hart.regs.write(3, c)
    interp.step()
    return interp.hart.regs.read(4)


class TestEncoding:
    def test_yaml_matches_paper(self):
        madd = ENCODINGS[0]
        assert madd.mask == 0x600007F
        assert madd.match == 0x2000043
        assert madd.extension == "rv_zimadd"

    def test_decode_with_extension(self):
        isa = rv32im_zimadd()
        decoded = isa.decoder.decode(madd_word(4, 1, 2, 3))
        assert decoded.name == "madd"

    def test_base_isa_rejects(self):
        with pytest.raises(IllegalInstruction):
            rv32im().decoder.decode(madd_word(4, 1, 2, 3))

    def test_field_placement(self):
        from repro.spec import fields

        word = madd_word(29, 6, 7, 28)
        assert fields.rd(word) == 29
        assert fields.rs1(word) == 6
        assert fields.rs2(word) == 7
        assert fields.rs3(word) == 28


class TestConcreteSemantics:
    def test_simple(self):
        assert run_madd(6, 7, 8) == 50

    def test_wraparound(self):
        assert run_madd(0xFFFFFFFF, 2, 1) == 0xFFFFFFFF  # (-1)*2 + 1 = -1

    def test_truncation_of_64_bit_product(self):
        # 0x10000 * 0x10000 = 2^32 -> lower 32 bits are 0.
        assert run_madd(0x10000, 0x10000, 5) == 5

    @given(
        st.integers(0, WORD), st.integers(0, WORD), st.integers(0, WORD)
    )
    @settings(max_examples=100, deadline=None)
    def test_against_reference(self, a, b, c):
        # Reference: low 32 bits of (sext(a) * sext(b)) + c.
        product = bvops.to_signed(a, 32) * bvops.to_signed(b, 32)
        expected = (product + c) & WORD
        assert run_madd(a, b, c) == expected


class TestSymbolicExecution:
    def test_solver_inverts_madd(self):
        """BinSym symbolically executes MADD with zero engine changes."""
        isa = rv32im_zimadd()
        word = madd_word(29, 6, 7, 28)  # t4 = t1*t2 + t3
        source = f"""\
_start:
    li a0, 0x20000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    li t2, 11
    li t3, 3
    .word {word:#010x}
    li t5, 58
    beq t4, t5, hit
    li a0, 0
    li a7, 93
    ecall
hit:
    li a0, 1
    li a7, 93
    ecall
"""
        image = Assembler(isa=isa).assemble(source)
        result = Explorer(BinSymExecutor(isa, image)).explore()
        assert result.num_paths == 2
        hit = next(p for p in result.paths if p.exit_code == 1)
        value = next(iter(hit.assignment.values.values()))
        assert (value * 11 + 3) & 0xFF == 58  # a == 5

    def test_engine_source_has_no_madd_special_case(self):
        """The claim, mechanically: BinSym has no executable handling of
        the instruction (no mnemonic string, no opcode constants) — the
        docstrings may of course *talk* about the case study."""
        import inspect

        import repro.core.interpreter as core_interp
        import repro.core.executor as core_exec
        import repro.core.explorer as core_explorer

        for module in (core_interp, core_exec, core_explorer):
            source = inspect.getsource(module)
            assert '"madd"' not in source and "'madd'" not in source
            assert "0x2000043" not in source and "0x600007f" not in source.lower()
