"""Round-trip tests: SMT-LIB printer -> parser -> identical term DAG."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import terms as T
from repro.smt.smtlib import script, term_to_smtlib
from repro.smt.smtlib_parser import (
    ParsedScript,
    SmtLibParseError,
    parse_script,
    parse_term,
)
from repro.smt.solver import Result, Solver


class TestParseTerm:
    def test_constants(self):
        assert parse_term("#xff") is T.bv(0xFF, 8)
        assert parse_term("#b101") is T.bv(5, 3)
        assert parse_term("true") is T.true()
        assert parse_term("false") is T.false()

    def test_symbol_env(self):
        x = T.bv_var("x", 8)
        assert parse_term("x", {"x": x}) is x

    def test_unbound_symbol(self):
        with pytest.raises(SmtLibParseError):
            parse_term("nope")

    def test_application(self):
        x = T.bv_var("x", 8)
        term = parse_term("(bvadd x #x01)", {"x": x})
        assert term is T.add(x, T.bv(1, 8))

    def test_indexed_operators(self):
        x = T.bv_var("x", 16)
        assert parse_term("((_ extract 7 0) x)", {"x": x}) is T.extract(x, 7, 0)
        assert parse_term("((_ zero_extend 8) x)", {"x": x}) is T.zext(x, 8)
        assert parse_term("((_ sign_extend 8) x)", {"x": x}) is T.sext(x, 8)

    def test_let_binding(self):
        x = T.bv_var("x", 8)
        term = parse_term(
            "(let ((.t0 (bvadd x #x01))) (bvmul .t0 .t0))", {"x": x}
        )
        shared = T.add(x, T.bv(1, 8))
        assert term is T.mul(shared, shared)

    def test_ite(self):
        x = T.bv_var("x", 8)
        term = parse_term("(ite (= x #x00) #x01 x)", {"x": x})
        assert term is T.ite(T.eq(x, T.bv(0, 8)), T.bv(1, 8), x)

    def test_quoted_symbol(self):
        v = T.bv_var("mem[4]", 8)
        assert parse_term("|mem[4]|", {"mem[4]": v}) is v

    def test_errors(self):
        with pytest.raises(SmtLibParseError):
            parse_term("(bvadd #x01)")  # arity
        with pytest.raises(SmtLibParseError):
            parse_term("(frobnicate #x01 #x02)")
        with pytest.raises(SmtLibParseError):
            parse_term("(bvadd #x01 #x02")  # unbalanced
        with pytest.raises(SmtLibParseError):
            parse_term("")


class TestParseScript:
    def test_full_script(self):
        x = T.bv_var("x", 32)
        y = T.bv_var("y", 32)
        original = T.ult(x, T.udiv(x, y))
        parsed = parse_script(script([original]))
        assert parsed.logic == "QF_BV"
        assert parsed.has_check_sat
        assert parsed.declarations["x"] is x
        assert parsed.assertions == [original]

    def test_bool_declaration(self):
        parsed = parse_script(
            "(declare-const p Bool)\n(assert p)\n(check-sat)\n"
        )
        assert parsed.assertions[0] is T.bool_var("p")

    def test_declare_fun(self):
        parsed = parse_script("(declare-fun x () (_ BitVec 8))")
        assert parsed.declarations["x"] is T.bv_var("x", 8)

    def test_comments_ignored(self):
        parsed = parse_script("; a comment\n(check-sat)\n")
        assert parsed.has_check_sat

    def test_unsupported_command(self):
        with pytest.raises(SmtLibParseError):
            parse_script("(push 1)")

    def test_parsed_script_solves(self):
        """Replay a printed query through the solver."""
        x = T.bv_var("x", 8)
        text = script([T.eq(T.mul(x, T.bv(3, 8)), T.bv(9, 8))])
        parsed = parse_script(text)
        solver = Solver()
        for assertion in parsed.assertions:
            solver.add(assertion)
        assert solver.check() is Result.SAT
        assert (solver.model()[x] * 3) & 0xFF == 9


@st.composite
def random_term(draw, depth=0):
    width = 8
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return T.bv(draw(st.integers(0, 255)), width)
        return T.bv_var(draw(st.sampled_from(["ra", "rb"])), width)
    op = draw(
        st.sampled_from(
            [T.add, T.sub, T.mul, T.and_, T.or_, T.xor, T.shl, T.lshr,
             T.ashr, T.udiv, T.urem]
        )
    )
    return op(draw(random_term(depth=depth + 1)), draw(random_term(depth=depth + 1)))


@given(random_term())
@settings(max_examples=150, deadline=None)
def test_roundtrip_property(term):
    """parse(print(t)) is t — interning makes this an identity check."""
    env = {"ra": T.bv_var("ra", 8), "rb": T.bv_var("rb", 8)}
    rendered = term_to_smtlib(term)
    assert parse_term(rendered, env) is term


@given(random_term(), random_term())
@settings(max_examples=50, deadline=None)
def test_roundtrip_bool_property(lhs, rhs):
    env = {"ra": T.bv_var("ra", 8), "rb": T.bv_var("rb", 8)}
    for build in (T.eq, T.ult, T.sle):
        condition = build(lhs, rhs)
        assert parse_term(term_to_smtlib(condition), env) is condition
