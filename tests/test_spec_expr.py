"""Tests for the specification expression DSL and its evaluation."""

import pytest

from repro.concrete.interpreter import IntDomain
from repro.spec.expr import (
    Add,
    And,
    AShr,
    EqInt,
    Extract,
    Imm,
    Ite,
    LShr,
    Mul,
    Neg,
    Not,
    SDiv,
    SGe,
    SGt,
    Shl,
    SLe,
    SLt,
    Sub,
    UDiv,
    UGe,
    UGt,
    ULe,
    ULt,
    URem,
    SRem,
    Or,
    Val,
    Xor,
    eval_expr,
    extract,
    extract32,
    imm,
    ite,
    sext,
    sext_to,
    zext,
    zext_to,
)


def evaluate(expr):
    return eval_expr(expr, IntDomain())


class TestConstruction:
    def test_imm_truncates(self):
        assert imm(-1).value == 0xFFFFFFFF
        assert imm(0x1FF, width=8).value == 0xFF

    def test_binop_width_propagates(self):
        term = Add(imm(1), imm(2))
        assert term.width == 32

    def test_width_mismatch_rejected(self):
        with pytest.raises(TypeError):
            Add(imm(1, 32), imm(1, 8))

    def test_comparison_has_width_one(self):
        assert EqInt(imm(1), imm(1)).width == 1
        assert ULt(imm(1), imm(2)).width == 1

    def test_ext_widths(self):
        assert sext(imm(1, 8), 24).width == 32
        assert zext(imm(1, 8), 8).width == 16
        assert sext_to(imm(1, 8), 32).width == 32
        assert zext_to(imm(1, 32), 32) is not None  # no-op allowed

    def test_ext_shrink_rejected(self):
        with pytest.raises(TypeError):
            sext_to(imm(1, 32), 8)

    def test_extract_bounds(self):
        assert extract(imm(0xFF, 32), 7, 0).width == 8
        with pytest.raises(TypeError):
            extract(imm(0, 8), 8, 0)

    def test_extract32_helper(self):
        term = extract32(0, imm(5, 64))
        assert term.width == 32

    def test_ite_checks(self):
        cond = EqInt(imm(1), imm(1))
        assert ite(cond, imm(1), imm(2)).width == 32
        with pytest.raises(TypeError):
            ite(cond, imm(1, 8), imm(1, 16))
        with pytest.raises(TypeError):
            ite(imm(1, 32), imm(1), imm(2))


class TestEvaluation:
    def test_arith(self):
        assert evaluate(Add(imm(7), imm(8))) == 15
        assert evaluate(Sub(imm(3), imm(5))) == 0xFFFFFFFE
        assert evaluate(Mul(imm(0x10000), imm(0x10000))) == 0

    def test_division(self):
        assert evaluate(UDiv(imm(10), imm(3))) == 3
        assert evaluate(UDiv(imm(10), imm(0))) == 0xFFFFFFFF  # SMT-LIB
        assert evaluate(SDiv(imm(-10 & 0xFFFFFFFF), imm(3))) == (-3) & 0xFFFFFFFF
        assert evaluate(URem(imm(10), imm(3))) == 1
        assert evaluate(SRem(imm((-10) & 0xFFFFFFFF), imm(3))) == (-1) & 0xFFFFFFFF

    def test_logic(self):
        assert evaluate(And(imm(0b1100), imm(0b1010))) == 0b1000
        assert evaluate(Or(imm(0b1100), imm(0b1010))) == 0b1110
        assert evaluate(Xor(imm(0b1100), imm(0b1010))) == 0b0110
        assert evaluate(Not(imm(0))) == 0xFFFFFFFF
        assert evaluate(Neg(imm(1))) == 0xFFFFFFFF

    def test_shifts(self):
        assert evaluate(Shl(imm(1), imm(4))) == 16
        assert evaluate(LShr(imm(0x80000000), imm(31))) == 1
        assert evaluate(AShr(imm(0x80000000), imm(31))) == 0xFFFFFFFF

    def test_comparisons(self):
        assert evaluate(ULt(imm(1), imm(2))) == 1
        assert evaluate(ULe(imm(2), imm(2))) == 1
        assert evaluate(UGt(imm(1), imm(2))) == 0
        assert evaluate(UGe(imm(2), imm(2))) == 1
        # signed: 0xffffffff is -1
        assert evaluate(SLt(imm(0xFFFFFFFF), imm(0))) == 1
        assert evaluate(SLe(imm(0), imm(0))) == 1
        assert evaluate(SGt(imm(0), imm(0xFFFFFFFF))) == 1
        assert evaluate(SGe(imm(0xFFFFFFFF), imm(0))) == 0

    def test_extensions(self):
        assert evaluate(sext(imm(0x80, 8), 24)) == 0xFFFFFF80
        assert evaluate(zext(imm(0x80, 8), 24)) == 0x80
        assert evaluate(extract(imm(0xABCD, 32), 15, 8)) == 0xAB

    def test_ite(self):
        cond = EqInt(imm(1), imm(1))
        assert evaluate(ite(cond, imm(10), imm(20))) == 10
        cond = EqInt(imm(1), imm(2))
        assert evaluate(ite(cond, imm(10), imm(20))) == 20

    def test_val_leaf(self):
        assert evaluate(Add(Val(41, 32), imm(1))) == 42

    def test_64_bit_intermediate(self):
        # The MULH pattern: sext to 64, multiply, slice the top half.
        a = sext(Val(0xFFFFFFFF, 32), 32)  # -1
        b = sext(Val(2, 32), 32)
        product = Mul(a, b)
        assert product.width == 64
        assert evaluate(extract(product, 63, 32)) == 0xFFFFFFFF  # -2 >> 32

    def test_bad_expression_rejected(self):
        with pytest.raises(TypeError):
            eval_expr("not an expr", IntDomain())
