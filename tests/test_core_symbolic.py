"""Tests for BinSym: symbolic values, state, interpreter and explorer."""

import pytest

from repro.arch.hart import HaltReason
from repro.asm import assemble
from repro.core import (
    BinSymExecutor,
    ConcretizationPolicy,
    Explorer,
    InputAssignment,
    PathTrace,
    SymValue,
    SymDomain,
)
from repro.smt import terms as T
from repro.spec import rv32im


def explore(source, engine_kwargs=None, explorer_kwargs=None):
    image = assemble(source)
    executor = BinSymExecutor(rv32im(), image, **(engine_kwargs or {}))
    return Explorer(executor, **(explorer_kwargs or {})).explore(), executor


SYMBOLIC_PROLOGUE = """\
_start:
    li a0, 0x20000
    li a1, {n}
    li a7, 1337
    ecall
"""


class TestSymValue:
    def test_concrete_fast_path(self):
        domain = SymDomain()
        a = domain.const(5, 32)
        b = domain.const(7, 32)
        result = domain.binop("add", a, b, 32)
        assert result.concrete == 12
        assert result.term is None  # no term built for concrete data

    def test_symbolic_taints_result(self):
        domain = SymDomain()
        var = SymValue(5, 32, T.bv_var("v", 32))
        result = domain.binop("add", var, domain.const(7, 32), 32)
        assert result.concrete == 12
        assert result.term is not None

    def test_force_terms_builds_always(self):
        domain = SymDomain(force_terms=True)
        result = domain.binop("add", domain.const(5, 32), domain.const(7, 32), 32)
        assert result.term is not None
        assert result.term.is_const  # folded, but present

    def test_cmpop_concolic(self):
        domain = SymDomain()
        var = SymValue(5, 32, T.bv_var("v", 32))
        cond = domain.cmpop("ult", var, domain.const(7, 32), 32)
        assert cond.concrete == 1 and cond.width == 1
        assert cond.condition_term().op == "ult"

    def test_condition_term_of_concrete(self):
        assert SymValue(1, 1).condition_term() is T.true()
        assert SymValue(0, 1).condition_term() is T.false()

    def test_condition_term_requires_width_one(self):
        with pytest.raises(ValueError):
            SymValue(1, 32).condition_term()

    def test_concat_bytes_little_endian(self):
        domain = SymDomain()
        parts = [SymValue(0x11, 8), SymValue(0x22, 8), SymValue(0x33, 8),
                 SymValue(0x44, 8)]
        value = domain.concat_bytes(parts)
        assert value.concrete == 0x44332211
        assert value.term is None

    def test_concat_bytes_with_taint(self):
        domain = SymDomain()
        parts = [SymValue(0x11, 8, T.bv_var("b0", 8)), SymValue(0x22, 8)]
        value = domain.concat_bytes(parts)
        assert value.width == 16
        assert value.term is not None


class TestPathTrace:
    def test_branch_as_taken_form(self):
        trace = PathTrace()
        cond = T.ult(T.bv_var("x", 8), T.bv(5, 8))
        trace.add_branch(cond, pc=0x10, taken=True)
        trace.add_branch(cond, pc=0x14, taken=False)
        assert trace.records[0].condition is cond
        assert trace.records[1].condition is T.bnot(cond)

    def test_assumption_not_flippable(self):
        trace = PathTrace()
        trace.add_assumption(T.eq(T.bv_var("a", 8), T.bv(1, 8)), pc=0)
        assert not trace.records[0].flippable

    def test_trivially_true_assumption_dropped(self):
        trace = PathTrace()
        trace.add_assumption(T.true(), pc=0)
        assert len(trace) == 0

    def test_prefix_conditions(self):
        trace = PathTrace()
        a = T.bool_var("a")
        b = T.bool_var("b")
        trace.add_branch(a, 0, True)
        trace.add_branch(b, 4, True)
        assert trace.prefix_conditions(1) == [a]

    def test_signature_only_flippable(self):
        trace = PathTrace()
        trace.add_branch(T.bool_var("a"), 0x10, True)
        trace.add_assumption(T.bool_var("p"), 0x14)
        assert trace.signature() == ((0x10, True),)


class TestExplorationCounts:
    def test_independent_branches_power_of_two(self):
        # k independent single-bit branches -> 2^k paths.
        source = SYMBOLIC_PROLOGUE.format(n=3) + """\
    li t0, 0x20000
    li t6, 0
    lbu t1, 0(t0)
    andi t1, t1, 1
    beqz t1, skip0
    addi t6, t6, 1
skip0:
    lbu t1, 1(t0)
    andi t1, t1, 1
    beqz t1, skip1
    addi t6, t6, 1
skip1:
    lbu t1, 2(t0)
    andi t1, t1, 1
    beqz t1, skip2
    addi t6, t6, 1
skip2:
    mv a0, t6
    li a7, 93
    ecall
"""
        result, _ = explore(source)
        assert result.num_paths == 8
        assert result.exit_codes == {0, 1, 2, 3}

    def test_infeasible_paths_pruned(self):
        # Two branches on the same condition: only 2 feasible paths.
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    li t2, 10
    bltu t1, t2, small
    bgeu t1, t2, big     # always taken here
    ebreak               # unreachable
small:
    li a0, 1
    li a7, 93
    ecall
big:
    li a0, 2
    li a7, 93
    ecall
"""
        result, _ = explore(source)
        assert result.num_paths == 2
        assert not result.assertion_failures

    def test_equality_chain(self):
        # if (x == 5) / else: exactly two paths, model x==5 on one.
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    li t2, 5
    beq t1, t2, five
    li a0, 0
    li a7, 93
    ecall
five:
    li a0, 1
    li a7, 93
    ecall
"""
        result, executor = explore(source)
        assert result.num_paths == 2
        five_path = next(p for p in result.paths if p.exit_code == 1)
        sym_input = next(iter(executor.interpreter.inputs.values()))
        assert five_path.assignment.value_for(sym_input) == 5

    def test_loop_over_symbolic_bound(self):
        # Loop count depends on a symbolic byte capped at 3 -> 4 paths.
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    andi t1, t1, 3       # bound in 0..3
    li t2, 0
loop:
    bgeu t2, t1, done    # symbolic
    addi t2, t2, 1
    j loop
done:
    mv a0, t2
    li a7, 93
    ecall
"""
        result, _ = explore(source)
        assert result.num_paths == 4
        assert result.exit_codes == {0, 1, 2, 3}

    def test_max_paths_truncation(self):
        source = SYMBOLIC_PROLOGUE.format(n=2) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    beqz t1, a
a:  lbu t1, 1(t0)
    beqz t1, b
b:  li a7, 93
    li a0, 0
    ecall
"""
        result, _ = explore(source, explorer_kwargs={"max_paths": 2})
        assert result.num_paths == 2
        assert result.truncated


class TestSymbolicMemory:
    def test_word_load_concatenates_shadow(self):
        # Load 4 symbolic bytes as one word; branch on the whole word.
        source = SYMBOLIC_PROLOGUE.format(n=4) + """\
    li t0, 0x20000
    lw t1, 0(t0)
    li t2, 0x12345678
    beq t1, t2, hit
    li a0, 0
    li a7, 93
    ecall
hit:
    li a0, 1
    li a7, 93
    ecall
"""
        result, executor = explore(source)
        assert result.num_paths == 2
        hit = next(p for p in result.paths if p.exit_code == 1)
        inputs = sorted(executor.interpreter.inputs.values(),
                        key=lambda i: i.address)
        assert hit.assignment.as_bytes(inputs) == b"\x78\x56\x34\x12"

    def test_store_propagates_taint(self):
        # Copy the symbolic byte; branch on the copy.
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    sb t1, 8(t0)         # copy
    lbu t2, 8(t0)
    beqz t2, is_zero
    li a0, 1
    li a7, 93
    ecall
is_zero:
    li a0, 0
    li a7, 93
    ecall
"""
        result, _ = explore(source)
        assert result.num_paths == 2

    def test_overwrite_with_concrete_clears_taint(self):
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    li t1, 7
    sb t1, 0(t0)         # overwrite the symbolic byte
    lbu t2, 0(t0)
    beqz t2, is_zero        # concrete now: no fork
is_zero:
    li a0, 0
    li a7, 93
    ecall
"""
        result, _ = explore(source)
        assert result.num_paths == 1
        assert result.sat_checks + result.unsat_checks == 0

    def test_symbolic_address_concretized(self):
        # Table lookup with symbolic index: PIN policy pins the address.
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    andi t1, t1, 7
    la t2, table
    add t2, t2, t1
    lbu a0, 0(t2)        # symbolic address -> concretized
    li a7, 93
    ecall
.data
    .org 0x20100            # keep the table clear of the input buffer
table:
    .byte 10, 11, 12, 13, 14, 15, 16, 17
"""
        result, _ = explore(source)
        # With PIN, only the pinned index is explored (no flip of the
        # non-flippable assumption).
        assert result.num_paths == 1
        assert result.paths[0].exit_code == 10

    def test_divu_forks_on_symbolic_divisor(self):
        """Sect. III-B: DIVU with symbolic divisor explores both cases."""
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)        # symbolic divisor
    li t2, 100
    divu t3, t2, t1
    li a0, 0
    li a7, 93
    ecall
"""
        result, _ = explore(source)
        # RunIfElse on divisor==0 forks even without a visible branch.
        assert result.num_paths == 2


class TestSymbolicRegisters:
    def test_register_input(self):
        source = """\
_start:
    li t1, 41
    beq a0, t1, hit
    li a0, 0
    li a7, 93
    ecall
hit:
    li a0, 1
    li a7, 93
    ecall
"""
        image = assemble(source)
        executor = BinSymExecutor(rv32im(), image, symbolic_registers=(10,))
        result = Explorer(executor).explore()
        assert result.num_paths == 2
        assert result.exit_codes == {0, 1}


class TestDeterminismAndStrategies:
    SOURCE = SYMBOLIC_PROLOGUE.format(n=2) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li a0, 0
    bltu t1, t2, second
    addi a0, a0, 1
second:
    li t3, 100
    bltu t1, t3, done
    addi a0, a0, 2
done:
    li a7, 93
    ecall
"""

    def path_set(self, strategy):
        image = assemble(self.SOURCE)
        executor = BinSymExecutor(rv32im(), image)
        result = Explorer(executor, strategy=strategy).explore()
        return {(p.exit_code, p.trace_length) for p in result.paths}, result

    def test_exploration_is_deterministic(self):
        first, _ = self.path_set("dfs")
        second, _ = self.path_set("dfs")
        assert first == second

    def test_strategies_find_same_paths(self):
        dfs, dfs_result = self.path_set("dfs")
        bfs, _ = self.path_set("bfs")
        rnd, _ = self.path_set("random")
        assert dfs == bfs == rnd
        assert dfs_result.num_paths == 4

    def test_unknown_strategy_rejected(self):
        from repro.core.strategy import make_strategy

        with pytest.raises(ValueError):
            make_strategy("astar")


class TestConcretizationPolicies:
    SOURCE = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    andi t1, t1, 1
    la t2, table
    add t2, t2, t1
    lbu t3, 0(t2)
    beqz t3, is_zero
    li a0, 1
    li a7, 93
    ecall
is_zero:
    li a0, 0
    li a7, 93
    ecall
.data
    .org 0x20100            # keep the table clear of the input buffer
table:
    .byte 0, 1
"""

    def count_paths(self, policy):
        image = assemble(self.SOURCE)
        executor = BinSymExecutor(rv32im(), image, concretization=policy)
        return Explorer(executor).explore().num_paths

    def test_pin_policy_restricts(self):
        assert self.count_paths(ConcretizationPolicy.PIN) == 1

    def test_free_policy_unconstrained(self):
        # FREE does not pin the address; flipping the beqz branch is
        # allowed but the new input still hits index 0 concretely, so
        # this program still yields 1 path (the flip query is UNSAT
        # given the loaded byte is concrete 0 -> condition is const).
        assert self.count_paths(ConcretizationPolicy.FREE) == 1


class TestAssertionFailures:
    def test_failure_reported_with_pc(self):
        source = SYMBOLIC_PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    li t2, 0x42
    bne t1, t2, safe
fail_site:
    ebreak
safe:
    li a0, 0
    li a7, 93
    ecall
"""
        image = assemble(source)
        executor = BinSymExecutor(rv32im(), image)
        result = Explorer(executor).explore()
        failures = result.assertion_failures
        assert len(failures) == 1
        assert failures[0].final_pc == image.symbol("fail_site")
        assert failures[0].halt_reason == HaltReason.EBREAK
