"""Cross-engine agreement tests: all engines explore identical path sets.

The baseline engines (VEX/angr-like with the *fixed* lifter, DBA/
BINSEC-like, VP/SymEx-VP-like) must agree with BinSym on every program:
same number of paths, same exit codes, same assertion failures.  This is
the repo-level invariant behind Table I's "all engines find the same
paths" rows.
"""

import pytest

from repro.asm import assemble
from repro.baselines import DbaEngine, VexEngine, VpExecutor
from repro.baselines.vp.bus import SimulationKernel, TlmBus, MemoryTarget, Transaction
from repro.core import BinSymExecutor, Explorer
from repro.spec import rv32im

ENGINE_FACTORIES = {
    "binsym": lambda isa, img, **kw: BinSymExecutor(isa, img, **kw),
    "binsec": lambda isa, img, **kw: DbaEngine(isa, img, **kw),
    "angr": lambda isa, img, **kw: VexEngine(isa, img, **kw),
    "symex-vp": lambda isa, img, **kw: VpExecutor(isa, img, **kw),
}

PROGRAMS = {
    "two-byte-compare": """\
_start:
    li a0, 0x20000
    li a1, 2
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    li a0, 0
    bltu t1, t2, less
    addi a0, a0, 1
less:
    bne t1, t2, done
    addi a0, a0, 2
done:
    li a7, 93
    ecall
""",
    "signed-ranges": """\
_start:
    li a0, 0x20000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x20000
    lb t1, 0(t0)            # sign-extended char
    li a0, 0
    bltz t1, negative
    li t2, 65
    blt t1, t2, below
    addi a0, a0, 4
below:
    addi a0, a0, 2
negative:
    addi a0, a0, 1
    li a7, 93
    ecall
""",
    "arith-mix": """\
_start:
    li a0, 0x20000
    li a1, 2
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    sll t3, t1, t2          # symbolic shift amount
    sra t4, t3, t2
    xor t5, t3, t4
    beqz t5, same
    li a0, 1
    li a7, 93
    ecall
same:
    li a0, 0
    li a7, 93
    ecall
""",
    "mul-branch": """\
_start:
    li a0, 0x20000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    li t2, 3
    mul t3, t1, t2
    li t4, 21
    beq t3, t4, hit
    li a0, 0
    li a7, 93
    ecall
hit:
    li a0, 1
    li a7, 93
    ecall
""",
    "memory-copy-chain": """\
_start:
    li a0, 0x20000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    sh t1, 16(t0)           # widen and copy
    lhu t2, 16(t0)
    li t3, 0x42
    beq t2, t3, hit
    ebreak
hit:
    li a0, 0
    li a7, 93
    ecall
""",
}


def signature(result):
    return (
        result.num_paths,
        sorted(result.exit_codes - {None}),
        len(result.assertion_failures),
    )


@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_engines_agree(program):
    isa = rv32im()
    image = assemble(PROGRAMS[program])
    signatures = {}
    for key, factory in ENGINE_FACTORIES.items():
        result = Explorer(factory(isa, image)).explore()
        signatures[key] = signature(result)
    reference = signatures["binsym"]
    assert all(sig == reference for sig in signatures.values()), signatures


@pytest.mark.parametrize("engine", sorted(ENGINE_FACTORIES))
def test_concrete_program_single_path(engine):
    """A fully concrete program yields exactly one path, no queries."""
    source = """\
_start:
    li t0, 10
    li t1, 20
    add a0, t0, t1
    li a7, 93
    ecall
"""
    isa = rv32im()
    image = assemble(source)
    result = Explorer(ENGINE_FACTORIES[engine](isa, image)).explore()
    assert result.num_paths == 1
    assert result.paths[0].exit_code == 30
    assert result.sat_checks + result.unsat_checks == 0


class TestVexEngineDetails:
    def test_lift_cache_toggle(self):
        isa = rv32im()
        image = assemble(PROGRAMS["two-byte-compare"])
        cached = Explorer(VexEngine(isa, image, lift_cache=True)).explore()
        uncached = Explorer(VexEngine(isa, image, lift_cache=False)).explore()
        assert cached.num_paths == uncached.num_paths

    def test_lifter_rejects_unknown_instruction(self):
        from repro.baselines.vexir.lifter import VexLifter
        from repro.spec.decoder import IllegalInstruction

        lifter = VexLifter(rv32im())
        with pytest.raises(IllegalInstruction):
            lifter.lift(0xFFFFFFFF, 0)


class TestDbaEngineDetails:
    def test_block_cache_toggle(self):
        isa = rv32im()
        image = assemble(PROGRAMS["two-byte-compare"])
        cached = Explorer(DbaEngine(isa, image, block_cache=True)).explore()
        uncached = Explorer(DbaEngine(isa, image, block_cache=False)).explore()
        assert cached.num_paths == uncached.num_paths


class TestVirtualPrototype:
    def test_bus_counts_transactions(self):
        isa = rv32im()
        image = assemble(PROGRAMS["memory-copy-chain"])
        executor = VpExecutor(isa, image)
        Explorer(executor).explore()
        assert executor.interpreter.bus.transactions > 0
        assert executor.interpreter.kernel.now > 0
        assert executor.interpreter.kernel.delta_cycles > 0

    def test_kernel_event_ordering(self):
        kernel = SimulationKernel()
        fired = []
        kernel.schedule(5, lambda: fired.append("late"))
        kernel.schedule(1, lambda: fired.append("early"))
        kernel.wait(10)
        assert fired == ["early", "late"]
        assert kernel.now == 10

    def test_bus_decode_error(self):
        kernel = SimulationKernel()
        bus = TlmBus(kernel)
        bus.attach(
            MemoryTarget(
                base=0x1000, size=0x100,
                read_fn=lambda a, w: 0, write_fn=lambda a, v, w: None,
            )
        )
        with pytest.raises(RuntimeError):
            bus.transport(Transaction(0x5000, 32, is_write=False))

    def test_vp_matches_binsym_timing_free_results(self):
        isa = rv32im()
        image = assemble(PROGRAMS["signed-ranges"])
        vp = Explorer(VpExecutor(isa, image)).explore()
        plain = Explorer(BinSymExecutor(isa, image)).explore()
        assert vp.num_paths == plain.num_paths
        assert vp.exit_codes == plain.exit_codes
