"""Golden-value tests: every RV32IM instruction, hand-computed results.

Unlike the hypothesis differential suites (which compare against a
Python *reference implementation* that could share a misunderstanding
with the spec), these cases were computed by hand from the RISC-V
Unprivileged ISA manual, Chapter 2 and 7 — an independent third check.
Each case: initial rs1/rs2 (or imm), expected rd.
"""

import pytest

from repro.asm import assemble
from repro.concrete import ConcreteInterpreter
from repro.spec import rv32im


def run(source: str) -> int:
    interp = ConcreteInterpreter(rv32im())
    interp.load_image(assemble(source))
    return interp.run().exit_code


def rr(op: str, a: int, b: int) -> int:
    """Execute `op a0, <a>, <b>` and return a0 (as exit code)."""
    return run(f"""\
_start:
    li t0, {a}
    li t1, {b}
    {op} a0, t0, t1
    li a7, 93
    ecall
""")


def ri(op: str, a: int, imm: int) -> int:
    return run(f"""\
_start:
    li t0, {a}
    {op} a0, t0, {imm}
    li a7, 93
    ecall
""")


GOLDEN_RR = [
    # (op, rs1, rs2, expected)  — hand-computed from the ISA manual
    ("add", 0x7FFFFFFF, 1, 0x80000000),          # signed overflow wraps
    ("add", 0xFFFFFFFF, 1, 0),                   # unsigned wrap
    ("sub", 0, 1, 0xFFFFFFFF),
    ("sub", 0x80000000, 1, 0x7FFFFFFF),
    ("and", 0xF0F0F0F0, 0x0FF00FF0, 0x00F000F0),
    ("or", 0xF0F0F0F0, 0x0FF00FF0, 0xFFF0FFF0),
    ("xor", 0xAAAAAAAA, 0xFFFFFFFF, 0x55555555),
    ("sll", 1, 31, 0x80000000),
    ("sll", 1, 32, 1),                           # amount masked to 5 bits
    ("sll", 1, 33, 2),
    ("srl", 0x80000000, 31, 1),
    ("srl", 0x80000000, 32, 0x80000000),         # masked
    ("sra", 0x80000000, 31, 0xFFFFFFFF),         # sign fill
    ("sra", 0x40000000, 30, 1),
    ("slt", 0xFFFFFFFF, 0, 1),                   # -1 < 0 signed
    ("slt", 0, 0xFFFFFFFF, 0),
    ("slt", 0x80000000, 0x7FFFFFFF, 1),          # INT_MIN < INT_MAX
    ("sltu", 0xFFFFFFFF, 0, 0),                  # max unsigned not < 0
    ("sltu", 0, 1, 1),
    # M extension (Chapter 7)
    ("mul", 0x10000, 0x10000, 0),                # low 32 bits of 2^32
    ("mul", 0xFFFFFFFF, 0xFFFFFFFF, 1),          # (-1)*(-1)
    ("mulh", 0xFFFFFFFF, 0xFFFFFFFF, 0),         # high of 1
    ("mulh", 0x80000000, 0x80000000, 0x40000000),  # (-2^31)^2 >> 32
    ("mulh", 0x80000000, 2, 0xFFFFFFFF),         # -2^32 >> 32 = -1
    ("mulhu", 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE),
    ("mulhsu", 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF),  # -1 * max_u >> 32
    ("div", 7, 2, 3),
    ("div", 0xFFFFFFF9, 2, 0xFFFFFFFD),          # -7/2 = -3 (trunc)
    ("div", 7, 0xFFFFFFFE, 0xFFFFFFFD),          # 7/-2 = -3
    ("div", 1, 0, 0xFFFFFFFF),                   # div by zero -> -1
    ("div", 0x80000000, 0xFFFFFFFF, 0x80000000), # overflow -> INT_MIN
    ("divu", 7, 2, 3),
    ("divu", 1, 0, 0xFFFFFFFF),                  # div by zero -> 2^32-1
    ("divu", 0xFFFFFFFF, 1, 0xFFFFFFFF),
    ("rem", 7, 2, 1),
    ("rem", 0xFFFFFFF9, 2, 0xFFFFFFFF),          # -7%2 = -1 (sign of dividend)
    ("rem", 7, 0xFFFFFFFE, 1),                   # 7%-2 = 1
    ("rem", 1, 0, 1),                            # rem by zero -> dividend
    ("rem", 0x80000000, 0xFFFFFFFF, 0),          # overflow -> 0
    ("remu", 7, 2, 1),
    ("remu", 1, 0, 1),
    ("remu", 0xFFFFFFFF, 0x10000, 0xFFFF),
]

GOLDEN_RI = [
    ("addi", 0, -2048, 0xFFFFF800),
    ("addi", 0xFFFFFFFF, 1, 0),
    ("andi", 0xFFFFFFFF, -1, 0xFFFFFFFF),        # imm sign-extends
    ("andi", 0x12345678, 0xFF, 0x78),
    ("ori", 0, -1, 0xFFFFFFFF),
    ("xori", 0xAAAAAAAA, -1, 0x55555555),        # xori x,-1 == not
    ("slti", 0xFFFFFFFF, 0, 1),
    ("slti", 5, -3, 0),
    ("sltiu", 0, 1, 1),
    ("sltiu", 0xFFFFFFFF, -1, 0),                # sltiu vs 0xffffffff: equal
    ("slli", 1, 31, 0x80000000),
    ("srli", 0xFFFFFFFF, 31, 1),
    ("srai", 0x80000000, 4, 0xF8000000),
]


@pytest.mark.parametrize(
    "op,a,b,expected", GOLDEN_RR,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(GOLDEN_RR)],
)
def test_rr_golden(op, a, b, expected):
    assert rr(op, a, b) == expected


@pytest.mark.parametrize(
    "op,a,imm,expected", GOLDEN_RI,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(GOLDEN_RI)],
)
def test_ri_golden(op, a, imm, expected):
    assert ri(op, a, imm) == expected


class TestGoldenAcrossEngines:
    """The same golden values hold for every symbolic engine (concrete
    single-path runs) — one test sweeping the full RR table per engine."""

    @pytest.mark.parametrize("engine", ["binsym", "binsec", "symex-vp", "angr"])
    def test_rr_sweep(self, engine):
        from repro.eval.engines import explore_with

        failures = []
        for op, a, b, expected in GOLDEN_RR:
            source = f"""\
_start:
    li t0, {a}
    li t1, {b}
    {op} a0, t0, t1
    li a7, 93
    ecall
"""
            result = explore_with(engine, assemble(source))
            actual = result.paths[0].exit_code
            if actual != expected:
                failures.append((op, a, b, expected, actual))
        assert not failures, failures
