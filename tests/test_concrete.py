"""Tests for the spec-derived concrete interpreter (the RV32 emulator).

Includes a hypothesis-driven differential suite: every instruction's
result is compared against an independent Python reference semantics
(``repro.smt.bvops``), catching both spec bugs and interpreter bugs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.hart import HaltReason
from repro.asm import assemble
from repro.asm.encoder import encode_instruction
from repro.concrete import ConcreteInterpreter, HostPlatform
from repro.smt import bvops
from repro.spec import IllegalInstruction, rv32im

WORD = 0xFFFFFFFF


def run_program(source, max_steps=100_000, platform=None):
    interp = ConcreteInterpreter(rv32im(), platform=platform)
    interp.load_image(assemble(source))
    interp.run(max_steps)
    return interp


def exec_single(name, rs1_val, rs2_val, imm=0):
    """Execute one R/I-type instruction with given operands; return rd."""
    isa = rv32im()
    encoding = isa.decoder.by_name(name)
    kwargs = dict(rd=3, rs1=1, rs2=2)
    if encoding.fmt in ("i", "shift", "load"):
        kwargs = dict(rd=3, rs1=1, imm=imm)
    word = encode_instruction(encoding, **kwargs)
    interp = ConcreteInterpreter(isa)
    interp.memory.write(0x1000, word, 32)
    interp.hart.pc = 0x1000
    interp.hart.regs.write(1, rs1_val)
    interp.hart.regs.write(2, rs2_val)
    interp.step()
    return interp.hart.regs.read(3)


# Reference semantics for R-type ops, independent from the spec DSL.
R_REFERENCE = {
    "add": lambda a, b: bvops.bv_add(a, b, 32),
    "sub": lambda a, b: bvops.bv_sub(a, b, 32),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: bvops.bv_shl(a, b & 31, 32),
    "srl": lambda a, b: bvops.bv_lshr(a, b & 31, 32),
    "sra": lambda a, b: bvops.bv_ashr(a, b & 31, 32),
    "slt": lambda a, b: int(bvops.to_signed(a, 32) < bvops.to_signed(b, 32)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: bvops.bv_mul(a, b, 32),
    "mulh": lambda a, b: (bvops.to_signed(a, 32) * bvops.to_signed(b, 32) >> 32)
    & WORD,
    "mulhu": lambda a, b: (a * b) >> 32,
    "mulhsu": lambda a, b: (bvops.to_signed(a, 32) * b >> 32) & WORD,
}


def _div_reference(a, b):
    if b == 0:
        return WORD
    sa, sb = bvops.to_signed(a, 32), bvops.to_signed(b, 32)
    if sa == -(1 << 31) and sb == -1:
        return 0x80000000
    q = abs(sa) // abs(sb)
    return (-q if (sa < 0) != (sb < 0) else q) & WORD


def _rem_reference(a, b):
    if b == 0:
        return a
    sa, sb = bvops.to_signed(a, 32), bvops.to_signed(b, 32)
    if sa == -(1 << 31) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    return (-r if sa < 0 else r) & WORD


R_REFERENCE["div"] = _div_reference
R_REFERENCE["rem"] = _rem_reference
R_REFERENCE["divu"] = lambda a, b: WORD if b == 0 else a // b
R_REFERENCE["remu"] = lambda a, b: a if b == 0 else a % b


@given(st.data())
@settings(max_examples=300, deadline=None)
def test_rtype_differential(data):
    """Every R-type instruction agrees with the Python reference."""
    name = data.draw(st.sampled_from(sorted(R_REFERENCE)))
    a = data.draw(st.integers(0, WORD))
    b = data.draw(
        st.one_of(
            st.integers(0, WORD),
            st.sampled_from([0, 1, WORD, 0x80000000, 31, 32]),
        )
    )
    assert exec_single(name, a, b) == R_REFERENCE[name](a, b), name


I_REFERENCE = {
    "addi": lambda a, i: bvops.bv_add(a, i & WORD, 32),
    "xori": lambda a, i: a ^ (i & WORD),
    "ori": lambda a, i: a | (i & WORD),
    "andi": lambda a, i: a & (i & WORD),
    "slti": lambda a, i: int(bvops.to_signed(a, 32) < i),
    "sltiu": lambda a, i: int(a < (i & WORD)),
}


@given(st.data())
@settings(max_examples=200, deadline=None)
def test_itype_differential(data):
    name = data.draw(st.sampled_from(sorted(I_REFERENCE)))
    a = data.draw(st.integers(0, WORD))
    imm = data.draw(st.integers(-2048, 2047))
    assert exec_single(name, a, 0, imm=imm) == I_REFERENCE[name](a, imm), name


@given(st.integers(0, WORD), st.integers(0, 31))
@settings(max_examples=120, deadline=None)
def test_shift_immediates_differential(a, shamt):
    assert exec_single("slli", a, 0, imm=shamt) == bvops.bv_shl(a, shamt, 32)
    assert exec_single("srli", a, 0, imm=shamt) == bvops.bv_lshr(a, shamt, 32)
    assert exec_single("srai", a, 0, imm=shamt) == bvops.bv_ashr(a, shamt, 32)


class TestLoadsAndStores:
    @pytest.mark.parametrize(
        "op,stored,expected",
        [
            ("lb", 0x80, 0xFFFFFF80),
            ("lb", 0x7F, 0x7F),
            ("lbu", 0x80, 0x80),
            ("lh", 0x8000, 0xFFFF8000),
            ("lh", 0x7FFF, 0x7FFF),
            ("lhu", 0x8000, 0x8000),
            ("lw", 0xDEADBEEF, 0xDEADBEEF),
        ],
    )
    def test_load_extension(self, op, stored, expected):
        source = f"""\
_start:
    li t0, 0x20000
    li t1, {stored:#x}
    sw t1, 0(t0)
    {op} a0, 0(t0)
    li a7, 93
    ecall
"""
        interp = run_program(source)
        assert interp.hart.exit_code == expected

    def test_store_width_truncation(self):
        source = """\
_start:
    li t0, 0x20000
    li t1, -1
    sw t1, 0(t0)            # ffffffff
    li t2, 0
    sb t2, 1(t0)            # ffff00ff
    lw a0, 0(t0)
    li a7, 93
    ecall
"""
        assert run_program(source).hart.exit_code == 0xFFFF00FF

    def test_little_endian_layout(self):
        source = """\
_start:
    li t0, 0x20000
    li t1, 0x11223344
    sw t1, 0(t0)
    lbu a0, 0(t0)
    li a7, 93
    ecall
"""
        assert run_program(source).hart.exit_code == 0x44

    def test_negative_offset(self):
        source = """\
_start:
    li t0, 0x20010
    li t1, 99
    sb t1, -16(t0)
    lbu a0, -16(t0)
    li a7, 93
    ecall
"""
        assert run_program(source).hart.exit_code == 99


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        source = """\
_start:
    li t0, 5
    li t1, 5
    li a0, 0
    bne t0, t1, bad
    addi a0, a0, 1
    beq t0, t1, good
bad:
    li a0, 99
good:
    li a7, 93
    ecall
"""
        assert run_program(source).hart.exit_code == 1

    def test_jal_links_pc_plus_4(self):
        source = """\
_start:
    jal ra, target
back:
    li a7, 93
    ecall                   # a0 set in target
target:
    mv a0, ra
    jr ra
"""
        image = assemble(source)
        interp = ConcreteInterpreter(rv32im())
        interp.load_image(image)
        interp.run()
        assert interp.hart.exit_code == image.symbol("back")

    def test_jalr_clears_low_bit(self):
        source = """\
_start:
    la t0, target
    ori t0, t0, 1           # misaligned target
    jalr ra, t0, 0
    ebreak
target:
    li a0, 7
    li a7, 93
    ecall
"""
        interp = run_program(source)
        assert interp.hart.halt_reason == HaltReason.EXIT
        assert interp.hart.exit_code == 7

    @pytest.mark.parametrize(
        "branch,a,b,taken",
        [
            ("blt", -1, 0, True),
            ("blt", 0, -1, False),
            ("bltu", -1, 0, False),  # 0xffffffff is large unsigned
            ("bltu", 0, -1, True),
            ("bge", 1, -1, True),
            ("bgeu", 1, -1, False),
            ("beq", 3, 3, True),
            ("bne", 3, 3, False),
        ],
    )
    def test_branch_semantics(self, branch, a, b, taken):
        source = f"""\
_start:
    li t0, {a}
    li t1, {b}
    li a0, 0
    {branch} t0, t1, yes
    j done
yes:
    li a0, 1
done:
    li a7, 93
    ecall
"""
        assert run_program(source).hart.exit_code == int(taken)


class TestX0AndPC:
    def test_x0_write_discarded(self):
        source = """\
_start:
    li t0, 7
    add x0, t0, t0
    mv a0, x0
    li a7, 93
    ecall
"""
        assert run_program(source).hart.exit_code == 0

    def test_auipc(self):
        source = "_start:\n auipc a0, 0\n li a7, 93\n ecall\n"
        assert run_program(source).hart.exit_code == 0x10000

    def test_instret_counts(self):
        interp = run_program("_start:\n nop\n nop\n li a7, 93\n ecall\n")
        assert interp.hart.instret == 4


class TestEnvironment:
    def test_exit_code(self):
        interp = run_program("_start:\n li a0, 42\n li a7, 93\n ecall\n")
        assert interp.hart.halt_reason == HaltReason.EXIT
        assert interp.hart.exit_code == 42

    def test_write_collects_stdout(self):
        platform = HostPlatform()
        source = """\
_start:
    li a0, 1
    la a1, msg
    li a2, 5
    li a7, 64
    ecall
    li a7, 93
    li a0, 0
    ecall
.data
msg:
    .asciz "hello"
"""
        run_program(source, platform=platform)
        assert platform.stdout_text() == "hello"

    def test_ebreak_halts(self):
        interp = run_program("_start:\n ebreak\n")
        assert interp.hart.halt_reason == HaltReason.EBREAK

    def test_make_symbolic_is_noop(self):
        source = """\
_start:
    li a0, 0x20000
    li a1, 4
    li a7, 1337
    ecall
    lw a0, 0(a0)
    li a7, 93
    ecall
"""
        # Wait: a0 was clobbered by make_symbolic? The ABI does not
        # define return values for it; the program reloads the buffer.
        interp = run_program(source.replace("lw a0, 0(a0)",
                                            "li t0, 0x20000\n    lw a0, 0(t0)"))
        assert interp.hart.exit_code == 0

    def test_unknown_syscall_raises(self):
        with pytest.raises(ValueError):
            run_program("_start:\n li a7, 9999\n ecall\n")

    def test_illegal_instruction(self):
        interp = ConcreteInterpreter(rv32im())
        interp.load_image(assemble("_start:\n .word 0xffffffff\n"))
        with pytest.raises(IllegalInstruction):
            interp.run()
        assert interp.hart.halt_reason == HaltReason.ILLEGAL

    def test_out_of_fuel(self):
        interp = ConcreteInterpreter(rv32im())
        interp.load_image(assemble("_start:\n j _start\n"))
        interp.run(max_steps=10)
        assert interp.hart.halt_reason == HaltReason.OUT_OF_FUEL


class TestPrograms:
    def test_fibonacci(self):
        source = """\
_start:
    li a0, 15
    li a1, 0
    li a2, 1
loop:
    beqz a0, done
    add a3, a1, a2
    mv a1, a2
    mv a2, a3
    addi a0, a0, -1
    j loop
done:
    mv a0, a1
    li a7, 93
    ecall
"""
        assert run_program(source).hart.exit_code == 610

    def test_memcpy_and_strlen(self):
        source = """\
_start:
    la t0, src
    li t1, 0x30000
    li t2, 6
copy:
    beqz t2, copied
    lbu t3, 0(t0)
    sb t3, 0(t1)
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, -1
    j copy
copied:
    li t1, 0x30000
    li a0, 0
strlen:
    lbu t3, 0(t1)
    beqz t3, done
    addi a0, a0, 1
    addi t1, t1, 1
    j strlen
done:
    li a7, 93
    ecall
.data
src:
    .asciz "hello"
"""
        assert run_program(source).hart.exit_code == 5

    def test_recursive_factorial_with_stack(self):
        source = """\
_start:
    li sp, 0x40000
    li a0, 6
    call fact
    li a7, 93
    ecall
fact:
    li t0, 2
    bge a0, t0, recurse
    li a0, 1
    ret
recurse:
    addi sp, sp, -8
    sw ra, 4(sp)
    sw a0, 0(sp)
    addi a0, a0, -1
    call fact
    lw t1, 0(sp)
    lw ra, 4(sp)
    addi sp, sp, 8
    mul a0, a0, t1
    ret
"""
        assert run_program(source).hart.exit_code == 720
