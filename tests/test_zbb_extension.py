"""Tests for the Zbb extension — extensibility beyond the MADD case study.

Covers the paper's "catch up" argument (Sect. III): the spec-derived
tools (decoder, assembler, emulator, BinSym) support a newly added
ratified extension immediately, while the hand-written lifters of the
IR-based baseline engines do not know the instructions and fail.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import Assembler
from repro.asm.encoder import encode_instruction
from repro.baselines.dba import DbaEngine
from repro.baselines.vexir import VexEngine
from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer, InputAssignment
from repro.smt import bvops
from repro.spec import rv32im
from repro.spec.isa import rv32im_zbb
from repro.spec.zbb import ENCODINGS

WORD = 0xFFFFFFFF


def reference(name, a, b):
    sa, sb = bvops.to_signed(a, 32), bvops.to_signed(b, 32)
    amount = b & 31
    return {
        "andn": a & (b ^ WORD),
        "orn": a | (b ^ WORD),
        "xnor": (a ^ b) ^ WORD,
        "min": a if sa < sb else b,
        "minu": min(a, b),
        "max": b if sa < sb else a,
        "maxu": max(a, b),
        "rol": ((a << amount) | (a >> ((32 - amount) & 31))) & WORD,
        "ror": ((a >> amount) | (a << ((32 - amount) & 31))) & WORD,
    }[name]


def run_one(name, a, b):
    isa = rv32im_zbb()
    word = encode_instruction(isa.decoder.by_name(name), rd=3, rs1=1, rs2=2)
    interp = ConcreteInterpreter(isa)
    interp.memory.write(0x1000, word, 32)
    interp.hart.pc = 0x1000
    interp.hart.regs.write(1, a)
    interp.hart.regs.write(2, b)
    interp.step()
    return interp.hart.regs.read(3)


class TestEncodings:
    def test_official_match_values(self):
        by_name = {e.name: e for e in ENCODINGS}
        # Golden values from riscv-opcodes.
        assert by_name["andn"].match == 0x40007033
        assert by_name["orn"].match == 0x40006033
        assert by_name["xnor"].match == 0x40004033
        assert by_name["min"].match == 0x0A004033
        assert by_name["maxu"].match == 0x0A007033
        assert by_name["rol"].match == 0x60001033
        assert by_name["ror"].match == 0x60005033

    def test_no_conflicts_with_base_isa(self):
        isa = rv32im_zbb()  # Decoder construction checks for conflicts
        assert isa.decoder.decode(0x40007033).name == "andn"
        # sub (0x40000033) still decodes as sub.
        assert isa.decoder.decode(0x40000033).name == "sub"

    def test_base_isa_rejects(self):
        from repro.spec import IllegalInstruction

        with pytest.raises(IllegalInstruction):
            rv32im().decoder.decode(0x40007033)


@given(st.data())
@settings(max_examples=200, deadline=None)
def test_zbb_differential(data):
    name = data.draw(st.sampled_from(sorted(e.name for e in ENCODINGS)))
    a = data.draw(st.integers(0, WORD))
    b = data.draw(
        st.one_of(st.integers(0, WORD), st.sampled_from([0, 1, 31, 32, WORD]))
    )
    assert run_one(name, a, b) == reference(name, a, b), name


class TestRotateEdgeCases:
    @pytest.mark.parametrize("name", ["rol", "ror"])
    def test_rotate_by_zero(self, name):
        assert run_one(name, 0x12345678, 0) == 0x12345678

    def test_rotate_by_32_is_identity(self):
        assert run_one("rol", 0xDEADBEEF, 32) == 0xDEADBEEF

    def test_rol_ror_inverse(self):
        rotated = run_one("rol", 0xCAFEBABE, 13)
        assert run_one("ror", rotated, 13) == 0xCAFEBABE


class TestAssemblerIntegration:
    def test_assembles_from_mnemonics(self):
        isa = rv32im_zbb()
        source = """\
_start:
    li t0, 0x0f0f0f0f
    li t1, 0x00ff00ff
    andn a0, t0, t1
    li a7, 93
    ecall
"""
        image = Assembler(isa=isa).assemble(source)
        interp = ConcreteInterpreter(isa)
        interp.load_image(image)
        assert interp.run().exit_code == 0x0F000F00


class TestSymbolicSupport:
    SOURCE = """\
_start:
    li a0, 0x20000
    li a1, 1
    li a7, 1337
    ecall
    li t0, 0x20000
    lbu t1, 0(t0)
    li t2, 8
    ror t3, t1, t2          # rotate the symbolic byte
    li t4, 0x42000000
    beq t3, t4, hit         # reachable iff input byte == 0x42
    li a0, 0
    li a7, 93
    ecall
hit:
    li a0, 1
    li a7, 93
    ecall
"""

    def test_binsym_supports_zbb_immediately(self):
        isa = rv32im_zbb()
        image = Assembler(isa=isa).assemble(self.SOURCE)
        result = Explorer(BinSymExecutor(isa, image)).explore()
        assert result.num_paths == 2
        hit = next(p for p in result.paths if p.exit_code == 1)
        assert next(iter(hit.assignment.values.values())) == 0x42

    @pytest.mark.parametrize("engine_cls", [VexEngine, DbaEngine])
    def test_ir_lifters_have_not_caught_up(self, engine_cls):
        """The paper's Sect. III argument, pinned: hand-written lifters
        need manual work for each new extension."""
        isa = rv32im_zbb()
        image = Assembler(isa=isa).assemble(self.SOURCE)
        engine = engine_cls(isa, image)
        with pytest.raises(NotImplementedError):
            engine.execute(InputAssignment())
