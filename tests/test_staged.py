"""Staged semantics execution (PR 3): differential and unit tests.

The staging layer (:mod:`repro.spec.staged`) must be observationally
invisible: for any program, input and interpreter, staged and unstaged
execution must produce identical machine states, traces, path sets and
solver-query attribution.  These tests pin that equivalence with
randomized single-instruction differentials over every encoding of the
composed ISA (including the Sect. IV MADD extension instruction) and
with whole-exploration differentials over the tier-1 workloads.
"""

import random

import pytest

from repro.asm import assemble
from repro.concrete import ConcreteInterpreter, TracingInterpreter
from repro.core import BinSymExecutor, Explorer, InputAssignment
from repro.core.interpreter import SymbolicInterpreter
from repro.core.symvalue import SymValue
from repro.eval.workloads import TABLE1_WORKLOADS, WORKLOADS
from repro.smt import terms as T
from repro.spec import rv32im, rv32im_zbb, rv32im_zimadd
from repro.spec.staged import bind_plan, record_plan

_TEXT = 0x0000_1000
_DATA = 0x0002_0000


@pytest.fixture(scope="module")
def isa():
    return rv32im_zimadd()


@pytest.fixture(scope="module")
def isa_zbb():
    return rv32im_zbb()


def _random_word(rng, encoding):
    """A uniformly random instance of one encoding."""
    return (rng.getrandbits(32) & ~encoding.mask & 0xFFFFFFFF) | encoding.match


def _interesting_words(isa_obj, rng, count):
    """Random instruction words covering every encoding of the ISA.

    ``ecall`` is excluded: with a random a7 it traps on an unknown
    syscall number in both execution modes, which proves nothing.
    """
    encodings = [e for e in isa_obj.encodings if e.name != "ecall"]
    words = [_random_word(rng, e) for e in encodings]  # one per encoding
    while len(words) < count:
        words.append(_random_word(rng, rng.choice(encodings)))
    return words


def _seed_concrete(interp, rng):
    for index in range(1, 32):
        # Small values keep load/store addresses inside the data page
        # often enough to exercise memory plans.
        value = rng.choice(
            (rng.getrandbits(32), _DATA + rng.randrange(0, 64), rng.randrange(0, 8))
        )
        interp.hart.regs.write(index, value & 0xFFFFFFFF)
    interp.memory.write_bytes(_DATA, bytes(rng.getrandbits(8) for _ in range(128)))
    interp.hart.reset(_TEXT)


class TestConcreteDifferential:
    def test_random_words_single_step(self, isa):
        rng = random.Random(1234)
        words = _interesting_words(isa, rng, 300)
        for word in words:
            seed = rng.getrandbits(32)
            states = []
            for staging in (True, False):
                interp = ConcreteInterpreter(isa, staging=staging)
                _seed_concrete(interp, random.Random(seed))
                interp.memory.write(_TEXT, word, 32)
                interp.step()
                states.append(
                    (
                        interp.hart.regs.snapshot(),
                        interp.hart.pc,
                        interp.hart.halted,
                        interp.hart.halt_reason,
                        interp.memory._pages,
                    )
                )
            staged, unstaged = states
            assert staged == unstaged, f"divergence on word {word:#010x}"

    def test_random_words_zbb(self, isa_zbb):
        rng = random.Random(99)
        for word in _interesting_words(isa_zbb, rng, 120):
            seed = rng.getrandbits(32)
            snaps = []
            for staging in (True, False):
                interp = ConcreteInterpreter(isa_zbb, staging=staging)
                _seed_concrete(interp, random.Random(seed))
                interp.memory.write(_TEXT, word, 32)
                interp.step()
                snaps.append((interp.hart.regs.snapshot(), interp.hart.pc))
            assert snaps[0] == snaps[1], f"divergence on word {word:#010x}"

    def test_trace_identical_on_workload(self, isa):
        image = WORKLOADS["bubble-sort"].image(3)
        renders = []
        for staging in (True, False):
            tracer = TracingInterpreter(isa, staging=staging)
            tracer.load_image(image)
            tracer.run()
            renders.append(tracer.render())
        assert renders[0] == renders[1]


def _seed_symbolic(interp, rng):
    interp.reset(InputAssignment())
    for index in range(1, 32):
        concrete = rng.getrandbits(32)
        if rng.random() < 0.4:
            term = T.bv_var(f"v{index}", 32)
            interp.hart.regs.write(index, SymValue(concrete, 32, term))
        elif rng.random() < 0.5:
            interp.hart.regs.write(
                index, SymValue(_DATA + rng.randrange(0, 64), 32)
            )
        else:
            interp.hart.regs.write(index, SymValue(concrete, 32))
    interp.memory.write_bytes(_DATA, bytes(rng.getrandbits(8) for _ in range(128)))
    interp.hart.pc = _TEXT


class TestSymbolicDifferential:
    def test_random_words_single_step(self, isa):
        rng = random.Random(4321)
        image = assemble("_start:\n nop\n")
        words = _interesting_words(isa, rng, 250)
        for word in words:
            seed = rng.getrandbits(32)
            states = []
            for staging in (True, False):
                interp = SymbolicInterpreter(isa, image, staging=staging)
                _seed_symbolic(interp, random.Random(seed))
                interp.memory.write(_TEXT, word, 32)
                interp.step()
                regs = interp.hart.regs.snapshot()
                states.append(
                    (
                        [(v.concrete, v.width, v.term) for v in regs],
                        interp.hart.pc,
                        interp.hart.halted,
                        [
                            (r.condition, r.pc, r.taken, r.flippable)
                            for r in interp.trace
                        ],
                        interp.shadow._shadow,
                        interp.memory._pages,
                    )
                )
            staged, unstaged = states
            assert staged == unstaged, f"divergence on word {word:#010x}"

    def test_force_terms_differential(self, isa):
        # force_terms exercises the no-const-folding compile path.
        rng = random.Random(77)
        image = assemble("_start:\n nop\n")
        for word in _interesting_words(isa, rng, 60):
            seed = rng.getrandbits(32)
            states = []
            for staging in (True, False):
                interp = SymbolicInterpreter(
                    isa, image, force_terms=True, staging=staging
                )
                _seed_symbolic(interp, random.Random(seed))
                interp.memory.write(_TEXT, word, 32)
                interp.step()
                regs = interp.hart.regs.snapshot()
                states.append(
                    (
                        [(v.concrete, v.width, v.term) for v in regs],
                        interp.hart.pc,
                        len(interp.trace),
                    )
                )
            assert states[0] == states[1], f"divergence on word {word:#010x}"


class TestExplorationDifferential:
    """Path sets and query attribution are staging-invariant."""

    @pytest.mark.parametrize("name", TABLE1_WORKLOADS)
    def test_workload_paths_and_queries(self, name):
        isa_obj = rv32im()
        image = WORKLOADS[name].image(3)
        results = {}
        for staging in (True, False):
            engine = BinSymExecutor(isa_obj, image, staging=staging)
            results[staging] = Explorer(engine, use_cache=True).explore()
        staged, unstaged = results[True], results[False]
        assert staged.path_set() == unstaged.path_set()
        assert staged.num_paths == unstaged.num_paths
        assert staged.total_instructions == unstaged.total_instructions
        assert staged.num_queries == unstaged.num_queries
        assert staged.sat_solves == unstaged.sat_solves
        assert staged.cache_hits == unstaged.cache_hits
        assert staged.fast_path_answers == unstaged.fast_path_answers
        assert staged.pruned_queries == unstaged.pruned_queries
        assert staged.solver_stats == unstaged.solver_stats

    def test_parallel_matches_serial_with_and_without_staging(self):
        isa_obj = rv32im()
        image = WORKLOADS["insertion-sort"].image(3)
        reference = None
        for staging in (True, False):
            for jobs in (1, 2):
                engine = BinSymExecutor(isa_obj, image)
                result = Explorer(
                    engine, jobs=jobs, use_cache=True, staging=staging
                ).explore()
                if reference is None:
                    reference = result
                else:
                    assert result.path_set() == reference.path_set()
                    assert result.num_queries == reference.num_queries
                    assert result.sat_solves == reference.sat_solves

    def test_explorer_staging_flag_reaches_executor(self):
        isa_obj = rv32im()
        image = WORKLOADS["uri-parser"].image(2)
        engine = BinSymExecutor(isa_obj, image)
        assert engine.interpreter.staging is True
        Explorer(engine, staging=False)
        assert engine.interpreter.staging is False
        Explorer(engine, staging=True)
        assert engine.interpreter.staging is True


class TestMaddExtension:
    """A MADD-style extension instruction stages with zero changes."""

    def test_madd_is_staged_and_identical(self, isa):
        source = """\
_start:
    li t0, 123456
    li t1, 789
    li t2, 55
    madd t3, t0, t1, t2
    li a7, 93
    li a0, 0
    ecall
"""
        image = assemble(source, isa=isa)
        regs = []
        for staging in (True, False):
            interp = ConcreteInterpreter(isa, staging=staging)
            interp.load_image(image)
            interp.run()
            regs.append(interp.hart.regs.snapshot())
        assert regs[0] == regs[1]
        assert regs[0][28] == (123456 * 789 + 55) & 0xFFFFFFFF

    def test_madd_plan_recorded(self, isa):
        word = isa.decoder.by_name("madd").match
        plan = record_plan(isa.semantics_for("madd"), word)
        assert plan is not None
        # 3 register reads + 1 register write.
        assert [s[0] for s in plan.steps] == ["reg", "reg", "reg", "wreg"]


class TestStagingMachinery:
    def test_division_semantics_stage_as_guarded_subplans(self, isa):
        image = assemble(
            """\
_start:
    li t0, 100
    li t1, 0
    divu t2, t0, t1
    li t1, 7
    divu t3, t0, t1
    rem t4, t0, t1
    li a7, 93
    li a0, 0
    ecall
"""
        )
        regs = []
        for staging in (True, False):
            interp = ConcreteInterpreter(isa, staging=staging)
            interp.load_image(image)
            interp.run()
            regs.append(interp.hart.regs.snapshot())
        assert regs[0] == regs[1]
        assert regs[0][7] == 0xFFFFFFFF  # t2: div-by-zero yields all-ones
        assert regs[0][28] == 100 // 7  # t3
        assert regs[0][29] == 100 % 7  # t4

    def test_compiled_plan_cache_shared_per_domain_key(self, isa):
        a = ConcreteInterpreter(isa)
        b = ConcreteInterpreter(isa)
        word = 0x002081B3  # add x3, x1, x2
        plan_a = isa.compiled_plan(word, "add", a.domain, a._domain_key)
        plan_b = isa.compiled_plan(word, "add", b.domain, b._domain_key)
        assert plan_a is plan_b

    def test_set_staging_clears_memo(self, isa):
        interp = ConcreteInterpreter(isa)
        interp.memory.write(_TEXT, 0x002081B3, 32)
        interp.hart.reset(_TEXT)
        interp.step()
        assert interp._exec_cache
        interp.set_staging(False)
        assert not interp._exec_cache
        assert interp.staging is False

    def test_decode_cache_lru(self, isa):
        decoder = isa.decoder
        decoder.cache_clear()
        first = decoder.decode(0x002081B3)
        again = decoder.decode(0x002081B3)
        assert first is again  # cache hit returns the memoized object
        entries, capacity = decoder.cache_info()
        assert entries >= 1 and capacity >= entries

    def test_unknown_primitive_falls_back(self, isa):
        class Mystery:
            pass

        def semantics():
            yield Mystery()

        assert record_plan(semantics, 0) is None

    def test_bind_plan_roundtrip_concrete(self, isa):
        # addi x5, x0, 42
        word = 0x02A00293
        plan = record_plan(isa.semantics_for("addi"), word)
        assert plan is not None
        interp = ConcreteInterpreter(isa)
        compiled = bind_plan(plan, interp.domain)
        interp.hart.reset(_TEXT)
        interp._current_word = word
        interp._next_pc = _TEXT + 4
        compiled.run(interp)
        assert interp.hart.regs.read(5) == 42
