"""Anytime exploration invariants (PR 9: deadlines, watchdog, governor).

The contract this file pins: for any ``deadline`` / ``memory_budget_mb``
and any fault schedule including ``hang=`` / ``memhog=``, exploration
*terminates* and returns either the healthy run's path set or an
explicitly counted subset (``incomplete_paths`` + ``unknown_queries``
plus the ``deadline_expired`` flag and ``hung_workers`` /
``degradations`` counters) — never a hang, never a silent loss.  A
deadline-cut campaign checkpoints such that ``--resume`` completes the
uninterrupted run's exact path set.
"""

import tempfile
import time

import pytest

from repro.core import Explorer, FaultPlan, MemoryGovernor
from repro.core.faults import MEMHOG_BYTES
from repro.core.governor import build_exploration_governor
from repro.core.parallel import (
    DEFAULT_HANG_TIMEOUT,
    HEARTBEAT_INTERVAL,
    _backoff_delay,
)
from repro.smt.preprocess import PreprocessConfig
from repro.smt.sat import SatSolver
from repro.smt.solver import CachingSolver, Result, Solver
from tests.test_faults import (
    assert_subset_or_accounted,
    build_executor,
    needs_fork,
    _hard_query,
)


class TestFaultPlanAnytimeKinds:
    def test_hang_and_memhog_round_trip(self):
        plan = FaultPlan.parse("hang=10,memhog=20,seed=3")
        assert plan == FaultPlan(seed=3, hang_rate=10, memhog_rate=20)
        assert plan.active

    def test_hang_decisions_deterministic(self):
        plan = FaultPlan(seed=2, hang_rate=50)
        draws = [plan.should_hang("w0", n) for n in range(64)]
        assert draws == [plan.should_hang("w0", n) for n in range(64)]
        assert any(draws) and not all(draws)
        assert not any(FaultPlan().should_hang("w0", n) for n in range(64))

    def test_memhog_bytes(self):
        assert FaultPlan(memhog_rate=100).memhog_bytes("w", 0) == MEMHOG_BYTES
        assert FaultPlan(memhog_rate=0).memhog_bytes("w", 0) == 0


class TestWallClockBudget:
    def test_exhausted_wall_budget_yields_unknown(self):
        solver = Solver(wall_budget=0.0)
        assert solver.check(_hard_query()) is Result.UNKNOWN
        assert solver.num_unknowns == 1
        # The same query, unbudgeted, is answered exactly.
        assert Solver().check(_hard_query()) is Result.SAT

    def test_wall_budget_threads_through_config(self):
        config = PreprocessConfig(wall_budget=0.0)
        solver = CachingSolver(preprocess=config)
        assert solver.check(_hard_query()) is Result.UNKNOWN
        assert solver.pipeline_statistics["unknown_queries"] == 1

    def test_generous_wall_budget_changes_nothing(self):
        assert Solver(wall_budget=3600.0).check(_hard_query()) is Result.SAT

    def test_wall_give_up_resets_solver_state(self):
        """After a wall-clock UNKNOWN the core must answer the next
        query exactly (same reset contract as the conflict budget)."""
        solver = SatSolver(wall_budget=0.0)
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve([]) is None  # UNKNOWN
        assert solver.statistics["budget_exhausted"] == 1
        solver.wall_budget = None
        assert solver.solve([]) is True

    def test_wall_budget_exploration_degrades_soundly(self):
        baseline = Explorer(build_executor(), use_cache=True).explore()
        degraded = Explorer(
            build_executor(),
            use_cache=True,
            preprocess=PreprocessConfig(wall_budget=0.0),
        ).explore()
        assert_subset_or_accounted(degraded, baseline)


class TestBackoff:
    def test_first_spawn_has_no_delay(self):
        assert _backoff_delay(0, 0, 0) == 0.0

    def test_deterministic_and_seed_sensitive(self):
        delays = [_backoff_delay(1, 2, n) for n in range(1, 8)]
        assert delays == [_backoff_delay(1, 2, n) for n in range(1, 8)]
        assert delays != [_backoff_delay(9, 2, n) for n in range(1, 8)]

    def test_exponential_envelope_and_cap(self):
        for respawns in range(1, 16):
            base = min(0.02 * (2 ** (respawns - 1)), 2.0)
            delay = _backoff_delay(7, 3, respawns)
            assert 0.5 * base <= delay < 1.5 * base
        assert _backoff_delay(7, 3, 40) < 3.0  # capped forever after

    def test_watchdog_constants_sane(self):
        assert HEARTBEAT_INTERVAL * 4 <= DEFAULT_HANG_TIMEOUT


class TestDeadline:
    def test_deadline_zero_cuts_before_any_run(self):
        result = Explorer(build_executor(), deadline=0.0).explore()
        assert result.deadline_expired
        assert result.interrupted
        assert result.num_paths == 0
        assert result.incomplete_paths >= 1
        assert "[deadline expired]" in result.summary()

    def test_no_deadline_changes_nothing(self):
        baseline = Explorer(build_executor()).explore()
        generous = Explorer(build_executor(), deadline=3600.0).explore()
        assert generous.path_set() == baseline.path_set()
        assert not generous.deadline_expired
        assert generous.incomplete_paths == 0

    def test_deadline_cut_then_resume_completes_path_set(self):
        """The PR's acceptance bar: a deadline-cut checkpointed campaign
        resumed without a deadline equals the uninterrupted run."""
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as tmp:
            cut = Explorer(
                build_executor(), checkpoint_dir=tmp, deadline=0.0
            ).explore()
            assert cut.deadline_expired
            assert cut.num_paths + cut.incomplete_paths >= 1
            resumed = Explorer(
                build_executor(), checkpoint_dir=tmp, resume=True
            ).explore()
        assert resumed.path_set() == baseline.path_set()
        assert not resumed.interrupted
        assert not resumed.deadline_expired
        # The drained-frontier count is not persisted: the resumed run
        # re-explored those items, so nothing is double-booked.
        assert resumed.incomplete_paths == 0
        assert resumed.total_instructions == baseline.total_instructions

    @needs_fork
    def test_deadline_cut_then_resume_with_pool(self):
        baseline = Explorer(build_executor()).explore()
        with tempfile.TemporaryDirectory() as tmp:
            cut = Explorer(
                build_executor(), jobs=2, checkpoint_dir=tmp, deadline=0.0
            ).explore()
            assert cut.deadline_expired
            assert cut.num_paths + cut.incomplete_paths >= 1
            resumed = Explorer(
                build_executor(), jobs=2, checkpoint_dir=tmp, resume=True
            ).explore()
        assert resumed.path_set() == baseline.path_set()
        assert resumed.incomplete_paths == 0

    def test_deadline_expired_run_terminates_promptly(self):
        start = time.monotonic()
        Explorer(build_executor(), deadline=0.0).explore()
        assert time.monotonic() - start < 30.0  # bounded grace


class TestWatchdog:
    @needs_fork
    def test_wedged_worker_detected_killed_and_accounted(self):
        """hang=100: every task wedges; the watchdog must recover every
        seat and the pool must drain with everything accounted."""
        result = Explorer(
            build_executor(),
            jobs=2,
            faults=FaultPlan(seed=0, hang_rate=100),
            hang_timeout=0.5,
        ).explore()
        assert result.num_paths == 0
        assert result.hung_workers >= 1
        assert result.worker_deaths >= 1
        assert result.incomplete_paths >= 1
        assert "hung workers" in result.summary()

    @needs_fork
    def test_moderate_hang_rate_subset_or_accounted(self):
        baseline = Explorer(build_executor(), use_cache=True).explore()
        faulted = Explorer(
            build_executor(),
            use_cache=True,
            jobs=2,
            faults=FaultPlan(seed=1, hang_rate=30),
            hang_timeout=0.5,
        ).explore()
        assert_subset_or_accounted(faulted, baseline)

    @needs_fork
    def test_healthy_pool_never_trips_watchdog(self):
        baseline = Explorer(build_executor()).explore()
        result = Explorer(build_executor(), jobs=2).explore()
        assert result.path_set() == baseline.path_set()
        assert result.hung_workers == 0


class TestMemoryGovernor:
    def test_ladder_walks_one_rung_per_pressure_sample(self):
        fired = []
        governor = MemoryGovernor(
            budget_bytes=100, check_interval=1, sampler=lambda: 200
        )
        governor.add_rung("first", lambda: fired.append("first"))
        governor.add_rung("second", lambda: fired.append("second"))
        assert governor.maybe_step()
        assert fired == ["first"]
        assert governor.maybe_step()
        assert fired == ["first", "second"]
        assert governor.exhausted
        # Pressure past the last rung is still counted, never re-fired.
        assert not governor.maybe_step()
        assert fired == ["first", "second"]
        stats = governor.statistics
        assert stats["gov_samples"] == 3
        assert stats["gov_pressure_events"] == 3
        assert stats["gov_rungs_applied"] == 2
        assert stats["gov_rung_first"] == 1

    def test_no_pressure_no_rungs(self):
        governor = MemoryGovernor(
            budget_bytes=100, check_interval=1, sampler=lambda: 50
        )
        governor.add_rung("never", lambda: pytest.fail("rung fired"))
        for _ in range(8):
            assert not governor.maybe_step()
        assert governor.statistics["gov_rungs_applied"] == 0

    def test_check_interval_throttles_sampling(self):
        governor = MemoryGovernor(
            budget_bytes=100, check_interval=4, sampler=lambda: 200
        )
        governor.add_rung("a", lambda: None)
        governor.add_rung("b", lambda: None)
        fires = [governor.maybe_step() for _ in range(8)]
        # Only every 4th tick samples; both samples saw pressure.
        assert governor.statistics["gov_samples"] == 2
        assert fires.count(True) == 2

    def test_standard_ladder_wiring(self):
        """The builder's three rungs: snapshot budget halves, caches
        tighten, capture flips off — in that order."""
        executor = build_executor()
        solver = CachingSolver(preprocess=PreprocessConfig())
        capture = {"snapshots": True}
        governor = build_exploration_governor(
            1, executor, solver, capture, sampler=lambda: 2**40
        )
        governor.check_interval = 1
        pool_budget = executor.snapshot_pool.max_bytes
        cache_entries = solver.cache._max_entries
        governor.maybe_step()
        assert executor.snapshot_pool.max_bytes == pool_budget // 2
        assert capture["snapshots"]
        governor.maybe_step()
        assert solver.cache._max_entries == max(64, cache_entries // 2)
        assert capture["snapshots"]
        governor.maybe_step()
        assert not capture["snapshots"]
        assert len(executor.snapshot_pool) == 0

    def test_tiny_budget_degrades_but_keeps_path_set(self):
        baseline = Explorer(build_executor(), use_cache=True).explore()
        squeezed = Explorer(
            build_executor(), use_cache=True, memory_budget_mb=0
        ).explore()
        assert squeezed.path_set() == baseline.path_set()
        assert squeezed.degradations >= 1
        assert squeezed.governor_stats["gov_pressure_events"] >= 1
        assert "memory degradations" in squeezed.summary()

    @needs_fork
    def test_tiny_budget_pool_keeps_path_set(self):
        baseline = Explorer(build_executor()).explore()
        squeezed = Explorer(
            build_executor(), jobs=2, memory_budget_mb=0
        ).explore()
        assert squeezed.path_set() == baseline.path_set()

    def test_generous_budget_changes_nothing(self):
        baseline = Explorer(build_executor(), use_cache=True).explore()
        result = Explorer(
            build_executor(), use_cache=True, memory_budget_mb=1 << 20
        ).explore()
        assert result.path_set() == baseline.path_set()
        assert result.degradations == 0


class TestMemhog:
    def test_memhog_serial_keeps_path_set(self):
        baseline = Explorer(build_executor()).explore()
        hogged = Explorer(
            build_executor(), faults=FaultPlan(seed=0, memhog_rate=100)
        ).explore()
        assert hogged.path_set() == baseline.path_set()

    @needs_fork
    def test_memhog_pool_with_governor(self):
        baseline = Explorer(build_executor()).explore()
        hogged = Explorer(
            build_executor(),
            jobs=2,
            faults=FaultPlan(seed=0, memhog_rate=100),
            memory_budget_mb=0,
        ).explore()
        assert hogged.path_set() == baseline.path_set()


class TestAnytimeCheckpointCounters:
    def test_new_counters_round_trip_through_journal(self):
        from repro.core.checkpoint import CheckpointManager

        with tempfile.TemporaryDirectory() as tmp:
            result = Explorer(
                build_executor(),
                use_cache=True,
                checkpoint_dir=tmp,
                memory_budget_mb=0,
            ).explore()
            assert result.degradations >= 1
            state = CheckpointManager(tmp, strategy="dfs", seed=0).load()
            assert state.counters["degradations"] == result.degradations
            assert state.counters["hung_workers"] == 0
            assert (
                state.governor_stats["gov_rungs_applied"]
                == result.degradations
            )
