"""Tests for the DIFT (taint-tracking) modular interpreter."""

import pytest

from repro.asm import assemble
from repro.concrete.dift import DiftInterpreter, TaintDomain, TaintedValue
from repro.spec import rv32im


def run_dift(source, max_steps=100_000):
    interp = DiftInterpreter(rv32im())
    interp.load_image(assemble(source))
    interp.run(max_steps)
    return interp


PROLOGUE = """\
_start:
    li a0, 0x20000
    li a1, {n}
    li a7, 1337
    ecall                   # taint source
"""


class TestTaintDomain:
    def test_taint_propagates_through_binop(self):
        domain = TaintDomain()
        tainted = TaintedValue(5, True)
        clean = TaintedValue(7, False)
        assert domain.binop("add", tainted, clean, 32).tainted
        assert not domain.binop("add", clean, clean, 32).tainted

    def test_values_computed_correctly(self):
        domain = TaintDomain()
        result = domain.binop(
            "mul", TaintedValue(6, True), TaintedValue(7, False), 32
        )
        assert result.value == 42 and result.tainted

    def test_ite_taints_via_condition(self):
        domain = TaintDomain()
        cond = TaintedValue(1, True)
        result = domain.ite(cond, TaintedValue(5), TaintedValue(6), 32)
        assert result.tainted


class TestTaintPropagation:
    def test_register_dataflow(self):
        source = PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)           # tainted
    addi t2, t1, 5          # still tainted
    mv a0, t2
    li a7, 93
    ecall
"""
        interp = run_dift(source)
        assert interp.hart.halt_reason == "exit"
        # a0 was clobbered by the exit code path; check t2 (x7).
        assert interp.hart.regs.read(7).tainted

    def test_untainted_stays_clean(self):
        source = PROLOGUE.format(n=1) + """\
    li t3, 1
    addi t3, t3, 2
    li a7, 93
    li a0, 0
    ecall
"""
        interp = run_dift(source)
        assert not interp.hart.regs.read(28).tainted  # t3

    def test_taint_through_memory(self):
        source = PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    sb t1, 16(t0)           # taint follows the store
    lbu t2, 16(t0)
    li a7, 93
    li a0, 0
    ecall
"""
        interp = run_dift(source)
        assert interp.hart.regs.read(7).tainted  # t2
        assert interp.taint.get(0x20010)

    def test_overwrite_clears_taint(self):
        source = PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    li t1, 9
    sb t1, 0(t0)            # clean store over tainted byte
    lbu t2, 0(t0)
    li a7, 93
    li a0, 0
    ecall
"""
        interp = run_dift(source)
        assert not interp.hart.regs.read(7).tainted
        assert not interp.taint.get(0x20000)

    def test_overwritten_register_clean(self):
        source = PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)           # tainted
    li t1, 3                # clean reload
    li a7, 93
    li a0, 0
    ecall
"""
        interp = run_dift(source)
        assert not interp.hart.regs.read(6).tainted


class TestControlFlowReports:
    def test_tainted_branch_recorded(self):
        source = PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    beqz t1, skip           # tainted control flow!
    nop
skip:
    li a7, 93
    li a0, 0
    ecall
"""
        interp = run_dift(source)
        assert len(interp.tainted_branches) == 1
        assert interp.tainted_branches[0].taken  # byte is 0 -> beqz taken

    def test_clean_branch_not_recorded(self):
        source = """\
_start:
    li t1, 0
    beqz t1, skip
    nop
skip:
    li a7, 93
    li a0, 0
    ecall
"""
        interp = run_dift(source)
        assert interp.tainted_branches == []

    def test_tainted_indirect_jump_recorded(self):
        source = PROLOGUE.format(n=1) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    andi t1, t1, 0          # value forced to 0 but still tainted
    la t2, target
    add t2, t2, t1
    jr t2                   # tainted jump target
target:
    li a7, 93
    li a0, 0
    ecall
"""
        interp = run_dift(source)
        assert len(interp.tainted_pc_writes) == 1

    def test_dift_matches_binsym_branch_count(self):
        """DIFT's tainted branches == BinSym's symbolic branches (one
        run, same inputs): two views of the same information flow."""
        from repro.core import BinSymExecutor, InputAssignment

        source = PROLOGUE.format(n=2) + """\
    li t0, 0x20000
    lbu t1, 0(t0)
    lbu t2, 1(t0)
    bltu t1, t2, one
one:
    beq t1, t2, two
two:
    li t3, 5
    li t4, 9
    blt t3, t4, three       # concrete: invisible to both
three:
    li a7, 93
    li a0, 0
    ecall
"""
        dift = run_dift(source)
        executor = BinSymExecutor(rv32im(), assemble(source))
        run = executor.execute(InputAssignment())
        flippable = [r for r in run.trace.records if r.flippable]
        assert len(dift.tainted_branches) == len(flippable) == 2
