"""SMT substrate microbenchmarks: terms, bit-blasting, CDCL search.

These locate where solving time goes (the paper's future-work question
about SMT query complexity): term construction with/without interning
payoff, bit-blasting cost per operation class, CDCL behaviour on
structured instances, and — since PR 2 — the word-level preprocessing
pipeline's effect on the number of queries that reach the CDCL core at
all (bubble-sort and the Fig. 6 workload set).
"""

import pytest

from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import WORKLOADS
from repro.smt import terms as T
from repro.smt.preprocess import PreprocessConfig
from repro.smt.sat import SatSolver
from repro.smt.solver import CachingSolver, Result, Solver
from repro.spec import rv32im


def build_chain(width, depth):
    x = T.bv_var("x", width)
    term = x
    for i in range(depth):
        term = T.add(T.xor(term, T.bv(i + 1, width)), x)
    return term


def test_term_construction_chain(benchmark):
    benchmark.group = "terms"
    benchmark(lambda: build_chain(32, 200))


def test_term_interning_hit_rate(benchmark):
    benchmark.group = "terms"
    build_chain(32, 200)  # warm

    def rebuild():
        return build_chain(32, 200)  # every node is an interner hit

    benchmark(rebuild)


def bitblast_and_solve(width, op):
    solver = Solver()
    a = T.bv_var("a", width)
    b = T.bv_var("b", width)
    out = T.bv_var("out", width)
    solver.add(T.eq(out, op(a, b)))
    solver.add(T.eq(a, T.bv(0x1234 & ((1 << width) - 1), width)))
    solver.add(T.eq(b, T.bv(0x0056, width)))
    assert solver.check() is Result.SAT
    return solver


@pytest.mark.parametrize("op_name", ["add", "mul", "udiv", "shl"])
def test_bitblast_op_32(benchmark, op_name):
    benchmark.group = "bitblast"
    op = {"add": T.add, "mul": T.mul, "udiv": T.udiv, "shl": T.shl}[op_name]
    benchmark.pedantic(
        lambda: bitblast_and_solve(32 if op_name != "udiv" else 16, op),
        rounds=3,
        iterations=1,
    )


def test_sat_pigeonhole(benchmark):
    """UNSAT proof of PHP(5 -> 4): CDCL learning workout."""
    benchmark.group = "sat"

    def php():
        solver = SatSolver()
        holes, pigeons = 4, 5
        var = {
            (p, h): solver.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            solver.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        assert solver.solve() is False
        return solver

    benchmark.pedantic(php, rounds=3, iterations=1)


def test_incremental_assumption_queries(benchmark):
    """The explorer's workhorse pattern: one solver, many queries."""
    benchmark.group = "sat"

    def run():
        solver = Solver()
        x = T.bv_var("x", 32)
        conditions = [
            T.ult(x, T.bv(bound, 32)) for bound in range(1000, 1030)
        ]
        sat_count = 0
        for i, condition in enumerate(conditions):
            prefix = conditions[:i]
            if solver.check(prefix + [T.bnot(condition)]) is Result.SAT:
                sat_count += 1
        return sat_count

    benchmark.pedantic(run, rounds=3, iterations=1)


# Fig. 6 / Table I workload set at default scales (bubble-sort at 4, as
# the acceptance criterion names it).
_PIPELINE_WORKLOADS = (
    "bubble-sort",
    "insertion-sort",
    "base64-encode",
    "uri-parser",
    "clif-parser",
)


def _explore_with_pipeline(image, config):
    solver = CachingSolver(preprocess=config)
    result = Explorer(BinSymExecutor(rv32im(), image), solver=solver).explore()
    return result, solver


@pytest.mark.parametrize("workload", _PIPELINE_WORKLOADS)
def test_pipeline_reduces_sat_core_solves(benchmark, workload):
    """The PR 2 contract: preprocessing on => strictly fewer CDCL
    ``solve()`` calls than preprocessing off, identical path sets."""
    benchmark.group = "preprocess"
    image = WORKLOADS[workload].image(WORKLOADS[workload].default_scale)
    off_result, off_solver = _explore_with_pipeline(
        image, PreprocessConfig(slicing=False, rewrite=False, intervals=False)
    )

    def run():
        return _explore_with_pipeline(image, PreprocessConfig())

    on_result, on_solver = benchmark.pedantic(run, rounds=1, iterations=1)
    assert on_result.path_set() == off_result.path_set()
    assert on_solver.num_solves < off_solver.num_solves
    benchmark.extra_info["solves_off"] = off_solver.num_solves
    benchmark.extra_info["solves_on"] = on_solver.num_solves
    benchmark.extra_info["fast_path"] = on_solver.fast_path_answers
    benchmark.extra_info["paths"] = on_result.num_paths


def test_pipeline_ablation_query_counts(benchmark):
    """Each stage alone must never *increase* core solves vs all-off."""
    benchmark.group = "preprocess"
    image = WORKLOADS["bubble-sort"].image(4)
    configs = {
        "off": PreprocessConfig(slicing=False, rewrite=False, intervals=False),
        "slicing": PreprocessConfig(rewrite=False, intervals=False),
        "rewrite": PreprocessConfig(slicing=False, intervals=False),
        "intervals": PreprocessConfig(slicing=False, rewrite=False),
        "full": PreprocessConfig(),
    }

    def run():
        counts = {}
        reference = None
        for name, config in configs.items():
            result, solver = _explore_with_pipeline(image, config)
            if reference is None:
                reference = result.path_set()
            assert result.path_set() == reference
            counts[name] = solver.num_solves
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, solves in counts.items():
        assert solves <= counts["off"], (name, counts)
        benchmark.extra_info[f"solves_{name}"] = solves
