"""Table I benchmark: path exploration per (workload x engine).

Regenerates the paper's Table I data: each benchmark explores one
workload with one engine and asserts the discovered path count, so the
timing numbers double as the accuracy experiment.  The angr column runs
the *buggy* lifter (the paper's configuration) — the assertions encode
the † pattern: fewer paths on base64-encode and uri-parser, equal counts
everywhere else.
"""

import pytest

from repro.eval.engines import explore_with
from repro.eval.workloads import TABLE1_WORKLOADS, WORKLOADS
from repro.spec import rv32im

#: Reference path counts at default scale (BinSym == BINSEC == SymEx-VP
#: == fixed angr), and the buggy-angr counts (the † cells).
REFERENCE_COUNTS = {
    "base64-encode": 10,
    "bubble-sort": 24,
    "clif-parser": 14,
    "insertion-sort": 24,
    "uri-parser": 12,
}
BUGGY_ANGR_COUNTS = {
    "base64-encode": 6,   # † misses paths (load-extension bug)
    "bubble-sort": 24,
    "clif-parser": 14,
    "insertion-sort": 24,
    "uri-parser": 9,      # † misses paths (signed-compare bug)
}


@pytest.fixture(scope="module")
def isa():
    return rv32im()


@pytest.fixture(scope="module", params=TABLE1_WORKLOADS)
def workload_image(request):
    workload = WORKLOADS[request.param]
    return request.param, workload.image()


@pytest.mark.parametrize("engine", ["binsym", "binsec", "symex-vp", "angr"])
def test_table1_engine(benchmark, workload_image, engine, isa):
    name, image = workload_image
    benchmark.group = f"table1:{name}"
    result = benchmark(lambda: explore_with(engine, image, isa=isa))
    assert result.num_paths == REFERENCE_COUNTS[name]


def test_table1_angr_buggy(benchmark, workload_image, isa):
    name, image = workload_image
    benchmark.group = f"table1:{name}"
    result = benchmark(lambda: explore_with("angr-buggy", image, isa=isa))
    assert result.num_paths == BUGGY_ANGR_COUNTS[name]
    if name in ("base64-encode", "uri-parser"):
        assert result.num_paths < REFERENCE_COUNTS[name], "† cell expected"
