"""Snapshot-resumed exploration: replay reduction and wall-time wins.

``BENCH_PR4.json`` left redundant prefix re-execution as the dominant
remaining exploration cost: the offline executor restarts the SUT from
the entry point for every flipped branch even though sibling paths
share almost their entire prefix.  PR 5's snapshot layer
(:mod:`repro.core.snapshots`) resumes each child run at its divergence
point instead.  The benchmarks here measure, over the Fig. 6 workload
set:

* **replayed instructions per exploration** with snapshots on vs off —
  the contract pins the >= 2x reduction the PR promises,
* **snapshot-pool behaviour** — resume rate (every non-root run on a
  DFS schedule), capture counts and eviction-driven fallbacks,
* **exploration wall time** on vs off, timed.

Identity contracts are asserted on every comparison: both builds must
discover the same path sets with the same query attribution — the
snapshot layer only changes how much of each path is re-executed.
Timings and derived metrics land in ``extra_info`` for the CI benchmark
JSON artifact (compare against ``BENCH_PR5.json``).
"""

import time

import pytest

from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import WORKLOADS
from repro.spec import rv32im

_FIG6_WORKLOADS = (
    "bubble-sort",
    "insertion-sort",
    "base64-encode",
    "uri-parser",
    "clif-parser",
)

_ATTRIBUTION = (
    "sat_checks",
    "unsat_checks",
    "cache_hits",
    "fast_path_answers",
    "sat_solves",
    "pruned_queries",
    "total_instructions",
)


def _explore(image, snapshots, **kwargs):
    engine = BinSymExecutor(rv32im(), image)
    return Explorer(
        engine, use_cache=True, snapshots=snapshots, **kwargs
    ).explore()


def _assert_identical(on, off, context):
    assert on.path_set() == off.path_set(), context
    for key in _ATTRIBUTION:
        assert getattr(on, key) == getattr(off, key), (context, key)


# ---------------------------------------------------------------------------
# The replay-reduction contract (the PR's headline metric)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", _FIG6_WORKLOADS)
def test_replayed_instructions_contract(benchmark, name):
    """Snapshots must cut executed instructions >= 2x, results identical."""
    benchmark.group = f"snapshots:replay:{name}"
    # The quick default scales leave too little shared prefix for the
    # sharpest workloads; the Fig. 6 timing scale is where the replay
    # contract is stated (and where exploration cost actually lives).
    spec = WORKLOADS[name]
    image = spec.image(spec.fig6_scale)

    def run():
        return _explore(image, snapshots=True)

    on = benchmark.pedantic(run, rounds=3, iterations=1)
    off = _explore(image, snapshots=False)
    _assert_identical(on, off, name)

    # Snapshots off: every instruction of every path is executed.
    assert off.executed_instructions == off.total_instructions
    # The contract: total replayed instructions drop at least 2x.
    assert on.executed_instructions * 2 <= off.executed_instructions, (
        name,
        on.executed_instructions,
        off.executed_instructions,
    )
    # DFS pops the deepest (most recently captured) child first, so
    # every non-root run resumes from a live snapshot.
    assert on.resumed_runs == on.num_paths - 1

    benchmark.extra_info["paths"] = on.num_paths
    benchmark.extra_info["instructions_total"] = on.total_instructions
    benchmark.extra_info["instructions_executed"] = on.executed_instructions
    benchmark.extra_info["instructions_saved"] = on.saved_instructions
    benchmark.extra_info["replay_reduction"] = round(
        off.executed_instructions / max(on.executed_instructions, 1), 2
    )
    benchmark.extra_info["resumed_runs"] = on.resumed_runs
    benchmark.extra_info["snapshots_captured"] = on.snapshot_stats.get(
        "snap_captured", 0
    )
    benchmark.extra_info["pool_hit_rate"] = round(
        on.snapshot_stats.get("snap_pool_hits", 0)
        / max(
            on.snapshot_stats.get("snap_pool_hits", 0)
            + on.snapshot_stats.get("snap_pool_misses", 0),
            1,
        ),
        3,
    )


# ---------------------------------------------------------------------------
# Wall-time comparison (timed; compare against BENCH_PR5.json)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ("bubble-sort", "insertion-sort"))
def test_exploration_wall_time(benchmark, name):
    """On-vs-off wall time on the two longest-prefix workloads."""
    benchmark.group = f"snapshots:wall:{name}"
    image = WORKLOADS[name].image()

    def run():
        return _explore(image, snapshots=True)

    start = time.perf_counter()
    on = benchmark.pedantic(run, rounds=3, iterations=1)
    elapsed_on = time.perf_counter() - start

    start = time.perf_counter()
    off = _explore(image, snapshots=False)
    elapsed_off = time.perf_counter() - start
    _assert_identical(on, off, name)

    benchmark.extra_info["paths"] = on.num_paths
    # Coarse single-run numbers; BENCH_PR5.json carries best-of-N.
    benchmark.extra_info["wall_on_s"] = round(elapsed_on / 3, 4)
    benchmark.extra_info["wall_off_s"] = round(elapsed_off, 4)


# ---------------------------------------------------------------------------
# Pool starvation: eviction fallback must degrade, never break
# ---------------------------------------------------------------------------


def test_pool_starvation_fallback(benchmark):
    benchmark.group = "snapshots:starved-pool"
    image = WORKLOADS["bubble-sort"].image()

    def run():
        engine = BinSymExecutor(rv32im(), image)
        engine.snapshot_pool.max_bytes = 8 * 4096 * 4  # a handful
        return Explorer(engine, use_cache=True, snapshots=True).explore()

    starved = benchmark.pedantic(run, rounds=3, iterations=1)
    reference = _explore(image, snapshots=False)
    _assert_identical(starved, reference, "starved-pool")
    assert starved.snapshot_stats["snap_pool_evictions"] > 0
    assert starved.snapshot_stats["snap_fallback_runs"] > 0
    benchmark.extra_info["evictions"] = starved.snapshot_stats[
        "snap_pool_evictions"
    ]
    benchmark.extra_info["fallback_runs"] = starved.snapshot_stats[
        "snap_fallback_runs"
    ]
    benchmark.extra_info["resumed_runs"] = starved.resumed_runs
