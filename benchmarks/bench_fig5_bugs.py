"""Fig. 5 + Sect. V-A benchmark: accuracy experiments under timing.

Times the three accuracy experiments (five-bug witnesses, the Fig. 5
false-positive/negative program, and differential lifter testing) while
asserting their outcomes, so a regression in either speed or accuracy
shows up here.
"""

import pytest

from repro.baselines.vexir import FIVE_ANGR_BUGS, VexEngine
from repro.eval.bugs import run_bug_witnesses, run_divu_edgecase, run_fig5
from repro.eval.difftest import bug_classes_for, difftest_engine


def test_bug_witnesses(benchmark):
    benchmark.group = "accuracy"
    outcomes = benchmark(run_bug_witnesses)
    assert all(o.bug_reproduced for o in outcomes)


def test_fig5_parse_word(benchmark):
    benchmark.group = "accuracy"
    outcomes = benchmark(lambda: {o.engine: o for o in run_fig5()})
    assert outcomes["binsym"].ne_assert_failures == 1
    assert outcomes["angr-buggy"].false_positive
    assert outcomes["angr-buggy"].false_negative


def test_divu_edgecase(benchmark):
    benchmark.group = "accuracy"
    result, witness = benchmark(run_divu_edgecase)
    assert witness is not None and witness["y"] == 0


def test_difftest_buggy_lifter(benchmark):
    benchmark.group = "difftest"
    divergences = benchmark.pedantic(
        lambda: difftest_engine(
            lambda isa, img: VexEngine(isa, img, bugs=FIVE_ANGR_BUGS),
            iterations=300,
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert bug_classes_for(divergences) == FIVE_ANGR_BUGS


def test_difftest_fixed_lifter(benchmark):
    benchmark.group = "difftest"
    divergences = benchmark.pedantic(
        lambda: difftest_engine(
            lambda isa, img: VexEngine(isa, img), iterations=300, seed=11
        ),
        rounds=1,
        iterations=1,
    )
    assert divergences == []
