"""Fig. 6 benchmark: engine wall-clock comparison per workload.

One benchmark per (workload, engine) pair with the *fixed* angr lifter
(the paper's performance configuration).  pytest-benchmark's comparison
output groups by workload, so the per-group ranking reproduces the
figure's bar ordering: BINSEC fastest, BinSym next, then SymEx-VP, angr
slowest.  ``test_fig6_ordering`` asserts the headline ordering claims.
"""

import pytest

from repro.eval.engines import explore_with
from repro.eval.fig6 import run_fig6
from repro.eval.workloads import TABLE1_WORKLOADS, WORKLOADS
from repro.spec import rv32im

_ENGINES = ("binsec", "binsym", "symex-vp", "angr")


@pytest.fixture(scope="module")
def isa():
    return rv32im()


@pytest.fixture(scope="module", params=TABLE1_WORKLOADS)
def workload_image(request):
    workload = WORKLOADS[request.param]
    return request.param, workload.image(workload.fig6_scale)


@pytest.mark.parametrize("engine", _ENGINES)
def test_fig6_engine_time(benchmark, workload_image, engine, isa):
    name, image = workload_image
    benchmark.group = f"fig6:{name}"
    result = benchmark.pedantic(
        lambda: explore_with(engine, image, isa=isa), rounds=1, iterations=1
    )
    assert result.num_paths > 0


def test_fig6_ordering(benchmark):
    """The paper's ordering claims on the sort benchmarks (largest
    workloads, where engine overhead dominates): BINSEC is the fastest
    engine and angr the slowest; BinSym beats SymEx-VP and angr."""
    benchmark.group = "fig6:ordering"
    result = benchmark.pedantic(
        lambda: run_fig6(repeats=1, benchmarks=("bubble-sort", "insertion-sort")),
        rounds=1,
        iterations=1,
    )
    for bench in result.benchmarks:
        ordering = result.ordering_for(bench)
        assert ordering[0] == "binsec", (bench, ordering)
        assert ordering[-1] == "angr", (bench, ordering)
        index = {key: i for i, key in enumerate(ordering)}
        assert index["binsym"] < index["symex-vp"], (bench, ordering)
