"""Staged-semantics throughput: instructions/sec staged vs unstaged.

``BENCH_PR2.json`` showed SUT re-execution dominating exploration wall
time once the solver side was cached and preprocessed.  PR 3's staging
layer (:mod:`repro.spec.staged`) attacks exactly that: the benchmarks
here measure *instructions per second* of the specification-derived
interpreters with staging on vs off, on the Fig. 6 workload set —
first pure SUT re-execution over the workload's discovered path inputs
(the explorer's inner loop), then a concrete straight-line loop (the
interpreter ceiling).  Identity contracts are asserted on every
comparison: staged and unstaged execution must retire the same
instruction counts, discover the same path sets, and attribute solver
queries identically, serially and on a worker pool.  Timings and
derived instructions/sec land in ``extra_info`` for the CI benchmark
JSON artifact (compare against ``BENCH_PR3.json``).

PR 6 stacks superblock trace compilation (:mod:`repro.spec.superblock`)
on top of the staging plan cache and adds its contract here: concrete
*replay* of each Fig. 6 program over a fixed worst-case input with
superblocks on vs off (the dispatch-bound regime where stitching pays
— compare against ``BENCH_PR6.json``), plus the superblock analogue of
the staging ablation (path sets and query attribution must be
superblock-invariant, serially and on a worker pool).  The replay
benchmarks assert instret/exit-code/stdout identity between modes and
that blocks actually cover the steady-state run; the deterministic
counters (instructions, block hits, block-retired instructions) land in
``extra_info`` where ``tools/bench_compare.py`` pins them against the
committed baseline.
"""

import multiprocessing
import time

import pytest

from repro.asm import assemble
from repro.concrete import ConcreteInterpreter
from repro.concrete.syscalls import SYS_MAKE_SYMBOLIC, HostPlatform
from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import TABLE1_WORKLOADS, WORKLOADS
from repro.spec import rv32im

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

_A0, _A1, _A7 = 10, 11, 17


class ReplayPlatform(HostPlatform):
    """Host platform that replays a fixed concrete input.

    ``make_symbolic(buf, len)`` writes the replay bytes into the buffer
    instead of marking it symbolic — the concrete interpreter then runs
    the exact path a discovered input assignment (or a worst case
    chosen by hand) would take, with no solver in the loop.
    """

    def __init__(self, data: bytes):
        super().__init__()
        self.data = data

    def ecall(self, machine) -> None:
        if machine.read_register_int(_A7) == SYS_MAKE_SYMBOLIC:
            base = machine.read_register_int(_A0)
            length = machine.read_register_int(_A1)
            machine.memory.write_bytes(base, self.data[:length])
        else:
            super().ecall(machine)


#: Fig. 6 replay configurations: scale and a deterministic input that
#: drives a long concrete run (reverse-sorted arrays for the sorts =
#: maximal swap work; an accepted scheme/link for the parsers = the
#: full scan loop instead of an early reject).
FIG6_REPLAYS = {
    "bubble-sort": (64, bytes(range(64, 0, -1))),
    "insertion-sort": (64, bytes(range(64, 0, -1))),
    "base64-encode": (96, bytes(range(96))),
    "uri-parser": (256, b"a" * 255 + b":"),
    "clif-parser": (256, b"<" + b"ab" * 60 + b">" + b";a=1" * 33 + b"x"),
}

_CONCRETE_LOOP = """\
_start:
    li t0, 5000
    li t1, 0
loop:
    addi t1, t1, 3
    xor t2, t1, t0
    slli t3, t2, 1
    sub t4, t3, t1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
"""


@pytest.fixture(scope="module")
def isa():
    return rv32im()


def _discover_paths(isa, name):
    """Explore a workload; return its image, path inputs and instret.

    Called inside each test (not a shared fixture): input assignments
    are keyed by identity-interned variable terms, and the autouse
    ``fresh_interner`` fixture resets the interner between tests.
    """
    image = WORKLOADS[name].image()
    result = Explorer(BinSymExecutor(isa, image), use_cache=True).explore()
    return image, [path.assignment for path in result.paths], result.total_instructions


@pytest.mark.parametrize("staging", [True, False], ids=["staged", "unstaged"])
@pytest.mark.parametrize("name", TABLE1_WORKLOADS)
def test_sut_reexecution(benchmark, isa, name, staging):
    """Re-execute every discovered path of a workload once (the SUT
    side of the exploration loop, no solver involved)."""
    benchmark.group = f"interp:reexec:{name}"
    image, assignments, expected_instret = _discover_paths(isa, name)

    def run():
        executor = BinSymExecutor(isa, image, staging=staging)
        return sum(executor.execute(a).instret for a in assignments)

    start = time.perf_counter()
    instret = benchmark.pedantic(run, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    # Identity contract: staging must not change what executes.
    assert instret == expected_instret
    benchmark.extra_info["paths"] = len(assignments)
    benchmark.extra_info["instructions"] = instret
    benchmark.extra_info["instructions_per_second"] = round(instret / elapsed)


@pytest.mark.parametrize("staging", [True, False], ids=["staged", "unstaged"])
def test_concrete_loop_throughput(benchmark, isa, staging):
    """Interpreter ceiling: a concrete arithmetic loop, no symbolic data."""
    benchmark.group = "interp:concrete-loop"
    image = assemble(_CONCRETE_LOOP)

    def run():
        interp = ConcreteInterpreter(isa, staging=staging)
        interp.load_image(image)
        return interp.run().instret

    start = time.perf_counter()
    instret = benchmark.pedantic(run, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    assert instret > 30_000
    benchmark.extra_info["instructions"] = instret
    benchmark.extra_info["instructions_per_second"] = round(instret / elapsed)


@pytest.mark.parametrize("name", TABLE1_WORKLOADS)
def test_staging_ablation_contract(benchmark, isa, name):
    """Full-exploration identity: path sets and exact solver-query
    attribution are staging-invariant, serially and on a worker pool."""
    benchmark.group = "interp:contract"
    image = WORKLOADS[name].image(3)

    def explore(staging, jobs):
        return Explorer(
            BinSymExecutor(isa, image),
            jobs=jobs,
            use_cache=True,
            staging=staging,
        ).explore()

    def run():
        staged = explore(True, 1)
        unstaged = explore(False, 1)
        assert staged.path_set() == unstaged.path_set()
        assert staged.total_instructions == unstaged.total_instructions
        assert staged.num_queries == unstaged.num_queries
        assert staged.sat_solves == unstaged.sat_solves
        assert staged.cache_hits == unstaged.cache_hits
        assert staged.fast_path_answers == unstaged.fast_path_answers
        assert staged.pruned_queries == unstaged.pruned_queries
        assert staged.solver_stats == unstaged.solver_stats
        if HAS_FORK:
            # Parallel mode: per-worker caches make the solved-query
            # split differ from serial (as since PR 1), but staged vs
            # unstaged must still agree mode-for-mode.
            parallel_staged = explore(True, 4)
            parallel_unstaged = explore(False, 4)
            assert parallel_staged.path_set() == staged.path_set()
            assert parallel_unstaged.path_set() == staged.path_set()
            assert (
                parallel_staged.total_instructions
                == parallel_unstaged.total_instructions
            )
        return staged.num_paths

    paths = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["paths"] = paths


def _replay(isa, name, superblocks):
    """One deterministic concrete replay run; returns the interpreter.

    A fresh interpreter runs the workload twice: the first run warms
    the plan cache and promotes the loop headers, the second executes
    through the stitched blocks — counters read after it are exactly
    reproducible (no wall-clock dependence).
    """
    scale, data = FIG6_REPLAYS[name]
    image = WORKLOADS[name].image(scale)
    interp = ConcreteInterpreter(
        isa, platform=ReplayPlatform(data), superblocks=superblocks
    )
    for _ in range(2):
        interp.load_image(image)
        interp.run()
    return interp


@pytest.mark.parametrize(
    "superblocks", [True, False], ids=["superblocks", "per-instruction"]
)
@pytest.mark.parametrize("name", TABLE1_WORKLOADS)
def test_superblock_replay_throughput(benchmark, isa, name, superblocks):
    """Concrete replay of a Fig. 6 program, superblocks on vs off.

    This is the dispatch-bound regime the translation layer targets:
    no solver, no term construction — per-instruction plan lookup and
    step-loop overhead dominate, and stitching hot straight-line runs
    into superblocks removes most of it (>= 1.5x instructions/sec on
    this set, see BENCH_PR6.json).
    """
    benchmark.group = f"interp:superblock-replay:{name}"
    scale, data = FIG6_REPLAYS[name]
    image = WORKLOADS[name].image(scale)
    interp = ConcreteInterpreter(
        isa, platform=ReplayPlatform(data), superblocks=superblocks
    )
    interp.load_image(image)
    reference = interp.run()  # warm run: plan cache + block promotion

    def run():
        interp.load_image(image)
        return interp.run().instret

    rounds = 5
    start = time.perf_counter()
    instret = benchmark.pedantic(run, rounds=rounds, iterations=1)
    elapsed = (time.perf_counter() - start) / rounds

    # Identity contract: superblocks must not change what executes.
    other = _replay(isa, name, not superblocks)
    assert instret == reference.instret == other.hart.instret
    assert interp.hart.exit_code == other.hart.exit_code
    assert interp.platform.stdout == other.platform.stdout

    # Deterministic coverage counters from a fixed two-run replay (the
    # timed interpreter's counters depend on the round count).
    probe = _replay(isa, name, superblocks)
    if superblocks:
        # Blocks must cover the bulk of the steady-state run.
        assert probe.sb_instructions > instret
    else:
        assert probe.sb_instructions == 0
    benchmark.extra_info["instructions"] = instret
    benchmark.extra_info["instructions_per_second"] = round(instret / elapsed)
    benchmark.extra_info["sb_hits"] = probe.sb_hits
    benchmark.extra_info["sb_block_instructions"] = probe.sb_instructions


@pytest.mark.parametrize("name", TABLE1_WORKLOADS)
def test_superblock_ablation_contract(benchmark, isa, name):
    """Full-exploration identity: path sets and exact solver-query
    attribution are superblock-invariant, serially and on a worker
    pool — stitching only changes how instructions are dispatched."""
    benchmark.group = "interp:contract"
    image = WORKLOADS[name].image(3)

    def explore(superblocks, jobs):
        return Explorer(
            BinSymExecutor(isa, image),
            jobs=jobs,
            use_cache=True,
            superblocks=superblocks,
        ).explore()

    def run():
        on = explore(True, 1)
        off = explore(False, 1)
        assert on.path_set() == off.path_set()
        assert on.total_instructions == off.total_instructions
        assert on.num_queries == off.num_queries
        assert on.sat_solves == off.sat_solves
        assert on.cache_hits == off.cache_hits
        assert on.fast_path_answers == off.fast_path_answers
        assert on.pruned_queries == off.pruned_queries
        assert on.solver_stats == off.solver_stats
        # The layer actually engaged, and everything it dispatched is
        # accounted inside the unchanged architectural totals.
        assert on.superblock_stats.get("sb_hits", 0) > 0
        assert off.superblock_stats == {}
        assert 0 < on.superblock_instructions <= on.total_instructions
        if HAS_FORK:
            parallel_on = explore(True, 4)
            parallel_off = explore(False, 4)
            assert parallel_on.path_set() == on.path_set()
            assert parallel_off.path_set() == on.path_set()
            assert (
                parallel_on.total_instructions
                == parallel_off.total_instructions
            )
            assert parallel_on.superblock_stats.get("sb_hits", 0) > 0
        return on.num_paths

    paths = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["paths"] = paths
