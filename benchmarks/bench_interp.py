"""Staged-semantics throughput: instructions/sec staged vs unstaged.

``BENCH_PR2.json`` showed SUT re-execution dominating exploration wall
time once the solver side was cached and preprocessed.  PR 3's staging
layer (:mod:`repro.spec.staged`) attacks exactly that: the benchmarks
here measure *instructions per second* of the specification-derived
interpreters with staging on vs off, on the Fig. 6 workload set —
first pure SUT re-execution over the workload's discovered path inputs
(the explorer's inner loop), then a concrete straight-line loop (the
interpreter ceiling).  Identity contracts are asserted on every
comparison: staged and unstaged execution must retire the same
instruction counts, discover the same path sets, and attribute solver
queries identically, serially and on a worker pool.  Timings and
derived instructions/sec land in ``extra_info`` for the CI benchmark
JSON artifact (compare against ``BENCH_PR3.json``).
"""

import multiprocessing
import time

import pytest

from repro.asm import assemble
from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import TABLE1_WORKLOADS, WORKLOADS
from repro.spec import rv32im

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

_CONCRETE_LOOP = """\
_start:
    li t0, 5000
    li t1, 0
loop:
    addi t1, t1, 3
    xor t2, t1, t0
    slli t3, t2, 1
    sub t4, t3, t1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
"""


@pytest.fixture(scope="module")
def isa():
    return rv32im()


def _discover_paths(isa, name):
    """Explore a workload; return its image, path inputs and instret.

    Called inside each test (not a shared fixture): input assignments
    are keyed by identity-interned variable terms, and the autouse
    ``fresh_interner`` fixture resets the interner between tests.
    """
    image = WORKLOADS[name].image()
    result = Explorer(BinSymExecutor(isa, image), use_cache=True).explore()
    return image, [path.assignment for path in result.paths], result.total_instructions


@pytest.mark.parametrize("staging", [True, False], ids=["staged", "unstaged"])
@pytest.mark.parametrize("name", TABLE1_WORKLOADS)
def test_sut_reexecution(benchmark, isa, name, staging):
    """Re-execute every discovered path of a workload once (the SUT
    side of the exploration loop, no solver involved)."""
    benchmark.group = f"interp:reexec:{name}"
    image, assignments, expected_instret = _discover_paths(isa, name)

    def run():
        executor = BinSymExecutor(isa, image, staging=staging)
        return sum(executor.execute(a).instret for a in assignments)

    start = time.perf_counter()
    instret = benchmark.pedantic(run, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    # Identity contract: staging must not change what executes.
    assert instret == expected_instret
    benchmark.extra_info["paths"] = len(assignments)
    benchmark.extra_info["instructions"] = instret
    benchmark.extra_info["instructions_per_second"] = round(instret / elapsed)


@pytest.mark.parametrize("staging", [True, False], ids=["staged", "unstaged"])
def test_concrete_loop_throughput(benchmark, isa, staging):
    """Interpreter ceiling: a concrete arithmetic loop, no symbolic data."""
    benchmark.group = "interp:concrete-loop"
    image = assemble(_CONCRETE_LOOP)

    def run():
        interp = ConcreteInterpreter(isa, staging=staging)
        interp.load_image(image)
        return interp.run().instret

    start = time.perf_counter()
    instret = benchmark.pedantic(run, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    assert instret > 30_000
    benchmark.extra_info["instructions"] = instret
    benchmark.extra_info["instructions_per_second"] = round(instret / elapsed)


@pytest.mark.parametrize("name", TABLE1_WORKLOADS)
def test_staging_ablation_contract(benchmark, isa, name):
    """Full-exploration identity: path sets and exact solver-query
    attribution are staging-invariant, serially and on a worker pool."""
    benchmark.group = "interp:contract"
    image = WORKLOADS[name].image(3)

    def explore(staging, jobs):
        return Explorer(
            BinSymExecutor(isa, image),
            jobs=jobs,
            use_cache=True,
            staging=staging,
        ).explore()

    def run():
        staged = explore(True, 1)
        unstaged = explore(False, 1)
        assert staged.path_set() == unstaged.path_set()
        assert staged.total_instructions == unstaged.total_instructions
        assert staged.num_queries == unstaged.num_queries
        assert staged.sat_solves == unstaged.sat_solves
        assert staged.cache_hits == unstaged.cache_hits
        assert staged.fast_path_answers == unstaged.fast_path_answers
        assert staged.pruned_queries == unstaged.pruned_queries
        assert staged.solver_stats == unstaged.solver_stats
        if HAS_FORK:
            # Parallel mode: per-worker caches make the solved-query
            # split differ from serial (as since PR 1), but staged vs
            # unstaged must still agree mode-for-mode.
            parallel_staged = explore(True, 4)
            parallel_unstaged = explore(False, 4)
            assert parallel_staged.path_set() == staged.path_set()
            assert parallel_unstaged.path_set() == staged.path_set()
            assert (
                parallel_staged.total_instructions
                == parallel_unstaged.total_instructions
            )
        return staged.num_paths

    paths = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["paths"] = paths
