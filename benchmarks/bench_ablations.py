"""Ablation benchmarks for the design decisions DESIGN.md calls out.

Each ablation toggles exactly one mechanism on the bubble-sort workload
(the most branch-heavy Table I program) and measures full exploration:

* concrete fast path (terms only on symbolic dataflow) vs claripy-style
  always-build-terms,
* algebraic term simplification on/off,
* address concretization policy PIN vs FREE,
* DFS vs BFS vs random path selection,
* DBA block cache and VEX lift cache on/off.

Path counts are asserted equal across each toggle: the knobs trade
speed, never soundness (except PIN/FREE, whose counts agree on these
workloads because their addresses never depend on symbolic data).
"""

import pytest

from repro.baselines.dba import DbaEngine
from repro.baselines.vexir import VexEngine
from repro.core import BinSymExecutor, ConcretizationPolicy, Explorer
from repro.eval.workloads import WORKLOADS
from repro.smt import terms
from repro.spec import rv32im

_EXPECTED_PATHS = 24  # bubble-sort at scale 4


@pytest.fixture(scope="module")
def isa():
    return rv32im()


@pytest.fixture(scope="module")
def image():
    return WORKLOADS["bubble-sort"].image(4)


def explore_paths(executor, **kwargs):
    return Explorer(executor, **kwargs).explore()


@pytest.mark.parametrize("force_terms", [False, True], ids=["fastpath", "always-terms"])
def test_ablation_concrete_fastpath(benchmark, isa, image, force_terms):
    benchmark.group = "ablation:fastpath"
    result = benchmark.pedantic(
        lambda: explore_paths(BinSymExecutor(isa, image, force_terms=force_terms)),
        rounds=1,
        iterations=1,
    )
    assert result.num_paths == _EXPECTED_PATHS


@pytest.mark.parametrize("simplify", [True, False], ids=["simplify", "no-simplify"])
def test_ablation_simplification(benchmark, isa, image, simplify):
    benchmark.group = "ablation:simplify"

    def run():
        previous = terms.set_simplification(simplify)
        try:
            return explore_paths(BinSymExecutor(isa, image))
        finally:
            terms.set_simplification(previous)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_paths == _EXPECTED_PATHS


@pytest.mark.parametrize(
    "policy", [ConcretizationPolicy.PIN, ConcretizationPolicy.FREE],
    ids=["pin", "free"],
)
def test_ablation_concretization(benchmark, isa, image, policy):
    benchmark.group = "ablation:concretize"
    result = benchmark.pedantic(
        lambda: explore_paths(BinSymExecutor(isa, image, concretization=policy)),
        rounds=1,
        iterations=1,
    )
    assert result.num_paths == _EXPECTED_PATHS


@pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
def test_ablation_search_strategy(benchmark, isa, image, strategy):
    benchmark.group = "ablation:search"
    result = benchmark.pedantic(
        lambda: explore_paths(BinSymExecutor(isa, image), strategy=strategy),
        rounds=1,
        iterations=1,
    )
    assert result.num_paths == _EXPECTED_PATHS


@pytest.mark.parametrize("cache", [True, False], ids=["cache", "no-cache"])
def test_ablation_dba_block_cache(benchmark, isa, image, cache):
    benchmark.group = "ablation:dba-cache"
    result = benchmark.pedantic(
        lambda: explore_paths(DbaEngine(isa, image, block_cache=cache)),
        rounds=1,
        iterations=1,
    )
    assert result.num_paths == _EXPECTED_PATHS


@pytest.mark.parametrize("cache", [True, False], ids=["cache", "no-cache"])
def test_ablation_vex_lift_cache(benchmark, isa, image, cache):
    benchmark.group = "ablation:vex-cache"
    result = benchmark.pedantic(
        lambda: explore_paths(VexEngine(isa, image, lift_cache=cache)),
        rounds=1,
        iterations=1,
    )
    assert result.num_paths == _EXPECTED_PATHS
