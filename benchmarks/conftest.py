"""Shared fixtures for the benchmark suite.

Benchmarks run at the *default* workload scales (seconds, not hours);
``--paper-scale`` reproduction is done through the module drivers
(``python -m repro.eval.table1 --paper-scale``), see EXPERIMENTS.md.
Every benchmark resets the global term interner first so measurements
do not depend on execution order.
"""

import pytest

from repro.smt import terms


@pytest.fixture(autouse=True)
def fresh_interner():
    terms.reset_interner()
    yield
