"""Interpreter throughput: decode, emulate, and per-engine step cost.

Separates the translation-methodology overhead (the paper's Fig. 1
paths) from exploration: all engines execute the same fully *concrete*
loop, so no solver is involved — what remains is fetch/translate/
interpret cost per instruction.
"""

import pytest

from repro.asm import assemble
from repro.baselines.dba import DbaEngine
from repro.baselines.vexir import VexEngine
from repro.baselines.vp import VpExecutor
from repro.concrete import ConcreteInterpreter
from repro.core import BinSymExecutor, Explorer, InputAssignment
from repro.spec import rv32im

LOOP = """\
_start:
    li t0, 2000
    li t1, 0
loop:
    addi t1, t1, 3
    xor t2, t1, t0
    slli t3, t2, 1
    sub t4, t3, t1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
"""


@pytest.fixture(scope="module")
def isa():
    return rv32im()


@pytest.fixture(scope="module")
def image():
    return assemble(LOOP)


def test_decoder_throughput(benchmark, isa):
    benchmark.group = "frontend"
    words = [0x002081B3, 0xFFF10093, 0x00832283, 0x027302B3, 0x00C59533]

    def decode_many():
        decoder = isa.decoder
        for _ in range(200):
            for word in words:
                decoder.decode(word)

    benchmark(decode_many)


def test_assembler_throughput(benchmark):
    benchmark.group = "frontend"
    source = "_start:\n" + " addi t0, t0, 1\n" * 300
    benchmark(lambda: assemble(source))


def test_concrete_emulator(benchmark, isa, image):
    benchmark.group = "interp"

    def run():
        interp = ConcreteInterpreter(isa)
        interp.load_image(image)
        return interp.run().instret

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 10_000


@pytest.mark.parametrize(
    "engine_name,factory",
    [
        ("binsym", lambda isa, image: BinSymExecutor(isa, image)),
        ("binsec", lambda isa, image: DbaEngine(isa, image)),
        ("angr", lambda isa, image: VexEngine(isa, image)),
        ("symex-vp", lambda isa, image: VpExecutor(isa, image)),
    ],
)
def test_engine_concrete_throughput(benchmark, isa, image, engine_name, factory):
    """Per-engine instruction throughput on concrete-only code."""
    benchmark.group = "interp"

    def run():
        executor = factory(isa, image)
        return executor.execute(InputAssignment()).instret

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 10_000
