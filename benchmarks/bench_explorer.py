"""Exploration-driver benchmarks: serial vs parallel, cache on vs off.

Measures the two throughput levers this layer provides on top of the
paper's offline executor:

* **worker pool** — identical path sets from 1 vs N forked workers;
  wall-clock improves once per-path execution dominates dispatch cost
  (tiny workloads mostly measure the pool overhead, which is itself
  worth tracking),
* **cross-path query cache** — solved-query counts with and without the
  cache, including the multi-engine scenario (the difftest/eval drivers
  explore one image with four engines; a shared cache answers the
  repeat queries without touching the SAT core).

Path-set equality is asserted on every comparison: neither lever is
allowed to change what exploration finds.
"""

import multiprocessing

import pytest

from repro.core import BinSymExecutor, Explorer
from repro.eval.engines import make_engine
from repro.eval.workloads import WORKLOADS
from repro.smt.solver import CachingSolver
from repro.spec import rv32im

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

_EXPECTED_PATHS = 24  # bubble-sort at scale 4


@pytest.fixture(scope="module")
def isa():
    return rv32im()


@pytest.fixture(scope="module")
def image():
    return WORKLOADS["bubble-sort"].image(4)


def explore(isa, image, **kwargs):
    return Explorer(BinSymExecutor(isa, image), **kwargs).explore()


@pytest.mark.parametrize(
    "jobs",
    [1, 2, 4],
    ids=["serial", "jobs2", "jobs4"],
)
def test_exploration_jobs(benchmark, isa, image, jobs):
    benchmark.group = "explorer:jobs"
    if jobs > 1 and not HAS_FORK:
        pytest.skip("fork start method unavailable")
    reference = explore(isa, image)

    def run():
        return explore(isa, image, jobs=jobs)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_paths == _EXPECTED_PATHS
    assert result.path_set() == reference.path_set()
    benchmark.extra_info["paths"] = result.num_paths
    benchmark.extra_info["workers"] = result.workers
    # Anytime counters: deterministically zero on a healthy benchmark
    # run; bench_compare.py gates on them so a silently degraded run
    # can never pass as a performance baseline.
    benchmark.extra_info["deadline_expired"] = int(result.deadline_expired)
    benchmark.extra_info["degradations"] = result.degradations
    benchmark.extra_info["hung_workers"] = result.hung_workers
    # Persistent-store health: benchmarks run without --store, so both
    # must be exactly zero — non-zero means a store tier leaked into
    # the benchmark configuration or an artifact failed verification.
    benchmark.extra_info["store_quarantines"] = result.store_quarantines
    benchmark.extra_info["store_disabled"] = result.store_disabled


@pytest.mark.parametrize("cache", [False, True], ids=["cache-off", "cache-on"])
def test_single_exploration_query_counts(benchmark, isa, image, cache):
    benchmark.group = "explorer:cache"
    reference = explore(isa, image, use_cache=False)

    def run():
        return explore(isa, image, use_cache=cache)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.path_set() == reference.path_set()
    if cache:
        # UNSAT subsumption and model reuse fire even within one
        # exploration: strictly fewer queries reach the SAT core.
        assert result.num_queries < reference.num_queries
        assert result.cache_hits > 0
    benchmark.extra_info["solved_queries"] = result.num_queries
    benchmark.extra_info["cache_hits"] = result.cache_hits


@pytest.mark.parametrize("cache", [False, True], ids=["cache-off", "cache-on"])
def test_multi_engine_query_counts(benchmark, isa, image, cache):
    """The eval/difftest pattern: four engines, one workload."""
    benchmark.group = "explorer:cache"
    engines = ("binsym", "binsec", "symex-vp", "angr")

    def run():
        shared = CachingSolver() if cache else None
        total_queries = 0
        total_hits = 0
        for key in engines:
            result = Explorer(
                make_engine(key, isa, image), solver=shared
            ).explore()
            assert result.num_paths == _EXPECTED_PATHS
            total_queries += result.num_queries
            total_hits += result.cache_hits
        return total_queries, total_hits

    queries, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    if cache:
        # Engines after the first answer nearly everything from cache.
        assert hits > queries
    benchmark.extra_info["solved_queries"] = queries
    benchmark.extra_info["cache_hits"] = hits
