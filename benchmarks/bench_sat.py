"""SAT-core benchmarks: trail reuse, assumption cores, minimal-core caching.

PR 4 rebuilt the decision-procedure stack around the branch-flip
workload shape; these benchmarks time the new mechanisms in isolation
and pin the behavioural contracts on the Fig. 6 workload set:

* shared-assumption-prefix **trail reuse** — consecutive queries along
  one path keep the trail segment their common prefix justifies,
* **assumption-level UNSAT cores** — `analyzeFinal` + greedy
  minimization, feeding the query cache *minimal* UNSAT sets,
* the **cores-enabled vs disabled subsumption contract** — with cores
  on, the cache's UNSAT-subsumption tier must answer at least as many
  queries per workload (strictly more in aggregate) and the CDCL core
  must run strictly fewer solves than the no-cores baseline solved.
"""

import pytest

from repro.core import BinSymExecutor, Explorer
from repro.eval.workloads import WORKLOADS
from repro.smt import terms as T
from repro.smt.preprocess import PreprocessConfig
from repro.smt.sat import SAT, UNSAT, SatSolver
from repro.smt.solver import CachingSolver, Result, Solver
from repro.spec import rv32im

_FIG6_WORKLOADS = (
    "bubble-sort",
    "insertion-sort",
    "base64-encode",
    "uri-parser",
    "clif-parser",
)


# ---------------------------------------------------------------------------
# Core-level microbenchmarks
# ---------------------------------------------------------------------------


def _chain_solver(num_vars, trail_reuse):
    solver = SatSolver(trail_reuse=trail_reuse)
    v = [solver.new_var() for _ in range(num_vars)]
    for i in range(num_vars - 1):
        solver.add_clause([-v[i], v[i + 1]])
    return solver, v


def _prefix_queries(solver, v, rounds):
    sat_count = 0
    prefix = []
    for i in range(rounds):
        prefix.append(v[i])
        if solver.solve(prefix + [v[(i * 7) % len(v)]]) is SAT:
            sat_count += 1
        if solver.solve(prefix) is SAT:
            sat_count += 1
    return sat_count


def test_trail_reuse_prefix_queries(benchmark):
    """The explorer's pattern: many queries along one growing prefix."""
    benchmark.group = "sat-core"
    num_vars, rounds = 400, 120

    def run():
        solver, v = _chain_solver(num_vars, trail_reuse=True)
        return _prefix_queries(solver, v, rounds), solver

    sat_count, solver = benchmark.pedantic(run, rounds=3, iterations=1)
    baseline, v = _chain_solver(num_vars, trail_reuse=False)
    assert _prefix_queries(baseline, v, rounds) == sat_count
    assert solver.statistics["trail_reused_lits"] > 0
    assert baseline.statistics["trail_reused_lits"] == 0
    benchmark.extra_info["trail_reused_lits"] = solver.statistics[
        "trail_reused_lits"
    ]


def test_unsat_core_extraction(benchmark):
    """Core extraction + greedy minimization on padded UNSAT queries."""
    benchmark.group = "sat-core"

    def run():
        solver = Solver(unsat_cores=True)
        x = T.bv_var("x", 32)
        y = T.bv_var("y", 32)
        guilty = [T.ult(x, T.bv(5, 32)), T.ugt(x, T.bv(500, 32))]
        sizes = []
        for i in range(24):
            padding = [T.ult(y, T.bv(1000 + i, 32)), T.ugt(y, T.bv(i, 32))]
            assert solver.check(padding + guilty) is Result.UNSAT
            assert solver.last_core is not None
            sizes.append(len(solver.last_core))
        return sizes

    sizes = benchmark.pedantic(run, rounds=3, iterations=1)
    # Minimization must strip the satisfiable padding every time.
    assert all(size == 2 for size in sizes)


def test_glue_clause_learning(benchmark):
    """UNSAT proof workout exercising LBD-tiered clause management."""
    benchmark.group = "sat-core"

    def php():
        solver = SatSolver()
        holes, pigeons = 5, 6
        var = {
            (p, h): solver.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            solver.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        assert solver.solve() is UNSAT
        return solver

    solver = benchmark.pedantic(php, rounds=3, iterations=1)
    assert all(clause.lbd >= 1 for clause in solver._learned)
    benchmark.extra_info["conflicts"] = solver.statistics["conflicts"]
    benchmark.extra_info["learned_deleted"] = solver.statistics["learned_deleted"]


# ---------------------------------------------------------------------------
# Fig. 6 workload contracts
# ---------------------------------------------------------------------------


def _explore(image, config):
    solver = CachingSolver(preprocess=config)
    result = Explorer(BinSymExecutor(rv32im(), image), solver=solver).explore()
    return result, solver


def _workload_image(name):
    spec = WORKLOADS[name]
    return spec.image(spec.fig6_scale)


@pytest.mark.parametrize("workload", _FIG6_WORKLOADS)
def test_cores_subsumption_contract(benchmark, workload):
    """Cores on: identical path sets, no fewer subsumption answers and
    no more CDCL solves than the no-cores baseline, per workload."""
    benchmark.group = "sat-cores"
    image = _workload_image(workload)
    off_result, off_solver = _explore(
        image, PreprocessConfig(unsat_cores=False)
    )

    def run():
        return _explore(image, PreprocessConfig())

    on_result, on_solver = benchmark.pedantic(run, rounds=1, iterations=1)
    assert on_result.path_set() == off_result.path_set()
    assert (
        on_solver.cache.subsumption_hits >= off_solver.cache.subsumption_hits
    )
    assert on_solver.num_solves <= off_solver.num_solves
    benchmark.extra_info["solves_on"] = on_solver.num_solves
    benchmark.extra_info["solves_off"] = off_solver.num_solves
    benchmark.extra_info["subsumed_on"] = on_solver.cache.subsumption_hits
    benchmark.extra_info["subsumed_off"] = off_solver.cache.subsumption_hits
    benchmark.extra_info["min_cores"] = on_solver.pipeline_stats["unsat_cores"]


def test_cores_aggregate_contract(benchmark):
    """Across the Fig. 6 set, minimal cores must strictly increase
    subsumption answers and strictly cut the queries reaching CDCL."""
    benchmark.group = "sat-cores"

    def run():
        totals = {
            "subsumed_on": 0, "subsumed_off": 0,
            "solves_on": 0, "solved_off": 0,
            "trail_lits": 0,
        }
        for workload in _FIG6_WORKLOADS:
            image = _workload_image(workload)
            on_result, on_solver = _explore(image, PreprocessConfig())
            off_result, off_solver = _explore(
                image, PreprocessConfig(unsat_cores=False)
            )
            assert on_result.path_set() == off_result.path_set(), workload
            totals["subsumed_on"] += on_solver.cache.subsumption_hits
            totals["subsumed_off"] += off_solver.cache.subsumption_hits
            totals["solves_on"] += on_solver.num_solves
            totals["solved_off"] += off_result.num_queries
            totals["trail_lits"] += on_solver.pipeline_statistics[
                "sat_trail_reused_lits"
            ]
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    # The headline PR 4 claims, in aggregate over the workload set:
    assert totals["subsumed_on"] > totals["subsumed_off"], totals
    assert totals["solves_on"] < totals["solved_off"], totals
    assert totals["trail_lits"] > 0, totals
    for key, value in totals.items():
        benchmark.extra_info[key] = value
