"""Minimal ELF32 writer and reader for RISC-V executables.

pyelftools is not available offline, and the engines only need the
loadable view of an executable, so this module implements the small ELF
subset that matters: ELF32 little-endian executables for EM_RISCV with
PT_LOAD program headers, plus an optional ``.symtab`` so symbol-based
harness configuration survives a round trip through the file format.

The writer produces files that external readelf/objdump parse fine; the
reader accepts files produced by standard toolchains as long as they are
ELF32, little-endian, RISC-V.
"""

from __future__ import annotations

import struct
from typing import Optional

from .image import Image, Segment

__all__ = ["write_elf", "read_elf", "ElfFormatError"]

_EI_NIDENT = 16
_ELFCLASS32 = 1
_ELFDATA2LSB = 1
_EV_CURRENT = 1
_ET_EXEC = 2
_EM_RISCV = 243

_EHDR_FMT = "<16sHHIIIIIHHHHHH"
_EHDR_SIZE = struct.calcsize(_EHDR_FMT)  # 52
_PHDR_FMT = "<IIIIIIII"
_PHDR_SIZE = struct.calcsize(_PHDR_FMT)  # 32
_SHDR_FMT = "<IIIIIIIIII"
_SHDR_SIZE = struct.calcsize(_SHDR_FMT)  # 40
_SYM_FMT = "<IIIBBH"
_SYM_SIZE = struct.calcsize(_SYM_FMT)  # 16

_PT_LOAD = 1
_SHT_NULL = 0
_SHT_PROGBITS = 1
_SHT_SYMTAB = 2
_SHT_STRTAB = 3
_PF_RWX = 7


class ElfFormatError(ValueError):
    """Raised when parsing a file outside the supported ELF subset."""


def write_elf(image: Image) -> bytes:
    """Serialize an Image as an ELF32 RISC-V executable."""
    segments = sorted(image.segments, key=lambda s: s.base)
    phnum = len(segments)

    # Layout: ehdr | phdrs | segment data... | symtab | strtab | shdrs
    offset = _EHDR_SIZE + phnum * _PHDR_SIZE
    segment_offsets = []
    blob = bytearray()
    for segment in segments:
        # Align segment file offsets to 4 bytes for readability.
        pad = (-offset) % 4
        blob.extend(b"\x00" * pad)
        offset += pad
        segment_offsets.append(offset)
        blob.extend(segment.data)
        offset += len(segment.data)

    # String and symbol tables.
    strtab = bytearray(b"\x00")
    symtab = bytearray(b"\x00" * _SYM_SIZE)  # index 0: undefined symbol
    for name in sorted(image.symbols):
        name_offset = len(strtab)
        strtab.extend(name.encode("utf-8") + b"\x00")
        # st_info = (STB_GLOBAL << 4) | STT_NOTYPE = 0x10
        symtab.extend(
            struct.pack(_SYM_FMT, name_offset, image.symbols[name], 0, 0x10, 0, 1)
        )

    shstrtab = bytearray(b"\x00")

    def shstr(name: str) -> int:
        pos = len(shstrtab)
        shstrtab.extend(name.encode() + b"\x00")
        return pos

    pad = (-offset) % 4
    blob.extend(b"\x00" * pad)
    offset += pad
    symtab_offset = offset
    blob.extend(symtab)
    offset += len(symtab)
    strtab_offset = offset
    blob.extend(strtab)
    offset += len(strtab)

    # Section headers: null, one PROGBITS per segment, symtab, strtab, shstrtab.
    sections = [struct.pack(_SHDR_FMT, 0, _SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0)]
    for i, segment in enumerate(segments):
        sections.append(
            struct.pack(
                _SHDR_FMT,
                shstr(f".seg{i}"),
                _SHT_PROGBITS,
                0x7,  # SHF_WRITE|ALLOC|EXECINSTR
                segment.base,
                segment_offsets[i],
                len(segment.data),
                0, 0, 4, 0,
            )
        )
    strtab_index = len(sections) + 1
    sections.append(
        struct.pack(
            _SHDR_FMT, shstr(".symtab"), _SHT_SYMTAB, 0, 0,
            symtab_offset, len(symtab), strtab_index, 1, 4, _SYM_SIZE,
        )
    )
    sections.append(
        struct.pack(
            _SHDR_FMT, shstr(".strtab"), _SHT_STRTAB, 0, 0,
            strtab_offset, len(strtab), 0, 0, 1, 0,
        )
    )
    shstrtab_name = shstr(".shstrtab")
    shstrtab_offset = offset
    blob.extend(shstrtab)
    offset += len(shstrtab)
    sections.append(
        struct.pack(
            _SHDR_FMT, shstrtab_name, _SHT_STRTAB, 0, 0,
            shstrtab_offset, len(shstrtab), 0, 0, 1, 0,
        )
    )
    pad = (-offset) % 4
    blob.extend(b"\x00" * pad)
    offset += pad
    shoff = offset

    ident = bytes([0x7F, ord("E"), ord("L"), ord("F"),
                   _ELFCLASS32, _ELFDATA2LSB, _EV_CURRENT]) + b"\x00" * 9
    ehdr = struct.pack(
        _EHDR_FMT,
        ident,
        _ET_EXEC,
        _EM_RISCV,
        _EV_CURRENT,
        image.entry,
        _EHDR_SIZE,  # phoff: right after the header
        shoff,
        0,  # flags
        _EHDR_SIZE,
        _PHDR_SIZE,
        phnum,
        _SHDR_SIZE,
        len(sections),
        len(sections) - 1,  # shstrndx: last section
    )

    phdrs = bytearray()
    for i, segment in enumerate(segments):
        phdrs.extend(
            struct.pack(
                _PHDR_FMT,
                _PT_LOAD,
                segment_offsets[i],
                segment.base,
                segment.base,
                len(segment.data),
                len(segment.data),
                _PF_RWX,
                4,
            )
        )

    out = bytearray()
    out.extend(ehdr)
    out.extend(phdrs)
    out.extend(blob)
    out.extend(b"".join(sections))
    return bytes(out)


def read_elf(data: bytes) -> Image:
    """Parse an ELF32 RISC-V executable into an Image."""
    if len(data) < _EHDR_SIZE:
        raise ElfFormatError("file too small for an ELF header")
    (
        ident, e_type, e_machine, _version, e_entry, e_phoff, e_shoff,
        _flags, _ehsize, e_phentsize, e_phnum, e_shentsize, e_shnum,
        e_shstrndx,
    ) = struct.unpack_from(_EHDR_FMT, data, 0)
    if ident[:4] != b"\x7fELF":
        raise ElfFormatError("bad ELF magic")
    if ident[4] != _ELFCLASS32:
        raise ElfFormatError("only ELF32 is supported")
    if ident[5] != _ELFDATA2LSB:
        raise ElfFormatError("only little-endian ELF is supported")
    if e_machine != _EM_RISCV:
        raise ElfFormatError(f"not a RISC-V ELF (machine={e_machine})")

    image = Image(entry=e_entry)
    for i in range(e_phnum):
        offset = e_phoff + i * e_phentsize
        (p_type, p_offset, p_vaddr, _paddr, p_filesz, p_memsz, _pflags,
         _align) = struct.unpack_from(_PHDR_FMT, data, offset)
        if p_type != _PT_LOAD:
            continue
        payload = bytearray(data[p_offset : p_offset + p_filesz])
        if p_memsz > p_filesz:
            payload.extend(b"\x00" * (p_memsz - p_filesz))
        image.add_segment(p_vaddr, bytes(payload))

    image.symbols.update(_read_symbols(data, e_shoff, e_shentsize, e_shnum))
    return image


def _read_symbols(data, shoff, shentsize, shnum) -> dict[str, int]:
    symbols: dict[str, int] = {}
    if not shoff:
        return symbols
    headers = []
    for i in range(shnum):
        headers.append(struct.unpack_from(_SHDR_FMT, data, shoff + i * shentsize))
    for header in headers:
        (_name, sh_type, _flags, _addr, sh_offset, sh_size, sh_link,
         _info, _align, sh_entsize) = header
        if sh_type != _SHT_SYMTAB or sh_entsize == 0:
            continue
        str_header = headers[sh_link]
        str_offset, str_size = str_header[4], str_header[5]
        strtab = data[str_offset : str_offset + str_size]
        count = sh_size // sh_entsize
        for j in range(1, count):  # skip the null symbol
            st_name, st_value, _size, _info2, _other, _shndx = struct.unpack_from(
                _SYM_FMT, data, sh_offset + j * sh_entsize
            )
            end = strtab.find(b"\x00", st_name)
            name = strtab[st_name:end].decode("utf-8", "replace")
            if name:
                symbols[name] = st_value
    return symbols
