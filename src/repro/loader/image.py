"""Program image: the loadable result of assembling or ELF parsing.

An :class:`Image` is what every execution engine consumes: a list of
``(base_address, bytes)`` segments, a symbol table, and an entry point.
It deliberately mirrors the loadable view of an ELF file so that the
assembler output and the ELF loader output are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Image", "Segment"]


@dataclass(frozen=True)
class Segment:
    """A contiguous chunk of initialized memory."""

    base: int
    data: bytes

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class Image:
    """Loadable program: segments + symbols + entry point."""

    segments: list[Segment] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0

    def add_segment(self, base: int, data: bytes) -> None:
        if data:
            self.segments.append(Segment(base, bytes(data)))

    def symbol(self, name: str) -> int:
        """Address of a symbol; raises KeyError when undefined."""
        return self.symbols[name]

    def load_into(self, memory) -> None:
        """Copy all segments into a ByteMemory-like object."""
        for segment in self.segments:
            memory.write_bytes(segment.base, segment.data)

    def total_size(self) -> int:
        return sum(len(s) for s in self.segments)

    def bounds(self) -> tuple[int, int]:
        """(lowest, highest) address covered by any segment."""
        if not self.segments:
            return (0, 0)
        return (
            min(s.base for s in self.segments),
            max(s.end for s in self.segments),
        )
