"""Binary loading: program images and a minimal ELF32 reader/writer."""

from .elf import ElfFormatError, read_elf, write_elf
from .image import Image, Segment

__all__ = ["Image", "Segment", "read_elf", "write_elf", "ElfFormatError"]
