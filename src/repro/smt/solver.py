"""Incremental QF_BV solver facade (the repository's Z3 replacement).

:class:`Solver` exposes the small API the symbolic execution engines
need: ``add`` (assert a boolean term), ``push``/``pop`` scopes,
``check`` under additional per-query assumptions, and ``model``
extraction after a satisfiable answer.

Scopes and assumptions are implemented with activation literals on top
of the CDCL core, so nothing is ever re-encoded: the bit-blaster's term
cache persists for the lifetime of the solver, which is what makes the
offline executor's thousands of small branch queries affordable.

The cross-path query layer lives here too: :class:`QueryCache` memoizes
branch-flip answers keyed by the *canonicalized* path condition (a
frozenset of interned condition terms, so permuted and duplicated
prefixes collapse onto one entry), and :class:`CachingSolver` consults
it before touching the CDCL core — exact hits, UNSAT-superset
subsumption, and satisfying-model reuse all answer without a solve.

On top of the cache, :class:`CachingSolver` runs the word-level
preprocessing pipeline (PR 2): each query is partitioned into
variable-independent *slices* (:mod:`repro.smt.preprocess`), every
slice goes through cache lookup, equality-substitution rewriting and
the interval fast path (:mod:`repro.smt.intervals`), and only the
undecided residue reaches the bit-blaster — in a single joint SAT call
whose model is then split back into per-slice cache entries.  Models
are stitched across slices (plus rewrite bindings) into one witness.
"""

from __future__ import annotations

import enum
import hashlib
from collections import deque
from typing import Iterable, Mapping, Optional

from . import drat, terms
from .bitblast import BitBlaster
from .digest import term_digest
from .evalbv import EvalError, evaluate
from .intervals import analyze_slice
from .preprocess import PreprocessConfig, rewrite_slice, slice_conditions
from .sat import SAT, UNKNOWN, SatSolver
from .terms import Term

__all__ = [
    "Solver",
    "Result",
    "Model",
    "QueryCache",
    "CachingSolver",
    "PreprocessConfig",
]


class Result(enum.Enum):
    """Outcome of a satisfiability check.

    ``UNKNOWN`` means a configured work budget ran out before the CDCL
    core decided the query (see ``PreprocessConfig.conflict_budget``).
    It is never cached and callers must treat it as "no answer" — for
    branch flipping that means: do not flip, count the query.
    """

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment for the variables of a formula.

    Variables that were never constrained default to zero/false, matching
    the behaviour symbolic execution engines expect from SMT solvers when
    completing partial models.
    """

    def __init__(self, values: dict[Term, int]):
        self._values = dict(values)

    def __getitem__(self, var: Term) -> int:
        return self._values.get(var, 0)

    def get(self, var: Term, default: int = 0) -> int:
        return self._values.get(var, default)

    def items(self):
        return self._values.items()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, var: Term) -> bool:
        return var in self._values

    def eval(self, term: Term) -> int:
        """Evaluate an arbitrary term under this model (free vars -> 0)."""
        assignment = dict(self._values)
        for var in term.variables():
            assignment.setdefault(var, 0)
        return evaluate(term, assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{var.payload}={value:#x}" for var, value in sorted(
                self._values.items(), key=lambda item: str(item[0].payload)
            )
        )
        return f"Model({parts})"


class Solver:
    """Incremental bit-blasting solver for QF_BV terms.

    ``trail_reuse`` enables the CDCL core's shared-assumption-prefix
    trail retention between ``check`` calls (on by default; a pure
    perf knob).  ``unsat_cores`` additionally extracts and greedily
    minimizes an assumption-level UNSAT core after every unsatisfiable
    scope-free ``check``, publishing it as :attr:`last_core` — a
    frozenset of the guilty assumption *terms* (off by default because
    minimization re-solves; :class:`CachingSolver` switches it on to
    feed the query cache minimal UNSAT sets).
    """

    def __init__(
        self,
        trail_reuse: bool = True,
        unsat_cores: bool = False,
        conflict_budget: Optional[int] = None,
        propagation_budget: Optional[int] = None,
        wall_budget: Optional[float] = None,
        core_budget: int = 8,
        certify: bool = False,
        proof_log: bool = False,
    ) -> None:
        self._sat = SatSolver(
            trail_reuse=trail_reuse,
            conflict_budget=conflict_budget,
            propagation_budget=propagation_budget,
            wall_budget=wall_budget,
            proof_log=proof_log,
        )
        self._core_budget = core_budget
        self._blaster = BitBlaster(self._sat)
        self._scopes: list[int] = []
        self._last_result: Optional[Result] = None
        self._unsat_cores = unsat_cores
        self._has_assertions = False
        #: After an UNSAT ``check``: the subset of the assumption terms
        #: whose conjunction is already unsatisfiable, or None when no
        #: core could be attributed (scopes active, cores disabled, or
        #: the clause database itself is inconsistent).
        self.last_core: Optional[frozenset] = None
        self.num_checks = 0
        #: CDCL ``solve()`` invocations — the cost the preprocessing
        #: pipeline exists to avoid.  ``num_checks`` counts ``check``
        #: calls that reached the core; a single pipelined check may
        #: issue zero or several core solves.
        self.num_solves = 0
        #: ``check`` calls answered UNKNOWN (work budget exhausted).
        self.num_unknowns = 0
        #: Certification mode (``--certify``): every UNSAT answer is
        #: checked against the CDCL core's DRAT-style proof by the
        #: independent RUP checker in :mod:`repro.smt.drat`, and every
        #: SAT model is evaluated against the query terms with the
        #: reference evaluator before it is reported.  An answer whose
        #: evidence fails to check is *downgraded to UNKNOWN* — counted,
        #: never trusted.
        self._certify = certify
        self._checker: Optional[drat.ProofChecker] = None
        self.certified_sat = 0
        self.certified_unsat = 0
        self.certify_failures = 0

    # ------------------------------------------------------------------
    # Assertions and scopes
    # ------------------------------------------------------------------

    def add(self, term: Term) -> None:
        """Assert a boolean term in the current scope."""
        if not term.is_bool:
            raise TypeError("Solver.add expects a boolean term")
        lit = self._blaster.lit(term)
        if self._scopes:
            self._sat.add_clause([-self._scopes[-1], lit])
        else:
            self._sat.add_clause([lit])
        self._has_assertions = True
        self._last_result = None

    def set_fault_hook(self, hook) -> None:
        """Install a per-solve give-up predicate (fault injection).

        ``hook(solve_ordinal) -> bool``; a ``True`` answer makes that
        CDCL ``solve()`` abandon the query exactly as an exhausted
        conflict budget would — the check answers UNKNOWN, nothing is
        cached, and the usual sound-degradation accounting applies.
        ``None`` uninstalls.
        """
        self._sat.fault_hook = hook

    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append(self._sat.new_var())

    def pop(self) -> None:
        """Discard the most recent assertion scope."""
        act = self._scopes.pop()
        self._sat.add_clause([-act])
        self._has_assertions = True
        self._last_result = None

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def check(self, assumptions: Iterable[Term] = ()) -> Result:
        """Check satisfiability of the asserted formula + assumptions."""
        assumption_lits = list(self._scopes)
        lit_terms: dict[int, Term] = {}
        self.last_core = None
        for term in assumptions:
            if not term.is_bool:
                raise TypeError("assumptions must be boolean terms")
            if term.is_const:
                if term.payload:
                    continue
                self._last_result = Result.UNSAT
                self.num_checks += 1
                if self._unsat_cores:
                    self.last_core = frozenset((term,))
                if self._certify:
                    # The constant-false conjunct is its own evidence.
                    self.certified_unsat += 1
                return Result.UNSAT
            lit = self._blaster.lit(term)
            lit_terms.setdefault(lit, term)
            assumption_lits.append(lit)
        self.num_checks += 1
        if not assumption_lits and not self._has_assertions:
            # Every assumption was a constant-true term pruned above and
            # nothing was ever asserted: trivially SAT.  Attributed as a
            # fast-path answer, not a core solve.
            self._last_result = Result.SAT
            return Result.SAT
        self.num_solves += 1
        outcome = self._sat.solve(assumption_lits)
        if outcome is SAT:
            self._last_result = Result.SAT
            if self._certify and not self._certify_sat_model(lit_terms.values()):
                # The model fails its own query under the reference
                # evaluator: never trusted — answer UNKNOWN, counted.
                self.num_unknowns += 1
                self._last_result = Result.UNKNOWN
            return self._last_result
        if outcome is UNKNOWN:
            # Budget exhausted: no model, no core, nothing cacheable.
            self.num_unknowns += 1
            self._last_result = Result.UNKNOWN
            return self._last_result
        self._last_result = Result.UNSAT
        attributed: Optional[list] = None
        if self._unsat_cores and not self._scopes:
            core = self._sat.unsat_core()
            if core and all(lit in lit_terms for lit in core):
                if len(core) > 1:
                    core = self._sat.minimize_core(core, budget=self._core_budget)
                attributed = core
        if self._certify and not self._scopes:
            raw = attributed if attributed is not None else self._sat.unsat_core()
            if not self._certify_unsat_answer(raw):
                self.num_unknowns += 1
                self._last_result = Result.UNKNOWN
                return self._last_result
        if attributed is not None:
            self.last_core = frozenset(lit_terms[lit] for lit in attributed)
        return self._last_result

    # ------------------------------------------------------------------
    # Answer certification (--certify)
    # ------------------------------------------------------------------

    def _certify_sat_model(self, query_terms) -> bool:
        """Check the fresh model against the query with ``evalbv``.

        Only assumption-style queries are checkable — terms asserted
        via :meth:`add` (or scoped) are not reconstructable here, so
        those checks pass through unverified rather than failing.
        """
        if self._has_assertions or self._scopes:
            return True
        model = self.model()
        try:
            ok = all(model.eval(term) for term in query_terms)
        except EvalError:  # pragma: no cover - defensive
            ok = False
        if ok:
            self.certified_sat += 1
        else:
            self.certify_failures += 1
        return ok

    def _certify_unsat_answer(self, core_lits) -> bool:
        """Check an UNSAT answer against the CDCL core's clause log.

        The proof is replayed through the independent RUP checker in
        :mod:`repro.smt.drat` (incrementally — only events since the
        last check are verified); the answer is then certified either
        by the verified empty clause (no surviving assumptions) or by
        propagating the core literals to a conflict over the verified
        clause database.  With proof logging disabled the answer passes
        through unverified.
        """
        proof = self._sat.proof
        if proof is None:
            return True
        if self._checker is None:
            self._checker = drat.ProofChecker()
        try:
            self._checker.feed(proof)
            if core_lits:
                self._checker.check_core(core_lits)
            else:
                self._checker.check_unsat()
        except drat.ProofError:
            self.certify_failures += 1
            return False
        self.certified_unsat += 1
        return True

    def model(self) -> Model:
        """Extract the model after a satisfiable :meth:`check`."""
        if self._last_result is not Result.SAT:
            raise RuntimeError("model() requires a preceding sat check")
        values: dict[Term, int] = {}
        for var, bits in self._blaster.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                if self._sat.value(abs(lit)) == (lit > 0):
                    value |= 1 << i
            values[var] = value
        for var, lit in self._blaster.bool_vars.items():
            values[var] = 1 if self._sat.value(abs(lit)) == (lit > 0) else 0
        return Model(values)

    def value_of(self, var: Term) -> Optional[int]:
        """Value of one variable after a sat check (None if never blasted).

        Cheaper than :meth:`model` when only a known subset of the
        variables matters — the pipeline's per-slice model extraction
        uses this to avoid walking every variable the blaster has ever
        seen once per slice.
        """
        if self._last_result is not Result.SAT:
            raise RuntimeError("value_of() requires a preceding sat check")
        if var.is_bool:
            lit = self._blaster.bool_vars.get(var)
            if lit is None:
                return None
            return 1 if self._sat.value(abs(lit)) == (lit > 0) else 0
        bits = self._blaster.var_bits.get(var)
        if bits is None:
            return None
        value = 0
        for i, lit in enumerate(bits):
            if self._sat.value(abs(lit)) == (lit > 0):
                value |= 1 << i
        return value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def statistics(self) -> Mapping[str, int]:
        stats = dict(self._sat.statistics)
        stats["sat_vars"] = self._sat.num_vars
        stats["checks"] = self.num_checks
        stats["solves"] = self.num_solves
        stats["unknowns"] = self.num_unknowns
        stats["certified_sat"] = self.certified_sat
        stats["certified_unsat"] = self.certified_unsat
        stats["certify_failures"] = self.certify_failures
        for kind, hits in self._blaster.network_hits.items():
            stats[f"blaster_{kind}_reuse"] = hits
        return stats


class QueryCache:
    """Cross-path memo of satisfiability answers and models.

    Keys are canonicalized path conditions: the ``frozenset`` of the
    query's (interned) condition terms, so condition *order* and
    duplicated conjuncts never cause a miss.  Three lookup tiers, each
    sound on its own:

    1. **exact** — the same condition set was answered before;
    2. **UNSAT subsumption** — some cached UNSAT set is a subset of the
       query (a conjunction stays UNSAT under extra conjuncts);
    3. **model reuse** — a recently produced satisfying model, completed
       with zeros for fresh variables, already satisfies every conjunct
       (evaluated with the reference evaluator), so the query is SAT and
       that completed model is a witness.

    With the preprocessing pipeline active, keys are *slices* —
    variable-connected components of a query — rather than whole path
    conditions, so one entry answers every later query that contains
    the same independent fragment, across paths and branch flips.

    The cache is process-local: interned terms hash by identity, which
    makes the keys O(1) but meaningless across processes.  Each parallel
    exploration worker therefore owns one ``QueryCache``.

    Entries carry blake2b *integrity digests* taken at store time and
    re-checked on hit (every ``verify_period``-th verification
    opportunity; the default of 1 checks every hit).  A hit whose
    content no longer matches its digest is **quarantined**: the entry
    is dropped, the lookup falls through to the remaining tiers (or a
    fresh solve), and the event is counted in ``quarantines`` — a
    poisoned answer is re-derived, never served.  Digests hash interned
    term identities, which is exactly as process-local as the keys
    themselves.  :meth:`set_corruptor` is the fault-injection seam that
    poisons entries *after* digesting, so the chaos harness can prove
    the detection path works.
    """

    def __init__(
        self,
        max_models: int = 8,
        max_unsat_sets: int = 512,
        max_entries: int = 100_000,
        verify_period: int = 1,
    ):
        self._results: dict[frozenset, Result] = {}
        self._models: dict[frozenset, Model] = {}
        # UNSAT sets live behind an inverted index: id -> set (FIFO by
        # insertion id), set -> id for dedup/refresh, and condition
        # term -> ids of the sets containing it, so subsumption lookup
        # touches only candidate sets sharing a conjunct with the query
        # instead of scanning the whole window.
        self._unsat_sets: dict[int, frozenset] = {}
        self._unsat_ids: dict[frozenset, int] = {}
        self._unsat_index: dict[Term, set[int]] = {}
        self._unsat_seq = 0
        self._max_unsat_sets = max_unsat_sets
        #: Pool of ``(values, digest)`` pairs (digest taken at store).
        self._model_pool: deque = deque(maxlen=max_models)
        self._max_entries = max_entries
        #: Integrity digests: per memo key and per UNSAT-set id.
        self._digests: dict[frozenset, bytes] = {}
        self._unsat_digests: dict[int, bytes] = {}
        self._verify_period = max(0, verify_period)
        self._verify_tick = 0
        self._corruptor = None
        self._store_seq = 0
        #: Optional persistent tier (:class:`repro.core.store.ArtifactStore`);
        #: attached by the drivers under ``--store``, never constructed here.
        self.store = None
        self.hits = 0
        self.exact_hits = 0
        self.subsumption_hits = 0
        self.model_reuse_hits = 0
        self.misses = 0
        self.evictions = 0
        self.integrity_checks = 0
        self.quarantines = 0
        self.corruptions = 0

    def __len__(self) -> int:
        return len(self._results)

    def tighten(self, factor: int = 2) -> None:
        """Shrink every capacity by ``factor`` (memory-governor rung).

        Sound by the same argument as ordinary eviction: the cache is a
        pure memo, so a dropped entry costs a re-solve, never an answer.
        Floors keep the cache functional under repeated tightening —
        the governor may call this on every pressure sample.
        """
        self._max_entries = max(64, self._max_entries // factor)
        self._max_unsat_sets = max(16, self._max_unsat_sets // factor)
        while len(self._results) > self._max_entries:
            oldest = next(iter(self._results))
            del self._results[oldest]
            self._models.pop(oldest, None)
            self._digests.pop(oldest, None)
            self.evictions += 1
        while len(self._unsat_sets) > self._max_unsat_sets:
            self._drop_unsat_set(next(iter(self._unsat_sets)))
        pool_cap = max(2, (self._model_pool.maxlen or 2) // factor)
        # deque(iterable, maxlen) keeps the *newest* maxlen entries.
        self._model_pool = deque(self._model_pool, maxlen=pool_cap)

    # -- integrity ------------------------------------------------------

    def set_corruptor(self, hook) -> None:
        """Install a deterministic poisoning predicate (fault injection).

        ``hook(kind, ordinal) -> bool`` with ``kind`` one of ``"model"``
        (a stored SAT witness), ``"pool"`` (a reuse-pool assignment) or
        ``"core"`` (an UNSAT conjunct set); a True answer mutates the
        freshly stored entry *after* its digest was taken, so the
        poison is detectable on the next verified hit.  ``None``
        uninstalls.  See :meth:`repro.core.faults.FaultPlan.corruptor`.
        """
        self._corruptor = hook

    def attach_store(self, store) -> None:
        """Attach the persistent artifact tier (``--store DIR``).

        The store answers only after every in-memory tier missed; its
        verified answers are *admitted* into the in-memory structures
        (memo, models, UNSAT subsumption window) so one disk read warms
        all subsequent in-process lookups.  Freshly solved verdicts are
        written through (see :meth:`store_sat` / :meth:`store_unsat`).
        ``None`` detaches.
        """
        self.store = store

    @staticmethod
    def _values_digest(tag: str, values) -> bytes:
        """Digest of a ``(term, int)`` assignment (or an empty one).

        Content-keyed via :func:`repro.smt.digest.term_digest` — not
        ``id(term)`` — so the digest taken when an entry was stored is
        still meaningful after a restart, which is what lets the
        persistent artifact store re-verify warmed entries with the
        exact scheme the in-memory tier uses.
        """
        hasher = hashlib.blake2b(tag.encode("ascii"), digest_size=16)
        pairs = sorted((term_digest(term), value) for term, value in values)
        for digest, value in pairs:
            hasher.update(b"%d:%d;" % (digest, value))
        return hasher.digest()

    @staticmethod
    def _set_digest(conds: frozenset) -> bytes:
        """Digest of an UNSAT conjunct set (content-keyed, like above)."""
        hasher = hashlib.blake2b(b"core", digest_size=16)
        for digest in sorted(term_digest(term) for term in conds):
            hasher.update(b"%d;" % digest)
        return hasher.digest()

    def _should_verify(self) -> bool:
        """Sampling gate: verify every ``verify_period``-th opportunity."""
        if self._verify_period <= 0:
            return False
        self._verify_tick += 1
        return self._verify_tick % self._verify_period == 0

    def _corrupt(self, kind: str) -> bool:
        """Fault seam: should the entry just stored be poisoned?"""
        if self._corruptor is None:
            return False
        self._store_seq += 1
        if self._corruptor(kind, self._store_seq):
            self.corruptions += 1
            return True
        return False

    @staticmethod
    def _poison_values(values: dict) -> None:
        """Flip one bit of one binding (deterministic victim: max id)."""
        if values:
            victim = max(values, key=id)
            values[victim] ^= 1

    def _verify_entry(self, key: frozenset, cached: Result) -> bool:
        """Digest-check a memo hit; quarantine and report False on rot."""
        digest = self._digests.get(key)
        if digest is None or not self._should_verify():
            return True
        self.integrity_checks += 1
        if cached is Result.SAT:
            model = self._models.get(key)
            expect = (
                self._values_digest("sat", model.items())
                if model is not None
                else None
            )
        else:
            expect = self._values_digest("unsat", ())
        if expect == digest:
            return True
        self.quarantines += 1
        del self._results[key]
        self._models.pop(key, None)
        del self._digests[key]
        return False

    def _verify_unsat_set(self, set_id: int) -> bool:
        """Digest-check one subsumption candidate; quarantine on rot."""
        digest = self._unsat_digests.get(set_id)
        if digest is None or not self._should_verify():
            return True
        self.integrity_checks += 1
        if self._set_digest(self._unsat_sets[set_id]) == digest:
            return True
        self.quarantines += 1
        self._drop_unsat_set(set_id)
        return False

    # -- UNSAT-set index -----------------------------------------------

    def _register_unsat_set(self, conds: frozenset) -> None:
        """Admit one UNSAT conjunct set to the subsumption window."""
        if not conds:
            return  # an empty set would subsume everything; never sound here
        existing = self._unsat_ids.get(conds)
        if existing is not None:
            self._drop_unsat_set(existing)  # refresh recency
        while len(self._unsat_sets) >= self._max_unsat_sets:
            self._drop_unsat_set(next(iter(self._unsat_sets)))
        set_id = self._unsat_seq
        self._unsat_seq += 1
        self._unsat_sets[set_id] = conds
        self._unsat_ids[conds] = set_id
        index = self._unsat_index
        for term in conds:
            postings = index.get(term)
            if postings is None:
                postings = index[term] = set()
            postings.add(set_id)
        self._unsat_digests[set_id] = self._set_digest(conds)
        if len(conds) > 1 and self._corrupt("core"):
            # Poison: silently shrink the stored set (an unsound
            # strengthening — it would subsume queries it must not).
            # The digest above still describes the honest set, so the
            # next verified subsumption hit quarantines this id.
            poisoned = frozenset(sorted(conds, key=id)[:-1])
            self._unsat_sets[set_id] = poisoned
            if self._unsat_ids.get(conds) == set_id:
                del self._unsat_ids[conds]

    def _drop_unsat_set(self, set_id: int) -> None:
        """Evict one UNSAT set, scrubbing its inverted-index postings.

        Defensive against poisoned state: the stored set may have been
        mutated after indexing, so postings for vanished terms are left
        to the ``.get`` guard in :meth:`_find_subsuming_unsat`.
        """
        conds = self._unsat_sets.pop(set_id, None)
        self._unsat_digests.pop(set_id, None)
        if conds is None:
            return
        if self._unsat_ids.get(conds) == set_id:
            del self._unsat_ids[conds]
        index = self._unsat_index
        for term in conds:
            postings = index.get(term)
            if postings is not None:
                postings.discard(set_id)
                if not postings:
                    del index[term]

    def _find_subsuming_unsat(self, key: frozenset) -> Optional[int]:
        """Id of some cached UNSAT set that is a subset of ``key``.

        Walks the inverted index: a set ``S`` is a subset of ``key``
        exactly when every element of ``S`` posts an occurrence for one
        of ``key``'s terms, i.e. when its posting count reaches
        ``len(S)``.
        """
        if not self._unsat_sets:
            return None
        index = self._unsat_index
        sets = self._unsat_sets
        counts: dict[int, int] = {}
        for term in key:
            postings = index.get(term)
            if not postings:
                continue
            for set_id in postings:
                conds = sets.get(set_id)
                if conds is None:
                    continue  # stale posting from a quarantined set
                seen = counts.get(set_id, 0) + 1
                if seen == len(conds):
                    return set_id
                counts[set_id] = seen
        return None

    # -- lookup --------------------------------------------------------

    def lookup(
        self, key: frozenset, conditions: list[Term]
    ) -> tuple[Optional[Result], Optional["Model"]]:
        """Try to answer ``conditions`` (canonicalized as ``key``)."""
        cached = self._results.get(key)
        if cached is not None and not self._verify_entry(key, cached):
            # Quarantined: pretend the entry never existed; the
            # remaining tiers (or a fresh solve) re-derive the answer.
            cached = None
        if cached is Result.UNSAT:
            self.hits += 1
            self.exact_hits += 1
            self._touch(key)
            return cached, None
        if cached is Result.SAT:
            model = self._models.get(key)
            if model is not None:
                self.hits += 1
                self.exact_hits += 1
                self._touch(key)
                return cached, model
            # SAT is known but no witness was ever extracted; a fresh
            # solve (or model-reuse below) must produce one.
        while True:
            set_id = self._find_subsuming_unsat(key)
            if set_id is None:
                break
            if not self._verify_unsat_set(set_id):
                continue  # quarantined; another set may still subsume
            self.hits += 1
            self.subsumption_hits += 1
            self._evict_if_full()
            self._results[key] = Result.UNSAT
            self._digests[key] = self._values_digest("unsat", ())
            return Result.UNSAT, None
        witness = self._reusable_model(key, conditions)
        if witness is not None:
            self.hits += 1
            self.model_reuse_hits += 1
            self._evict_if_full()
            self._results[key] = Result.SAT
            self._models[key] = witness
            self._digests[key] = self._values_digest("sat", witness.items())
            return Result.SAT, witness
        if self.store is not None:
            warm = self.store.load_query(key, conditions)
            if warm is not None:
                # Verified on disk (digest + semantic re-check, see
                # ArtifactStore.load_query); admit into the in-memory
                # tiers and count as a cache hit so query attribution
                # is conserved between cold and warm runs.
                verdict, model, core = warm
                self.hits += 1
                self._evict_if_full()
                self._results[key] = verdict
                if verdict is Result.SAT:
                    self._models[key] = model
                    self._digests[key] = self._values_digest("sat", model.items())
                    return verdict, model
                self._digests[key] = self._values_digest("unsat", ())
                self._register_unsat_set(core if core is not None else key)
                return verdict, None
        self.misses += 1
        return None, None

    def _touch(self, key: frozenset) -> None:
        """Move ``key`` to the recently-used end of the memo (LRU)."""
        self._results[key] = self._results.pop(key)

    def _reusable_model(
        self, key: frozenset, conditions: list[Term]
    ) -> Optional["Model"]:
        """A cached model that satisfies every conjunct, or None.

        The candidate assignment is completed with zeros for variables
        the original model never saw and *restricted* to the query's
        own variables: the pool holds models of unrelated past slices,
        and leaking their stale assignments into the returned witness
        would corrupt cross-slice model stitching.  The returned
        :class:`Model` binds exactly the assignment validated here.
        """
        if not self._model_pool:
            return None
        variables: set[Term] = set()
        for term in key:
            variables |= term.free_vars()
        for entry in list(self._model_pool):
            values, digest = entry
            if self._should_verify():
                self.integrity_checks += 1
                if self._values_digest("pool", values.items()) != digest:
                    self.quarantines += 1
                    try:
                        self._model_pool.remove(entry)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    continue
            completed = {var: values.get(var, 0) for var in variables}
            try:
                # Evaluate back-to-front: branch-flip queries put the
                # negated flip condition last, and a stale model (which
                # satisfied some sibling prefix) almost always fails
                # exactly there — same verdict, but the reject path
                # short-circuits on the first condition instead of
                # re-validating the whole shared prefix.
                if all(evaluate(term, completed) for term in reversed(conditions)):
                    return Model(completed)
            except EvalError:  # pragma: no cover - defensive
                continue
        return None

    # -- store ---------------------------------------------------------

    def _evict_if_full(self) -> None:
        """LRU-evict the memo when it reaches the entry cap.

        ``lookup`` hits re-insert their key at the dict's tail (dicts
        iterate in insertion order), so the head is always the least
        *recently used* entry, not merely the oldest insertion — with
        per-slice keys the hot shared-prefix slices are re-touched by
        nearly every query and must outlive one-off deep-path entries.
        """
        if len(self._results) < self._max_entries:
            return
        oldest = next(iter(self._results))
        del self._results[oldest]
        self._models.pop(oldest, None)
        self._digests.pop(oldest, None)
        self.evictions += 1

    def store_unsat(self, key: frozenset, core: Optional[frozenset] = None) -> None:
        """Record an UNSAT answer for ``key``.

        ``core`` — when the solver attributed the conflict to a subset
        of the conjuncts — is what enters the subsumption window: the
        smaller the set, the more future supersets it answers.  The
        exact-hit memo still records the full ``key``.
        """
        self._evict_if_full()
        self._results[key] = Result.UNSAT
        self._digests[key] = self._values_digest("unsat", ())
        if self.store is not None:
            self.store.save_query(key, Result.UNSAT, core=core)
        self._register_unsat_set(core if core is not None else key)

    def store_sat(self, key: frozenset, model: "Model") -> None:
        self._evict_if_full()
        self._results[key] = Result.SAT
        self._models[key] = model
        self._digests[key] = self._values_digest("sat", model.items())
        if self.store is not None:
            # Write-through before the fault seams below: the disk copy
            # always holds the honest, freshly solved content.
            self.store.save_query(key, Result.SAT, model=model)
        if self._corrupt("model"):
            self._poison_values(model._values)
        pool_values = dict(model.items())
        pool_digest = self._values_digest("pool", pool_values.items())
        if self._corrupt("pool"):
            self._poison_values(pool_values)
        self._model_pool.append((pool_values, pool_digest))

    @property
    def statistics(self) -> Mapping[str, int]:
        return {
            "entries": len(self._results),
            "unsat_sets": len(self._unsat_sets),
            "hits": self.hits,
            "exact_hits": self.exact_hits,
            "subsumption_hits": self.subsumption_hits,
            "model_reuse_hits": self.model_reuse_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "integrity_checks": self.integrity_checks,
            "quarantines": self.quarantines,
            "corruptions": self.corruptions,
        }


#: Counter keys of :attr:`CachingSolver.pipeline_stats`, in report order.
PIPELINE_COUNTERS = (
    "queries",
    "slices",
    "rewrite_unsat",
    "rewrite_sat",
    "interval_unsat",
    "interval_sat",
    "dropped_conjuncts",
    "joint_solves",
    "verify_fallbacks",
    "fast_path_queries",
    "unsat_cores",
    "core_conjuncts_dropped",
    "unknown_queries",
)


class _PendingSlice:
    """One slice the preprocessing stages could not decide.

    ``origin_map`` maps each residual (and interval-dropped) condition
    back to the frozenset of *original* slice conjuncts entailing it,
    so a SAT-core over the residue translates into an UNSAT core over
    the query the cache is keyed on.
    """

    __slots__ = ("key", "original", "residual", "bindings", "dropped", "origin_map")

    def __init__(self, key, original, residual, bindings, dropped, origin_map):
        self.key = key
        self.original = original
        self.residual = residual
        self.bindings = bindings
        self.dropped = dropped
        self.origin_map = origin_map


class CachingSolver(Solver):
    """:class:`Solver` with the query pipeline and cache in front.

    ``check`` runs slice → rewrite → intervals → SAT: the query is
    partitioned into variable-independent slices, each slice is looked
    up in the cross-path :class:`QueryCache` (exact / UNSAT-subsumption
    / model-reuse), then rewritten word-level and attacked with the
    interval fast path; only still-undecided slices reach the CDCL
    core — together, in one joint solve, whose model is split back into
    per-slice cache entries.  SAT answers stitch the per-slice models
    (plus rewrite bindings) into a single witness.

    Only assumption-style queries against an otherwise empty solver are
    preprocessed and cached — the explorer's exact usage pattern.  As
    soon as ``add`` or ``push`` introduces persistent state the whole
    pipeline is bypassed, because slice keys would no longer capture
    the full formula.  Pipeline answers do not bump ``num_checks`` /
    ``num_solves`` (no CDCL search ran): exploration statistics key off
    those counters to keep "real", "cached" and "fast-path" query
    counts separate.
    """

    def __init__(
        self,
        cache: Optional[QueryCache] = None,
        preprocess: Optional[PreprocessConfig] = None,
    ):
        config = preprocess if preprocess is not None else PreprocessConfig()
        super().__init__(
            trail_reuse=config.trail_reuse,
            unsat_cores=config.unsat_cores,
            conflict_budget=config.conflict_budget,
            propagation_budget=config.propagation_budget,
            wall_budget=config.wall_budget,
            core_budget=config.core_budget,
            certify=config.certify,
            proof_log=config.proof_log,
        )
        self.cache = cache if cache is not None else QueryCache()
        self.preprocess = config
        self._tainted = False
        self._reused_model: Optional[Model] = None
        self.fast_path_answers = 0
        self.pipeline_stats: dict[str, int] = dict.fromkeys(PIPELINE_COUNTERS, 0)

    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    @property
    def pipeline_statistics(self) -> Mapping[str, int]:
        """Flat cache + pipeline counters (exactly summable across workers)."""
        stats = {f"cache_{k}": v for k, v in self.cache.statistics.items()}
        stats.update(self.pipeline_stats)
        stats["sat_core_solves"] = self.num_solves
        sat_stats = self._sat.statistics
        stats["sat_trail_reused_lits"] = sat_stats["trail_reused_lits"]
        stats["sat_cores_extracted"] = sat_stats["cores_extracted"]
        stats["sat_core_minimize_solves"] = sat_stats["core_minimize_solves"]
        stats["sat_budget_exhausted"] = sat_stats["budget_exhausted"]
        stats["certified_sat"] = self.certified_sat
        stats["certified_unsat"] = self.certified_unsat
        stats["certify_failures"] = self.certify_failures
        if self.cache.store is not None:
            # Persistent-tier counters ride along unprefixed (they are
            # already namespaced ``store_*``) and sum across workers.
            stats.update(self.cache.store.statistics)
        return stats

    def add(self, term: Term) -> None:
        self._tainted = True
        super().add(term)

    # ------------------------------------------------------------------
    # The pipelined check
    # ------------------------------------------------------------------

    def check(self, assumptions: Iterable[Term] = ()) -> Result:
        conditions = list(assumptions)
        self._reused_model = None
        if self._tainted or self._scopes:
            return super().check(conditions)
        key_terms = []
        seen: set = set()
        for term in conditions:
            if term.is_const:
                if not term.payload:
                    # Constant-false conjunct: same fast path as the
                    # base solver, not worth a cache entry.
                    return super().check(conditions)
            elif term not in seen:
                seen.add(term)
                key_terms.append(term)

        config = self.preprocess
        stats = self.pipeline_stats
        stats["queries"] += 1
        hits_before = self.cache.hits
        solves_before = self.num_solves

        if config.slicing:
            slices = slice_conditions(key_terms)
        else:
            slices = [key_terms] if key_terms else []
        stats["slices"] += len(slices)

        stitched: dict[Term, int] = {}
        pending: list[_PendingSlice] = []
        verdict = Result.SAT
        for slice_conds in slices:
            outcome = self._preprocess_slice(slice_conds, config)
            if outcome is None:
                verdict = Result.UNSAT
                break
            resolved, payload = outcome
            if resolved:
                stitched.update(payload)
            else:
                pending.append(payload)
        if verdict is Result.SAT and pending:
            verdict = self._solve_pending(pending, stitched)
        if verdict is Result.SAT:
            # Slices partition key_terms and every SAT path binds all
            # of its slice's variables, so stitched covers the query.
            self._reused_model = Model(stitched)
        self._last_result = verdict
        if self.num_solves == solves_before and self.cache.hits == hits_before:
            self.fast_path_answers += 1
            stats["fast_path_queries"] += 1
        return verdict

    def _preprocess_slice(self, slice_conds: list, config: PreprocessConfig):
        """Answer one slice without the SAT core, or queue it.

        Returns ``None`` for UNSAT, ``(True, values)`` for SAT, or
        ``(False, _PendingSlice)`` when the core must decide.
        """
        stats = self.pipeline_stats
        key = frozenset(slice_conds)
        result, model = self.cache.lookup(key, slice_conds)
        if result is Result.UNSAT:
            return None
        if result is Result.SAT and model is not None:
            # A SAT hit is only usable when a witness was cached: the
            # CDCL core did not run for this slice, so stitching must
            # take the assignment from the cache entry — restricted to
            # this slice's variables, in case the entry predates slicing
            # (e.g. a cache shared with a pipeline-off solver).
            values: dict[Term, int] = {}
            for cond in slice_conds:
                for var in cond.free_vars():
                    if var not in values:
                        values[var] = model.get(var, 0)
            return True, values

        conds = list(slice_conds)
        bindings: dict = {}
        origin_map: dict = {cond: frozenset((cond,)) for cond in conds}
        use_cores = self.preprocess.unsat_cores
        if config.rewrite:
            rewritten = rewrite_slice(conds)
            if rewritten.unsat:
                core = rewritten.conflict_origin if use_cores else None
                if self._certified_unsat_store(key, core, stats, "rewrite_unsat"):
                    return None
                # Unconfirmed word-level verdict: hand the untouched
                # slice to the fresh-solve path instead of trusting it.
                return False, self._uncertified_pending(key, slice_conds)
            conds, bindings = rewritten.conditions, rewritten.bindings
            origin_map = dict(zip(conds, rewritten.origins))
            if not conds:
                values = self._slice_values(slice_conds, bindings, None)
                if self._certified_sat_values(values, slice_conds):
                    stats["rewrite_sat"] += 1
                    self.cache.store_sat(key, Model(values))
                    return True, values
                return False, self._uncertified_pending(key, slice_conds)

        dropped: list = []
        if config.intervals:
            outcome = analyze_slice(conds)
            if outcome.verdict is False:
                # The interval pass names the conjunct subset that
                # pinched the refuting box; mapped through the rewrite
                # provenance it feeds the same minimal-UNSAT-set slot
                # the SAT-core path uses (see QueryCache.store_unsat).
                core = None
                if use_cores and outcome.core is not None:
                    mapped: set = set()
                    for cond in outcome.core:
                        origin = origin_map.get(cond)
                        if origin is None:
                            mapped = None
                            break
                        mapped |= origin
                    if mapped is not None:
                        core = frozenset(mapped)
                if self._certified_unsat_store(key, core, stats, "interval_unsat"):
                    return None
                return False, self._uncertified_pending(key, slice_conds)
            if outcome.verdict is True:
                values = self._slice_values(slice_conds, bindings, outcome.witness)
                if self._certified_sat_values(values, slice_conds):
                    stats["interval_sat"] += 1
                    self.cache.store_sat(key, Model(values))
                    return True, values
                return False, self._uncertified_pending(key, slice_conds)
            dropped = outcome.dropped
            stats["dropped_conjuncts"] += len(dropped)
            conds = outcome.residual

        return False, _PendingSlice(
            key, slice_conds, conds, bindings, dropped, origin_map
        )

    def _map_core(self, pending: list) -> Optional[frozenset]:
        """Translate :attr:`last_core` into original query conjuncts.

        The SAT layer's core names *residual* (rewritten) conditions;
        each maps back — through the rewriter's provenance — to the
        original conjuncts entailing it.  Returns None when cores are
        unavailable or a residual condition cannot be attributed.
        """
        core_terms = self.last_core
        if core_terms is None:
            return None
        mapped: set = set()
        for term in core_terms:
            origin = None
            for entry in pending:
                origin = entry.origin_map.get(term)
                if origin is not None:
                    break
            if origin is None:
                return None
            mapped |= origin
        return frozenset(mapped)

    def _note_core(self, key: frozenset, core: Optional[frozenset], stats) -> None:
        """Account for a minimal core strictly smaller than its key."""
        if core is not None and len(core) < len(key):
            stats["unsat_cores"] += 1
            stats["core_conjuncts_dropped"] += len(key) - len(core)

    @staticmethod
    def _uncertified_pending(key: frozenset, slice_conds: list) -> "_PendingSlice":
        """The fresh-solve fallback for an answer that failed to certify:
        the untouched slice, with identity provenance."""
        return _PendingSlice(
            key,
            slice_conds,
            list(slice_conds),
            {},
            [],
            {cond: frozenset((cond,)) for cond in slice_conds},
        )

    def _certified_unsat_store(
        self, key: frozenset, core: Optional[frozenset], stats, counter: str
    ) -> bool:
        """Store an UNSAT verdict produced by a word-level stage.

        Rewriting and interval analysis emit no checkable evidence, so
        in certify mode the verdict is *re-derived* through the
        proof-logging CDCL core first (solving just the claimed core
        when one exists): the re-derivation is certified by the base
        :meth:`Solver.check` and usually yields an even smaller,
        certified core.  A verdict that fails to re-derive is never
        cached — the caller falls back to a fresh solve of the whole
        slice.  Returns True when the UNSAT answer stands.
        """
        if self.preprocess.certify:
            conds = list(core) if core is not None else list(key)
            confirm = super().check(conds)
            if confirm is Result.SAT:
                # The word-level pass contradicted the certified solver:
                # a real certification failure, never trusted.
                self.certify_failures += 1
                return False
            if confirm is not Result.UNSAT:
                return False  # budget/certify UNKNOWN: let the caller decide
            if self.last_core is not None:
                core = self.last_core
        stats[counter] += 1
        self._note_core(key, core, stats)
        self.cache.store_unsat(key, core)
        return True

    def _certified_sat_values(self, values: dict, slice_conds: list) -> bool:
        """Certify a word-level SAT witness against its own conjuncts."""
        if not self.preprocess.certify:
            return True
        if self._satisfied(values, slice_conds):
            self.certified_sat += 1
            return True
        self.certify_failures += 1
        return False

    def _solve_pending(
        self, pending: list, stitched: dict[Term, int]
    ) -> Result:
        """Joint SAT solve of all undecided slices, split back per slice.

        One CDCL call decides the conjunction of every pending residue —
        never more core work than the unpreprocessed query — and on SAT
        the assignment is carved into per-slice models and cache
        entries.  A joint UNSAT cannot name the guilty slice, so the
        *union* of the pending originals is stored as the UNSAT set
        (sound: the union is a subset of the full query that is itself
        UNSAT, and subsumption handles supersets).
        """
        stats = self.pipeline_stats
        if len(pending) == 1:
            joint = pending[0].residual
        else:
            joint = [cond for entry in pending for cond in entry.residual]
            stats["joint_solves"] += 1
        verdict = super().check(joint)
        if verdict is Result.UNKNOWN:
            # Budget exhausted: no model, no core — nothing is sound to
            # cache, and the caller must not flip on this answer.
            stats["unknown_queries"] += 1
            return Result.UNKNOWN
        if verdict is Result.UNSAT:
            core = self._map_core(pending)
            if len(pending) == 1:
                key = pending[0].key
            else:
                key = frozenset(
                    cond for entry in pending for cond in entry.original
                )
            self._note_core(key, core, stats)
            self.cache.store_unsat(key, core)
            return Result.UNSAT

        # Extract every slice from the joint assignment *before* any
        # verification fallback: a fallback re-solve replaces the SAT
        # core's assignment, which must not leak into other slices.
        certify = self.preprocess.certify
        extracted = [(entry, self._extract_slice(entry)) for entry in pending]
        for entry, values in extracted:
            fallback = entry.dropped and not self._satisfied(values, entry.dropped)
            if certify and not fallback and not self._satisfied(
                values, entry.original
            ):
                # The stitched slice model fails its own conjuncts under
                # the reference evaluator: never trusted — re-solve.
                self.certify_failures += 1
                fallback = True
            if fallback:
                # The joint model ignored a conjunct the interval pass
                # dropped from *this* slice (its justification involved
                # other dropped conjuncts), or failed certification.
                # Re-solve the slice exactly.
                stats["verify_fallbacks"] += 1
                verdict = super().check(entry.residual + entry.dropped)
                if verdict is Result.UNKNOWN:
                    stats["unknown_queries"] += 1
                    return Result.UNKNOWN
                if verdict is Result.UNSAT:
                    core = self._map_core([entry])
                    self._note_core(entry.key, core, stats)
                    self.cache.store_unsat(entry.key, core)
                    return Result.UNSAT
                values = self._extract_slice(entry)
                if certify and not self._satisfied(values, entry.original):
                    # Even the dedicated re-solve fails the reference
                    # evaluator: give the query up, explicitly counted.
                    self.certify_failures += 1
                    stats["unknown_queries"] += 1
                    return Result.UNKNOWN
            if certify:
                self.certified_sat += 1
            self.cache.store_sat(entry.key, Model(values))
            stitched.update(values)
        self._last_result = Result.SAT
        return Result.SAT

    def _extract_slice(self, entry: "_PendingSlice") -> dict[Term, int]:
        """Slice-restricted model values from the current SAT assignment."""
        values: dict[Term, int] = {}
        for cond in entry.original:
            for var in cond.free_vars():
                if var in values:
                    continue
                binding = entry.bindings.get(var)
                if binding is not None:
                    values[var] = binding.payload
                    continue
                extracted = self.value_of(var)
                values[var] = extracted if extracted is not None else 0
        return values

    def _slice_values(
        self, slice_conds: list, bindings: dict, witness: Optional[dict]
    ) -> dict[Term, int]:
        """Complete a preprocessing-produced witness over the slice vars."""
        values: dict[Term, int] = {}
        for cond in slice_conds:
            for var in cond.free_vars():
                if var in values:
                    continue
                binding = bindings.get(var)
                if binding is not None:
                    values[var] = binding.payload
                elif witness is not None and var in witness:
                    values[var] = witness[var]
                else:
                    values[var] = 0
        return values

    @staticmethod
    def _satisfied(values: dict[Term, int], conds: list) -> bool:
        assignment = dict(values)
        for cond in conds:
            for var in cond.free_vars():
                assignment.setdefault(var, 0)
        try:
            return all(evaluate(cond, assignment) for cond in conds)
        except EvalError:  # pragma: no cover - defensive
            return False

    def model(self) -> Model:
        if self._reused_model is not None:
            return self._reused_model
        return super().model()


def is_satisfiable(term: Term) -> bool:
    """One-shot satisfiability check for a single boolean term."""
    solver = Solver()
    solver.add(term)
    return solver.check() is Result.SAT


def solve_for_model(term: Term) -> Optional[Model]:
    """One-shot solve: return a model of ``term`` or None if unsat."""
    solver = Solver()
    solver.add(term)
    if solver.check() is Result.SAT:
        return solver.model()
    return None
