"""Incremental QF_BV solver facade (the repository's Z3 replacement).

:class:`Solver` exposes the small API the symbolic execution engines
need: ``add`` (assert a boolean term), ``push``/``pop`` scopes,
``check`` under additional per-query assumptions, and ``model``
extraction after a satisfiable answer.

Scopes and assumptions are implemented with activation literals on top
of the CDCL core, so nothing is ever re-encoded: the bit-blaster's term
cache persists for the lifetime of the solver, which is what makes the
offline executor's thousands of small branch queries affordable.
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Optional

from . import terms
from .bitblast import BitBlaster
from .evalbv import evaluate
from .sat import SAT, SatSolver
from .terms import Term

__all__ = ["Solver", "Result", "Model"]


class Result(enum.Enum):
    """Outcome of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"


class Model:
    """A satisfying assignment for the variables of a formula.

    Variables that were never constrained default to zero/false, matching
    the behaviour symbolic execution engines expect from SMT solvers when
    completing partial models.
    """

    def __init__(self, values: dict[Term, int]):
        self._values = dict(values)

    def __getitem__(self, var: Term) -> int:
        return self._values.get(var, 0)

    def get(self, var: Term, default: int = 0) -> int:
        return self._values.get(var, default)

    def items(self):
        return self._values.items()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, var: Term) -> bool:
        return var in self._values

    def eval(self, term: Term) -> int:
        """Evaluate an arbitrary term under this model (free vars -> 0)."""
        assignment = dict(self._values)
        for var in term.variables():
            assignment.setdefault(var, 0)
        return evaluate(term, assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{var.payload}={value:#x}" for var, value in sorted(
                self._values.items(), key=lambda item: str(item[0].payload)
            )
        )
        return f"Model({parts})"


class Solver:
    """Incremental bit-blasting solver for QF_BV terms."""

    def __init__(self) -> None:
        self._sat = SatSolver()
        self._blaster = BitBlaster(self._sat)
        self._scopes: list[int] = []
        self._last_result: Optional[Result] = None
        self.num_checks = 0

    # ------------------------------------------------------------------
    # Assertions and scopes
    # ------------------------------------------------------------------

    def add(self, term: Term) -> None:
        """Assert a boolean term in the current scope."""
        if not term.is_bool:
            raise TypeError("Solver.add expects a boolean term")
        lit = self._blaster.lit(term)
        if self._scopes:
            self._sat.add_clause([-self._scopes[-1], lit])
        else:
            self._sat.add_clause([lit])
        self._last_result = None

    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append(self._sat.new_var())

    def pop(self) -> None:
        """Discard the most recent assertion scope."""
        act = self._scopes.pop()
        self._sat.add_clause([-act])
        self._last_result = None

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def check(self, assumptions: Iterable[Term] = ()) -> Result:
        """Check satisfiability of the asserted formula + assumptions."""
        assumption_lits = list(self._scopes)
        for term in assumptions:
            if not term.is_bool:
                raise TypeError("assumptions must be boolean terms")
            if term.is_const:
                if term.payload:
                    continue
                self._last_result = Result.UNSAT
                self.num_checks += 1
                return Result.UNSAT
            assumption_lits.append(self._blaster.lit(term))
        self.num_checks += 1
        outcome = self._sat.solve(assumption_lits)
        self._last_result = Result.SAT if outcome is SAT else Result.UNSAT
        return self._last_result

    def model(self) -> Model:
        """Extract the model after a satisfiable :meth:`check`."""
        if self._last_result is not Result.SAT:
            raise RuntimeError("model() requires a preceding sat check")
        values: dict[Term, int] = {}
        for var, bits in self._blaster.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                if self._sat.value(abs(lit)) == (lit > 0):
                    value |= 1 << i
            values[var] = value
        for var, lit in self._blaster.bool_vars.items():
            values[var] = 1 if self._sat.value(abs(lit)) == (lit > 0) else 0
        return Model(values)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def statistics(self) -> Mapping[str, int]:
        stats = dict(self._sat.statistics)
        stats["sat_vars"] = self._sat.num_vars
        stats["checks"] = self.num_checks
        return stats


def is_satisfiable(term: Term) -> bool:
    """One-shot satisfiability check for a single boolean term."""
    solver = Solver()
    solver.add(term)
    return solver.check() is Result.SAT


def solve_for_model(term: Term) -> Optional[Model]:
    """One-shot solve: return a model of ``term`` or None if unsat."""
    solver = Solver()
    solver.add(term)
    if solver.check() is Result.SAT:
        return solver.model()
    return None
