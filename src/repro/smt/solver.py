"""Incremental QF_BV solver facade (the repository's Z3 replacement).

:class:`Solver` exposes the small API the symbolic execution engines
need: ``add`` (assert a boolean term), ``push``/``pop`` scopes,
``check`` under additional per-query assumptions, and ``model``
extraction after a satisfiable answer.

Scopes and assumptions are implemented with activation literals on top
of the CDCL core, so nothing is ever re-encoded: the bit-blaster's term
cache persists for the lifetime of the solver, which is what makes the
offline executor's thousands of small branch queries affordable.

The cross-path query layer lives here too: :class:`QueryCache` memoizes
branch-flip answers keyed by the *canonicalized* path condition (a
frozenset of interned condition terms, so permuted and duplicated
prefixes collapse onto one entry), and :class:`CachingSolver` consults
it before touching the CDCL core — exact hits, UNSAT-superset
subsumption, and satisfying-model reuse all answer without a solve.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Iterable, Mapping, Optional

from . import terms
from .bitblast import BitBlaster
from .evalbv import EvalError, evaluate
from .sat import SAT, SatSolver
from .terms import Term

__all__ = ["Solver", "Result", "Model", "QueryCache", "CachingSolver"]


class Result(enum.Enum):
    """Outcome of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"


class Model:
    """A satisfying assignment for the variables of a formula.

    Variables that were never constrained default to zero/false, matching
    the behaviour symbolic execution engines expect from SMT solvers when
    completing partial models.
    """

    def __init__(self, values: dict[Term, int]):
        self._values = dict(values)

    def __getitem__(self, var: Term) -> int:
        return self._values.get(var, 0)

    def get(self, var: Term, default: int = 0) -> int:
        return self._values.get(var, default)

    def items(self):
        return self._values.items()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, var: Term) -> bool:
        return var in self._values

    def eval(self, term: Term) -> int:
        """Evaluate an arbitrary term under this model (free vars -> 0)."""
        assignment = dict(self._values)
        for var in term.variables():
            assignment.setdefault(var, 0)
        return evaluate(term, assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{var.payload}={value:#x}" for var, value in sorted(
                self._values.items(), key=lambda item: str(item[0].payload)
            )
        )
        return f"Model({parts})"


class Solver:
    """Incremental bit-blasting solver for QF_BV terms."""

    def __init__(self) -> None:
        self._sat = SatSolver()
        self._blaster = BitBlaster(self._sat)
        self._scopes: list[int] = []
        self._last_result: Optional[Result] = None
        self.num_checks = 0

    # ------------------------------------------------------------------
    # Assertions and scopes
    # ------------------------------------------------------------------

    def add(self, term: Term) -> None:
        """Assert a boolean term in the current scope."""
        if not term.is_bool:
            raise TypeError("Solver.add expects a boolean term")
        lit = self._blaster.lit(term)
        if self._scopes:
            self._sat.add_clause([-self._scopes[-1], lit])
        else:
            self._sat.add_clause([lit])
        self._last_result = None

    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append(self._sat.new_var())

    def pop(self) -> None:
        """Discard the most recent assertion scope."""
        act = self._scopes.pop()
        self._sat.add_clause([-act])
        self._last_result = None

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def check(self, assumptions: Iterable[Term] = ()) -> Result:
        """Check satisfiability of the asserted formula + assumptions."""
        assumption_lits = list(self._scopes)
        for term in assumptions:
            if not term.is_bool:
                raise TypeError("assumptions must be boolean terms")
            if term.is_const:
                if term.payload:
                    continue
                self._last_result = Result.UNSAT
                self.num_checks += 1
                return Result.UNSAT
            assumption_lits.append(self._blaster.lit(term))
        self.num_checks += 1
        outcome = self._sat.solve(assumption_lits)
        self._last_result = Result.SAT if outcome is SAT else Result.UNSAT
        return self._last_result

    def model(self) -> Model:
        """Extract the model after a satisfiable :meth:`check`."""
        if self._last_result is not Result.SAT:
            raise RuntimeError("model() requires a preceding sat check")
        values: dict[Term, int] = {}
        for var, bits in self._blaster.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                if self._sat.value(abs(lit)) == (lit > 0):
                    value |= 1 << i
            values[var] = value
        for var, lit in self._blaster.bool_vars.items():
            values[var] = 1 if self._sat.value(abs(lit)) == (lit > 0) else 0
        return Model(values)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def statistics(self) -> Mapping[str, int]:
        stats = dict(self._sat.statistics)
        stats["sat_vars"] = self._sat.num_vars
        stats["checks"] = self.num_checks
        return stats


class QueryCache:
    """Cross-path memo of satisfiability answers and models.

    Keys are canonicalized path conditions: the ``frozenset`` of the
    query's (interned) condition terms, so condition *order* and
    duplicated conjuncts never cause a miss.  Three lookup tiers, each
    sound on its own:

    1. **exact** — the same condition set was answered before;
    2. **UNSAT subsumption** — some cached UNSAT set is a subset of the
       query (a conjunction stays UNSAT under extra conjuncts);
    3. **model reuse** — a recently produced satisfying model, completed
       with zeros for fresh variables, already satisfies every conjunct
       (evaluated with the reference evaluator), so the query is SAT and
       that completed model is a witness.

    The cache is process-local: interned terms hash by identity, which
    makes the keys O(1) but meaningless across processes.  Each parallel
    exploration worker therefore owns one ``QueryCache``.
    """

    def __init__(
        self,
        max_models: int = 8,
        max_unsat_sets: int = 512,
        max_entries: int = 100_000,
    ):
        self._results: dict[frozenset, Result] = {}
        self._models: dict[frozenset, Model] = {}
        self._unsat_sets: deque = deque(maxlen=max_unsat_sets)
        self._model_pool: deque = deque(maxlen=max_models)
        self._vars_memo: dict[Term, frozenset] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.exact_hits = 0
        self.subsumption_hits = 0
        self.model_reuse_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)

    # -- lookup --------------------------------------------------------

    def lookup(
        self, key: frozenset, conditions: list[Term]
    ) -> tuple[Optional[Result], Optional["Model"]]:
        """Try to answer ``conditions`` (canonicalized as ``key``)."""
        cached = self._results.get(key)
        if cached is Result.UNSAT:
            self.hits += 1
            self.exact_hits += 1
            return cached, None
        if cached is Result.SAT:
            model = self._models.get(key)
            if model is not None:
                self.hits += 1
                self.exact_hits += 1
                return cached, model
            # SAT is known but no witness was ever extracted; a fresh
            # solve (or model-reuse below) must produce one.
        for unsat_set in self._unsat_sets:
            if len(unsat_set) <= len(key) and unsat_set <= key:
                self.hits += 1
                self.subsumption_hits += 1
                self._evict_if_full()
                self._results[key] = Result.UNSAT
                return Result.UNSAT, None
        witness = self._reusable_model(key, conditions)
        if witness is not None:
            self.hits += 1
            self.model_reuse_hits += 1
            self._evict_if_full()
            self._results[key] = Result.SAT
            self._models[key] = witness
            return Result.SAT, witness
        self.misses += 1
        return None, None

    def _variables_of(self, term: Term) -> frozenset:
        memo = self._vars_memo.get(term)
        if memo is None:
            memo = frozenset(term.variables())
            self._vars_memo[term] = memo
        return memo

    def _reusable_model(
        self, key: frozenset, conditions: list[Term]
    ) -> Optional["Model"]:
        """A cached model that satisfies every conjunct, or None.

        The candidate assignment is completed with zeros for variables
        the original model never saw; the returned :class:`Model` binds
        those completions explicitly so downstream consumers (input
        derivation) see exactly the assignment that was validated here.
        """
        if not self._model_pool:
            return None
        variables: set[Term] = set()
        for term in key:
            variables |= self._variables_of(term)
        for values in self._model_pool:
            completed = dict(values)
            for var in variables:
                completed.setdefault(var, 0)
            try:
                if all(evaluate(term, completed) for term in conditions):
                    return Model(completed)
            except EvalError:  # pragma: no cover - defensive
                continue
        return None

    # -- store ---------------------------------------------------------

    def _evict_if_full(self) -> None:
        """FIFO-evict the memo when it reaches the entry cap.

        Exploration query streams have no temporal locality worth an
        LRU: the nearby (sibling-path) queries are the recent ones, so
        dropping the oldest insertions loses the least.  dicts iterate
        in insertion order, which gives FIFO for free.
        """
        if len(self._results) < self._max_entries:
            return
        oldest = next(iter(self._results))
        del self._results[oldest]
        self._models.pop(oldest, None)

    def store_unsat(self, key: frozenset) -> None:
        self._evict_if_full()
        self._results[key] = Result.UNSAT
        self._unsat_sets.append(key)

    def store_sat(self, key: frozenset, model: "Model") -> None:
        self._evict_if_full()
        self._results[key] = Result.SAT
        self._models[key] = model
        self._model_pool.append(dict(model.items()))

    @property
    def statistics(self) -> Mapping[str, int]:
        return {
            "entries": len(self._results),
            "hits": self.hits,
            "exact_hits": self.exact_hits,
            "subsumption_hits": self.subsumption_hits,
            "model_reuse_hits": self.model_reuse_hits,
            "misses": self.misses,
        }


class CachingSolver(Solver):
    """:class:`Solver` with a cross-path :class:`QueryCache` in front.

    Only assumption-style queries against an otherwise empty solver are
    cached — the explorer's exact usage pattern.  As soon as ``add`` or
    ``push`` introduces persistent state the cache is bypassed, because
    the cache key would no longer capture the full formula.  Cache hits
    do not bump ``num_checks`` (no CDCL search ran); they are counted in
    :attr:`cache_hits` instead, which is how exploration statistics keep
    "real" and "cached" query counts separate.
    """

    def __init__(self, cache: Optional[QueryCache] = None):
        super().__init__()
        self.cache = cache if cache is not None else QueryCache()
        self._tainted = False
        self._pending_key: Optional[frozenset] = None
        self._reused_model: Optional[Model] = None

    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    def add(self, term: Term) -> None:
        self._tainted = True
        super().add(term)

    def check(self, assumptions: Iterable[Term] = ()) -> Result:
        conditions = list(assumptions)
        self._pending_key = None
        self._reused_model = None
        if self._tainted or self._scopes:
            return super().check(conditions)
        key_terms = []
        for term in conditions:
            if term.is_const:
                if not term.payload:
                    # Constant-false conjunct: same fast path as the
                    # base solver, not worth a cache entry.
                    return super().check(conditions)
            else:
                key_terms.append(term)
        key = frozenset(key_terms)
        result, model = self.cache.lookup(key, conditions)
        if result is Result.UNSAT or (result is Result.SAT and model is not None):
            # A SAT hit is only usable when a witness was cached: the
            # underlying SAT core did not run for this query, so a later
            # model() call could not answer from its state.
            self._last_result = result
            self._reused_model = model
            return result
        verdict = super().check(conditions)
        if verdict is Result.UNSAT:
            self.cache.store_unsat(key)
        else:
            self._pending_key = key
        return verdict

    def model(self) -> Model:
        if self._reused_model is not None:
            return self._reused_model
        model = super().model()
        if self._pending_key is not None and self._last_result is Result.SAT:
            self.cache.store_sat(self._pending_key, model)
            self._pending_key = None
        return model


def is_satisfiable(term: Term) -> bool:
    """One-shot satisfiability check for a single boolean term."""
    solver = Solver()
    solver.add(term)
    return solver.check() is Result.SAT


def solve_for_model(term: Term) -> Optional[Model]:
    """One-shot solve: return a model of ``term`` or None if unsat."""
    solver = Solver()
    solver.add(term)
    if solver.check() is Result.SAT:
        return solver.model()
    return None
