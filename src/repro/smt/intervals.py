"""Unsigned/signed interval abstract domain for word-level preprocessing.

This is the "interval fast path" of the query pipeline: before a sliced
conjunction reaches the bit-blaster, every conjunct is evaluated in a
cheap interval abstraction of the bitvector theory.  Three outcomes pay
for the pass:

* a conjunct that is *provably false* over the variable bounds implied
  by its siblings makes the whole slice UNSAT with zero SAT calls — the
  common ``pc``-range and bounds-check branch flips answer here;
* a conjunct that is *provably true* over the bounds implied by the
  other conjuncts is dropped, shrinking the formula the CDCL core sees;
* when the interval box is non-empty, a handful of candidate points
  from the box are checked against the exact reference evaluator
  (:mod:`repro.smt.evalbv`) — a verified hit answers SAT, witness
  included, again with zero SAT calls.

Soundness is local and checkable: UNSAT verdicts follow from the box
over-approximating the solution set; SAT verdicts are always validated
with the exact evaluator before being trusted; and dropped conjuncts
are only ever justified against bounds derived from the *other*
conjuncts (leave-one-out), so the residual formula retains the
generators of every bound used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import bvops
from .evalbv import EvalError, evaluate
from .terms import Term

__all__ = [
    "Interval",
    "IntervalOutcome",
    "analyze_slice",
    "eval_interval",
    "eval_bool",
    "refinements_of",
]

#: Three-valued boolean "unknown" (distinct from None for internal use).
_UNKNOWN = object()

#: Sentinel for a conjunct whose refinement is the empty set (e.g.
#: ``slt(x, INT_MIN)``): the slice is UNSAT outright.
_INFEASIBLE = object()

#: Leave-one-out dropping is quadratic in the slice size; beyond this
#: many conjuncts only the (linear) UNSAT check and witness probe run.
_LOO_LIMIT = 16


class Interval:
    """A non-empty unsigned range ``[lo, hi]`` of a ``width``-bit value."""

    __slots__ = ("width", "lo", "hi")

    def __init__(self, width: int, lo: int, hi: int):
        self.width = width
        self.lo = lo
        self.hi = hi

    @classmethod
    def top(cls, width: int) -> "Interval":
        return cls(width, 0, bvops.mask(width))

    @classmethod
    def const(cls, value: int, width: int) -> "Interval":
        return cls(width, value, value)

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == bvops.mask(self.width)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection; None when empty."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(self.width, lo, hi)

    def join(self, other: "Interval") -> "Interval":
        return Interval(
            self.width, min(self.lo, other.lo), max(self.hi, other.hi)
        )

    def signed_bounds(self) -> tuple[int, int]:
        """Two's-complement (min, max) of the values in this interval."""
        sign_bit = 1 << (self.width - 1)
        if self.hi < sign_bit:  # all non-negative
            return self.lo, self.hi
        if self.lo >= sign_bit:  # all negative
            return (
                bvops.to_signed(self.lo, self.width),
                bvops.to_signed(self.hi, self.width),
            )
        # Straddles the sign boundary: both extremes are reachable.
        return -sign_bit, sign_bit - 1

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Interval)
            and self.width == other.width
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.width, self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo:#x}, {self.hi:#x}]u{self.width}"


# Environment: bitvector vars map to Intervals, boolean vars to bools.
Env = dict


def _bin_interval(op: str, a: Interval, b: Interval, width: int) -> Interval:
    m = bvops.mask(width)
    if op == "add":
        hi = a.hi + b.hi
        if hi <= m:
            return Interval(width, a.lo + b.lo, hi)
        return Interval.top(width)
    if op == "sub":
        if a.lo >= b.hi:
            return Interval(width, a.lo - b.hi, a.hi - b.lo)
        return Interval.top(width)
    if op == "mul":
        hi = a.hi * b.hi
        if hi <= m:
            return Interval(width, a.lo * b.lo, hi)
        return Interval.top(width)
    if op == "udiv":
        # SMT-LIB: bvudiv x 0 is all-ones.
        parts = []
        if b.hi >= 1:
            parts.append((a.lo // b.hi, a.hi // max(b.lo, 1)))
        if b.lo == 0:
            parts.append((m, m))
        return Interval(
            width, min(p[0] for p in parts), max(p[1] for p in parts)
        )
    if op == "urem":
        # SMT-LIB: bvurem x 0 is x.
        parts = []
        if b.hi >= 1:
            if a.hi < max(b.lo, 1):
                parts.append((a.lo, a.hi))  # a < b => a mod b == a
            else:
                parts.append((0, b.hi - 1))
        if b.lo == 0:
            parts.append((a.lo, a.hi))
        return Interval(
            width, min(p[0] for p in parts), max(p[1] for p in parts)
        )
    if op == "and":
        return Interval(width, 0, min(a.hi, b.hi))
    if op == "or":
        hi = (1 << max(a.hi.bit_length(), b.hi.bit_length())) - 1
        return Interval(width, max(a.lo, b.lo), min(hi, m))
    if op == "xor":
        hi = (1 << max(a.hi.bit_length(), b.hi.bit_length())) - 1
        return Interval(width, 0, min(hi, m))
    if op == "shl":
        if b.is_const:
            shift = b.lo
            if shift >= width:
                return Interval.const(0, width)
            hi = a.hi << shift
            if hi <= m:
                return Interval(width, a.lo << shift, hi)
        return Interval.top(width)
    if op == "lshr":
        if b.is_const:
            shift = b.lo
            if shift >= width:
                return Interval.const(0, width)
            return Interval(width, a.lo >> shift, a.hi >> shift)
        return Interval(width, 0, a.hi)  # right shift never grows
    if op == "ashr":
        sign_bit = 1 << (width - 1)
        if b.is_const:
            shift = b.lo
            if a.hi < sign_bit:  # non-negative: behaves like lshr
                if shift >= width:
                    return Interval.const(0, width)
                return Interval(width, a.lo >> shift, a.hi >> shift)
            if a.lo >= sign_bit:  # all negative: unsigned-order preserving
                return Interval(
                    width,
                    bvops.bv_ashr(a.lo, shift, width),
                    bvops.bv_ashr(a.hi, shift, width),
                )
        return Interval.top(width)
    # sdiv/srem: sign-dependent wrapping; not worth modelling precisely.
    return Interval.top(width)


def _node_interval(node: Term, args: list, env: Env):
    """Abstract value of one node given its children's abstract values."""
    op = node.op
    width = node.width
    if op == "const":
        if node.is_bool:
            return bool(node.payload)
        return Interval.const(node.payload, width)
    if op == "var":
        bound = env.get(node)
        if bound is not None:
            return bound
        return _UNKNOWN if node.is_bool else Interval.top(width)

    if node.is_bool:
        if op == "bnot":
            (a,) = args
            return _UNKNOWN if a is _UNKNOWN else (not a)
        if op == "band":
            a, b = args
            if a is False or b is False:
                return False
            if a is True and b is True:
                return True
            return _UNKNOWN
        if op == "bor":
            a, b = args
            if a is True or b is True:
                return True
            if a is False and b is False:
                return False
            return _UNKNOWN
        if op == "bxor":
            a, b = args
            if a is _UNKNOWN or b is _UNKNOWN:
                return _UNKNOWN
            return a != b
        a, b = args
        if op == "eq":
            if a.is_const and b.is_const:
                return a.lo == b.lo
            if a.meet(b) is None:
                return False
            return _UNKNOWN
        if op == "ult":
            if a.hi < b.lo:
                return True
            if a.lo >= b.hi:
                return False
            return _UNKNOWN
        if op == "ule":
            if a.hi <= b.lo:
                return True
            if a.lo > b.hi:
                return False
            return _UNKNOWN
        if op == "slt":
            amin, amax = a.signed_bounds()
            bmin, bmax = b.signed_bounds()
            if amax < bmin:
                return True
            if amin >= bmax:
                return False
            return _UNKNOWN
        if op == "sle":
            amin, amax = a.signed_bounds()
            bmin, bmax = b.signed_bounds()
            if amax <= bmin:
                return True
            if amin > bmax:
                return False
            return _UNKNOWN
        return _UNKNOWN  # pragma: no cover - no other boolean ops exist

    # Bitvector-sorted operations.
    if op == "not":
        (a,) = args
        m = bvops.mask(width)
        return Interval(width, m - a.hi, m - a.lo)
    if op == "neg":
        (a,) = args
        if a.is_const and a.lo == 0:
            return Interval.const(0, width)
        if a.lo >= 1:
            size = 1 << width
            return Interval(width, size - a.hi, size - a.lo)
        return Interval.top(width)
    if op == "concat":
        hi_iv, lo_iv = args
        lo_width = node.args[1].width
        return Interval(
            width,
            (hi_iv.lo << lo_width) + lo_iv.lo,
            (hi_iv.hi << lo_width) + lo_iv.hi,
        )
    if op == "extract":
        (a,) = args
        high, low = node.payload
        # Exact when the bits above the extraction window are constant
        # over the whole interval (no wraparound inside the window).
        if (a.lo >> (high + 1)) == (a.hi >> (high + 1)):
            window = bvops.mask(high + 1)
            return Interval(width, (a.lo & window) >> low, (a.hi & window) >> low)
        return Interval.top(width)
    if op == "zext":
        (a,) = args
        return Interval(width, a.lo, a.hi)
    if op == "sext":
        (a,) = args
        base_width = node.args[0].width
        extra = node.payload
        sign_bit = 1 << (base_width - 1)
        if a.hi < sign_bit or a.lo >= sign_bit:
            return Interval(
                width,
                bvops.bv_sext(a.lo, base_width, extra),
                bvops.bv_sext(a.hi, base_width, extra),
            )
        return Interval.top(width)
    if op == "ite":
        cond, then_iv, else_iv = args
        if cond is True:
            return then_iv
        if cond is False:
            return else_iv
        return then_iv.join(else_iv)
    if op == "bool2bv":
        (cond,) = args
        if cond is True:
            return Interval.const(1, 1)
        if cond is False:
            return Interval.const(0, 1)
        return Interval(1, 0, 1)
    if len(args) == 2:
        return _bin_interval(op, args[0], args[1], width)
    return Interval.top(width)  # pragma: no cover - defensive


def _abstract_eval(term: Term, env: Env):
    """Iterative post-order abstract evaluation over the term DAG."""
    memo: dict[Term, object] = {}
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            stack.extend((arg, False) for arg in node.args if arg not in memo)
            continue
        memo[node] = _node_interval(node, [memo[a] for a in node.args], env)
    return memo[term]


def eval_interval(term: Term, env: Optional[Env] = None) -> Interval:
    """Interval over-approximation of a bitvector term's value."""
    if term.is_bool:
        raise ValueError("eval_interval expects a bitvector term")
    return _abstract_eval(term, env or {})


def eval_bool(term: Term, env: Optional[Env] = None) -> Optional[bool]:
    """Three-valued truth of a boolean term (None when undecided)."""
    if not term.is_bool:
        raise ValueError("eval_bool expects a boolean term")
    result = _abstract_eval(term, env or {})
    return None if result is _UNKNOWN else result


# ---------------------------------------------------------------------------
# Refinements: what a single conjunct says about a single variable
# ---------------------------------------------------------------------------


def _signed_box(width: int, smin: int, smax: int):
    """Unsigned interval of ``{x : smin <= signed(x) <= smax}``.

    Returns None when the set is a *wrapped* pair of unsigned ranges
    (not representable), or ``_INFEASIBLE`` when it is empty.
    """
    bound = 1 << (width - 1)
    smin = max(smin, -bound)
    smax = min(smax, bound - 1)
    if smin > smax:
        return _INFEASIBLE
    if smin >= 0:
        return Interval(width, smin, smax)
    if smax < 0:
        return Interval(width, smin + (1 << width), smax + (1 << width))
    return None


def _comparison_refinement(op: str, a: Term, b: Term, negate: bool):
    """Refinement for one (possibly negated) comparison atom, or None."""
    if negate:
        # not(a < b) == b <= a ; not(a <= b) == b < a — swap and weaken.
        flipped = {"ult": "ule", "ule": "ult", "slt": "sle", "sle": "slt"}
        if op == "eq":
            return None  # disequalities handled by boundary trimming
        op = flipped.get(op)
        if op is None:
            return None
        a, b = b, a
    if a.is_var and b.is_const:
        var, c, var_left = a, b.payload, True
    elif b.is_var and a.is_const:
        var, c, var_left = b, a.payload, False
    else:
        return None
    width = var.width
    m = bvops.mask(width)
    if op == "eq":
        return (var, Interval.const(c, width))
    if op == "ult":
        if var_left:  # var < c
            return _INFEASIBLE if c == 0 else (var, Interval(width, 0, c - 1))
        # c < var
        return _INFEASIBLE if c == m else (var, Interval(width, c + 1, m))
    if op == "ule":
        if var_left:  # var <= c
            return (var, Interval(width, 0, c))
        return (var, Interval(width, c, m))  # c <= var
    sc = bvops.to_signed(c, width)
    bound = 1 << (width - 1)
    if op == "slt":
        box = (
            _signed_box(width, -bound, sc - 1)
            if var_left
            else _signed_box(width, sc + 1, bound - 1)
        )
    elif op == "sle":
        box = (
            _signed_box(width, -bound, sc)
            if var_left
            else _signed_box(width, sc, bound - 1)
        )
    else:
        return None
    if box is _INFEASIBLE:
        return _INFEASIBLE
    if box is None:
        return None
    return (var, box)


def refinements_of(cond: Term):
    """Variable bounds implied by one conjunct.

    Returns a list of ``(var, Interval | bool)`` pairs (empty when the
    conjunct implies no single-variable interval), or ``_INFEASIBLE``
    when the conjunct itself is unsatisfiable.
    """
    if cond.is_var:
        return [(cond, True)]
    negate = False
    inner = cond
    if cond.op == "bnot":
        negate = True
        inner = cond.args[0]
        if inner.is_var:
            return [(inner, False)]
    if inner.op in ("eq", "ult", "ule", "slt", "sle") and not inner.is_var:
        a, b = inner.args
        if a.is_bool:
            return []
        result = _comparison_refinement(inner.op, a, b, negate)
        if result is _INFEASIBLE:
            return _INFEASIBLE
        if result is None:
            return []
        return [result]
    return []


def _meet_value(current, new):
    """Meet of two env values (Interval or bool); None when empty."""
    if current is None:
        return new
    if isinstance(current, bool) or isinstance(new, bool):
        if current == new:
            return current
        return None
    return current.meet(new)


@dataclass
class IntervalOutcome:
    """Result of the interval pass over one slice.

    ``verdict`` is True (SAT, ``witness`` is a validated assignment),
    False (UNSAT), or None (undecided; ``residual`` still needs the SAT
    core and ``dropped`` lists conjuncts proven redundant).  On UNSAT,
    ``core`` names the conjunct subset that pinched the refuting box —
    its conjunction is itself unsatisfiable, so the query cache can use
    it for subsumption exactly like a SAT-core (``None`` when the
    refutation could not be attributed).
    """

    verdict: Optional[bool]
    residual: list = field(default_factory=list)
    witness: Optional[dict] = None
    dropped: list = field(default_factory=list)
    core: Optional[list] = None


def _build_env(refinements: list, skip: int = -1) -> Optional[Env]:
    env: Env = {}
    for index, pairs in enumerate(refinements):
        if index == skip:
            continue
        for var, value in pairs:
            merged = _meet_value(env.get(var), value)
            if merged is None:
                return None
            env[var] = merged
    return env


def _build_env_tracked(refinements: list, conds: list):
    """Like :func:`_build_env`, but attributing every bound to conjuncts.

    Returns ``(env, contributors, conflict)``: ``contributors`` maps
    each bounded variable to the conjuncts whose refinements (and,
    later, disequality trims) produced its bound — a variable's bound
    depends only on its own contributors, so any refutation drawn from
    the env is justified by the contributing conjuncts alone.  On an
    empty meet, ``env`` is None and ``conflict`` is that variable's
    contributor list plus the conjunct whose refinement emptied it.
    """
    env: Env = {}
    contributors: dict = {}
    for index, pairs in enumerate(refinements):
        for var, value in pairs:
            merged = _meet_value(env.get(var), value)
            if merged is None:
                conflict = list(contributors.get(var, ()))
                conflict.append(conds[index])
                return None, contributors, conflict
            env[var] = merged
            contributors.setdefault(var, []).append(conds[index])
    return env, contributors, None


def _trim_disequalities(conds: list, env: Env, contributors: dict):
    """Shave ``x != c`` boundary points off env intervals (in place).

    Returns ``(trimmers, conflict)``: the set of conjuncts whose trim
    narrowed the box (the leave-one-out pass must not justify dropping
    a conjunct with its *own* trim), or — when an interval empties, i.e.
    the slice is UNSAT — a ``conflict`` core of the emptied variable's
    contributors plus the emptying disequality.  Trims are recorded in
    ``contributors`` alongside refinements, since a later refutation
    over the trimmed bound depends on them too.
    """
    trimmers: set = set()
    for _ in range(2):  # a trim can expose another boundary hit
        changed = False
        for cond in conds:
            if cond.op != "bnot":
                continue
            inner = cond.args[0]
            if inner.op != "eq":
                continue
            a, b = inner.args
            if not (a.is_var and b.is_const) or a.is_bool:
                continue
            interval = env.get(a)
            if interval is None or isinstance(interval, bool):
                continue
            c = b.payload
            if interval.lo == interval.hi == c:
                conflict = list(contributors.get(a, ()))
                conflict.append(cond)
                return None, conflict
            if interval.lo == c:
                env[a] = Interval(interval.width, c + 1, interval.hi)
                trimmers.add(cond)
                contributors.setdefault(a, []).append(cond)
                changed = True
            elif interval.hi == c:
                env[a] = Interval(interval.width, interval.lo, c - 1)
                trimmers.add(cond)
                contributors.setdefault(a, []).append(cond)
                changed = True
        if not changed:
            break
    return trimmers, None


def _candidate_points(variables: list, env: Env):
    """Assignments to probe: box corners plus staggered interior points.

    The staggered points give distinct values to distinct variables,
    which satisfies the strict inequality chains that corner points
    (where all unconstrained variables coincide) never can.
    """
    def clamp(var, value):
        bound = env.get(var)
        if bound is None:
            if var.is_bool:
                return 1 if value else 0
            return value & bvops.mask(var.width)
        if isinstance(bound, bool):
            return 1 if bound else 0
        return min(max(value, bound.lo), bound.hi)

    ordered = sorted(variables, key=lambda v: str(v.payload))
    yield {var: clamp(var, 0) for var in ordered}
    yield {
        var: clamp(var, bvops.mask(var.width) if not var.is_bool else 1)
        for var in ordered
    }
    yield {var: clamp(var, index) for index, var in enumerate(ordered)}
    yield {
        var: clamp(var, bvops.mask(var.width) - index if not var.is_bool else 0)
        for index, var in enumerate(ordered)
    }


def analyze_slice(conds: list) -> IntervalOutcome:
    """Run the interval fast path over one sliced conjunction."""
    if not conds:
        return IntervalOutcome(True, witness={})
    refinements = []
    for cond in conds:
        pairs = refinements_of(cond)
        if pairs is _INFEASIBLE:
            return IntervalOutcome(False, core=[cond])
        refinements.append(pairs)
    env, contributors, conflict = _build_env_tracked(refinements, conds)
    if env is None:
        return IntervalOutcome(False, core=conflict)
    trimmers, conflict = _trim_disequalities(conds, env, contributors)
    if trimmers is None:
        return IntervalOutcome(False, core=conflict)

    # UNSAT detection under the full box (tightest available bounds).
    # The refuting core is the false conjunct plus every conjunct that
    # contributed a bound for one of its variables: abstract evaluation
    # reads the env only at variable leaves, and each variable's bound
    # is determined by its contributors alone, so the core's own box
    # refutes the conjunct identically.
    for cond in conds:
        if _abstract_eval(cond, env) is False:
            core = {cond}
            for var in cond.free_vars():
                core.update(contributors.get(var, ()))
            return IntervalOutcome(False, core=list(core))

    # Leave-one-out redundancy: a conjunct true over the box implied by
    # its *siblings* is implied by them and can be dropped — the
    # generators of that box remain in the residual.
    kept: list = []
    dropped: list = []
    if len(conds) <= _LOO_LIMIT:
        for index, cond in enumerate(conds):
            if refinements[index]:
                # Refinements-only box without this conjunct: looser
                # than the trimmed env, but free of *every* trim and of
                # this conjunct's own contribution — sound either way.
                sibling_env = _build_env(refinements, index)
            elif cond in trimmers:
                # The shared env was narrowed by this very conjunct's
                # disequality trim; using it would self-justify the
                # drop (and provoke verify fallbacks downstream).
                sibling_env = None
            else:
                sibling_env = env
            if sibling_env is not None and _abstract_eval(cond, sibling_env) is True:
                dropped.append(cond)
            else:
                kept.append(cond)
    else:
        kept = list(conds)

    variables: set = set()
    for cond in conds:
        variables |= cond.free_vars()
    variable_list = list(variables)

    # Witness probe: every candidate is validated against *all* original
    # conjuncts with the exact evaluator, so a hit is a real model.
    for candidate in _candidate_points(variable_list, env):
        try:
            if all(evaluate(cond, candidate) for cond in conds):
                return IntervalOutcome(True, witness=dict(candidate))
        except EvalError:  # pragma: no cover - defensive
            break

    if not kept:
        # Every conjunct is implied by its siblings, yet no probe point
        # satisfied the box: fall back to the residual = original set
        # rather than reasoning about mutual implication.
        return IntervalOutcome(None, residual=list(conds), dropped=[])
    return IntervalOutcome(None, residual=kept, dropped=dropped)
