"""SMT-LIB v2 rendering of terms (reproduces the Fig. 2 solver query).

The printer is DAG-aware: subterms referenced more than once are bound
with ``let`` so the emitted text stays proportional to the DAG, not the
tree.  ``script`` renders a full query (logic, declarations, assertions,
``check-sat``) that external solvers accept unchanged — handy both for
debugging the built-in solver and for the paper's Fig. 2 artifact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .terms import Term

__all__ = ["term_to_smtlib", "script", "declarations"]

_BV_OPS = {
    "add": "bvadd",
    "sub": "bvsub",
    "mul": "bvmul",
    "udiv": "bvudiv",
    "urem": "bvurem",
    "sdiv": "bvsdiv",
    "srem": "bvsrem",
    "and": "bvand",
    "or": "bvor",
    "xor": "bvxor",
    "not": "bvnot",
    "neg": "bvneg",
    "shl": "bvshl",
    "lshr": "bvlshr",
    "ashr": "bvashr",
    "concat": "concat",
    "ult": "bvult",
    "ule": "bvule",
    "slt": "bvslt",
    "sle": "bvsle",
}

_BOOL_OPS = {
    "bnot": "not",
    "band": "and",
    "bor": "or",
    "bxor": "xor",
    "eq": "=",
    "ite": "ite",
}


def _const_text(term: Term) -> str:
    if term.is_bool:
        return "true" if term.payload else "false"
    if term.width % 4 == 0:
        return f"#x{term.payload:0{term.width // 4}x}"
    return f"#b{term.payload:0{term.width}b}"


def _sanitize(name: str) -> str:
    if all(c.isalnum() or c in "_-.$" for c in name):
        return name
    return "|" + name.replace("|", "_") + "|"


def _render(term: Term, names: dict[Term, str]) -> str:
    bound = names.get(term)
    if bound is not None:
        return bound
    op = term.op
    if op == "const":
        return _const_text(term)
    if op == "var":
        return _sanitize(term.payload)
    args = [_render(a, names) for a in term.args]
    if op == "extract":
        high, low = term.payload
        return f"((_ extract {high} {low}) {args[0]})"
    if op == "zext":
        return f"((_ zero_extend {term.payload}) {args[0]})"
    if op == "sext":
        return f"((_ sign_extend {term.payload}) {args[0]})"
    if op == "ite":
        return f"(ite {args[0]} {args[1]} {args[2]})"
    if op == "bool2bv":
        return f"(ite {args[0]} #b1 #b0)"
    if op in _BV_OPS:
        return f"({_BV_OPS[op]} {' '.join(args)})"
    if op in _BOOL_OPS:
        return f"({_BOOL_OPS[op]} {' '.join(args)})"
    raise NotImplementedError(f"smtlib: unknown op {op!r}")


def _shared_subterms(term: Term) -> list[Term]:
    """Subterms referenced more than once, in dependency order."""
    refcount: dict[int, int] = {}
    order: list[Term] = []
    seen: set[int] = set()

    def visit(node: Term) -> None:
        stack = [(node, False)]
        while stack:
            current, done = stack.pop()
            if done:
                order.append(current)
                continue
            refcount[id(current)] = refcount.get(id(current), 0) + 1
            if id(current) in seen:
                continue
            seen.add(id(current))
            stack.append((current, True))
            for arg in current.args:
                stack.append((arg, False))

    visit(term)
    return [
        node
        for node in order
        if refcount[id(node)] > 1 and node.args and node is not term
    ]


def term_to_smtlib(term: Term) -> str:
    """Render a single term, let-binding shared subexpressions."""
    shared = _shared_subterms(term)
    names: dict[Term, str] = {}
    bindings: list[tuple[str, str]] = []
    for i, node in enumerate(shared):
        text = _render(node, names)
        name = f".t{i}"
        bindings.append((name, text))
        names[node] = name
    body = _render(term, names)
    for name, text in reversed(bindings):
        body = f"(let (({name} {text})) {body})"
    return body


def declarations(term_list: Iterable[Term]) -> list[str]:
    """``declare-const`` lines for all variables in the given terms."""
    variables: dict[str, Term] = {}
    for term in term_list:
        for var in term.variables():
            variables[var.payload] = var
    lines = []
    for name in sorted(variables):
        var = variables[name]
        sort = "Bool" if var.is_bool else f"(_ BitVec {var.width})"
        lines.append(f"(declare-const {_sanitize(name)} {sort})")
    return lines


def script(assertions: Sequence[Term], logic: str = "QF_BV") -> str:
    """Render a complete SMT-LIB script for the given assertions."""
    lines = [f"(set-logic {logic})"]
    lines.extend(declarations(assertions))
    for term in assertions:
        lines.append(f"(assert {term_to_smtlib(term)})")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
