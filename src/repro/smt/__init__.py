"""SMT substrate: QF_BV terms, bit-blasting, CDCL SAT, solver facade.

This package replaces Z3 (which the original BinSym uses) with a
self-contained pure-Python decision procedure for the quantifier-free
bitvector theory:

* :mod:`repro.smt.terms` — hash-consed term DAG with simplifying
  constructors,
* :mod:`repro.smt.sat` — CDCL SAT solver,
* :mod:`repro.smt.bitblast` — Tseitin bit-blasting of terms to CNF,
* :mod:`repro.smt.preprocess` — word-level query pipeline: independence
  slicing and equality-substitution rewriting,
* :mod:`repro.smt.intervals` — interval abstract domain (the pipeline's
  zero-SAT-call fast path),
* :mod:`repro.smt.solver` — incremental ``add``/``push``/``pop``/
  ``check``/``model`` facade used by every SE engine in the repo,
* :mod:`repro.smt.smtlib` — SMT-LIB v2 printing (Fig. 2 reproduction),
* :mod:`repro.smt.evalbv` — reference evaluator used for model checking
  and property-based testing.
"""

from . import bvops, terms
from .evalbv import evaluate
from .preprocess import PreprocessConfig
from .solver import (
    CachingSolver,
    Model,
    QueryCache,
    Result,
    Solver,
    is_satisfiable,
    solve_for_model,
)
from .smtlib import script, term_to_smtlib
from .terms import Term

__all__ = [
    "bvops",
    "terms",
    "Term",
    "Solver",
    "CachingSolver",
    "QueryCache",
    "PreprocessConfig",
    "Result",
    "Model",
    "evaluate",
    "is_satisfiable",
    "solve_for_model",
    "script",
    "term_to_smtlib",
]
