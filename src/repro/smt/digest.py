"""Restart-stable structural digests of interned terms.

Interned terms hash by *identity*: O(1) within one process, but
meaningless across processes and across restarts.  Everything that
needs to recognize "the same term" on the other side of a fork, a
checkpoint reload or a ``--store`` warm start goes through the digests
here instead — one content-hash scheme for the whole stack:

* flip-query dedup in :mod:`repro.core.scheduler` (``query_digest``
  values persisted by :mod:`repro.core.checkpoint` and replayed into a
  fresh process on ``--resume``),
* the :class:`repro.smt.solver.QueryCache` integrity digests
  (``_values_digest`` / ``_set_digest``), so a cache entry's digest
  survives a restart and the persistent artifact store can re-verify
  it,
* the content-addressed keys of :class:`repro.core.store.ArtifactStore`
  (``store_key``), so a key computed in run N+1 finds run N's entry.

The scheme is deliberately independent of the interpreter's randomized
string hash seed: blake2b for strings, a fixed splitmix64 mixer for
structure.  ``term_digest`` is memoized per process in a bounded
true-LRU dict (reinsertion order = recency), keyed by the term object
itself (identity hash) rather than ``id()`` so a term can never alias
a stale entry after an interner reset.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "term_digest",
    "query_digest",
    "store_key",
    "DIGEST_MEMO_CAPACITY",
]

_DIGEST_MEMO: dict = {}

_MASK64 = (1 << 64) - 1

#: Per-process memo of string digests (variable names, opcodes recur).
_STRING_DIGESTS: dict[str, int] = {}


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a fixed, seed-free 64-bit bijection."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _string_digest(text: str) -> int:
    cached = _STRING_DIGESTS.get(text)
    if cached is None:
        cached = int.from_bytes(
            hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "little"
        )
        _STRING_DIGESTS[text] = cached
    return cached


def _payload_digest(payload) -> int:
    """Restart-stable digest of a term's payload (name/const/indices)."""
    if payload is None:
        return 0x9E3779B97F4A7C15
    if isinstance(payload, str):
        return _string_digest(payload)
    if isinstance(payload, int):  # bools included
        return _mix64(payload ^ 0x632BE59BD9B4E019)
    if isinstance(payload, tuple):
        digest = 0x1F83D9ABFB41BD6B
        for part in payload:
            digest = _mix64(digest ^ _payload_digest(part))
        return digest
    return _string_digest(repr(payload))  # pragma: no cover - defensive


#: Backstop for the digest memo, matching the decoder/plan caches.
DIGEST_MEMO_CAPACITY = 1 << 17


def term_digest(term) -> int:
    """Restart-stable structural hash of a term DAG.

    Depends only on (op, width, payload, children) and never on the
    interpreter's randomized hash seed, so it agrees across forked
    workers *and* across separate invocations — the property checkpoint
    resume and the persistent store rely on to recognize work a
    previous process already did.
    """
    memo = _DIGEST_MEMO
    cached = memo.get(term)
    if cached is not None:
        # Move-to-end keeps insertion order = recency order, so the
        # eviction below always removes the least recently used digest.
        del memo[term]
        memo[term] = cached
        return cached
    stack = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            for arg in node.args:
                if arg not in memo:
                    stack.append((arg, False))
            continue
        digest = _string_digest(node.op)
        digest = _mix64(digest ^ _payload_digest(node.width))
        digest = _mix64(digest ^ _payload_digest(node.payload))
        for arg in node.args:
            digest = _mix64(digest ^ memo[arg])
        memo[node] = digest
    digest = memo[term]
    # Trim after the traversal, not during it: evicting mid-walk could
    # drop a subterm digest a pending parent still needs.  Oldest-first
    # eviction never touches the entries this call just inserted until
    # everything older is gone.
    while len(memo) > DIGEST_MEMO_CAPACITY:
        del memo[next(iter(memo))]
    return digest


def query_digest(conditions) -> int:
    """Order-sensitive digest of a full flip query (prefix + negation)."""
    digest = 0x2545F4914F6CDD1D
    for term in conditions:
        digest = _mix64(digest ^ term_digest(term))
        digest = _mix64(digest + 0xD1B54A32D192ED03)
    return digest


def store_key(conditions) -> str:
    """Order-*independent* content key of a condition set, as hex text.

    This is the persistent store's file name for a query-cache entry:
    the sorted term digests of the conjuncts folded through blake2b, so
    permuted and duplicated conjuncts key identically (matching the
    ``frozenset`` canonicalization of in-memory cache keys) and the key
    a warm run computes matches the one the cold run filed under.
    """
    hasher = hashlib.blake2b(b"store-key:", digest_size=16)
    for digest in sorted({term_digest(term) for term in conditions}):
        hasher.update(digest.to_bytes(8, "little"))
    return hasher.hexdigest()
