"""Bit-blasting of QF_BV terms into CNF.

Translates :class:`repro.smt.terms.Term` DAGs into SAT literals via the
gate builder.  Bitvectors become lists of literals (LSB first); boolean
terms become single literals.  The translation is cached per term, so a
term shared across many assertions is encoded exactly once — this is what
makes the assumption-based incremental solving in
:mod:`repro.smt.solver` cheap.

Encodings:

* add/sub/neg — ripple-carry adders,
* mul — shift-and-add over partial products,
* udiv/urem — fresh result vectors defined by the multiplication
  constraint ``zext(a) == zext(q)*zext(b) + zext(r) && r < b`` at double
  width, with the SMT-LIB division-by-zero cases asserted explicitly,
* sdiv/srem — sign-compensated wrappers around the unsigned encodings,
* shifts by a non-constant amount — logarithmic barrel shifter,
* comparisons — LSB-to-MSB carry chains (signed via MSB flip).

On top of the per-term cache, whole *networks* are structurally hashed
at the literal-vector level: adder, comparator and multiplier requests
over bit-identical operand vectors return the previously built output
literals instead of re-encoding — so structurally identical subterms
(``a+b`` vs ``b+a``, the same comparison reached through different term
shapes, re-sliced extract/concat recombinations) share one circuit.
Fully constant operand vectors are folded arithmetically at blast time
and never touch the gate builder at all.
"""

from __future__ import annotations

from .cnf import GateBuilder
from .sat import SatSolver
from .terms import Term

__all__ = ["BitBlaster"]


class BitBlaster:
    """Term-to-CNF translator with per-term structural caching."""

    def __init__(self, sat: SatSolver) -> None:
        self.sat = sat
        self.gates = GateBuilder(sat)
        self._bv_cache: dict[Term, list[int]] = {}
        self._bool_cache: dict[Term, int] = {}
        self._divrem_cache: dict = {}
        # Network-level structural hashing: literal-vector keyed caches
        # for adder / comparator / multiplier circuits, shared across
        # every term that blasts to the same operand bits.
        self._add_cache: dict[tuple, tuple[list[int], int]] = {}
        self._ult_cache: dict[tuple, int] = {}
        self._eq_cache: dict[tuple, int] = {}
        self._mul_cache: dict[tuple, list[int]] = {}
        #: Network cache hits by kind, for the solver statistics.
        self.network_hits: dict[str, int] = {"add": 0, "ult": 0, "eq": 0, "mul": 0}
        # BV variable name -> literal list, for model extraction.
        self.var_bits: dict[Term, list[int]] = {}
        self.bool_vars: dict[Term, int] = {}

    def _const_value(self, bits: list[int]) -> "int | None":
        """Integer value of a fully constant literal vector, else None.

        Hot pre-check on every network-cache request, so the constant
        test is inlined (no GateBuilder calls) and bails at the first
        non-constant bit — the common case for variable operands.
        """
        true_lit = self.gates.true_lit
        false_lit = -true_lit
        value = 0
        for i, lit in enumerate(bits):
            if lit == true_lit:
                value |= 1 << i
            elif lit != false_lit:
                return None
        return value

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def bits(self, term: Term) -> list[int]:
        """Blast a bitvector term to its literal vector (LSB first)."""
        if term.is_bool:
            raise TypeError("bits() expects a bitvector term")
        cached = self._bv_cache.get(term)
        if cached is None:
            cached = self._blast_bv(term)
            assert len(cached) == term.width, (term.op, term.width, len(cached))
            self._bv_cache[term] = cached
        return cached

    def lit(self, term: Term) -> int:
        """Blast a boolean term to a single literal."""
        if not term.is_bool:
            raise TypeError("lit() expects a boolean term")
        cached = self._bool_cache.get(term)
        if cached is None:
            cached = self._blast_bool(term)
            self._bool_cache[term] = cached
        return cached

    # ------------------------------------------------------------------
    # Bitvector translation
    # ------------------------------------------------------------------

    def _fresh_vector(self, width: int) -> list[int]:
        return [self.sat.new_var() for _ in range(width)]

    def _const_vector(self, value: int, width: int) -> list[int]:
        g = self.gates
        return [g.const(bool((value >> i) & 1)) for i in range(width)]

    def _blast_bv(self, term: Term) -> list[int]:
        op = term.op
        g = self.gates
        if op == "const":
            return self._const_vector(term.payload, term.width)
        if op == "var":
            bits = self._fresh_vector(term.width)
            self.var_bits[term] = bits
            return bits
        if op == "ite":
            cond = self.lit(term.args[0])
            then_bits = self.bits(term.args[1])
            else_bits = self.bits(term.args[2])
            return [g.mux(cond, t, e) for t, e in zip(then_bits, else_bits)]
        if op == "bool2bv":
            return [self.lit(term.args[0])]
        if op == "not":
            return [-b for b in self.bits(term.args[0])]
        if op == "neg":
            a = self.bits(term.args[0])
            return self._ripple_add([-b for b in a], self._const_vector(0, term.width), g.true_lit)[0]
        if op == "concat":
            hi = self.bits(term.args[0])
            lo = self.bits(term.args[1])
            return lo + hi
        if op == "extract":
            high, low = term.payload
            return self.bits(term.args[0])[low : high + 1]
        if op == "zext":
            a = self.bits(term.args[0])
            return a + [g.false_lit] * term.payload
        if op == "sext":
            a = self.bits(term.args[0])
            return a + [a[-1]] * term.payload
        if op in ("and", "or", "xor"):
            a = self.bits(term.args[0])
            b = self.bits(term.args[1])
            gate = {"and": g.and2, "or": g.or2, "xor": g.xor2}[op]
            return [gate(x, y) for x, y in zip(a, b)]
        if op == "add":
            a = self.bits(term.args[0])
            b = self.bits(term.args[1])
            return self._ripple_add(a, b, g.false_lit)[0]
        if op == "sub":
            a = self.bits(term.args[0])
            b = self.bits(term.args[1])
            return self._ripple_add(a, [-x for x in b], g.true_lit)[0]
        if op == "mul":
            a = self.bits(term.args[0])
            b = self.bits(term.args[1])
            return self._multiply(a, b, term.width)
        if op == "udiv":
            q, _ = self._udivrem(term.args[0], term.args[1])
            return q
        if op == "urem":
            _, r = self._udivrem(term.args[0], term.args[1])
            return r
        if op == "sdiv":
            return self._sdiv(term.args[0], term.args[1])
        if op == "srem":
            return self._srem(term.args[0], term.args[1])
        if op == "shl":
            return self._barrel_shift(term, kind="shl")
        if op == "lshr":
            return self._barrel_shift(term, kind="lshr")
        if op == "ashr":
            return self._barrel_shift(term, kind="ashr")
        raise NotImplementedError(f"bitblast: unknown BV op {op!r}")

    def _ripple_add(
        self, a: list[int], b: list[int], carry_in: int
    ) -> tuple[list[int], int]:
        """Ripple-carry addition; returns (sum bits, carry out).

        Constant operands fold arithmetically; otherwise the adder
        network is hash-consed on its (commutatively normalized)
        operand vectors, so ``a+b`` and ``b+a`` share one circuit.
        """
        g = self.gates
        if g.is_const(carry_in):
            a_val = self._const_value(a)
            if a_val is not None:
                b_val = self._const_value(b)
                if b_val is not None:
                    width = len(a)
                    total = a_val + b_val + (1 if g.const_value(carry_in) else 0)
                    out = self._const_vector(total & ((1 << width) - 1), width)
                    return out, g.const(bool(total >> width))
        key_a, key_b = tuple(a), tuple(b)
        if key_b < key_a:
            key_a, key_b = key_b, key_a
        key = (key_a, key_b, carry_in)
        cached = self._add_cache.get(key)
        if cached is not None:
            self.network_hits["add"] += 1
            return list(cached[0]), cached[1]
        out: list[int] = []
        carry = carry_in
        for x, y in zip(a, b):
            s, carry = g.full_adder(x, y, carry)
            out.append(s)
        self._add_cache[key] = (list(out), carry)
        return out, carry

    def _multiply(self, a: list[int], b: list[int], width: int) -> list[int]:
        """Shift-and-add multiplier truncated to ``width`` bits.

        Fully constant products fold to a constant vector; the partial
        product loop is driven by whichever operand has more known-zero
        bits (multiplication mod ``2**width`` is commutative), and the
        whole network is hash-consed on the operand vectors.
        """
        g = self.gates
        a_val = self._const_value(a)
        b_val = self._const_value(b)
        if a_val is not None and b_val is not None:
            return self._const_vector((a_val * b_val) & ((1 << width) - 1), width)
        # Fewer non-zero multiplier bits => fewer partial products;
        # break ties lexicographically so mul(a,b) and mul(b,a) key
        # onto the same cached network.
        false_lit = g.false_lit
        if len(a) == len(b):
            nonzero_a = sum(1 for x in a if x != false_lit)
            nonzero_b = sum(1 for x in b if x != false_lit)
            if nonzero_a < nonzero_b or (
                nonzero_a == nonzero_b and tuple(b) < tuple(a)
            ):
                a, b = b, a
        key = (tuple(a), tuple(b), width)
        cached = self._mul_cache.get(key)
        if cached is not None:
            self.network_hits["mul"] += 1
            return list(cached)
        accum = self._const_vector(0, width)
        for i, b_bit in enumerate(b):
            if b_bit == false_lit:
                continue
            # Partial product: (a << i) AND b_bit, truncated to width.
            partial = [false_lit] * i + [g.and2(x, b_bit) for x in a[: width - i]]
            accum, _ = self._ripple_add(accum, partial, false_lit)
        self._mul_cache[key] = list(accum)
        return accum

    def _multiply_full(self, a: list[int], b: list[int]) -> list[int]:
        """Full-width product of two equal-width vectors (2w bits)."""
        g = self.gates
        width = len(a) * 2
        a_ext = a + [g.false_lit] * len(a)
        return self._multiply(a_ext, b + [g.false_lit] * len(b), width)

    def _udivrem(self, a_term: Term, b_term: Term) -> tuple[list[int], list[int]]:
        """Encode unsigned division via the multiplication constraint.

        Fresh vectors ``q`` and ``r`` are constrained such that either
        ``b == 0`` and ``q == all-ones, r == a`` (SMT-LIB semantics), or
        ``a == q*b + r`` exactly (checked at double width so the product
        cannot wrap) with ``r < b``.
        """
        return self._udivrem_bits(
            a_term, b_term, self.bits(a_term), self.bits(b_term), tag="udiv"
        )

    def _conditional_negate(self, cond: int, bits: list[int]) -> list[int]:
        """mux(cond, -bits, bits) via xor + conditional increment."""
        g = self.gates
        flipped = [g.xor2(bit, cond) for bit in bits]
        added, _ = self._ripple_add(
            flipped, self._const_vector(0, len(bits)), cond
        )
        return added

    def _sdiv(self, a_term: Term, b_term: Term) -> list[int]:
        g = self.gates
        a = self.bits(a_term)
        b = self.bits(b_term)
        sign_a, sign_b = a[-1], b[-1]
        abs_a = self._conditional_negate(sign_a, a)
        abs_b = self._conditional_negate(sign_b, b)
        q_u, _ = self._udivrem_bits(a_term, b_term, abs_a, abs_b, tag="sdiv")
        signs_differ = g.xor2(sign_a, sign_b)
        return self._conditional_negate(signs_differ, q_u)

    def _srem(self, a_term: Term, b_term: Term) -> list[int]:
        a = self.bits(a_term)
        b = self.bits(b_term)
        sign_a, sign_b = a[-1], b[-1]
        abs_a = self._conditional_negate(sign_a, a)
        abs_b = self._conditional_negate(sign_b, b)
        _, r_u = self._udivrem_bits(a_term, b_term, abs_a, abs_b, tag="sdiv")
        return self._conditional_negate(sign_a, r_u)

    def _udivrem_bits(
        self,
        a_term: Term,
        b_term: Term,
        a: list[int],
        b: list[int],
        tag: str,
    ) -> tuple[list[int], list[int]]:
        """Division constraint over explicit bit vectors (cached by tag)."""
        key = (tag, a_term, b_term)
        cached = self._divrem_cache.get(key)
        if cached is not None:
            return cached
        g = self.gates
        width = len(a)
        q = self._fresh_vector(width)
        r = self._fresh_vector(width)
        zero_pad = [g.false_lit] * width
        product = self._multiply_full(q, b)
        total, carry = self._ripple_add(product, r + zero_pad, g.false_lit)
        exact = g.big_and(
            [g.iff(t, av) for t, av in zip(total, a + zero_pad)] + [-carry]
        )
        r_lt_b = self._ult(r, b)
        b_is_zero = g.big_and([-x for x in b])
        q_ones = g.big_and(q)
        r_eq_a = g.big_and([g.iff(x, y) for x, y in zip(r, a)])
        constraint = g.mux(b_is_zero, g.and2(q_ones, r_eq_a), g.and2(exact, r_lt_b))
        self.sat.add_clause([constraint])
        self._divrem_cache[key] = (q, r)
        return q, r

    def _barrel_shift(self, term: Term, kind: str) -> list[int]:
        g = self.gates
        a = self.bits(term.args[0])
        amount = self.bits(term.args[1])
        width = term.width
        fill = a[-1] if kind == "ashr" else g.false_lit
        result = list(a)
        # Stages for shift-amount bits that can encode < width.
        stage_bits = []
        overflow_bits = []
        for i, amt_bit in enumerate(amount):
            if (1 << i) < width:
                stage_bits.append((i, amt_bit))
            else:
                overflow_bits.append(amt_bit)
        for i, amt_bit in stage_bits:
            step = 1 << i
            if kind == "shl":
                shifted = [fill] * step + result[: width - step]
            else:
                shifted = result[step:] + [fill] * step
            result = [g.mux(amt_bit, s, r) for s, r in zip(shifted, result)]
        # If the encoded amount is >= width, the result is all fill bits.
        # That happens when an overflow bit is set, or the in-range bits
        # sum to >= width (possible when width is not a power of two).
        max_in_range = sum(1 << i for i, _ in stage_bits)
        overflow = g.big_or(overflow_bits)
        if max_in_range >= width:
            # Compare the in-range amount against width.
            in_range_bits = [bit for _, bit in stage_bits]
            width_bits = self._const_vector(width, len(in_range_bits))
            ge_width = -self._ult(in_range_bits, width_bits)
            overflow = g.or2(overflow, ge_width)
        return [g.mux(overflow, fill, r) for r in result]

    # ------------------------------------------------------------------
    # Boolean translation
    # ------------------------------------------------------------------

    def _blast_bool(self, term: Term) -> int:
        op = term.op
        g = self.gates
        if op == "const":
            return g.const(bool(term.payload))
        if op == "var":
            lit = self.sat.new_var()
            self.bool_vars[term] = lit
            return lit
        if op == "bnot":
            return -self.lit(term.args[0])
        if op == "band":
            return g.and2(self.lit(term.args[0]), self.lit(term.args[1]))
        if op == "bor":
            return g.or2(self.lit(term.args[0]), self.lit(term.args[1]))
        if op == "bxor":
            return g.xor2(self.lit(term.args[0]), self.lit(term.args[1]))
        if op == "eq":
            return self._eq_vec(self.bits(term.args[0]), self.bits(term.args[1]))
        if op == "ult":
            return self._ult(self.bits(term.args[0]), self.bits(term.args[1]))
        if op == "ule":
            return -self._ult(self.bits(term.args[1]), self.bits(term.args[0]))
        if op == "slt":
            a = self._flip_msb(self.bits(term.args[0]))
            b = self._flip_msb(self.bits(term.args[1]))
            return self._ult(a, b)
        if op == "sle":
            a = self._flip_msb(self.bits(term.args[0]))
            b = self._flip_msb(self.bits(term.args[1]))
            return -self._ult(b, a)
        raise NotImplementedError(f"bitblast: unknown Bool op {op!r}")

    @staticmethod
    def _flip_msb(bits: list[int]) -> list[int]:
        return bits[:-1] + [-bits[-1]]

    def _eq_vec(self, a: list[int], b: list[int]) -> int:
        """Equality comparator over literal vectors, hash-consed."""
        g = self.gates
        a_val = self._const_value(a)
        if a_val is not None:
            b_val = self._const_value(b)
            if b_val is not None:
                return g.const(a_val == b_val)
        key_a, key_b = tuple(a), tuple(b)
        if key_b < key_a:
            key_a, key_b = key_b, key_a
        key = (key_a, key_b)
        cached = self._eq_cache.get(key)
        if cached is not None:
            self.network_hits["eq"] += 1
            return cached
        out = g.big_and([g.iff(x, y) for x, y in zip(a, b)])
        self._eq_cache[key] = out
        return out

    def _ult(self, a: list[int], b: list[int]) -> int:
        """Unsigned less-than over literal vectors (LSB first).

        Constant comparisons fold; otherwise the carry chain is
        hash-consed per (a, b) operand pair (ordered — ult is not
        commutative).
        """
        g = self.gates
        a_val = self._const_value(a)
        if a_val is not None:
            b_val = self._const_value(b)
            if b_val is not None:
                return g.const(a_val < b_val)
        key = (tuple(a), tuple(b))
        cached = self._ult_cache.get(key)
        if cached is not None:
            self.network_hits["ult"] += 1
            return cached
        lt = g.false_lit
        for x, y in zip(a, b):
            bit_lt = g.and2(-x, y)
            bit_eq = g.iff(x, y)
            lt = g.or2(bit_lt, g.and2(bit_eq, lt))
        self._ult_cache[key] = lt
        return lt
