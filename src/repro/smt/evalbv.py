"""Concrete evaluation of SMT terms under a variable assignment.

This is the reference interpreter for the term language: given a mapping
from variable terms (or variable names) to Python ints/bools it computes
the value of any term.  It is used to

* validate models returned by the SAT-based solver (every ``sat`` answer
  in the test-suite is checked against this evaluator),
* provide the oracle for property-based testing of the bit-blaster, and
* evaluate shadow expressions in diagnostics.
"""

from __future__ import annotations

from typing import Mapping, Union

from . import bvops
from .terms import Term

__all__ = ["evaluate", "EvalError"]


class EvalError(KeyError):
    """Raised when a variable has no binding in the assignment."""


_BINOPS = {
    "add": bvops.bv_add,
    "sub": bvops.bv_sub,
    "mul": bvops.bv_mul,
    "udiv": bvops.bv_udiv,
    "urem": bvops.bv_urem,
    "sdiv": bvops.bv_sdiv,
    "srem": bvops.bv_srem,
    "and": bvops.bv_and,
    "or": bvops.bv_or,
    "xor": bvops.bv_xor,
    "shl": bvops.bv_shl,
    "lshr": bvops.bv_lshr,
    "ashr": bvops.bv_ashr,
}

_CMPOPS = {
    "ult": bvops.bv_ult,
    "ule": bvops.bv_ule,
    "slt": bvops.bv_slt,
    "sle": bvops.bv_sle,
}


def _lookup(assignment: Mapping, term: Term) -> int:
    if term in assignment:
        value = assignment[term]
    elif term.payload in assignment:
        value = assignment[term.payload]
    else:
        raise EvalError(f"unbound variable {term.payload!r}")
    if term.is_bool:
        return 1 if value else 0
    return bvops.truncate(int(value), term.width)


def evaluate(term: Term, assignment: Mapping[Union[Term, str], int]) -> int:
    """Evaluate ``term`` under ``assignment``.

    The assignment maps variable terms *or* their string names to integer
    values.  Bitvector results are returned as unsigned ints; boolean
    results as 0/1.
    """
    cache: dict[int, int] = {}
    # Iterative post-order evaluation: terms can be deep (long add chains
    # from loop-carried symbolic state) and Python's recursion limit is a
    # real hazard there.
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in cache:
            continue
        if not ready:
            stack.append((node, True))
            for arg in node.args:
                if id(arg) not in cache:
                    stack.append((arg, False))
            continue
        cache[id(node)] = _eval_node(node, cache, assignment)
    return cache[id(term)]


def _eval_node(node: Term, cache: dict[int, int], assignment: Mapping) -> int:
    op = node.op
    if op == "const":
        return node.payload
    if op == "var":
        return _lookup(assignment, node)
    args = [cache[id(a)] for a in node.args]
    if op in _BINOPS:
        return _BINOPS[op](args[0], args[1], node.width)
    if op in _CMPOPS:
        width = node.args[0].width
        return 1 if _CMPOPS[op](args[0], args[1], width) else 0
    if op == "not":
        return bvops.bv_not(args[0], node.width)
    if op == "neg":
        return bvops.bv_neg(args[0], node.width)
    if op == "concat":
        return bvops.bv_concat(args[0], args[1], node.args[1].width)
    if op == "extract":
        high, low = node.payload
        return bvops.bv_extract(args[0], high, low)
    if op == "zext":
        return args[0]
    if op == "sext":
        return bvops.bv_sext(args[0], node.args[0].width, node.payload)
    if op == "ite":
        return args[1] if args[0] else args[2]
    if op == "bool2bv":
        return args[0]
    if op == "eq":
        return 1 if args[0] == args[1] else 0
    if op == "bnot":
        return 1 - args[0]
    if op == "band":
        return args[0] & args[1]
    if op == "bor":
        return args[0] | args[1]
    if op == "bxor":
        return args[0] ^ args[1]
    raise NotImplementedError(f"evaluate: unknown op {op!r}")
