"""CDCL SAT solver with two-watched literals, VSIDS and restarts.

This is the decision procedure underneath the QF_BV solver: bitvector
formulas are bit-blasted (:mod:`repro.smt.bitblast`) into CNF over the
variables of this solver.

Literals are signed non-zero ints in DIMACS convention: variable ``v``
appears as ``v`` (positive) or ``-v`` (negated).  The solver supports

* incremental clause addition between ``solve`` calls,
* solving under *assumptions* (the mechanism used by the SMT layer to
  implement push/pop and per-query path conditions),
* assumption-level UNSAT cores: after an UNSAT answer under
  assumptions, :meth:`unsat_core` names the subset of assumption
  literals the final conflict actually used (MiniSat's
  ``analyzeFinal``), and :meth:`minimize_core` greedily shrinks it,
* first-UIP conflict clause learning with backjumping,
* LBD ("glue") tracking per learned clause, driving a tiered
  core/mid/local clause-database reduction and a Glucose-style
  glue-aware restart trigger on top of the Luby schedule,
* shared-assumption-prefix trail reuse: consecutive ``solve`` calls
  whose assumption lists share an ordered prefix keep the trail
  segment that prefix justifies instead of cancelling to level 0,
* VSIDS variable activities with exponential decay and phase saving,
* per-call conflict/propagation/wall-clock *budgets*: ``solve`` returns
  :data:`UNKNOWN` instead of running forever on an adversarial query,
  leaving the solver consistent for the next call (sound degradation —
  the caller must treat UNKNOWN as "no answer", never as SAT or UNSAT).
"""

from __future__ import annotations

import time
from collections import deque
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Callable, Iterable, Optional, Sequence

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN"]

SAT = True
UNSAT = False
#: Budget-exhausted answer: ``solve`` gave up without deciding.  ``None``
#: so that ``is SAT`` / ``is UNSAT`` comparisons at every call site
#: remain correct — an unhandled UNKNOWN falls into the "not SAT" arm,
#: which is the conservative direction for branch flipping (no flip).
UNKNOWN = None

_UNASSIGNED = 0

#: LBD at or below which a learned clause is "glue" and never deleted.
_GLUE_LBD = 2
#: LBD at or below which a learned clause is mid-tier (deleted last).
_MID_LBD = 6
#: Window of recent learned-clause LBDs driving the glue restart.
_LBD_WINDOW = 50
#: Glucose's K: restart when 0.8 * recent-avg-LBD > global-avg-LBD.
_GLUE_K = 0.8


class _Clause:
    """A clause; the first two literals are the watched ones."""

    __slots__ = ("lits", "learned", "activity", "lbd")

    def __init__(self, lits: list[int], learned: bool, lbd: int = 0):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.lbd = lbd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clause({self.lits}{' L' if self.learned else ''})"


class SatSolver:
    """An incremental CDCL solver.

    Typical use::

        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve() is SAT
        assert solver.value(b) is True
    """

    def __init__(
        self,
        trail_reuse: bool = True,
        conflict_budget: Optional[int] = None,
        propagation_budget: Optional[int] = None,
        wall_budget: Optional[float] = None,
        proof_log: bool = False,
    ) -> None:
        self._num_vars = 0
        # Indexed by variable (1-based): +1 true, -1 false, 0 unassigned.
        self._assign: list[int] = [0]
        self._level: list[int] = [0]
        self._reason: list[Optional[_Clause]] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        # Watch lists keyed by literal index (2*v for v, 2*v+1 for -v).
        self._watches: list[list[_Clause]] = [[], []]
        self._clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._propagate_head = 0
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._ok = True
        self._model: list[int] = [0]
        self._order_heap: list[tuple[float, int]] = []
        self._max_learned = 4000
        self._trail_reuse = trail_reuse
        # Assumption list of the previous solve(); decision level i+1 of
        # a kept trail corresponds to _prev_assumptions[i].
        self._prev_assumptions: list[int] = []
        # Assumption literals of the last UNSAT answer (analyzeFinal).
        self._conflict_core: list[int] = []
        # Glue restart bookkeeping: rolling window of recent LBDs plus
        # the global LBD sum over all conflicts.
        self._lbd_recent: deque = deque(maxlen=_LBD_WINDOW)
        self._lbd_recent_sum = 0
        self._lbd_total = 0
        #: Per-``solve``-call work budgets (None = unlimited).  When a
        #: budget runs out the call answers :data:`UNKNOWN` and resets
        #: to a consistent level-0 state.
        self.conflict_budget = conflict_budget
        self.propagation_budget = propagation_budget
        #: Per-``solve``-call wall-clock budget in seconds (None =
        #: unlimited).  The monotonic-clock check piggybacks on the
        #: existing per-conflict budget checks, so even a budget-free
        #: conflict/propagation configuration stays anytime: a solve
        #: exceeding the budget answers :data:`UNKNOWN` like any other
        #: exhausted budget.
        self.wall_budget = wall_budget
        #: Test/chaos seam: called with the solve ordinal at the start
        #: of every ``solve``; returning True simulates an immediately
        #: exhausted budget (see :mod:`repro.core.faults`).
        self.fault_hook: Optional[Callable[[int], bool]] = None
        #: DRAT-style clause log (``None`` = disabled): ``("i", lits)``
        #: input clauses as given to :meth:`add_clause`, ``("a", lits)``
        #: learned additions — unit learnts and the terminal empty
        #: clause included — and ``("d", lits)`` database-reduction
        #: deletions, in derivation order.  Checked independently by
        #: :mod:`repro.smt.drat`; the log only ever grows, so a checker
        #: can consume it incrementally across ``solve`` calls.
        self.proof: Optional[list[tuple[str, tuple[int, ...]]]] = (
            [] if proof_log else None
        )
        self.statistics = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "glue_restarts": 0,
            "learned_deleted": 0,
            "trail_reused_lits": 0,
            "cores_extracted": 0,
            "core_minimize_solves": 0,
            "solve_calls": 0,
            "budget_exhausted": 0,
        }

    # ------------------------------------------------------------------
    # Variable / clause management
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) literal."""
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @staticmethod
    def _widx(lit: int) -> int:
        """Index into the watch table for a literal."""
        var = lit if lit > 0 else -lit
        return 2 * var + (0 if lit > 0 else 1)

    def _lit_value(self, lit: int) -> int:
        """Value of a literal: +1 true, -1 false, 0 unassigned."""
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the instance became trivially UNSAT.

        May be called between ``solve`` calls even when a reused trail is
        still standing: the solver falls back to decision level 0 first
        (new clauses invalidate the kept assumption prefix).
        """
        if self._trail_lim:
            self._cancel_until(0)
        if not self._ok:
            return False
        seen: set[int] = set()
        kept: list[int] = []
        out: list[int] = []
        for lit in lits:
            assert lit != 0 and abs(lit) <= self._num_vars, f"bad literal {lit}"
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self._lit_value(lit)
            if value == 1:
                return True  # already satisfied at level 0
            kept.append(lit)
            if value == -1:
                continue  # falsified at level 0: drop literal
            out.append(lit)
        # The proof logs the clause *before* level-0 simplification:
        # the dropped literals' falsifying units are themselves logged
        # inputs, so the checker's propagation re-derives the
        # simplification instead of trusting it.
        if self.proof is not None and kept:
            self.proof.append(("i", tuple(kept)))
        if not out:
            if self.proof is not None:
                self.proof.append(("a", ()) if kept else ("i", ()))
            self._ok = False
            return False
        if len(out) == 1:
            self._enqueue(out[0], None)
            conflict = self._propagate()
            if conflict is not None:
                if self.proof is not None:
                    self.proof.append(("a", ()))
                self._ok = False
                return False
            return True
        clause = _Clause(out, learned=False)
        self._clauses.append(clause)
        self._watches[self._widx(out[0])].append(clause)
        self._watches[self._widx(out[1])].append(clause)
        return True

    # ------------------------------------------------------------------
    # Assignment trail
    # ------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> None:
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            _heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._propagate_head = len(self._trail)

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        """Propagate all enqueued facts; return a conflicting clause or None.

        This is the solver's innermost loop (the profile's hottest
        frame), so ``self`` attribute traffic is hoisted into locals and
        ``_lit_value``/``_widx`` are inlined over the local ``assign``
        list — the containers are only ever mutated in place, so the
        local aliases stay valid across ``_enqueue`` calls.
        """
        stats_props = 0
        trail = self._trail
        watches = self._watches
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        trail_lim = self._trail_lim
        trail_append = trail.append
        head = self._propagate_head
        conflict: Optional[_Clause] = None
        while head < len(trail):
            lit = trail[head]
            head += 1
            stats_props += 1
            false_lit = -lit
            # Inlined _widx(false_lit).
            if false_lit > 0:
                watch_list = watches[2 * false_lit]
            else:
                watch_list = watches[-2 * false_lit + 1]
            new_list: list[_Clause] = []
            append_kept = new_list.append
            index = 0
            count = len(watch_list)
            while index < count:
                clause = watch_list[index]
                index += 1
                lits = clause.lits
                # Ensure the falsified literal is in slot 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                # Inlined _lit_value(first) == 1 (literal is true).
                if (assign[first] if first > 0 else -assign[-first]) == 1:
                    append_kept(clause)
                    continue
                # Search for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    other = lits[k]
                    if (assign[other] if other > 0 else -assign[-other]) != -1:
                        lits[1], lits[k] = other, lits[1]
                        if other > 0:
                            watches[2 * other].append(clause)
                        else:
                            watches[-2 * other + 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                append_kept(clause)
                if (assign[first] if first > 0 else -assign[-first]) == -1:
                    # Conflict: keep remaining watches, signal conflict.
                    new_list.extend(watch_list[index:])
                    conflict = clause
                    break
                # Inlined _enqueue(first, clause) — one call per unit
                # propagation is the densest call site in the solver.
                var = first if first > 0 else -first
                assign[var] = 1 if first > 0 else -1
                level[var] = len(trail_lim)
                reason[var] = clause
                phase[var] = first > 0
                trail_append(first)
            watch_list[:] = new_list
            if conflict is not None:
                break
        self._propagate_head = head
        self.statistics["propagations"] += stats_props
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """Derive a 1-UIP learned clause and its backjump level."""
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        clause: Optional[_Clause] = conflict
        current_level = self._decision_level()
        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 1 if lit != 0 else 0
            for q in clause.lits[start:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Select next literal to expand from the trail.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._reason[var]
            # Reorder reason clause so the propagated literal is first.
            if clause is not None and clause.lits[0] != lit:
                pos = clause.lits.index(lit)
                clause.lits[0], clause.lits[pos] = clause.lits[pos], clause.lits[0]
        learned[0] = -lit
        # Clause minimization: drop literals implied by the rest.  The
        # membership test is one O(|learned|) set build + O(1) lookups
        # (the clause contents do not change during this pass).
        learned_vars = {abs(q) for q in learned}
        minimized = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason is None:
                minimized.append(q)
                continue
            redundant = all(
                abs(r) in learned_vars or self._level[abs(r)] == 0
                for r in reason.lits[1:]
            )
            if not redundant:
                minimized.append(q)
        learned = minimized
        if len(learned) == 1:
            return learned, 0
        # Find the second-highest decision level for backjumping.
        max_index = 1
        max_level = self._level[abs(learned[1])]
        for i in range(2, len(learned)):
            lvl = self._level[abs(learned[i])]
            if lvl > max_level:
                max_level = lvl
                max_index = i
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, max_level

    def _clause_lbd(self, lits: list[int]) -> int:
        """Literal Block Distance: distinct decision levels in the clause.

        Computed at learn time, before backjumping invalidates levels.
        """
        levels = set()
        level = self._level
        for q in lits:
            lvl = level[abs(q)]
            if lvl > 0:
                levels.add(lvl)
        return len(levels) or 1

    def _analyze_final(self, failed: int) -> list[int]:
        """Assumption literals whose conjunction forced ``failed`` false.

        MiniSat's ``analyzeFinal``: walk the implication graph backwards
        from the trail literal falsifying the assumption ``failed``;
        every assumption *decision* reached is part of the core.  The
        returned list always contains ``failed`` itself and is a subset
        of the assumptions of the current ``solve`` call.
        """
        core = [failed]
        if self._decision_level() == 0:
            return core
        seen = bytearray(self._num_vars + 1)
        seen[abs(failed)] = 1
        level = self._level
        bound = self._trail_lim[0]
        for trail_lit in reversed(self._trail[bound:]):
            var = abs(trail_lit)
            if not seen[var]:
                continue
            seen[var] = 0
            reason = self._reason[var]
            if reason is None:
                # A decision below the assumption prefix IS an
                # assumption literal (search decisions only happen once
                # every assumption level is established).
                core.append(trail_lit)
            else:
                for q in reason.lits:
                    qv = abs(q)
                    if qv != var and level[qv] > 0:
                        seen[qv] = 1
        return core

    def unsat_core(self) -> list[int]:
        """Assumption literals of the last UNSAT answer.

        A subset of the assumptions passed to the failing :meth:`solve`
        whose conjunction is already unsatisfiable with the clause
        database.  Empty when the clause database itself is UNSAT (any
        assumption set fails) or when the last answer was SAT.
        """
        return list(self._conflict_core)

    def minimize_core(self, core: Sequence[int], budget: int = 8) -> list[int]:
        """Greedy deletion-based minimization of an assumption core.

        Tries dropping one literal at a time and re-solving under the
        remainder; every UNSAT answer both confirms the drop and
        clause-set-refines the candidate through the fresh
        ``analyzeFinal`` core.  ``budget`` caps the extra ``solve``
        calls, so minimization degrades gracefully on hard instances.
        The result is UNSAT standing alone and a subset of ``core``.
        """
        current = list(core)
        attempts = 0
        index = 0
        while index < len(current) and attempts < budget and len(current) > 1:
            if not self._ok:
                break
            candidate = current[:index] + current[index + 1:]
            attempts += 1
            self.statistics["core_minimize_solves"] += 1
            if self.solve(candidate) is UNSAT:
                refined = self._conflict_core
                if refined and len(refined) < len(candidate):
                    current = list(refined)
                    index = 0
                else:
                    current = candidate
                # index stays: the next literal shifted into this slot.
            else:
                index += 1
        self._conflict_core = list(current)
        return current

    # ------------------------------------------------------------------
    # Decision heuristic
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        heap = self._order_heap
        while heap:
            neg_act, var = _heappop(heap)
            if self._assign[var] == _UNASSIGNED and -neg_act == self._activity[var]:
                return var
            if self._assign[var] == _UNASSIGNED:
                # Stale activity entry: reinsert with the fresh score.
                _heappush(heap, (-self._activity[var], var))
        # Heap empty: linear scan fallback (also (re)fills the heap).
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED:
                return var
        return 0

    def _rebuild_heap(self) -> None:
        self._order_heap = [
            (-self._activity[v], v)
            for v in range(1, self._num_vars + 1)
            if self._assign[v] == _UNASSIGNED
        ]
        _heapify(self._order_heap)

    # ------------------------------------------------------------------
    # Learned clause DB reduction (LBD-tiered)
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the least valuable half of the deletable learned clauses.

        Three retention tiers by glue value: *core* clauses (LBD <= 2)
        and binaries are immortal, *local* clauses (LBD > 6) go first
        (highest LBD, then lowest activity), *mid* clauses (LBD 3..6)
        are only sacrificed when the local tier alone cannot relieve
        the cap.  Clauses currently locked as reasons are never touched.
        """
        if len(self._learned) <= self._max_learned:
            return
        locked = set()
        for var in range(1, self._num_vars + 1):
            reason = self._reason[var]
            if reason is not None and reason.learned:
                locked.add(id(reason))
        removable = [
            clause
            for clause in self._learned
            if clause.lbd > _GLUE_LBD
            and len(clause.lits) > 2
            and id(clause) not in locked
        ]
        if not removable:
            return
        # Worst first: local tier by descending LBD, ties (and the mid
        # tier) by ascending activity.
        removable.sort(key=lambda c: (-c.lbd, c.activity))
        removed = removable[: len(removable) // 2]
        remove_ids = {id(c) for c in removed}
        if not remove_ids:
            return
        self._learned = [c for c in self._learned if id(c) not in remove_ids]
        for watch_list in self._watches:
            watch_list[:] = [c for c in watch_list if id(c) not in remove_ids]
        if self.proof is not None:
            for clause in removed:
                self.proof.append(("d", tuple(clause.lits)))
        self.statistics["learned_deleted"] += len(removed)
        self._max_learned = int(self._max_learned * 1.5)

    # ------------------------------------------------------------------
    # Main search loop
    # ------------------------------------------------------------------

    def _record_lbd(self, lbd: int) -> None:
        window = self._lbd_recent
        if len(window) == _LBD_WINDOW:
            self._lbd_recent_sum -= window[0]
        window.append(lbd)
        self._lbd_recent_sum += lbd
        self._lbd_total += lbd

    def _glue_restart_due(self) -> bool:
        """Glucose trigger: recent glue much worse than the global mean."""
        if len(self._lbd_recent) < _LBD_WINDOW:
            return False
        conflicts = self.statistics["conflicts"]
        return (
            self._lbd_recent_sum * _GLUE_K * conflicts
            > self._lbd_total * _LBD_WINDOW
        )

    def _give_up(self) -> None:
        """Abandon the current search consistently (budget exhausted).

        Cancels to level 0 and forgets the previous-assumption prefix so
        the next ``solve`` re-establishes its assumptions from scratch —
        learned clauses and activities survive (they are consequences of
        the clause database, independent of the abandoned search).
        """
        self.statistics["budget_exhausted"] += 1
        self._cancel_until(0)
        self._prev_assumptions = []

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[bool]:
        """Solve under the given assumption literals.

        Returns :data:`SAT` when a model exists, :data:`UNSAT` when there
        is none, or :data:`UNKNOWN` when a configured conflict/propagation
        budget ran out first.  After SAT, :meth:`value` reads the model;
        after UNSAT under assumptions, :meth:`unsat_core` names the
        guilty subset.  With trail reuse enabled the trail is left
        standing between calls: the next ``solve`` keeps the segment
        justified by the shared ordered assumption prefix instead of
        re-propagating it.
        """
        self._conflict_core = []
        self.statistics["solve_calls"] += 1
        if not self._ok:
            return UNSAT
        if self.fault_hook is not None and self.fault_hook(
            self.statistics["solve_calls"]
        ):
            self._give_up()
            return UNKNOWN
        assumptions = list(assumptions)
        keep = 0
        if self._trail_reuse:
            previous = self._prev_assumptions
            limit = min(len(assumptions), len(previous), self._decision_level())
            while keep < limit and assumptions[keep] == previous[keep]:
                keep += 1
        self._cancel_until(keep)
        if keep:
            self.statistics["trail_reused_lits"] += (
                len(self._trail) - self._trail_lim[0]
            )
        self._prev_assumptions = assumptions
        self._rebuild_heap()
        restart_count = 0
        conflicts_until_restart = _luby(restart_count) * 100
        conflict_budget_used = 0
        conflict_limit = self.conflict_budget
        conflicts_this_call = 0
        propagation_limit = None
        if self.propagation_budget is not None:
            propagation_limit = (
                self.statistics["propagations"] + self.propagation_budget
            )
        # Monotonic wall-clock deadline for this call, checked at the
        # same sites as the counter budgets (once per propagate return
        # and per conflict) — cheap, and frequent enough that no solve
        # overshoots its budget by more than one propagation round.
        wall_limit = None
        if self.wall_budget is not None:
            wall_limit = time.monotonic() + self.wall_budget
        while True:
            conflict = self._propagate()
            if (
                propagation_limit is not None
                and self.statistics["propagations"] > propagation_limit
            ):
                self._give_up()
                return UNKNOWN
            if wall_limit is not None and time.monotonic() > wall_limit:
                self._give_up()
                return UNKNOWN
            if conflict is not None:
                self.statistics["conflicts"] += 1
                conflict_budget_used += 1
                conflicts_this_call += 1
                if self._decision_level() == 0:
                    if self.proof is not None:
                        self.proof.append(("a", ()))
                    self._cancel_until(0)
                    self._ok = False
                    self._prev_assumptions = []
                    return UNSAT
                if (
                    conflict_limit is not None
                    and conflicts_this_call > conflict_limit
                ):
                    self._give_up()
                    return UNKNOWN
                learned, backjump_level = self._analyze(conflict)
                if self.proof is not None:
                    self.proof.append(("a", tuple(learned)))
                # Glue is computed before backjumping, while the levels
                # of the learned literals are still meaningful.
                lbd = self._clause_lbd(learned)
                self._record_lbd(lbd)
                # Never backjump above the assumption prefix: re-deciding
                # assumptions is handled by restarting the prefix below.
                self._cancel_until(backjump_level)
                if len(learned) == 1:
                    if self._decision_level() == 0:
                        self._enqueue(learned[0], None)
                    else:
                        self._cancel_until(0)
                        self._enqueue(learned[0], None)
                else:
                    clause = _Clause(learned, learned=True, lbd=lbd)
                    self._learned.append(clause)
                    self._watches[self._widx(learned[0])].append(clause)
                    self._watches[self._widx(learned[1])].append(clause)
                    self._bump_clause(clause)
                    self._enqueue(learned[0], clause)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                glue_due = self._glue_restart_due()
                if glue_due or conflict_budget_used >= conflicts_until_restart:
                    if glue_due:
                        self.statistics["glue_restarts"] += 1
                    else:
                        restart_count += 1
                        conflicts_until_restart = _luby(restart_count) * 100
                    self.statistics["restarts"] += 1
                    conflict_budget_used = 0
                    self._lbd_recent.clear()
                    self._lbd_recent_sum = 0
                    self._cancel_until(0)
                    self._reduce_db()
                continue
            # Re-establish falsified assumptions as decisions.
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                value = self._lit_value(lit)
                if value == 1:
                    # Already implied: introduce an empty decision level so
                    # the prefix indexing stays aligned.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == -1:
                    # Assumption conflicts with the formula: extract the
                    # final-conflict core, keep the (still consistent)
                    # established prefix for the next call's reuse.
                    self._conflict_core = self._analyze_final(lit)
                    self.statistics["cores_extracted"] += 1
                    self._prev_assumptions = assumptions[: self._decision_level()]
                    if not self._trail_reuse:
                        self._cancel_until(0)
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var == 0:
                # Snapshot the model; the trail stays standing so the
                # next solve can reuse the shared assumption prefix.
                self._model = list(self._assign)
                if not self._trail_reuse:
                    self._cancel_until(0)
                return SAT
            self.statistics["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            lit = var if self._phase[var] else -var
            self._enqueue(lit, None)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def value(self, var: int) -> bool:
        """Model value of a variable after a SAT answer (False if free)."""
        if var < len(self._model):
            return self._model[var] == 1
        return False


def _luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    k = 1
    while (1 << (k + 1)) <= i + 2:
        k += 1
    while (1 << k) - 1 != i + 1:
        i = i - (1 << k) + 1
        k = 1
        while (1 << (k + 1)) <= i + 2:
            k += 1
    return 1 << (k - 1)
