"""Word-level query preprocessing: independence slicing and rewriting.

This module (together with :mod:`repro.smt.intervals`) forms the
pipeline that sits between :class:`repro.smt.solver.CachingSolver` and
the bit-blaster:

1. **Independence slicing** — partition the assertion set into
   connected components by shared variables (union-find over each
   conjunct's cached free-variable set).  Components are solved and
   cached *per slice*: flipping one branch never re-solves unrelated
   constraints, and :class:`repro.smt.solver.QueryCache` keys shrink to
   slice-sized sets that recur across paths and workers.
2. **Word-level rewriting** — a fixpoint pass over each slice doing
   equality substitution (``x == c`` propagates into sibling
   conjuncts), cross-assertion constant folding (through the smart
   constructors in :mod:`repro.smt.terms`), and contradiction /
   tautology elimination.
3. The **interval fast path** (:func:`repro.smt.intervals.analyze_slice`)
   then answers many slices outright; see that module.

Every transformation is equivalence-preserving on the slice: rewriting
substitutes only ``var == const`` facts (recorded as *bindings* so
model stitching can re-materialize the eliminated variables), and
slicing is a partition, so the conjunction of the slices is the
original query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import terms as T
from .terms import Term

__all__ = [
    "PreprocessConfig",
    "RewriteOutcome",
    "slice_conditions",
    "substitute",
    "rewrite_slice",
]


@dataclass(frozen=True)
class PreprocessConfig:
    """Which stages of the query pipeline are active.

    Mirrors the CLI ablation flags: ``--no-slicing``, ``--no-rewrite``
    and ``--no-intervals`` each clear one pipeline stage.  With all
    three off the caching solver degenerates to PR 1 behaviour
    (whole-query keys straight to the bit-blaster).

    The solver-layer knobs ride along in the same config object
    because it is what already crosses the process boundary to every
    exploration worker: ``unsat_cores`` (``--no-unsat-cores``) controls
    assumption-level UNSAT core extraction + minimal-core caching, and
    ``trail_reuse`` (``--no-trail-reuse``) the CDCL core's
    shared-assumption-prefix trail retention between queries.

    The *budget* knobs bound worst-case solver work per query, for
    sound degradation under adversarial branch-flip queries
    (``--conflict-budget`` / ``--propagation-budget``, None =
    unlimited): an exhausted budget makes ``check`` answer UNKNOWN,
    which the exploration layer counts explicitly instead of flipping
    the branch.  ``wall_budget`` (``--solver-wall-budget``, seconds)
    bounds *wall time* per CDCL ``solve`` the same way — the anytime
    guarantee for queries whose conflict count stays low while each
    propagation round is expensive.  ``core_budget`` (``--core-budget``)
    caps the extra solves :meth:`repro.smt.sat.SatSolver.minimize_core`
    may spend shrinking an UNSAT core.  Fork inheritance keeps serial
    and parallel budget behaviour identical.

    The *evidence* knobs control the certification layer:
    ``proof_log`` (``--no-proof-log``) keeps the CDCL core's DRAT-style
    clause log (learned additions + deletions) so UNSAT answers carry a
    checkable derivation, and ``certify`` (``--certify``) turns on the
    checks themselves — every UNSAT core is validated by the
    independent RUP checker in :mod:`repro.smt.drat` and every SAT
    model is evaluated against the original conjuncts before anything
    is cached or reported.  A failed check is never trusted: the entry
    is quarantined, the query re-solved, and the failure counted.
    """

    slicing: bool = True
    rewrite: bool = True
    intervals: bool = True
    unsat_cores: bool = True
    trail_reuse: bool = True
    conflict_budget: "int | None" = None
    propagation_budget: "int | None" = None
    wall_budget: "float | None" = None
    core_budget: int = 8
    certify: bool = False
    proof_log: bool = True


# ---------------------------------------------------------------------------
# Independence slicing
# ---------------------------------------------------------------------------


def slice_conditions(conditions: list) -> list:
    """Partition conjuncts into variable-connected components.

    Two conjuncts land in the same slice iff they are connected through
    shared free variables (transitively).  The partition is order-stable:
    slices appear in order of their first conjunct, and conjuncts keep
    their relative order within a slice — so a degenerate fully-connected
    query yields exactly ``[conditions]``.

    Variable-free conjuncts (which the smart constructors fold to
    constants in practice) each form their own singleton slice.
    """
    parent: dict = {}

    def find(x):
        root = x
        while parent[root] is not root:
            root = parent[root]
        while parent[x] is not root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra is not rb:
            parent[rb] = ra

    anchors = []  # per condition: a representative variable or None
    for cond in conditions:
        variables = cond.free_vars()
        anchor = None
        for var in variables:
            if var not in parent:
                parent[var] = var
            if anchor is None:
                anchor = var
            else:
                union(anchor, var)
        anchors.append(anchor)

    groups: dict = {}
    order: list = []
    for cond, anchor in zip(conditions, anchors):
        key = object() if anchor is None else find(anchor)
        bucket = groups.get(key)
        if bucket is None:
            bucket = groups[key] = []
            order.append(key)
        bucket.append(cond)
    return [groups[key] for key in order]


# ---------------------------------------------------------------------------
# Substitution through the smart constructors
# ---------------------------------------------------------------------------

_BINARY = {
    "add": T.add,
    "sub": T.sub,
    "mul": T.mul,
    "udiv": T.udiv,
    "urem": T.urem,
    "sdiv": T.sdiv,
    "srem": T.srem,
    "and": T.and_,
    "or": T.or_,
    "xor": T.xor,
    "shl": T.shl,
    "lshr": T.lshr,
    "ashr": T.ashr,
    "concat": T.concat,
    "eq": T.eq,
    "ult": T.ult,
    "ule": T.ule,
    "slt": T.slt,
    "sle": T.sle,
    "band": T.band,
    "bor": T.bor,
    "bxor": T.bxor,
}

_UNARY = {
    "not": T.not_,
    "neg": T.neg,
    "bnot": T.bnot,
    "bool2bv": T.bool_to_bv,
}


def _rebuild(node: Term, args: list) -> Term:
    op = node.op
    ctor = _BINARY.get(op)
    if ctor is not None:
        return ctor(args[0], args[1])
    ctor = _UNARY.get(op)
    if ctor is not None:
        return ctor(args[0])
    if op == "ite":
        return T.ite(args[0], args[1], args[2])
    if op == "extract":
        high, low = node.payload
        return T.extract(args[0], high, low)
    if op == "zext":
        return T.zext(args[0], node.payload)
    if op == "sext":
        return T.sext(args[0], node.payload)
    raise ValueError(f"substitute: unknown operation {op!r}")


def substitute(term: Term, bindings: dict) -> Term:
    """Replace variables per ``bindings``, re-simplifying on the way up.

    Rebuilding goes through the smart constructors, so substituting a
    constant folds through the whole affected cone — this is what gives
    the rewriter its cross-assertion constant propagation.  Subtrees
    disjoint from the bindings are returned as-is (interned identity).
    """
    if not bindings or term.free_vars().isdisjoint(bindings):
        return term
    bound = frozenset(bindings)
    memo: dict[Term, Term] = {}
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if node.free_vars().isdisjoint(bound):
            memo[node] = node
            continue
        if not ready:
            stack.append((node, True))
            stack.extend((arg, False) for arg in node.args if arg not in memo)
            continue
        if node.op == "var":
            memo[node] = bindings[node]
        else:
            memo[node] = _rebuild(node, [memo[a] for a in node.args])
    return memo[term]


# ---------------------------------------------------------------------------
# Word-level rewriting (per slice)
# ---------------------------------------------------------------------------


@dataclass
class RewriteOutcome:
    """Result of the rewrite fixpoint over one slice.

    ``conditions`` is the residual conjunction (equivalent to the input
    under ``bindings``); ``bindings`` maps eliminated variables to
    constant terms; ``unsat`` reports a contradiction found purely by
    folding (e.g. ``x == 3`` and ``x == 5`` in one slice).

    Provenance, for UNSAT-core mapping: ``origins[i]`` is the frozenset
    of *input* conjuncts whose conjunction implies ``conditions[i]``
    (the conjunct it was rewritten from plus every binding-producing
    conjunct substituted into it), and ``conflict_origin`` names the
    input subset that already implies falsity when ``unsat`` is set —
    both are sound unsatisfiable-core building blocks on their own.
    """

    conditions: list = field(default_factory=list)
    bindings: dict = field(default_factory=dict)
    unsat: bool = False
    origins: list = field(default_factory=list)
    conflict_origin: "frozenset | None" = None


def _binding_of(cond: Term):
    """``(var, const)`` when the conjunct pins a variable, else None."""
    if cond.is_var and cond.is_bool:
        return cond, T.true()
    if cond.op == "bnot" and cond.args[0].is_var:
        return cond.args[0], T.false()
    if cond.op == "eq":
        a, b = cond.args
        if a.is_var and b.is_const:
            return a, b
    return None


def rewrite_slice(conditions: list) -> RewriteOutcome:
    """Fixpoint equality-substitution / folding pass over one slice.

    Each round harvests ``var == const`` conjuncts (plus pinned boolean
    variables) into bindings and substitutes them into the remaining
    conjuncts; folding may expose new equalities, so the loop runs until
    no new bindings appear.  Termination: every round eliminates at
    least one variable from every remaining conjunct.

    Every intermediate conjunct carries its *origin set* — the input
    conjuncts that entail it — so a later UNSAT core over the residual
    conditions translates back to a subset of the original query (see
    :class:`RewriteOutcome`).
    """
    conds: list[tuple[Term, frozenset]] = [
        (cond, frozenset((cond,))) for cond in conditions
    ]
    bindings: dict = {}
    binding_origin: dict = {}
    while True:
        fresh: dict = {}
        fresh_origin: dict = {}
        rest = []
        for cond, origin in conds:
            pinned = _binding_of(cond)
            if pinned is not None:
                var, value = pinned
                previous = fresh.get(var)
                if previous is not None and previous is not value:
                    # x == c1 and x == c2: both pinning conjuncts'
                    # origins together refute the slice.
                    return RewriteOutcome(
                        unsat=True, conflict_origin=origin | fresh_origin[var]
                    )
                fresh[var] = value
                fresh_origin[var] = origin
            else:
                rest.append((cond, origin))
        if not fresh:
            conds = rest
            break
        bindings.update(fresh)
        binding_origin.update(fresh_origin)
        conds = []
        for cond, origin in rest:
            free = cond.free_vars()
            applied = origin
            for var in fresh:
                if var in free:
                    applied |= fresh_origin[var]
            rewritten = substitute(cond, fresh)
            if rewritten.is_const:
                if not rewritten.payload:
                    return RewriteOutcome(
                        bindings=bindings, unsat=True, conflict_origin=applied
                    )
                continue  # tautology under the bindings
            conds.append((rewritten, applied))
    seen: set = set()
    unique = []
    origins = []
    for cond, origin in conds:
        if cond not in seen:
            seen.add(cond)
            unique.append(cond)
            origins.append(origin)
    return RewriteOutcome(conditions=unique, bindings=bindings, origins=origins)
