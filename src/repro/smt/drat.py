"""Independent DRAT-style proof checking by reverse unit propagation.

:class:`repro.smt.sat.SatSolver` optionally keeps a clause log — every
input clause from ``add_clause``, every learned clause (including unit
learnts and the terminal empty clause), and every clause retired by
database reduction.  This module replays that log and certifies it with
an implementation that deliberately shares *no* code with the solver's
two-watched-literal propagation loop: the checker keeps plain
occurrence lists and a scan queue, so a bug in the solver's watcher
bookkeeping cannot also hide in the check.

Checked properties:

* every logged *addition* is RUP (reverse unit propagation): asserting
  the negation of each of its literals and unit-propagating over the
  clauses alive at that point in the log yields a conflict, i.e. the
  clause is a consequence of what came before;
* every logged *deletion* names a clause that is actually alive;
* an UNSAT answer is certified by a verified empty-clause addition;
* an assumption core is certified by unit-propagating the core
  literals over the fully verified clause database and reaching a
  conflict — exactly the evidence that the core's conjuncts alone
  (under the bit-blasted input clauses) are contradictory, which is
  what :meth:`repro.smt.solver.QueryCache.store_unsat` relies on.

Proof events are ``(tag, lits)`` tuples with ``tag`` one of ``"i"``
(input clause), ``"a"`` (learned addition) or ``"d"`` (deletion);
``lits`` is a tuple of nonzero DIMACS-style integers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ProofError", "ProofChecker", "check_proof", "check_unsat", "check_core"]

#: Event tags understood by the checker.
_INPUT, _ADD, _DELETE = "i", "a", "d"


class ProofError(Exception):
    """A proof event failed to check (or the log itself is malformed)."""


class _Propagator:
    """Unit propagation over an explicit clause list.

    Independent of the solver on purpose: clauses are immutable literal
    tuples, occurrence lists map a literal to every clause containing
    it, and propagation rescans affected clauses from scratch instead
    of maintaining watcher invariants.  Slower, but structurally unable
    to share a bug with :meth:`repro.smt.sat.SatSolver._propagate`.
    """

    def __init__(self) -> None:
        self._clauses: dict[int, tuple[int, ...]] = {}
        self._occurs: dict[int, set[int]] = {}
        self._by_lits: dict[tuple[int, ...], list[int]] = {}
        self._next_id = 0

    # -- clause database ------------------------------------------------

    @staticmethod
    def _canon(lits: Iterable[int]) -> tuple[int, ...]:
        return tuple(sorted(set(lits)))

    def add(self, lits: Iterable[int]) -> None:
        canon = self._canon(lits)
        clause_id = self._next_id
        self._next_id += 1
        self._clauses[clause_id] = canon
        self._by_lits.setdefault(canon, []).append(clause_id)
        for lit in canon:
            self._occurs.setdefault(lit, set()).add(clause_id)

    def delete(self, lits: Iterable[int]) -> None:
        canon = self._canon(lits)
        ids = self._by_lits.get(canon)
        if not ids:
            raise ProofError(f"deletion of a clause that is not alive: {canon}")
        clause_id = ids.pop()
        if not ids:
            del self._by_lits[canon]
        del self._clauses[clause_id]
        for lit in canon:
            self._occurs[lit].discard(clause_id)

    def has_empty_clause(self) -> bool:
        return any(not lits for lits in self._clauses.values())

    def __len__(self) -> int:
        return len(self._clauses)

    # -- propagation ----------------------------------------------------

    def propagates_to_conflict(self, seed_lits: Sequence[int]) -> bool:
        """Assert ``seed_lits`` and unit-propagate; ``True`` on conflict.

        The assignment is local to the call — the clause database is
        never mutated, so checks are freely repeatable.
        """
        assignment: dict[int, bool] = {}
        queue: list[int] = []

        def assert_lit(lit: int) -> bool:
            """Record ``lit`` as true; ``False`` signals a conflict."""
            var = abs(lit)
            want = lit > 0
            if var in assignment:
                return assignment[var] == want
            assignment[var] = want
            queue.append(lit)
            return True

        for lit in seed_lits:
            if not assert_lit(lit):
                return True
        # Initial full scan: database units (and units under the seed
        # assignment) must fire even though no occurrence list points at
        # them yet; an empty clause is an immediate conflict.
        for lits in self._clauses.values():
            unassigned = None
            satisfied = False
            for lit in lits:
                value = assignment.get(abs(lit))
                if value is None:
                    if unassigned is not None:
                        unassigned = 0  # two free literals: not unit
                        break
                    unassigned = lit
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied or unassigned == 0:
                continue
            if unassigned is None:
                return True
            if not assert_lit(unassigned):
                return True
        while queue:
            falsified = -queue.pop()
            for clause_id in list(self._occurs.get(falsified, ())):
                lits = self._clauses.get(clause_id)
                if lits is None:
                    continue
                unassigned = None
                satisfied = False
                for lit in lits:
                    var = abs(lit)
                    value = assignment.get(var)
                    if value is None:
                        if unassigned is not None:
                            unassigned = 0  # two free literals: not unit
                            break
                        unassigned = lit
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied or unassigned == 0:
                    continue
                if unassigned is None:
                    return True  # every literal false: conflict
                if not assert_lit(unassigned):
                    return True
        return False


class ProofChecker:
    """Incrementally verify a solver's proof log.

    Feed events in log order with :meth:`feed`; each addition is
    RUP-checked against the clauses alive at that point, so the
    database the checker ends up with is *independently justified* —
    trusting it requires trusting only the input clauses and this
    module.  :meth:`check_core` and :meth:`check_unsat` then certify
    answers against that justified database.
    """

    def __init__(self) -> None:
        self._prop = _Propagator()
        self._events_checked = 0
        self._empty_verified = False

    @property
    def events_checked(self) -> int:
        return self._events_checked

    def feed(self, events: Sequence[tuple[str, tuple[int, ...]]]) -> None:
        """Verify ``events`` (the full log; already-checked prefix is
        skipped, so callers can re-feed the growing log cheaply)."""
        if len(events) < self._events_checked:
            raise ProofError(
                f"proof log shrank: checked {self._events_checked} events, "
                f"log now has {len(events)}"
            )
        for tag, lits in events[self._events_checked:]:
            if tag == _INPUT:
                self._prop.add(lits)
            elif tag == _ADD:
                # RUP: negating the clause and propagating must conflict.
                if not self._prop.propagates_to_conflict([-lit for lit in lits]):
                    raise ProofError(f"addition is not RUP: {tuple(lits)}")
                if not lits:
                    self._empty_verified = True
                self._prop.add(lits)
            elif tag == _DELETE:
                self._prop.delete(lits)
            else:
                raise ProofError(f"unknown proof event tag {tag!r}")
            self._events_checked += 1

    def check_unsat(self) -> None:
        """Certify an assumption-free UNSAT answer: the verified log
        must contain (or now imply) the empty clause."""
        if self._empty_verified:
            return
        if not self._prop.propagates_to_conflict(()):
            raise ProofError("UNSAT answer has no verified empty-clause derivation")

    def check_core(self, core_lits: Sequence[int]) -> None:
        """Certify an assumption core: the core literals alone must
        propagate to a conflict over the verified clause database."""
        if not self._prop.propagates_to_conflict(core_lits):
            raise ProofError(
                f"core does not propagate to a conflict: {tuple(core_lits)}"
            )


def check_proof(events: Sequence[tuple[str, tuple[int, ...]]]) -> ProofChecker:
    """Verify a complete log and return the checker (for core checks)."""
    checker = ProofChecker()
    checker.feed(events)
    return checker


def check_unsat(events: Sequence[tuple[str, tuple[int, ...]]]) -> None:
    """Verify ``events`` and certify an assumption-free UNSAT answer."""
    check_proof(events).check_unsat()


def check_core(
    events: Sequence[tuple[str, tuple[int, ...]]], core_lits: Sequence[int]
) -> None:
    """Verify ``events`` and certify the assumption core ``core_lits``."""
    check_proof(events).check_core(core_lits)
