"""Tseitin gate construction over a CDCL SAT solver.

The :class:`GateBuilder` provides AND/OR/XOR/MUX gates and adders with
constant propagation and structural hashing: repeated gate requests with
the same inputs return the same output literal instead of duplicating
clauses.  The bit-blaster (:mod:`repro.smt.bitblast`) is written entirely
in terms of these gates.

Literals follow the convention of :class:`repro.smt.sat.SatSolver`
(signed non-zero ints).  Boolean constants are represented by a dedicated
always-true variable so the gate code never needs special clause shapes.
"""

from __future__ import annotations

from .sat import SatSolver

__all__ = ["GateBuilder"]


class GateBuilder:
    """Structural-hashing Tseitin encoder on top of a SAT solver."""

    def __init__(self, sat: SatSolver) -> None:
        self.sat = sat
        self.true_lit = sat.new_var()
        sat.add_clause([self.true_lit])
        self._and_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        self._mux_cache: dict[tuple[int, int, int], int] = {}

    @property
    def false_lit(self) -> int:
        return -self.true_lit

    def const(self, value: bool) -> int:
        """Literal for a boolean constant."""
        return self.true_lit if value else -self.true_lit

    def is_const(self, lit: int) -> bool:
        return abs(lit) == abs(self.true_lit)

    def const_value(self, lit: int) -> bool:
        """Value of a constant literal (only valid if :meth:`is_const`)."""
        return lit == self.true_lit

    # ------------------------------------------------------------------
    # Basic gates
    # ------------------------------------------------------------------

    def and2(self, a: int, b: int) -> int:
        if a == self.false_lit or b == self.false_lit:
            return self.false_lit
        if a == self.true_lit:
            return b
        if b == self.true_lit:
            return a
        if a == b:
            return a
        if a == -b:
            return self.false_lit
        key = (a, b) if a < b else (b, a)
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        g = self.sat.new_var()
        self.sat.add_clause([-g, a])
        self.sat.add_clause([-g, b])
        self.sat.add_clause([g, -a, -b])
        self._and_cache[key] = g
        return g

    def or2(self, a: int, b: int) -> int:
        return -self.and2(-a, -b)

    def xor2(self, a: int, b: int) -> int:
        if self.is_const(a):
            return b if a == self.false_lit else -b
        if self.is_const(b):
            return a if b == self.false_lit else -a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        # Normalize polarity: xor(-a, b) == -xor(a, b).
        flip = False
        if a < 0:
            a, flip = -a, not flip
        if b < 0:
            b, flip = -b, not flip
        key = (a, b) if a < b else (b, a)
        cached = self._xor_cache.get(key)
        if cached is None:
            g = self.sat.new_var()
            self.sat.add_clause([-g, a, b])
            self.sat.add_clause([-g, -a, -b])
            self.sat.add_clause([g, -a, b])
            self.sat.add_clause([g, a, -b])
            self._xor_cache[key] = g
            cached = g
        return -cached if flip else cached

    def iff(self, a: int, b: int) -> int:
        return -self.xor2(a, b)

    def mux(self, cond: int, then_lit: int, else_lit: int) -> int:
        """If-then-else gate: ``cond ? then_lit : else_lit``."""
        if cond == self.true_lit:
            return then_lit
        if cond == self.false_lit:
            return else_lit
        if then_lit == else_lit:
            return then_lit
        if then_lit == -else_lit:
            return self.xor2(cond, else_lit)
        if then_lit == self.true_lit:
            return self.or2(cond, else_lit)
        if then_lit == self.false_lit:
            return self.and2(-cond, else_lit)
        if else_lit == self.true_lit:
            return self.or2(-cond, then_lit)
        if else_lit == self.false_lit:
            return self.and2(cond, then_lit)
        key = (cond, then_lit, else_lit)
        cached = self._mux_cache.get(key)
        if cached is not None:
            return cached
        g = self.sat.new_var()
        self.sat.add_clause([-cond, -then_lit, g])
        self.sat.add_clause([-cond, then_lit, -g])
        self.sat.add_clause([cond, -else_lit, g])
        self.sat.add_clause([cond, else_lit, -g])
        # Redundant clauses improving unit propagation strength.
        self.sat.add_clause([-then_lit, -else_lit, g])
        self.sat.add_clause([then_lit, else_lit, -g])
        self._mux_cache[key] = g
        return g

    # ------------------------------------------------------------------
    # Arithmetic helper gates
    # ------------------------------------------------------------------

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Return (sum, carry-out) of a single-bit full adder."""
        axb = self.xor2(a, b)
        total = self.xor2(axb, cin)
        carry = self.or2(self.and2(a, b), self.and2(axb, cin))
        return total, carry

    def big_and(self, lits: list[int]) -> int:
        result = self.true_lit
        for lit in lits:
            result = self.and2(result, lit)
        return result

    def big_or(self, lits: list[int]) -> int:
        result = self.false_lit
        for lit in lits:
            result = self.or2(result, lit)
        return result
