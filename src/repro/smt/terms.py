"""Hash-consed term language for the QF_BV fragment of SMT-LIB.

This module replaces the role Z3 plays in the original BinSym: it provides
an immutable, structurally shared term representation for bitvector and
boolean expressions together with *smart constructors* that perform
constant folding and light algebraic simplification at construction time.

Terms are interned: structurally identical terms are the same Python
object, so equality and hashing are identity-based and O(1).  This is the
property that keeps the concolic interpreter's shadow expressions compact
when program paths revisit the same computations.

The module exposes a functional construction API (``add``, ``xor``,
``ite``, ...).  Higher layers (e.g. :mod:`repro.core.symvalue`) wrap it in
more ergonomic operator overloading.
"""

from __future__ import annotations

from typing import Iterable, Optional

from . import bvops

__all__ = [
    "Term",
    "SortError",
    "reset_interner",
    "interner_size",
    "set_simplification",
    "simplification_enabled",
    # constants / variables
    "bv",
    "bv_var",
    "true",
    "false",
    "bool_var",
    "bool_const",
    # bitvector operations
    "add",
    "sub",
    "mul",
    "udiv",
    "urem",
    "sdiv",
    "srem",
    "and_",
    "or_",
    "xor",
    "not_",
    "neg",
    "shl",
    "lshr",
    "ashr",
    "concat",
    "extract",
    "zext",
    "sext",
    "ite",
    # predicates
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "sgt",
    "sge",
    # boolean connectives
    "bnot",
    "band",
    "bor",
    "bxor",
    "implies",
    "conjoin",
    "disjoin",
    # canonical serialization
    "serialize_terms",
    "deserialize_terms",
]

# Sort marker used in Term.width for boolean-sorted terms.
BOOL = 0


class SortError(TypeError):
    """Raised when term constructors are applied at incompatible sorts."""


class Term:
    """A node of an interned BV/Bool expression DAG.

    Attributes:
        op: operation name (e.g. ``"add"``, ``"const"``, ``"ult"``).
        width: bit width of the term; ``0`` denotes the boolean sort.
        payload: operation-specific data (int for ``const``, str name for
            ``var``, ``(high, low)`` for ``extract``, extension amount for
            ``zext``/``sext``); ``None`` otherwise.
        args: child terms.
    """

    __slots__ = ("op", "width", "payload", "args", "_free_vars")

    def __init__(self, op: str, width: int, payload, args: tuple):
        self.op = op
        self.width = width
        self.payload = payload
        self.args = args
        self._free_vars: Optional[frozenset] = None

    # Identity-based equality/hash: interning guarantees structural
    # equality implies identity.

    @property
    def is_bool(self) -> bool:
        """Whether this term has boolean sort."""
        return self.width == BOOL

    @property
    def is_const(self) -> bool:
        """Whether this term is a (bitvector or boolean) literal."""
        return self.op == "const"

    @property
    def is_var(self) -> bool:
        """Whether this term is an uninterpreted variable."""
        return self.op == "var"

    def const_value(self) -> int:
        """Return the integer payload of a constant term."""
        if self.op != "const":
            raise ValueError(f"not a constant term: {self!r}")
        return self.payload

    def name(self) -> str:
        """Return the name of a variable term."""
        if self.op != "var":
            raise ValueError(f"not a variable term: {self!r}")
        return self.payload

    def free_vars(self) -> "frozenset[Term]":
        """Free variables of this DAG, computed once and cached per node.

        The query-preprocessing layer (independence slicing, interval
        refinement) calls this on every path-condition conjunct of every
        query, so the result is memoized on the interned term itself and
        shared through the DAG: each node's set is the union of its
        children's cached sets.
        """
        cached = self._free_vars
        if cached is not None:
            return cached
        stack: list[tuple[Term, bool]] = [(self, False)]
        while stack:
            node, ready = stack.pop()
            if node._free_vars is not None:
                continue
            if not ready:
                stack.append((node, True))
                stack.extend(
                    (arg, False) for arg in node.args if arg._free_vars is None
                )
                continue
            if node.op == "var":
                node._free_vars = frozenset((node,))
            elif not node.args:
                node._free_vars = frozenset()
            else:
                node._free_vars = frozenset().union(
                    *(arg._free_vars for arg in node.args)
                )
        return self._free_vars

    def variables(self) -> "set[Term]":
        """Return the set of variable terms occurring in this DAG."""
        return set(self.free_vars())

    def size(self) -> int:
        """Number of distinct DAG nodes reachable from this term."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.args)
        return len(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "const":
            if self.is_bool:
                return "true" if self.payload else "false"
            return f"#x{self.payload:0{max(1, (self.width + 3) // 4)}x}[{self.width}]"
        if self.op == "var":
            return f"{self.payload}[{self.width or 'bool'}]"
        inner = " ".join(repr(a) for a in self.args)
        extra = f" {self.payload}" if self.payload is not None else ""
        return f"({self.op}{extra} {inner})"


_INTERN: dict = {}

#: When False, the smart constructors skip *algebraic* rewrites (the
#: identity/absorption rules) while keeping constant folding and sort
#: checks.  Exists for the simplification ablation benchmark
#: (``benchmarks/bench_ablation_simplify.py``); leave True otherwise.
_SIMPLIFY = True


def set_simplification(enabled: bool) -> bool:
    """Toggle algebraic simplification; returns the previous setting."""
    global _SIMPLIFY
    previous = _SIMPLIFY
    _SIMPLIFY = enabled
    return previous


def simplification_enabled() -> bool:
    return _SIMPLIFY


def _mk(op: str, width: int, payload, args: tuple) -> Term:
    key = (op, width, payload, args)
    term = _INTERN.get(key)
    if term is None:
        term = Term(op, width, payload, args)
        _INTERN[key] = term
    return term


def reset_interner() -> None:
    """Drop all interned terms (used by tests and benchmarks)."""
    _INTERN.clear()
    global _TRUE, _FALSE
    _TRUE = _mk("const", BOOL, 1, ())
    _FALSE = _mk("const", BOOL, 0, ())


def interner_size() -> int:
    """Number of live interned terms."""
    return len(_INTERN)


# ---------------------------------------------------------------------------
# Constants and variables
# ---------------------------------------------------------------------------


def bv(value: int, width: int) -> Term:
    """Construct a ``width``-bit constant (value is truncated)."""
    if width <= 0:
        raise SortError(f"bitvector width must be positive, got {width}")
    return _mk("const", width, bvops.truncate(value, width), ())


def bv_var(name: str, width: int) -> Term:
    """Construct a ``width``-bit variable."""
    if width <= 0:
        raise SortError(f"bitvector width must be positive, got {width}")
    return _mk("var", width, name, ())


_TRUE = _mk("const", BOOL, 1, ())
_FALSE = _mk("const", BOOL, 0, ())


def true() -> Term:
    return _TRUE


def false() -> Term:
    return _FALSE


def bool_const(value: bool) -> Term:
    return _TRUE if value else _FALSE


def bool_var(name: str) -> Term:
    return _mk("var", BOOL, name, ())


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------


def _require_bv(term: Term, who: str) -> None:
    if term.is_bool:
        raise SortError(f"{who} expects bitvector operands")


def _require_same_width(a: Term, b: Term, who: str) -> None:
    _require_bv(a, who)
    _require_bv(b, who)
    if a.width != b.width:
        raise SortError(f"{who}: width mismatch {a.width} vs {b.width}")


def _require_bool(term: Term, who: str) -> None:
    if not term.is_bool:
        raise SortError(f"{who} expects boolean operands")


def _commute_const_right(a: Term, b: Term) -> tuple[Term, Term]:
    """Canonicalize commutative operands: constants on the right."""
    if a.is_const and not b.is_const:
        return b, a
    return a, b


def _all_ones(width: int) -> int:
    return (1 << width) - 1


# ---------------------------------------------------------------------------
# Bitvector arithmetic
# ---------------------------------------------------------------------------


def add(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "add")
    a, b = _commute_const_right(a, b)
    if a.is_const and b.is_const:
        return bv(bvops.bv_add(a.payload, b.payload, a.width), a.width)
    if _SIMPLIFY:
        if b.is_const and b.payload == 0:
            return a
        # Re-associate (x + c1) + c2 -> x + (c1 + c2) to keep address
        # arithmetic chains flat (common in memory index computations).
        if b.is_const and a.op == "add" and a.args[1].is_const:
            folded = bvops.bv_add(a.args[1].payload, b.payload, a.width)
            return add(a.args[0], bv(folded, a.width))
    return _mk("add", a.width, None, (a, b))


def sub(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "sub")
    if a.is_const and b.is_const:
        return bv(bvops.bv_sub(a.payload, b.payload, a.width), a.width)
    if b.is_const and b.payload == 0:
        return a
    if a is b:
        return bv(0, a.width)
    return _mk("sub", a.width, None, (a, b))


def mul(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "mul")
    a, b = _commute_const_right(a, b)
    if a.is_const and b.is_const:
        return bv(bvops.bv_mul(a.payload, b.payload, a.width), a.width)
    if b.is_const:
        if b.payload == 0:
            return bv(0, a.width)
        if b.payload == 1:
            return a
    return _mk("mul", a.width, None, (a, b))


def udiv(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "udiv")
    if a.is_const and b.is_const:
        return bv(bvops.bv_udiv(a.payload, b.payload, a.width), a.width)
    if b.is_const and b.payload == 1:
        return a
    return _mk("udiv", a.width, None, (a, b))


def urem(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "urem")
    if a.is_const and b.is_const:
        return bv(bvops.bv_urem(a.payload, b.payload, a.width), a.width)
    if b.is_const and b.payload == 1:
        return bv(0, a.width)
    return _mk("urem", a.width, None, (a, b))


def sdiv(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "sdiv")
    if a.is_const and b.is_const:
        return bv(bvops.bv_sdiv(a.payload, b.payload, a.width), a.width)
    if b.is_const and b.payload == 1:
        return a
    return _mk("sdiv", a.width, None, (a, b))


def srem(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "srem")
    if a.is_const and b.is_const:
        return bv(bvops.bv_srem(a.payload, b.payload, a.width), a.width)
    return _mk("srem", a.width, None, (a, b))


# ---------------------------------------------------------------------------
# Bitvector logic
# ---------------------------------------------------------------------------


def and_(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "and")
    a, b = _commute_const_right(a, b)
    if a.is_const and b.is_const:
        return bv(a.payload & b.payload, a.width)
    if _SIMPLIFY:
        if b.is_const:
            if b.payload == 0:
                return bv(0, a.width)
            if b.payload == _all_ones(a.width):
                return a
        if a is b:
            return a
    return _mk("and", a.width, None, (a, b))


def or_(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "or")
    a, b = _commute_const_right(a, b)
    if a.is_const and b.is_const:
        return bv(a.payload | b.payload, a.width)
    if _SIMPLIFY:
        if b.is_const:
            if b.payload == 0:
                return a
            if b.payload == _all_ones(a.width):
                return bv(_all_ones(a.width), a.width)
        if a is b:
            return a
    return _mk("or", a.width, None, (a, b))


def xor(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "xor")
    a, b = _commute_const_right(a, b)
    if a.is_const and b.is_const:
        return bv(a.payload ^ b.payload, a.width)
    if _SIMPLIFY:
        if b.is_const:
            if b.payload == 0:
                return a
            if b.payload == _all_ones(a.width):
                return not_(a)
        if a is b:
            return bv(0, a.width)
    return _mk("xor", a.width, None, (a, b))


def not_(a: Term) -> Term:
    _require_bv(a, "not")
    if a.is_const:
        return bv(bvops.bv_not(a.payload, a.width), a.width)
    if a.op == "not":
        return a.args[0]
    return _mk("not", a.width, None, (a,))


def neg(a: Term) -> Term:
    _require_bv(a, "neg")
    if a.is_const:
        return bv(bvops.bv_neg(a.payload, a.width), a.width)
    if a.op == "neg":
        return a.args[0]
    return _mk("neg", a.width, None, (a,))


def shl(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "shl")
    if b.is_const:
        if a.is_const:
            return bv(bvops.bv_shl(a.payload, b.payload, a.width), a.width)
        if b.payload == 0:
            return a
        if b.payload >= a.width:
            return bv(0, a.width)
    return _mk("shl", a.width, None, (a, b))


def lshr(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "lshr")
    if b.is_const:
        if a.is_const:
            return bv(bvops.bv_lshr(a.payload, b.payload, a.width), a.width)
        if b.payload == 0:
            return a
        if b.payload >= a.width:
            return bv(0, a.width)
    return _mk("lshr", a.width, None, (a, b))


def ashr(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "ashr")
    if b.is_const:
        if a.is_const:
            return bv(bvops.bv_ashr(a.payload, b.payload, a.width), a.width)
        if b.payload == 0:
            return a
    return _mk("ashr", a.width, None, (a, b))


# ---------------------------------------------------------------------------
# Width manipulation
# ---------------------------------------------------------------------------


def concat(hi: Term, lo: Term) -> Term:
    _require_bv(hi, "concat")
    _require_bv(lo, "concat")
    if hi.is_const and lo.is_const:
        return bv(bvops.bv_concat(hi.payload, lo.payload, lo.width), hi.width + lo.width)
    return _mk("concat", hi.width + lo.width, None, (hi, lo))


def extract(a: Term, high: int, low: int) -> Term:
    _require_bv(a, "extract")
    if not (0 <= low <= high < a.width):
        raise SortError(f"extract [{high}:{low}] out of range for width {a.width}")
    if low == 0 and high == a.width - 1:
        return a
    if a.is_const:
        return bv(bvops.bv_extract(a.payload, high, low), high - low + 1)
    if _SIMPLIFY:
        if a.op == "extract":
            # extract of extract composes: offsets add up.
            inner_low = a.payload[1]
            return extract(a.args[0], inner_low + high, inner_low + low)
        if a.op == "concat":
            hi_part, lo_part = a.args
            if high < lo_part.width:
                return extract(lo_part, high, low)
            if low >= lo_part.width:
                return extract(hi_part, high - lo_part.width, low - lo_part.width)
        if a.op in ("zext", "sext"):
            base = a.args[0]
            if high < base.width:
                return extract(base, high, low)
            if a.op == "zext" and low >= base.width:
                return bv(0, high - low + 1)
    return _mk("extract", high - low + 1, (high, low), (a,))


def zext(a: Term, extra: int) -> Term:
    _require_bv(a, "zext")
    if extra < 0:
        raise SortError("zext amount must be non-negative")
    if extra == 0:
        return a
    if a.is_const:
        return bv(a.payload, a.width + extra)
    if a.op == "zext":
        return zext(a.args[0], extra + a.payload)
    return _mk("zext", a.width + extra, extra, (a,))


def sext(a: Term, extra: int) -> Term:
    _require_bv(a, "sext")
    if extra < 0:
        raise SortError("sext amount must be non-negative")
    if extra == 0:
        return a
    if a.is_const:
        return bv(bvops.bv_sext(a.payload, a.width, extra), a.width + extra)
    if a.op == "sext":
        return sext(a.args[0], extra + a.payload)
    return _mk("sext", a.width + extra, extra, (a,))


def ite(cond: Term, then_term: Term, else_term: Term) -> Term:
    """If-then-else over bitvector or boolean branches."""
    _require_bool(cond, "ite")
    if then_term.width != else_term.width:
        raise SortError(
            f"ite branches disagree: {then_term.width} vs {else_term.width}"
        )
    if cond.is_const:
        return then_term if cond.payload else else_term
    if then_term is else_term:
        return then_term
    if then_term.is_bool:
        # Boolean ite: encode through connectives so downstream only sees
        # and/or/not at boolean sort.
        return bor(band(cond, then_term), band(bnot(cond), else_term))
    if then_term.is_const and else_term.is_const and then_term.width == 1:
        if then_term.payload == 1 and else_term.payload == 0:
            return bool_to_bv(cond)
        if then_term.payload == 0 and else_term.payload == 1:
            return bool_to_bv(bnot(cond))
    return _mk("ite", then_term.width, None, (cond, then_term, else_term))


def bool_to_bv(cond: Term) -> Term:
    """Convert a boolean to a 1-bit bitvector (1 for true)."""
    _require_bool(cond, "bool_to_bv")
    if cond.is_const:
        return bv(cond.payload, 1)
    return _mk("bool2bv", 1, None, (cond,))


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


def eq(a: Term, b: Term) -> Term:
    if a.is_bool != b.is_bool:
        raise SortError("eq: sort mismatch")
    if a.is_bool:
        return bnot(bxor(a, b))
    _require_same_width(a, b, "eq")
    a, b = _commute_const_right(a, b)
    if a.is_const and b.is_const:
        return bool_const(a.payload == b.payload)
    if _SIMPLIFY and a is b:
        return true()
    return _mk("eq", BOOL, None, (a, b))


def ne(a: Term, b: Term) -> Term:
    return bnot(eq(a, b))


def ult(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "ult")
    if a.is_const and b.is_const:
        return bool_const(a.payload < b.payload)
    if _SIMPLIFY:
        if a is b:
            return false()
        if b.is_const and b.payload == 0:
            return false()
        if a.is_const and a.payload == 0:
            return ne(b, bv(0, b.width))
    return _mk("ult", BOOL, None, (a, b))


def ule(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "ule")
    if a is b:
        return true()
    if a.is_const and b.is_const:
        return bool_const(a.payload <= b.payload)
    if a.is_const and a.payload == 0:
        return true()
    if b.is_const and b.payload == _all_ones(b.width):
        return true()
    return _mk("ule", BOOL, None, (a, b))


def ugt(a: Term, b: Term) -> Term:
    return ult(b, a)


def uge(a: Term, b: Term) -> Term:
    return ule(b, a)


def slt(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "slt")
    if a is b:
        return false()
    if a.is_const and b.is_const:
        return bool_const(
            bvops.to_signed(a.payload, a.width) < bvops.to_signed(b.payload, b.width)
        )
    return _mk("slt", BOOL, None, (a, b))


def sle(a: Term, b: Term) -> Term:
    _require_same_width(a, b, "sle")
    if a is b:
        return true()
    if a.is_const and b.is_const:
        return bool_const(
            bvops.to_signed(a.payload, a.width) <= bvops.to_signed(b.payload, b.width)
        )
    return _mk("sle", BOOL, None, (a, b))


def sgt(a: Term, b: Term) -> Term:
    return slt(b, a)


def sge(a: Term, b: Term) -> Term:
    return sle(b, a)


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def bnot(a: Term) -> Term:
    _require_bool(a, "bnot")
    if a.is_const:
        return bool_const(not a.payload)
    if a.op == "bnot":
        return a.args[0]
    return _mk("bnot", BOOL, None, (a,))


def band(a: Term, b: Term) -> Term:
    _require_bool(a, "band")
    _require_bool(b, "band")
    a, b = _commute_const_right(a, b)
    if b.is_const:
        return a if b.payload else false()
    if a.is_const:
        return b if a.payload else false()
    if a is b:
        return a
    if bnot(a) is b:
        return false()
    return _mk("band", BOOL, None, (a, b))


def bor(a: Term, b: Term) -> Term:
    _require_bool(a, "bor")
    _require_bool(b, "bor")
    a, b = _commute_const_right(a, b)
    if b.is_const:
        return true() if b.payload else a
    if a.is_const:
        return true() if a.payload else b
    if a is b:
        return a
    if bnot(a) is b:
        return true()
    return _mk("bor", BOOL, None, (a, b))


def bxor(a: Term, b: Term) -> Term:
    _require_bool(a, "bxor")
    _require_bool(b, "bxor")
    a, b = _commute_const_right(a, b)
    if a.is_const and b.is_const:
        return bool_const(bool(a.payload) != bool(b.payload))
    if b.is_const:
        return bnot(a) if b.payload else a
    if a is b:
        return false()
    return _mk("bxor", BOOL, None, (a, b))


def implies(a: Term, b: Term) -> Term:
    return bor(bnot(a), b)


def conjoin(terms: Iterable[Term]) -> Term:
    """N-ary conjunction."""
    result = true()
    for term in terms:
        result = band(result, term)
    return result


def disjoin(terms: Iterable[Term]) -> Term:
    """N-ary disjunction."""
    result = false()
    for term in terms:
        result = bor(result, term)
    return result


# ---------------------------------------------------------------------------
# Canonical serialization
# ---------------------------------------------------------------------------
#
# Interned terms cannot be pickled across process or run boundaries
# (identity hashing would no longer match the receiving interner), so
# artifacts that must outlive a process — the persistent store's UNSAT
# cores — travel as a flat, JSON-able node table instead and are
# re-interned on arrival.  The encoding is the raw structural identity
# (op, width, payload, children): re-interning goes through ``_mk``
# directly, not the smart constructors, so a round trip reproduces the
# exact DAG bit for bit (stored terms were already built through the
# smart constructors; simplification is a fixed point on them).


def serialize_terms(roots: Iterable[Term]) -> dict:
    """Encode a collection of term DAGs as a shared JSON-able table.

    Returns ``{"nodes": [[op, width, payload, [child indices]], ...],
    "roots": [indices]}`` with nodes in child-before-parent order and
    tuple payloads (``extract``) encoded as lists.  Shared subterms are
    emitted once.
    """
    index: dict[Term, int] = {}
    nodes: list = []
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, ready = stack.pop()
            if node in index:
                continue
            if not ready:
                stack.append((node, True))
                for arg in node.args:
                    if arg not in index:
                        stack.append((arg, False))
                continue
            payload = node.payload
            if isinstance(payload, tuple):
                payload = list(payload)
            nodes.append(
                [node.op, node.width, payload, [index[arg] for arg in node.args]]
            )
            index[node] = len(nodes) - 1
    return {"nodes": nodes, "roots": [index[root] for root in roots]}


def deserialize_terms(payload) -> list:
    """Re-intern a :func:`serialize_terms` table; the exact inverse.

    Defensive by design — the persistent store feeds this bytes read
    from disk, so *any* malformed shape (wrong types, forward or
    out-of-range child references, non-canonical payloads) raises
    ``ValueError`` rather than building a corrupt term.
    """
    if not isinstance(payload, dict):
        raise ValueError("term table: not a mapping")
    nodes = payload.get("nodes")
    roots = payload.get("roots")
    if not isinstance(nodes, list) or not isinstance(roots, list):
        raise ValueError("term table: missing nodes/roots lists")
    built: list[Term] = []
    for position, entry in enumerate(nodes):
        if not (isinstance(entry, list) and len(entry) == 4):
            raise ValueError(f"term table: malformed node {position}")
        op, width, raw, arg_ids = entry
        if not isinstance(op, str) or not isinstance(width, int):
            raise ValueError(f"term table: bad op/width at node {position}")
        if isinstance(raw, list):
            if not all(isinstance(part, int) for part in raw):
                raise ValueError(f"term table: bad tuple payload at node {position}")
            raw = tuple(raw)
        elif not (raw is None or isinstance(raw, (int, str))):
            raise ValueError(f"term table: bad payload at node {position}")
        if not isinstance(arg_ids, list):
            raise ValueError(f"term table: bad child list at node {position}")
        args = []
        for arg_id in arg_ids:
            # Child-before-parent order makes forward references (and
            # therefore cycles) unrepresentable; reject them explicitly.
            if not isinstance(arg_id, int) or not 0 <= arg_id < position:
                raise ValueError(f"term table: bad child reference at node {position}")
            args.append(built[arg_id])
        built.append(_mk(op, width, raw, tuple(args)))
    terms = []
    for root in roots:
        if not isinstance(root, int) or not 0 <= root < len(built):
            raise ValueError("term table: bad root reference")
        terms.append(built[root])
    return terms
