"""Pure-integer reference semantics for SMT-LIB QF_BV operations.

Every function operates on Python ints interpreted as unsigned bitvectors
of an explicit width and returns the unsigned result truncated to that
width.  These functions are the single source of truth for bitvector
behaviour in the repository: the term constructors use them for constant
folding, :mod:`repro.smt.evalbv` uses them for model evaluation, and the
test-suite uses them as the oracle for the bit-blaster.

Division and remainder follow the SMT-LIB definitions (``bvudiv x 0`` is
all-ones, ``bvurem x 0`` is ``x``, signed variants are derived from the
unsigned ones by sign manipulation).  RISC-V's M-extension edge cases are
*not* baked in here; the formal ISA specification expresses them with
explicit if-then-else, exactly like the paper's ``DIVU`` example.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "truncate",
    "to_signed",
    "from_signed",
    "bv_add",
    "bv_sub",
    "bv_mul",
    "bv_udiv",
    "bv_urem",
    "bv_sdiv",
    "bv_srem",
    "bv_and",
    "bv_or",
    "bv_xor",
    "bv_not",
    "bv_neg",
    "bv_shl",
    "bv_lshr",
    "bv_ashr",
    "bv_concat",
    "bv_extract",
    "bv_zext",
    "bv_sext",
    "bv_ult",
    "bv_ule",
    "bv_slt",
    "bv_sle",
]


def mask(width: int) -> int:
    """Return the all-ones bitvector of ``width`` bits as an int."""
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to an unsigned ``width``-bit integer."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Reinterpret an unsigned ``width``-bit value as two's complement."""
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) int as an unsigned ``width``-bit value."""
    return value & ((1 << width) - 1)


def bv_add(a: int, b: int, width: int) -> int:
    return (a + b) & ((1 << width) - 1)


def bv_sub(a: int, b: int, width: int) -> int:
    return (a - b) & ((1 << width) - 1)


def bv_mul(a: int, b: int, width: int) -> int:
    return (a * b) & ((1 << width) - 1)


def bv_udiv(a: int, b: int, width: int) -> int:
    """Unsigned division; division by zero yields all-ones (SMT-LIB)."""
    if b == 0:
        return mask(width)
    return a // b


def bv_urem(a: int, b: int, width: int) -> int:
    """Unsigned remainder; remainder by zero yields the dividend (SMT-LIB)."""
    if b == 0:
        return a
    return a % b


def bv_sdiv(a: int, b: int, width: int) -> int:
    """Signed division truncating towards zero, SMT-LIB edge cases."""
    sa = to_signed(a, width)
    sb = to_signed(b, width)
    if sb == 0:
        # bvsdiv x 0 == ite(x >=s 0, all-ones, 1) per SMT-LIB derivation.
        return mask(width) if sa >= 0 else 1
    # Python // floors; SMT-LIB truncates towards zero.
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return from_signed(quotient, width)


def bv_srem(a: int, b: int, width: int) -> int:
    """Signed remainder (sign follows dividend), SMT-LIB edge cases."""
    sa = to_signed(a, width)
    sb = to_signed(b, width)
    if sb == 0:
        return a
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return from_signed(remainder, width)


def bv_and(a: int, b: int, width: int) -> int:
    return a & b


def bv_or(a: int, b: int, width: int) -> int:
    return a | b


def bv_xor(a: int, b: int, width: int) -> int:
    return a ^ b


def bv_not(a: int, width: int) -> int:
    return a ^ ((1 << width) - 1)


def bv_neg(a: int, width: int) -> int:
    return (-a) & ((1 << width) - 1)


def bv_shl(a: int, b: int, width: int) -> int:
    """Logical left shift; shifting by >= width yields zero (SMT-LIB)."""
    if b >= width:
        return 0
    return (a << b) & ((1 << width) - 1)


def bv_lshr(a: int, b: int, width: int) -> int:
    """Logical right shift; shifting by >= width yields zero (SMT-LIB)."""
    if b >= width:
        return 0
    return a >> b


def bv_ashr(a: int, b: int, width: int) -> int:
    """Arithmetic right shift; saturates to the sign fill for b >= width."""
    sa = to_signed(a, width)
    if b >= width:
        return mask(width) if sa < 0 else 0
    return from_signed(sa >> b, width)


def bv_concat(hi: int, lo: int, lo_width: int) -> int:
    return (hi << lo_width) | lo


def bv_extract(a: int, high: int, low: int) -> int:
    return (a >> low) & ((1 << (high - low + 1)) - 1)


def bv_zext(a: int, width: int, extra: int) -> int:
    return a


def bv_sext(a: int, width: int, extra: int) -> int:
    return from_signed(to_signed(a, width), width + extra)


def bv_ult(a: int, b: int, width: int) -> bool:
    return a < b


def bv_ule(a: int, b: int, width: int) -> bool:
    return a <= b


def bv_slt(a: int, b: int, width: int) -> bool:
    return to_signed(a, width) < to_signed(b, width)


def bv_sle(a: int, b: int, width: int) -> bool:
    return to_signed(a, width) <= to_signed(b, width)
