"""SMT-LIB v2 parser for the subset the printer emits.

Closes the loop with :mod:`repro.smt.smtlib`: ``parse_script`` consumes
``(set-logic ...)`` / ``(declare-const ...)`` / ``(assert ...)`` /
``(check-sat)`` scripts — including ``let`` bindings and the indexed
operators ``extract``/``zero_extend``/``sign_extend`` — and rebuilds the
interned term DAG.  Round-tripping is property-tested: for any term
``t``, ``parse(print(t)) is t`` (term interning makes structural
equality an identity check).

Useful on its own for replaying solver queries captured from other
tools or from the examples.
"""

from __future__ import annotations

from typing import Optional, Union

from . import terms as T
from .terms import Term

__all__ = ["parse_script", "parse_term", "SmtLibParseError", "ParsedScript"]


class SmtLibParseError(ValueError):
    """Raised on malformed or unsupported SMT-LIB input."""


# ---------------------------------------------------------------------------
# S-expression reader
# ---------------------------------------------------------------------------

SExpr = Union[str, list]


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char in " \t\r\n":
            i += 1
        elif char == ";":
            while i < length and text[i] != "\n":
                i += 1
        elif char in "()":
            tokens.append(char)
            i += 1
        elif char == "|":
            end = text.find("|", i + 1)
            if end < 0:
                raise SmtLibParseError("unterminated |quoted| symbol")
            tokens.append(text[i : end + 1])
            i = end + 1
        else:
            start = i
            while i < length and text[i] not in " \t\r\n();":
                i += 1
            tokens.append(text[start:i])
    return tokens


def _read_sexprs(tokens: list[str]) -> list[SExpr]:
    out: list[SExpr] = []
    stack: list[list] = []
    for token in tokens:
        if token == "(":
            stack.append([])
        elif token == ")":
            if not stack:
                raise SmtLibParseError("unbalanced ')'")
            done = stack.pop()
            if stack:
                stack[-1].append(done)
            else:
                out.append(done)
        else:
            if stack:
                stack[-1].append(token)
            else:
                out.append(token)
    if stack:
        raise SmtLibParseError("unbalanced '('")
    return out


# ---------------------------------------------------------------------------
# Term building
# ---------------------------------------------------------------------------

_BINARY = {
    "bvadd": T.add,
    "bvsub": T.sub,
    "bvmul": T.mul,
    "bvudiv": T.udiv,
    "bvurem": T.urem,
    "bvsdiv": T.sdiv,
    "bvsrem": T.srem,
    "bvand": T.and_,
    "bvor": T.or_,
    "bvxor": T.xor,
    "bvshl": T.shl,
    "bvlshr": T.lshr,
    "bvashr": T.ashr,
    "concat": T.concat,
    "bvult": T.ult,
    "bvule": T.ule,
    "bvugt": T.ugt,
    "bvuge": T.uge,
    "bvslt": T.slt,
    "bvsle": T.sle,
    "bvsgt": T.sgt,
    "bvsge": T.sge,
}

_UNARY = {
    "bvnot": T.not_,
    "bvneg": T.neg,
    "not": T.bnot,
}

_BOOL_NARY = {"and": T.band, "or": T.bor, "xor": T.bxor}


def _unquote(symbol: str) -> str:
    if symbol.startswith("|") and symbol.endswith("|"):
        return symbol[1:-1]
    return symbol


def _atom_to_term(token: str, env: dict[str, Term]) -> Term:
    if token == "true":
        return T.true()
    if token == "false":
        return T.false()
    if token.startswith("#x"):
        return T.bv(int(token[2:], 16), 4 * len(token) - 8)
    if token.startswith("#b"):
        return T.bv(int(token[2:], 2), len(token) - 2)
    name = _unquote(token)
    if name in env:
        return env[name]
    raise SmtLibParseError(f"unbound symbol {token!r}")


def _build(sexpr: SExpr, env: dict[str, Term]) -> Term:
    if isinstance(sexpr, str):
        return _atom_to_term(sexpr, env)
    if not sexpr:
        raise SmtLibParseError("empty application")
    head = sexpr[0]
    if head == "let":
        if len(sexpr) != 3:
            raise SmtLibParseError("malformed let")
        inner_env = dict(env)
        for binding in sexpr[1]:
            if not (isinstance(binding, list) and len(binding) == 2):
                raise SmtLibParseError("malformed let binding")
            name, value = binding
            inner_env[_unquote(name)] = _build(value, env)
        return _build(sexpr[2], inner_env)
    if head == "ite":
        cond, then_term, else_term = (_build(part, env) for part in sexpr[1:])
        if then_term.is_bool:
            return T.bor(T.band(cond, then_term), T.band(T.bnot(cond), else_term))
        return T.ite(cond, then_term, else_term)
    if head == "=":
        return T.eq(_build(sexpr[1], env), _build(sexpr[2], env))
    if head == "=>":
        return T.implies(_build(sexpr[1], env), _build(sexpr[2], env))
    if isinstance(head, list) and head and head[0] == "_":
        # Indexed operator: (_ extract h l) / (_ zero_extend n) / ...
        op = head[1]
        if op == "extract":
            high, low = int(head[2]), int(head[3])
            return T.extract(_build(sexpr[1], env), high, low)
        if op == "zero_extend":
            return T.zext(_build(sexpr[1], env), int(head[2]))
        if op == "sign_extend":
            return T.sext(_build(sexpr[1], env), int(head[2]))
        raise SmtLibParseError(f"unsupported indexed operator {op!r}")
    if head in _BINARY:
        if len(sexpr) != 3:
            raise SmtLibParseError(f"{head} expects two operands")
        return _BINARY[head](_build(sexpr[1], env), _build(sexpr[2], env))
    if head in _UNARY:
        if len(sexpr) != 2:
            raise SmtLibParseError(f"{head} expects one operand")
        return _UNARY[head](_build(sexpr[1], env))
    if head in _BOOL_NARY:
        operands = [_build(part, env) for part in sexpr[1:]]
        result = operands[0]
        for operand in operands[1:]:
            result = _BOOL_NARY[head](result, operand)
        return result
    raise SmtLibParseError(f"unsupported operator {head!r}")


def _parse_sort(sexpr: SExpr) -> int:
    """Sort -> width (0 for Bool)."""
    if sexpr == "Bool":
        return 0
    if isinstance(sexpr, list) and len(sexpr) == 3 and sexpr[:2] == ["_", "BitVec"]:
        return int(sexpr[2])
    raise SmtLibParseError(f"unsupported sort {sexpr!r}")


class ParsedScript:
    """Result of :func:`parse_script`."""

    def __init__(self) -> None:
        self.logic: Optional[str] = None
        self.declarations: dict[str, Term] = {}
        self.assertions: list[Term] = []
        self.has_check_sat = False


def parse_term(text: str, env: Optional[dict[str, Term]] = None) -> Term:
    """Parse a single term; ``env`` maps free symbol names to terms."""
    sexprs = _read_sexprs(_tokenize(text))
    if len(sexprs) != 1:
        raise SmtLibParseError(f"expected one term, found {len(sexprs)}")
    return _build(sexprs[0], dict(env or {}))


def parse_script(text: str) -> ParsedScript:
    """Parse a full script of the supported command subset."""
    script = ParsedScript()
    for sexpr in _read_sexprs(_tokenize(text)):
        if not isinstance(sexpr, list) or not sexpr:
            raise SmtLibParseError(f"expected a command, found {sexpr!r}")
        command = sexpr[0]
        if command == "set-logic":
            script.logic = sexpr[1]
        elif command == "declare-const":
            name = _unquote(sexpr[1])
            width = _parse_sort(sexpr[2])
            variable = T.bool_var(name) if width == 0 else T.bv_var(name, width)
            script.declarations[name] = variable
        elif command == "declare-fun":
            if sexpr[2] != []:
                raise SmtLibParseError("only zero-arity declare-fun supported")
            name = _unquote(sexpr[1])
            width = _parse_sort(sexpr[3])
            variable = T.bool_var(name) if width == 0 else T.bv_var(name, width)
            script.declarations[name] = variable
        elif command == "assert":
            script.assertions.append(_build(sexpr[1], dict(script.declarations)))
        elif command == "check-sat":
            script.has_check_sat = True
        elif command in ("exit", "get-model", "set-option", "set-info"):
            continue
        else:
            raise SmtLibParseError(f"unsupported command {command!r}")
    return script
