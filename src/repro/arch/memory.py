"""Byte-addressable memory components.

Two layers, matching how the interpreters use memory:

* :class:`ByteMemory` — the concrete backing store shared by every
  engine: a sparse, page-granular bytearray heap with little-endian
  multi-byte accessors (RISC-V is little-endian).
* :class:`ShadowMemory` — a sparse overlay used by the symbolic
  interpreters to attach a shadow value (an SMT term) to individual
  bytes; bytes without shadow entries are concrete-only.  Keeping
  symbolic state as a sparse overlay over a concrete store is what makes
  the concolic fast path cheap.

Both layers support O(resident-pages) copy-on-write forking for the
snapshot-resumed exploration layer (:mod:`repro.core.snapshots`): a
:meth:`ByteMemory.snapshot_pages`/:meth:`ByteMemory.adopt` pair aliases
the page bytearrays instead of copying them, and every write path
copies a page first when outstanding snapshot references exist — the
per-page refcounts in ``_shared``.  Reads never check the refcounts, so
the instruction-fetch fast path is unaffected.
"""

from __future__ import annotations

from typing import Generic, Iterable, Optional, TypeVar

__all__ = ["ByteMemory", "ShadowMemory", "MemoryFault"]

S = TypeVar("S")

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1
_ADDR_MASK = 0xFFFFFFFF


class MemoryFault(Exception):
    """Raised on invalid-width accesses (alignment is not enforced)."""


class ByteMemory:
    """Sparse paged byte memory with little-endian word accessors.

    Copy-on-write invariant: a page bytearray may be aliased by
    snapshots (and by memories resumed from them).  ``_shared`` maps the
    page number to the number of outstanding snapshot references taken
    while that bytearray was current; every write path privatizes such a
    page (copies it and drops the refcount entry) before mutating.
    Reads alias freely — aliased pages are never written in place.
    """

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        #: page number -> outstanding snapshot references (see class doc).
        self._shared: dict[int, int] = {}
        #: Pages containing code stitched into superblocks (see
        #: repro.spec.superblock).  A write into a watched page bumps
        #: ``code_epoch``, invalidating every superblock resolved against
        #: this memory — the self-modifying-code guard.  Fresh memories
        #: (clone/adopt/fork/reset) start unwatched; the superblock layer
        #: re-watches as it re-resolves blocks.
        self._watched: set[int] = set()
        self.code_epoch = 0

    def _page_for(self, addr: int) -> bytearray:
        page_number = addr >> _PAGE_BITS
        if page_number in self._watched:
            self.code_epoch += 1
            self._watched.discard(page_number)
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_number] = page
        elif page_number in self._shared:
            page = bytearray(page)
            self._pages[page_number] = page
            del self._shared[page_number]
        return page

    def watch_pages(self, pages: Iterable[int]) -> None:
        """Mark code pages whose mutation must bump ``code_epoch``."""
        self._watched.update(pages)

    def read_byte(self, addr: int) -> int:
        addr &= _ADDR_MASK
        page = self._pages.get(addr >> _PAGE_BITS)
        if page is None:
            return 0
        return page[addr & _PAGE_MASK]

    def write_byte(self, addr: int, value: int) -> None:
        addr &= _ADDR_MASK
        self._page_for(addr)[addr & _PAGE_MASK] = value & 0xFF

    def read(self, addr: int, width_bits: int) -> int:
        """Little-endian read of 8/16/32 bits."""
        if width_bits not in (8, 16, 32):
            raise MemoryFault(f"unsupported access width {width_bits}")
        value = 0
        for i in range(width_bits // 8):
            value |= self.read_byte(addr + i) << (8 * i)
        return value

    def read_word(self, addr: int) -> int:
        """Little-endian 32-bit read, specialized for instruction fetch.

        Equivalent to ``read(addr, 32)`` but a single page probe and one
        ``int.from_bytes`` when the access does not straddle a page —
        the fetch in every interpreter step goes through here.
        """
        addr &= _ADDR_MASK
        offset = addr & _PAGE_MASK
        if offset <= _PAGE_SIZE - 4:
            page = self._pages.get(addr >> _PAGE_BITS)
            if page is None:
                return 0
            return int.from_bytes(page[offset : offset + 4], "little")
        return self.read(addr, 32)

    def write(self, addr: int, value: int, width_bits: int) -> None:
        """Little-endian write of 8/16/32 bits."""
        if width_bits not in (8, 16, 32):
            raise MemoryFault(f"unsupported access width {width_bits}")
        for i in range(width_bits // 8):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Bulk write via page-sized slice assignments.

        Image loading calls this once per segment on every run reset
        (the offline executor restarts the SUT per path), so it copies
        whole pages instead of dict-probing per byte.
        """
        addr &= _ADDR_MASK
        offset = 0
        remaining = len(data)
        while remaining:
            page_offset = addr & _PAGE_MASK
            chunk = min(remaining, _PAGE_SIZE - page_offset)
            page = self._page_for(addr)
            page[page_offset : page_offset + chunk] = data[offset : offset + chunk]
            addr = (addr + chunk) & _ADDR_MASK
            offset += chunk
            remaining -= chunk

    def read_bytes(self, addr: int, length: int) -> bytes:
        addr &= _ADDR_MASK
        out = bytearray()
        remaining = length
        while remaining:
            page_offset = addr & _PAGE_MASK
            chunk = min(remaining, _PAGE_SIZE - page_offset)
            page = self._pages.get(addr >> _PAGE_BITS)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[page_offset : page_offset + chunk])
            addr = (addr + chunk) & _ADDR_MASK
            remaining -= chunk
        return bytes(out)

    def read_cstring(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (diagnostics / syscalls)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read_byte(addr + i)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

    def clone(self) -> "ByteMemory":
        copy = ByteMemory()
        copy._pages = {number: bytearray(page) for number, page in self._pages.items()}
        return copy

    # ------------------------------------------------------------------
    # Copy-on-write forking (the snapshot layer's capture primitive)
    # ------------------------------------------------------------------

    def snapshot_pages(self) -> dict[int, bytearray]:
        """Alias the current pages for a snapshot (O(resident pages)).

        Every current page gains one snapshot reference: this memory
        keeps executing and privatizes a page the first time it writes
        it, leaving the aliased bytearray to the snapshot untouched.
        The returned dict is owned by the snapshot and must never be
        mutated.
        """
        shared = self._shared
        for page_number in self._pages:
            shared[page_number] = shared.get(page_number, 0) + 1
        return dict(self._pages)

    def release_pages(self, pages: dict[int, bytearray]) -> None:
        """Drop one snapshot reference (snapshot evicted or consumed).

        Only pages this memory still aliases (same bytearray object)
        are decremented; pages already privatized — or replaced since —
        keep their accounting.  Dropping the last reference makes the
        page writable in place again.
        """
        shared = self._shared
        current = self._pages
        for page_number, page in pages.items():
            if current.get(page_number) is page:
                refs = shared.get(page_number, 0)
                if refs > 1:
                    shared[page_number] = refs - 1
                elif refs:
                    del shared[page_number]

    @classmethod
    def adopt(cls, pages: dict[int, bytearray]) -> "ByteMemory":
        """Memory resuming from a snapshot's aliased pages.

        All adopted pages are marked shared (the snapshot — and any
        sibling resume — still references them), so the first write to
        each page copies it; unwritten pages stay shared forever, which
        is what makes resuming O(pages touched by the suffix).
        """
        memory = cls()
        memory._pages = dict(pages)
        memory._shared = dict.fromkeys(pages, 1)
        return memory

    def fork(self) -> "ByteMemory":
        """A copy-on-write twin: both sides copy pages before writing."""
        return ByteMemory.adopt(self.snapshot_pages())

    @property
    def resident_bytes(self) -> int:
        """Bytes of allocated backing store (diagnostics)."""
        return len(self._pages) * _PAGE_SIZE

    @property
    def shared_pages(self) -> int:
        """Pages currently copy-on-write protected (diagnostics)."""
        return len(self._shared)


class ShadowMemory(Generic[S]):
    """Sparse per-byte shadow values over a concrete store."""

    def __init__(self) -> None:
        self._shadow: dict[int, S] = {}

    def get(self, addr: int) -> Optional[S]:
        return self._shadow.get(addr & _ADDR_MASK)

    def set(self, addr: int, value: Optional[S]) -> None:
        addr &= _ADDR_MASK
        if value is None:
            self._shadow.pop(addr, None)
        else:
            self._shadow[addr] = value

    def clear(self) -> None:
        self._shadow.clear()

    def snapshot_state(self) -> dict[int, S]:
        """Immutable-by-convention copy of the overlay (for snapshots)."""
        return dict(self._shadow)

    @classmethod
    def adopt(cls, state: dict[int, S]) -> "ShadowMemory[S]":
        """Overlay resuming from a snapshot's state (copies the dict)."""
        shadow: ShadowMemory[S] = cls()
        shadow._shadow = dict(state)
        return shadow

    def fork(self) -> "ShadowMemory[S]":
        """A copy of the overlay (values are shared; they are immutable)."""
        return ShadowMemory.adopt(self._shadow)

    def tainted_addresses(self) -> Iterable[int]:
        return self._shadow.keys()

    def __len__(self) -> int:
        return len(self._shadow)
