"""Hart (hardware thread) state container.

Bundles the program counter with the generic register file.  Interpreters
instantiate it at their own value type; the exit/trap bookkeeping is
shared across engines so the exploration driver can treat them uniformly.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

from .regfile import RegisterFile

V = TypeVar("V")

__all__ = ["Hart", "HaltReason"]


class HaltReason:
    """Why a hart stopped executing (string constants, not an enum, so
    engine-specific reasons can be added without touching this module)."""

    EXIT = "exit"  # ecall exit
    EBREAK = "ebreak"  # breakpoint / assertion failure
    ILLEGAL = "illegal-instruction"
    OUT_OF_FUEL = "out-of-fuel"  # instruction budget exhausted
    MEMORY_FAULT = "memory-fault"


class Hart(Generic[V]):
    """Program counter + register file + halt bookkeeping."""

    __slots__ = ("pc", "regs", "halted", "halt_reason", "exit_code", "instret")

    def __init__(self, zero_value: V, pc: int = 0):
        self.pc = pc
        self.regs: RegisterFile[V] = RegisterFile(zero_value)
        self.halted = False
        self.halt_reason: Optional[str] = None
        self.exit_code: Optional[int] = None
        self.instret = 0  # retired instruction counter

    def halt(self, reason: str, exit_code: Optional[int] = None) -> None:
        self.halted = True
        self.halt_reason = reason
        self.exit_code = exit_code

    def reset(self, pc: int) -> None:
        self.pc = pc
        self.halted = False
        self.halt_reason = None
        self.exit_code = None
        self.instret = 0

    def fork(self, zero_value: V) -> "Hart[V]":
        """Independent hart with the same pc/halt state and forked regs."""
        copy: Hart[V] = Hart(zero_value, pc=self.pc)
        copy.regs = self.regs.fork()
        copy.halted = self.halted
        copy.halt_reason = self.halt_reason
        copy.exit_code = self.exit_code
        copy.instret = self.instret
        return copy
