"""Generic hardware-state components, parameterized over the value type.

The reusable pieces the paper highlights as a major benefit of building
on an executable formal specification: the register file, memory and
hart state are written once and instantiated by each modular interpreter
at its own value domain (ints for the emulator, concolic values for
BinSym and the baseline engines).
"""

from .hart import HaltReason, Hart
from .memory import ByteMemory, MemoryFault, ShadowMemory
from .regfile import ABI_NAMES, RegisterFile, register_index

__all__ = [
    "Hart",
    "HaltReason",
    "ByteMemory",
    "ShadowMemory",
    "MemoryFault",
    "RegisterFile",
    "ABI_NAMES",
    "register_index",
]
