"""Register file parameterized over the value type.

One of the "generic versions of essential components" the paper credits
LibRISCV for: the same register file class serves the concrete
interpreter (values are ints) and BinSym (values are concolic
:class:`repro.core.symvalue.SymValue` objects).  The x0 hardwired-zero
behaviour lives here once, so every interpreter gets it right.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

V = TypeVar("V")

__all__ = ["RegisterFile", "ABI_NAMES", "register_index"]

#: RISC-V standard ABI register names, indexed by register number.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_NAME_TO_INDEX = {name: i for i, name in enumerate(ABI_NAMES)}
_NAME_TO_INDEX.update({f"x{i}": i for i in range(32)})
_NAME_TO_INDEX["fp"] = 8  # alias for s0


def register_index(name: str) -> int:
    """Resolve an ABI or xN register name to its index."""
    try:
        return _NAME_TO_INDEX[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register name {name!r}") from None


class RegisterFile(Generic[V]):
    """32-entry register file with a hardwired zero register.

    ``zero_value`` supplies the representation of the constant 0 in the
    interpreter's value domain (e.g. ``0`` for the emulator, a concrete
    SymValue for BinSym).
    """

    __slots__ = ("_values", "_zero")

    def __init__(self, zero_value: V):
        self._zero = zero_value
        self._values: list[V] = [zero_value] * 32

    def read(self, index: int) -> V:
        if not 0 <= index < 32:
            raise IndexError(f"register index {index} out of range")
        if index == 0:
            return self._zero
        return self._values[index]

    def write(self, index: int, value: V) -> None:
        if not 0 <= index < 32:
            raise IndexError(f"register index {index} out of range")
        if index == 0:
            return  # x0 writes are architectural no-ops
        self._values[index] = value

    def snapshot(self) -> list[V]:
        """A copy of the register contents (x0 included)."""
        values = list(self._values)
        values[0] = self._zero
        return values

    def fork(self) -> "RegisterFile[V]":
        """A cheap independent copy (values are shared, not copied).

        Sound for immutable value types — ints and
        :class:`repro.core.symvalue.SymValue` — which is every value
        domain the interpreters instantiate this class at.
        """
        copy: RegisterFile[V] = RegisterFile(self._zero)
        copy._values = list(self._values)
        return copy

    def load_snapshot(self, values: list[V]) -> None:
        if len(values) != 32:
            raise ValueError("snapshot must have 32 entries")
        self._values = list(values)
        self._values[0] = self._zero

    def __iter__(self) -> Iterator[V]:
        return iter(self.snapshot())

    def dump(self, render: Callable[[V], str] = str) -> str:
        """Human-readable register dump for diagnostics."""
        lines = []
        for i in range(0, 32, 4):
            cells = [
                f"{ABI_NAMES[j]:>4}={render(self.read(j))}" for j in range(i, i + 4)
            ]
            lines.append("  ".join(cells))
        return "\n".join(lines)
