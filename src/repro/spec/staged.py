"""Staging layer: partial evaluation of the formal ISA semantics.

The paper's architecture pays interpreter overhead for accuracy: every
executed instruction re-drives its semantics *generator* and re-walks
its specification ``Expr`` trees through :func:`repro.spec.expr.eval_expr`'s
isinstance chain.  This module removes that overhead *without touching
the specification*: each decoded instruction word is partially evaluated
once, yielding a specialized executor that is replayed on every
subsequent execution — the classic first Futamura projection, applied to
the free-monad semantics.

Three cooperating pieces:

``record_plan``
    Drives an instruction's semantics generator exactly once with a
    *staging handler* that answers the decode/read primitives with
    abstract :class:`~repro.spec.expr.SlotRef` leaves instead of live
    machine state.  The recorded :class:`Plan` is the instruction's
    primitive sequence with register/pc/memory reads abstracted into
    numbered slots.  Specification-level control flow
    (``RunIf``/``RunIfElse``, e.g. the RV32M division edge cases) is
    recorded as a *guarded sub-plan*: both arms are staged eagerly
    (recording is pure — no interpreter state is touched) and replay
    asks the host's ``plan_branch`` — the staged twin of
    ``Handler.branch`` — which arm to run, preserving concolic branch
    recording and execution forking exactly.  Semantics yielding a
    primitive the recorder does not know return ``None`` and the
    interpreters keep driving the generator.  Plans are shared
    process-wide and survive ``fork`` into exploration workers.

``compile_expr``
    Compiles a specification ``Expr`` DAG into a flat closure over a
    :class:`~repro.spec.expr.Domain` — no recursion, no isinstance
    dispatch at evaluation time.  Closures are composed once at compile
    time and cached per shared sub-DAG (the plan retains its interned
    expression nodes, so the ``id``-keyed memo is stable).  Domains may
    expose ``specialize_binop``/``specialize_cmpop``/``specialize_unop``
    hooks returning pre-dispatched operator closures; absent those the
    compiler falls back to the generic protocol methods.

``bind_plan``
    Specializes a plan for one evaluation domain, producing a
    :class:`CompiledPlan` whose steps are closures invoking the
    :class:`PlanHost` callbacks an interpreter provides (register file,
    memory, pc, environment calls).  One compiled plan serves every
    interpreter instance sharing that domain configuration — the
    binding is cached on the :class:`~repro.spec.isa.ISA`.

The DSL-facing API is untouched: instruction semantics remain plain
generator functions over :mod:`repro.spec.primitives`, and a new
instruction (Sect. IV's MADD) is staged automatically with zero changes
here or anywhere else.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol

from . import fields
from .decoder import IllegalInstruction
from .dsl import execute_semantics
from .expr import (
    COMPARISON_OPS,
    BinOp,
    Expr,
    Ext,
    Extract,
    Imm,
    Ite,
    SlotRef,
    UnOp,
    Val,
)
from .primitives import (
    DecodeAndReadBType,
    DecodeAndReadIType,
    DecodeAndReadR4Type,
    DecodeAndReadRType,
    DecodeAndReadSType,
    DecodeAndReadShamt,
    DecodeJType,
    DecodeUType,
    Ebreak,
    Ecall,
    Fence,
    LoadMem,
    ReadPC,
    ReadRegister,
    RunIf,
    RunIfElse,
    StoreMem,
    WritePC,
    WriteRegister,
)

__all__ = [
    "Plan",
    "CompiledPlan",
    "PlanHost",
    "StagedStepper",
    "record_plan",
    "compile_expr",
    "bind_plan",
]

#: Superblock-map sentinel: the PC is a known block entry but no block
#: has been resolved for it yet this run (see ``_sb_dispatch``).
_SB_PENDING = object()

#: ``_fuel_limit`` default: effectively unlimited until ``run`` installs
#: the real budget (kept an int so the dispatch comparison stays cheap).
_NO_FUEL_LIMIT = 1 << 62


class PlanHost(Protocol):
    """Callbacks a modular interpreter provides for plan replay.

    These are the staged counterparts of the stateful primitives: the
    compiled plan calls them in recorded order with already-evaluated
    domain values, so an interpreter implements each as a direct state
    access with no expression wrapping.
    """

    def plan_reg(self, index: int) -> Any: ...

    def plan_pc(self) -> Any: ...

    def plan_load(self, width: int, address: Any) -> Any: ...

    def plan_write_reg(self, index: int, value: Any) -> None: ...

    def plan_write_pc(self, value: Any) -> None: ...

    def plan_store(self, width: int, address: Any, value: Any) -> None: ...

    def plan_branch(self, value: Any) -> bool: ...

    def plan_ecall(self) -> None: ...

    def plan_ebreak(self) -> None: ...

    def plan_fence(self) -> None: ...


class StagedStepper:
    """Mixin: the staged fetch/execute step loop of an interpreter.

    Shared by the concrete and symbolic interpreters (any
    :class:`PlanHost` with ``isa``/``memory``/``hart``/``domain`` state
    and ``_current_word``/``_next_pc`` bookkeeping).  The host class
    sets ``staging``, an empty ``_exec_cache`` dict and a
    ``_domain_key`` identifying its domain behaviour; everything else —
    the staged/ablation split, the per-word memo and its backstop cap —
    lives here once, so the two execution modes cannot silently diverge
    between interpreters.
    """

    #: Backstop for the per-interpreter word memo, matching the capped
    #: decode/plan caches it sits in front of (only self-modifying code
    #: executing very many distinct words could ever approach it).
    EXEC_CACHE_CAPACITY = 1 << 17

    def set_staging(self, staging: bool) -> None:
        """Toggle staged execution (clears this interpreter's memo)."""
        self.staging = staging
        self._exec_cache.clear()
        self._sb_map = None

    # ------------------------------------------------------------------
    # Superblock execution (see repro.spec.superblock)
    # ------------------------------------------------------------------

    def _init_superblocks(self, enabled: bool) -> None:
        """Constructor hook: superblock state and counters."""
        self._sb_enabled = enabled
        self._sb_engine = None
        #: entry_pc -> _SB_PENDING | Superblock | False.  Persists
        #: across runs (resolutions are revalidated, not redone, when a
        #: run can have changed the code bytes); ``None`` while
        #: superblocks are off (the step-loop fast check).
        self._sb_map: Optional[dict] = None
        #: Union of code pages of every block this interpreter resolved;
        #: re-watched on each run's memory so self-modifying writes keep
        #: bumping ``code_epoch`` even though the resolutions persist.
        self._sb_pages: set = set()
        #: The memory the map was last validated against, and whether a
        #: code-epoch bump was ever *observed* (dispatch re-resolves and
        #: re-syncs the epoch, so the flag outlives the mismatch).
        self._sb_memory = None
        self._sb_dirty = False
        self._sb_epoch = 0
        self._fuel_limit = _NO_FUEL_LIMIT
        self.sb_hits = 0
        self.sb_instructions = 0
        self.sb_blocks_built = 0
        self.sb_block_cache_hits = 0
        self.sb_deopts = 0
        self.sb_invalidations = 0
        self.sb_unstitchable = 0

    def set_superblocks(self, enabled: bool) -> None:
        """Toggle superblock execution (takes effect at next run start)."""
        self._sb_enabled = enabled
        self._sb_map = None

    def note_hot_branches(self, pcs) -> None:
        """Driver feedback: branch PCs whose cumulative executions
        crossed the hotness threshold.  Their successor PCs become block
        entries as the step loop observes them being taken."""
        self.isa.superblocks.note_hot_branches(pcs)

    def _sb_begin_run(
        self, entry_pc: Optional[int] = None, revalidate: bool = False
    ) -> None:
        """Arm superblock dispatch for a fresh run.

        Called after reset/image-load/snapshot-resume, when ``memory``
        holds the run's *code* bytes (symbolic-input replay may still
        follow — its writes land on watched pages and are caught by the
        epoch guard).  ``entry_pc`` counts toward entry hotness when
        given (``None`` for snapshot resumes, which start mid-path at a
        branch, never at a block entry).

        The map persists across runs: a run started by ``reset`` loads
        the identical image, so resolutions stay valid unless a code
        write was observed (``_sb_dirty``, or an epoch bump after the
        last dispatch).  ``revalidate=True`` (snapshot resumes, whose
        memory descends from a mid-run capture) demotes every entry to
        pending so the first dispatch re-reads the words instead.
        """
        if not (self._sb_enabled and self.staging):
            self._sb_map = None
            return
        engine = self.isa.superblocks
        self._sb_engine = engine
        if entry_pc is not None:
            engine.note_run_entry(entry_pc)
        memory = self.memory
        sb_map = self._sb_map
        if sb_map is None:
            self._sb_map = dict.fromkeys(engine.entries, _SB_PENDING)
        else:
            old = self._sb_memory
            if (
                revalidate
                or self._sb_dirty
                or (old is not None and old.code_epoch != self._sb_epoch)
            ):
                for key in sb_map:
                    sb_map[key] = _SB_PENDING
            if len(sb_map) < len(engine.entries):
                for pc in engine.entries:
                    if pc not in sb_map:
                        sb_map[pc] = _SB_PENDING
        memory.watch_pages(self._sb_pages)
        self._sb_memory = memory
        self._sb_dirty = False
        self._sb_epoch = memory.code_epoch

    def _sb_resolve(self, pc: int):
        """Resolve the map entry at ``pc`` to a validated block."""
        block, built = self._sb_engine.acquire(
            pc, self.memory, self.domain, self._domain_key
        )
        if block is None:
            self.sb_unstitchable += 1
            self._sb_map[pc] = False
            return False
        if built:
            self.sb_blocks_built += 1
        else:
            self.sb_block_cache_hits += 1
        self._sb_pages.update(block.pages)
        self.memory.watch_pages(block.pages)
        sb_map = self._sb_map
        sb_map[pc] = block
        if block.side_exits:
            # Mispredicted branches land on block entries too: promote
            # every alternative successor so the dispatch loop picks up
            # again right after a side exit.
            engine_entries = self._sb_engine.entries
            for target in block.side_exits:
                engine_entries.add(target)
                if target not in sb_map:
                    sb_map[target] = _SB_PENDING
        return block

    def _sb_dispatch(self, entry, pc: int):
        """Guards between a map hit and block execution.

        Returns a runnable block or ``None`` to deoptimize to the
        per-instruction path.  Guard order: code-epoch (self-modifying
        writes force re-resolution of every cached entry), resolution,
        then the fuel guard — a block that would overshoot the run's
        instruction budget deoptimizes so OUT_OF_FUEL paths truncate at
        exactly the same instruction with superblocks on or off.
        """
        if self.memory.code_epoch != self._sb_epoch:
            self.sb_invalidations += 1
            self._sb_dirty = True
            sb_map = self._sb_map
            for key in sb_map:
                sb_map[key] = _SB_PENDING
            self._sb_epoch = self.memory.code_epoch
            entry = _SB_PENDING
        if entry is _SB_PENDING:
            entry = self._sb_resolve(pc)
        if entry is False:
            return None
        if self.hart.instret + entry.length > self._fuel_limit:
            self.sb_deopts += 1
            return None
        return entry

    def _sb_step(self) -> None:
        """One ``run``-loop iteration: a superblock if one starts at the
        current PC, else a single :meth:`step`.

        Only the run loop dispatches superblocks — :meth:`step` itself
        always retires exactly one instruction, so external per-step
        drivers (the tracer, the VP's fetch-transaction hook, tests
        stepping N times) keep their contract regardless of the
        superblock setting.
        """
        hart = self.hart
        sb_map = self._sb_map
        if sb_map is not None:
            entry = sb_map.get(hart.pc)
            if entry is not None:
                block = self._sb_dispatch(entry, hart.pc)
                if block is not None:
                    self.sb_hits += 1
                    before = hart.instret
                    block.execute(self)
                    # Side exits retire fewer than block.length; count
                    # what actually ran.
                    self.sb_instructions += hart.instret - before
                    return
        self.step()

    def step(self) -> None:
        """Fetch, decode and execute a single instruction."""
        hart = self.hart
        if hart.halted:
            return
        pc = hart.pc
        sb_map = self._sb_map
        word = self.memory.read_word(hart.pc)
        if self.staging:
            entry = self._exec_cache.get(word)
            if entry is None:
                entry = self._lookup(word, hart.pc)
            self._current_word = word
            self._next_pc = (hart.pc + 4) & 0xFFFFFFFF
            plan = entry[0]
            if plan is not None:
                plan.run(self)
            else:
                execute_semantics(entry[1](), self)
        else:
            # Ablation path (--no-staging): per-step decode through the
            # shared decode cache, then interpret the specification.
            decoded = self._decode_or_halt(word, hart.pc)
            self._current_word = word
            self._next_pc = (hart.pc + 4) & 0xFFFFFFFF
            execute_semantics(self.isa.semantics_for(decoded.name)(), self)
        hart.instret += 1
        if not hart.halted:
            target = self._next_pc
            hart.pc = target
            if sb_map is not None and (
                target < pc or pc in self._sb_engine.hot_branches
            ):
                # Two promotion rules make branch successors block
                # entries: a taken *backward* edge marks a loop header
                # (the classic trace-JIT heuristic — works without any
                # driver feedback, e.g. in the concrete interpreter),
                # and the exploration driver feeds branch PCs whose
                # cumulative flippable-hit counts crossed the hotness
                # threshold (covers hot *forward* arms across runs).
                # Either way the blocks on both arms get stitched as
                # execution takes them, so the deopt at the branch
                # costs one dispatch.
                if target not in sb_map:
                    self._sb_engine.entries.add(target)
                    sb_map[target] = _SB_PENDING

    def _decode_or_halt(self, word: int, pc: int):
        try:
            return self.isa.decoder.decode(word, pc)
        except IllegalInstruction:
            # Cold path; imported here so the spec package stays free of
            # module-level dependencies on the machine-state layer.
            from ..arch.hart import HaltReason

            self.hart.halt(HaltReason.ILLEGAL)
            raise

    def _lookup(self, word: int, pc: int) -> tuple:
        """Decode ``word`` and memoize its execution strategy."""
        decoded = self._decode_or_halt(word, pc)
        plan = self.isa.compiled_plan(
            word, decoded.name, self.domain, self._domain_key
        )
        entry = (plan, self.isa.semantics_for(decoded.name))
        if len(self._exec_cache) >= self.EXEC_CACHE_CAPACITY:
            self._exec_cache.clear()
        self._exec_cache[word] = entry
        return entry


class Plan:
    """A recorded straight-line primitive sequence for one word.

    ``steps`` is a tuple of tagged tuples (see :class:`_PlanRecorder`);
    expressions inside the steps reference :class:`SlotRef` leaves
    resolved from a per-execution environment of ``n_slots`` entries.
    """

    __slots__ = ("steps", "n_slots")

    def __init__(self, steps: tuple, n_slots: int):
        self.steps = steps
        self.n_slots = n_slots


class _Unstageable(Exception):
    """Raised during recording when semantics are not straight-line."""


class _PlanRecorder:
    """The staging handler: answers primitives with slot references."""

    __slots__ = ("word", "steps", "n_slots")

    def __init__(self, word: int):
        self.word = word
        self.steps: list = []
        self.n_slots = 0

    def _reg(self, index: int) -> SlotRef:
        slot = self.n_slots
        self.n_slots = slot + 1
        self.steps.append(("reg", slot, index))
        return SlotRef(slot, 32)

    def record(self, primitive) -> Any:
        word = self.word
        kind = type(primitive)
        if kind is DecodeAndReadRType:
            return (
                self._reg(fields.rs1(word)),
                self._reg(fields.rs2(word)),
                fields.rd(word),
            )
        if kind is DecodeAndReadR4Type:
            return (
                self._reg(fields.rs1(word)),
                self._reg(fields.rs2(word)),
                self._reg(fields.rs3(word)),
                fields.rd(word),
            )
        if kind is DecodeAndReadIType:
            return (
                Imm(fields.imm_i(word), 32),
                self._reg(fields.rs1(word)),
                fields.rd(word),
            )
        if kind is DecodeAndReadShamt:
            return (
                Imm(fields.shamt(word), 32),
                self._reg(fields.rs1(word)),
                fields.rd(word),
            )
        if kind is DecodeAndReadSType:
            return (
                Imm(fields.imm_s(word), 32),
                self._reg(fields.rs1(word)),
                self._reg(fields.rs2(word)),
            )
        if kind is DecodeAndReadBType:
            return (
                Imm(fields.imm_b(word), 32),
                self._reg(fields.rs1(word)),
                self._reg(fields.rs2(word)),
            )
        if kind is DecodeUType:
            return Imm(fields.imm_u(word), 32), fields.rd(word)
        if kind is DecodeJType:
            return Imm(fields.imm_j(word), 32), fields.rd(word)
        if kind is ReadRegister:
            return self._reg(primitive.index)
        if kind is ReadPC:
            slot = self.n_slots
            self.n_slots = slot + 1
            self.steps.append(("pc", slot))
            return SlotRef(slot, 32)
        if kind is LoadMem:
            slot = self.n_slots
            self.n_slots = slot + 1
            self.steps.append(("load", slot, primitive.width, primitive.addr))
            return SlotRef(slot, primitive.width)
        if kind is WriteRegister:
            self.steps.append(("wreg", primitive.index, primitive.value))
            return None
        if kind is WritePC:
            self.steps.append(("wpc", primitive.value))
            return None
        if kind is StoreMem:
            self.steps.append(
                ("store", primitive.width, primitive.addr, primitive.value)
            )
            return None
        if kind is Ecall:
            self.steps.append(("ecall",))
            return None
        if kind is Ebreak:
            self.steps.append(("ebreak",))
            return None
        if kind is Fence:
            self.steps.append(("fence",))
            return None
        if kind is RunIfElse:
            self.steps.append(
                (
                    "cond",
                    primitive.cond,
                    self._record_block(primitive.then_block),
                    self._record_block(primitive.else_block),
                )
            )
            return None
        if kind is RunIf:
            self.steps.append(
                ("cond", primitive.cond, self._record_block(primitive.block), ())
            )
            return None
        raise _Unstageable  # unknown primitive: conservatively interpret

    def _record_block(self, thunk: Optional[Callable]) -> tuple:
        """Record a RunIf/RunIfElse arm into its own step tuple.

        Both arms are recorded eagerly; recording has no machine-state
        effects, so staging the arm the concrete run would not take is
        free.  Slots are allocated from the shared counter — at replay
        only the taken arm's steps populate theirs.
        """
        if thunk is None:
            return ()
        saved = self.steps
        self.steps = []
        try:
            _drive_recording(thunk(), self)
            return tuple(self.steps)
        finally:
            self.steps = saved


def _drive_recording(generator, recorder: _PlanRecorder) -> None:
    """Drive a semantics (sub-)generator against the staging handler."""
    answer: Any = None
    while True:
        try:
            primitive = generator.send(answer)
        except StopIteration:
            return
        answer = recorder.record(primitive)


def record_plan(semantics_fn: Callable, word: int) -> Optional[Plan]:
    """Stage one instruction word; ``None`` when it cannot be staged."""
    recorder = _PlanRecorder(word)
    generator = semantics_fn()
    try:
        _drive_recording(generator, recorder)
    except _Unstageable:
        generator.close()
        return None
    return Plan(tuple(recorder.steps), recorder.n_slots)


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def _binop_fn(domain, op: str, width: int) -> Callable:
    specialize = getattr(domain, "specialize_binop", None)
    if specialize is not None:
        return specialize(op, width)
    generic = domain.binop
    return lambda lhs, rhs: generic(op, lhs, rhs, width)


def _cmpop_fn(domain, op: str, width: int) -> Callable:
    specialize = getattr(domain, "specialize_cmpop", None)
    if specialize is not None:
        return specialize(op, width)
    generic = domain.cmpop
    return lambda lhs, rhs: generic(op, lhs, rhs, width)


def _unop_fn(domain, op: str, width: int) -> Callable:
    specialize = getattr(domain, "specialize_unop", None)
    if specialize is not None:
        return specialize(op, width)
    generic = domain.unop
    return lambda arg: generic(op, arg, width)


def compile_expr(expr: Expr, domain, memo: Optional[dict] = None) -> Callable:
    """Compile an ``Expr`` DAG into a closure ``env -> value``.

    ``env`` is the plan's slot environment (a list).  The closure tree
    is composed once; evaluation performs no type dispatch and no
    attribute traversal of the expression nodes.  ``memo`` shares
    compiled closures across references to the same (interned) sub-DAG.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    kind = type(expr)
    if kind is SlotRef:
        slot = expr.slot
        fn = lambda env: env[slot]  # noqa: E731
    elif kind is Imm:
        if getattr(domain, "supports_const_folding", True):
            # Domains are stateless: constants fold at compile time.
            const = domain.const(expr.value, expr.width)
            fn = lambda env: const  # noqa: E731
        else:
            # A domain whose constants carry interned SMT terms must not
            # fold: cached plans would pin terms across reset_interner().
            const_fn = domain.const
            value, width = expr.value, expr.width
            fn = lambda env: const_fn(value, width)  # noqa: E731
    elif kind is Val:
        from_leaf = domain.from_leaf
        value, width = expr.value, expr.width
        fn = lambda env: from_leaf(value, width)  # noqa: E731
    elif kind is BinOp:
        lhs = compile_expr(expr.lhs, domain, memo)
        rhs = compile_expr(expr.rhs, domain, memo)
        if expr.op in COMPARISON_OPS:
            op_fn = _cmpop_fn(domain, expr.op, expr.lhs.width)
        else:
            op_fn = _binop_fn(domain, expr.op, expr.width)
        fn = lambda env: op_fn(lhs(env), rhs(env))  # noqa: E731
    elif kind is UnOp:
        arg = compile_expr(expr.arg, domain, memo)
        op_fn = _unop_fn(domain, expr.op, expr.width)
        fn = lambda env: op_fn(arg(env))  # noqa: E731
    elif kind is Ext:
        arg = compile_expr(expr.arg, domain, memo)
        ext = domain.ext
        ext_kind, amount, from_width = expr.kind, expr.amount, expr.arg.width
        fn = lambda env: ext(ext_kind, arg(env), amount, from_width)  # noqa: E731
    elif kind is Extract:
        arg = compile_expr(expr.arg, domain, memo)
        extract = domain.extract
        high, low = expr.high, expr.low
        fn = lambda env: extract(arg(env), high, low)  # noqa: E731
    elif kind is Ite:
        cond = compile_expr(expr.cond, domain, memo)
        then_fn = compile_expr(expr.then_expr, domain, memo)
        else_fn = compile_expr(expr.else_expr, domain, memo)
        ite = domain.ite
        width = expr.width
        fn = lambda env: ite(cond(env), then_fn(env), else_fn(env), width)  # noqa: E731
    else:
        raise TypeError(f"not a compilable specification expression: {expr!r}")
    memo[id(expr)] = fn
    return fn


# ---------------------------------------------------------------------------
# Plan binding: specialize a plan for one evaluation domain
# ---------------------------------------------------------------------------


class CompiledPlan:
    """A plan specialized for one domain; replayed against a host."""

    __slots__ = ("ops", "n_slots")

    def __init__(self, ops: tuple, n_slots: int):
        self.ops = ops
        self.n_slots = n_slots

    def run(self, host: PlanHost) -> None:
        env = [None] * self.n_slots
        for op in self.ops:
            op(host, env)


def _bind_reg(slot: int, index: int) -> Callable:
    def run(host, env):
        env[slot] = host.plan_reg(index)

    return run


def _bind_pc(slot: int) -> Callable:
    def run(host, env):
        env[slot] = host.plan_pc()

    return run


def _bind_load(slot: int, width: int, addr_fn: Callable) -> Callable:
    def run(host, env):
        env[slot] = host.plan_load(width, addr_fn(env))

    return run


def _bind_wreg(index: int, value_fn: Callable) -> Callable:
    def run(host, env):
        host.plan_write_reg(index, value_fn(env))

    return run


def _bind_wpc(value_fn: Callable) -> Callable:
    def run(host, env):
        host.plan_write_pc(value_fn(env))

    return run


def _bind_store(width: int, addr_fn: Callable, value_fn: Callable) -> Callable:
    def run(host, env):
        host.plan_store(width, addr_fn(env), value_fn(env))

    return run


def _bind_cond(cond_fn: Callable, then_ops: tuple, else_ops: tuple) -> Callable:
    def run(host, env):
        if host.plan_branch(cond_fn(env)):
            for op in then_ops:
                op(host, env)
        else:
            for op in else_ops:
                op(host, env)

    return run


def _run_ecall(host, env):
    host.plan_ecall()


def _run_ebreak(host, env):
    host.plan_ebreak()


def _run_fence(host, env):
    host.plan_fence()


def _bind_steps(steps: tuple, domain, memo: dict) -> tuple:
    ops: list = []
    for step in steps:
        tag = step[0]
        if tag == "reg":
            ops.append(_bind_reg(step[1], step[2]))
        elif tag == "pc":
            ops.append(_bind_pc(step[1]))
        elif tag == "load":
            ops.append(_bind_load(step[1], step[2], compile_expr(step[3], domain, memo)))
        elif tag == "wreg":
            ops.append(_bind_wreg(step[1], compile_expr(step[2], domain, memo)))
        elif tag == "wpc":
            ops.append(_bind_wpc(compile_expr(step[1], domain, memo)))
        elif tag == "store":
            ops.append(
                _bind_store(
                    step[1],
                    compile_expr(step[2], domain, memo),
                    compile_expr(step[3], domain, memo),
                )
            )
        elif tag == "cond":
            ops.append(
                _bind_cond(
                    compile_expr(step[1], domain, memo),
                    _bind_steps(step[2], domain, memo),
                    _bind_steps(step[3], domain, memo),
                )
            )
        elif tag == "ecall":
            ops.append(_run_ecall)
        elif tag == "ebreak":
            ops.append(_run_ebreak)
        elif tag == "fence":
            ops.append(_run_fence)
        else:  # pragma: no cover - recorder and binder move in lockstep
            raise ValueError(f"unknown plan step {step!r}")
    return tuple(ops)


def bind_plan(plan: Plan, domain) -> CompiledPlan:
    """Compile a recorded plan's expressions for one domain."""
    return CompiledPlan(_bind_steps(plan.steps, domain, {}), plan.n_slots)
