"""Superblock trace compilation on top of the staged plan cache.

PR 3's staging layer removed the semantics-interpretation cost per
instruction; what remains is the per-instruction *dispatch* — fetch,
word memo probe, ``CompiledPlan.run`` call, PC bookkeeping — paid once
per retired instruction.  This module removes most of that the way
dynamic binary translators do (QEMU's translation blocks, SymQEMU): hot
straight-line guest sequences are stitched into a single *superblock*
executor that replays the concatenated compiled plans back to back.

The stitching rules keep the concolic semantics bit-exact:

* Straight-line instructions (no ``cond`` step, no ``ecall`` /
  ``ebreak`` / ``fence``, at most one ``wpc`` whose target is a
  *static* function of the instruction's own PC — direct ``jal``)
  concatenate freely.  An indirect ``jalr`` or any unknown primitive
  ends the block.
* A conditional instruction (``RunIf``/``RunIfElse`` — branches, but
  also ``div``'s zero/overflow checks) may be stitched *through* along
  a predicted direction, superblock-style: the block syncs ``hart.pc``,
  ``hart.instret`` and the default ``_next_pc`` to exactly the
  per-instruction state before running the instruction's compiled plan
  — so flippable-branch records and PR 5's snapshot capture points
  (both issued by the plan's own ``cond`` op) observe bit-identical
  machine state — then compares the resulting ``_next_pc`` against the
  predicted successor and *side-exits* (sets the true PC and returns to
  the dispatch loop) on mismatch.  Prediction follows the classic
  trace-JIT rule: backward targets (loop back-edges) are predicted
  taken, forward branches fall through.
* Plain instructions execute with ``hart.pc`` pinned only where the
  plan observes it, so address-concretization pins and pinned
  indirect-target assumptions record exactly the PCs the
  per-instruction path would; ``instret`` is batched between conds —
  nothing else inside a block can observe it.
* A block is guarded on its entry PC and on the exact instruction words
  it was stitched from: the engine re-reads the words on first use per
  run, and :class:`~repro.arch.memory.ByteMemory` bumps a ``code_epoch``
  counter when a watched code page is written, forcing revalidation —
  self-modifying code deoptimizes instead of executing stale blocks.

Hotness is fed by the exploration driver from the scheduler's per-PC
flippable-branch hit counts (:class:`repro.core.scheduler.RunStats`):
once a branch PC crosses :data:`BRANCH_HOT_HITS` cumulative executions,
the interpreters promote its successors to block entry points; run
entry PCs are promoted after :data:`ENTRY_HOT_RUNS` runs.  Compiled
superblocks live in a per-ISA LRU keyed by ``(domain_key, entry_pc,
words)`` — shared across interpreter instances over that ISA and
fork-inherited by :class:`repro.core.parallel.ProcessPoolExplorer`
workers, exactly like the plan caches they are built from.
"""

from __future__ import annotations

from typing import Optional

from .decoder import IllegalInstruction
from .expr import BinOp, Expr, Imm, SlotRef

__all__ = [
    "Superblock",
    "SuperblockEngine",
    "MIN_BLOCK_LEN",
    "MAX_BLOCK_LEN",
    "ENTRY_HOT_RUNS",
    "BRANCH_HOT_HITS",
]

_WORD = 0xFFFFFFFF
_PAGE_BITS = 12  # must match repro.arch.memory._PAGE_BITS

#: A block must amortize its dispatch overhead: below this length the
#: per-instruction path is just as fast.
MIN_BLOCK_LEN = 2

#: Upper bound on stitched instructions per block; long straight-line
#: regions split into chained blocks, keeping the fuel guard cheap.
MAX_BLOCK_LEN = 64

#: Runs starting at the same entry PC before it becomes a block entry
#: (the first run pays discovery, every later run executes blocks).
ENTRY_HOT_RUNS = 2

#: Cumulative flippable-branch executions (summed over runs by the
#: exploration driver) before a branch PC counts as hot and the
#: interpreters promote its successors to superblock entries.
BRANCH_HOT_HITS = 8

#: Backstop for the per-ISA block cache and the word-classification
#: memo, matching the staged plan caches they sit beside.
BLOCK_CACHE_CAPACITY = 1 << 12
INFO_CACHE_CAPACITY = 1 << 17

#: Classification verdict for words that end a block (branch, ecall,
#: ebreak, fence, unstageable, illegal, indirect jump).
_BARRIER = ("barrier",)


def _static_target(expr: Expr, pc_slots: frozenset, pc: int) -> Optional[int]:
    """Evaluate a ``wpc`` target expression given only the entry PC.

    Returns the 32-bit target when ``expr`` is built from immediates,
    PC slots and add/sub/bitwise operators (the direct ``jal`` shape);
    ``None`` marks the jump data-dependent (``jalr``), i.e. a barrier.
    """
    kind = type(expr)
    if kind is Imm:
        return expr.value & ((1 << expr.width) - 1)
    if kind is SlotRef:
        return pc & _WORD if expr.slot in pc_slots else None
    if kind is BinOp:
        lhs = _static_target(expr.lhs, pc_slots, pc)
        if lhs is None:
            return None
        rhs = _static_target(expr.rhs, pc_slots, pc)
        if rhs is None:
            return None
        op = expr.op
        mask = (1 << expr.width) - 1
        if op == "add":
            return (lhs + rhs) & mask
        if op == "sub":
            return (lhs - rhs) & mask
        if op == "and":
            return lhs & rhs
        if op == "or":
            return lhs | rhs
        if op == "xor":
            return lhs ^ rhs
    return None


def _has_store(steps: tuple) -> bool:
    """True when any step (in any cond arm) is a memory store.

    Store instructions become *epoch-check boundaries* inside a block:
    a store can overwrite code that later instructions of the same
    block were stitched from, so the block re-checks the memory's
    ``code_epoch`` right after each store retires and side-exits at the
    next instruction if a watched code page changed (the QEMU
    store-into-current-TB rule).
    """
    for step in steps:
        tag = step[0]
        if tag == "store":
            return True
        if tag == "cond" and (_has_store(step[2]) or _has_store(step[3])):
            return True
    return False


def _pc_setter(pc: int):
    """A fused op that pins ``hart.pc`` before a PC-observing plan.

    Only instructions whose plan reads the architectural PC (an
    ``auipc``/``jal`` PC slot, or a load/store whose concretization pin
    must record its site) get one; pure ALU plans execute without any
    per-instruction PC bookkeeping.
    """

    def op(host, env):
        host.hart.pc = pc

    return op


class Superblock:
    """A stitched trace with side exits, compiled for one domain.

    ``segments`` is a tuple of ``(pre_ops, pre_count, cond_pc,
    next_default, cond_ops, expected)`` six-tuples.  ``pre_ops`` is the
    *fused* op tuple of ``pre_count`` straight-line instructions —
    every :class:`CompiledPlan`'s ops concatenated back to back, with a
    :func:`_pc_setter` spliced in front of each plan that observes the
    architectural PC.  A segment with ``cond_pc >= 0`` then runs one
    conditional instruction under exact per-instruction state
    (``hart.pc = cond_pc``, ``hart.instret`` synced, ``_next_pc =
    next_default``) and side-exits unless the instruction's successor
    equals ``expected`` (the predicted direction).  ``cond_pc == -2``
    marks an epoch-check boundary after a store instruction: if the
    memory's ``code_epoch`` moved since block entry, the store may have
    overwritten words later segments were stitched from, and the block
    side-exits to ``next_default`` (the following instruction) instead
    — self-modifying code within a block stays exact.  ``cond_pc ==
    -1`` is the final plain segment.  All plans share one slot
    environment of ``n_slots`` entries (the per-plan maximum) — safe
    because a plan always writes a slot before reading it, so
    instructions cannot see each other's slot values.

    ``words`` keeps the ``(pc, word)`` pairs the block was stitched
    from for revalidation, ``pages`` the code pages to watch for
    self-modifying writes, ``exit_pc`` the statically known successor
    when every guard holds, ``length`` the maximum retire count (the
    fuel guard's bound), and ``side_exits`` the non-predicted successor
    PCs — promoted to block entries so a mispredicted branch lands on
    another block instead of the per-instruction path.
    """

    __slots__ = (
        "entry_pc", "segments", "n_slots", "words", "length", "exit_pc",
        "pages", "side_exits",
    )

    def __init__(
        self,
        entry_pc: int,
        segments: tuple,
        n_slots: int,
        length: int,
        words: tuple,
        exit_pc: int,
        side_exits: tuple,
    ):
        self.entry_pc = entry_pc
        self.segments = segments
        self.n_slots = n_slots
        self.words = words
        self.length = length
        self.exit_pc = exit_pc
        self.side_exits = side_exits
        pages = set()
        for pc, _word in words:
            pages.add(pc >> _PAGE_BITS)
            pages.add(((pc + 3) & _WORD) >> _PAGE_BITS)
        self.pages = frozenset(pages)

    def execute(self, host) -> None:
        """Replay the trace against ``host``, side-exiting on demand.

        ``instret`` is batched between conds (nothing else can observe
        it) and restored to the exact per-instruction value before each
        cond runs, so branch records and snapshot captures — both
        issued by the cond op itself — see bit-identical state.  On a
        side exit the hart's PC/instret are already exact, and the
        remaining segments are skipped.
        """
        env = [None] * self.n_slots
        hart = host.hart
        memory = host.memory
        epoch = memory.code_epoch
        for pre_ops, pre_count, cond_pc, next_default, cond_ops, expected \
                in self.segments:
            for op in pre_ops:
                op(host, env)
            hart.instret += pre_count
            if cond_pc >= 0:
                hart.pc = cond_pc
                host._next_pc = next_default
                for op in cond_ops:
                    op(host, env)
                hart.instret += 1
                target = host._next_pc
                if target != expected:
                    hart.pc = target
                    return
            elif cond_pc == -2:
                # Epoch-check boundary after a store instruction: if a
                # watched code page changed, later segments may be
                # stitched from overwritten words — exit exactly here.
                if memory.code_epoch != epoch:
                    hart.pc = next_default
                    return
        hart.pc = self.exit_pc


class SuperblockEngine:
    """Per-ISA stitcher, hotness bookkeeping and block cache.

    One engine hangs off each :class:`~repro.spec.isa.ISA` (see
    ``ISA.superblocks``) and is shared by every interpreter instance
    over that ISA — concrete and symbolic alike, since blocks are keyed
    by the interpreter's ``domain_key``.  Fork-based exploration
    workers inherit the engine (entries, hot branches, compiled blocks)
    copy-on-write, exactly like the plan caches.
    """

    def __init__(self, isa):
        self.isa = isa
        #: PCs promoted to block entry points (run entries past the run
        #: threshold plus successors of hot branches).
        self.entries: set[int] = set()
        #: Branch PCs the exploration driver reported as hot.
        self.hot_branches: set[int] = set()
        self._entry_runs: dict[int, int] = {}
        #: word -> _BARRIER | (wpc_expr | None, pc_slots frozenset)
        self._step_info: dict[int, tuple] = {}
        #: (domain_key, entry_pc, words) -> Superblock, LRU by reinsertion.
        self._blocks: dict[tuple, Superblock] = {}
        #: (domain_key, entry_pc) -> last Superblock resolved there; a
        #: fast revalidation path that skips re-classification when the
        #: code bytes still match.
        self._by_entry: dict[tuple, Superblock] = {}

    # -- hotness ---------------------------------------------------------

    def note_run_entry(self, pc: int) -> None:
        """Count a run starting at ``pc``; promote it once hot."""
        runs = self._entry_runs.get(pc, 0) + 1
        self._entry_runs[pc] = runs
        if runs >= ENTRY_HOT_RUNS:
            self.entries.add(pc)

    def note_hot_branches(self, pcs) -> None:
        """Record branch PCs the driver measured as hot."""
        self.hot_branches.update(pcs)

    # -- stitching -------------------------------------------------------

    def _classify_word(self, word: int, pc: int) -> tuple:
        """Stitchability of one instruction word (memoized per word).

        Verdicts: :data:`_BARRIER`; ``("plain", wpc_expr | None,
        pc_slots, needs_pc)`` for straight-line instructions; or
        ``("cond", wpc_exprs, fallthrough_possible, pc_slots)`` for
        conditional instructions stitchable along a predicted
        direction — ``wpc_exprs`` are every PC write anywhere in the
        plan and ``fallthrough_possible`` is True when some path through
        the plan writes no PC (so ``pc + 4`` is a possible successor).
        """
        info = self._step_info.get(word)
        if info is not None:
            return info
        try:
            decoded = self.isa.decoder.decode(word, pc)
            plan = self.isa.plan_for(word, decoded.name)
        except IllegalInstruction:
            plan = None
        info = _BARRIER if plan is None else self._classify_steps(plan.steps)
        if len(self._step_info) >= INFO_CACHE_CAPACITY:
            self._step_info.clear()
        self._step_info[word] = info
        return info

    @staticmethod
    def _classify_steps(steps: tuple) -> tuple:
        """Classify a plan's step tree (see :meth:`_classify_word`)."""
        wpc_exprs: list = []
        pc_slots: set = set()
        has_cond = False

        def walk(block: tuple) -> Optional[bool]:
            """Collect info from one arm; returns ``wpc_always`` for
            the arm, or ``None`` to mark the whole plan a barrier."""
            nonlocal has_cond
            wpc_always = False
            for step in block:
                tag = step[0]
                if tag in ("reg", "load", "wreg", "store"):
                    continue
                if tag == "pc":
                    pc_slots.add(step[1])
                    continue
                if tag == "wpc":
                    wpc_exprs.append(step[1])
                    wpc_always = True
                    continue
                if tag == "cond":
                    has_cond = True
                    then_always = walk(step[2])
                    if then_always is None:
                        return None
                    else_always = walk(step[3])
                    if else_always is None:
                        return None
                    if then_always and else_always:
                        wpc_always = True
                    continue
                # ecall / ebreak / fence / unknown: not stitchable.
                return None
            return wpc_always

        wpc_always = walk(steps)
        if wpc_always is None:
            return _BARRIER
        slots = frozenset(pc_slots)
        has_store = _has_store(steps)
        if has_cond:
            return ("cond", tuple(wpc_exprs), not wpc_always, slots, has_store)
        if len(wpc_exprs) > 1:
            return _BARRIER  # two unconditional PC writes: keep it simple
        wpc = wpc_exprs[0] if wpc_exprs else None
        needs_pc = bool(slots) or has_store or any(
            step[0] == "load" for step in steps
        )
        return ("plain", wpc, slots, needs_pc, has_store)

    @staticmethod
    def _successors(
        info: tuple, pc: int
    ) -> Optional[tuple[int, tuple[int, ...]]]:
        """Predicted and alternative successors of a cond instruction.

        Returns ``(predicted, side_exits)``, or ``None`` when any PC
        write's target is data-dependent.  Prediction is the trace-JIT
        rule: a backward target (loop back-edge) is predicted taken,
        otherwise the branch falls through.
        """
        _kind, wpc_exprs, fallthrough, pc_slots = info[:4]
        targets: list = []
        for expr in wpc_exprs:
            target = _static_target(expr, pc_slots, pc)
            if target is None:
                return None
            if target not in targets:
                targets.append(target)
        if fallthrough:
            step_pc = (pc + 4) & _WORD
            if step_pc not in targets:
                targets.append(step_pc)
        predicted = None
        for target in targets:
            if target < pc:
                predicted = target  # backward: a loop back-edge
                break
        if predicted is None:
            predicted = (
                (pc + 4) & _WORD if fallthrough else targets[0]
            )
        return predicted, tuple(t for t in targets if t != predicted)

    def _scan(self, entry_pc: int, memory) -> Optional[tuple]:
        """Walk hot-trace code from ``entry_pc``.

        Straight-line instructions extend the trace; conditional
        instructions extend it along their predicted direction.
        Returns ``(words, exit_pc)`` — ``words`` the stitched ``(pc,
        word)`` pairs — or ``None`` when fewer than
        :data:`MIN_BLOCK_LEN` instructions stitch.
        """
        words: list = []
        seen: set[int] = set()
        pc = entry_pc
        while len(words) < MAX_BLOCK_LEN:
            if pc in seen:
                break  # looped back into the block (a closed hot loop)
            word = memory.read_word(pc)
            info = self._classify_word(word, pc)
            if info is _BARRIER:
                break
            if info[0] == "plain":
                wpc_expr, pc_slots = info[1], info[2]
                if wpc_expr is None:
                    next_pc = (pc + 4) & _WORD
                else:
                    target = _static_target(wpc_expr, pc_slots, pc)
                    if target is None:
                        break  # data-dependent jump (jalr)
                    next_pc = target
            else:
                successors = self._successors(info, pc)
                if successors is None:
                    break  # data-dependent conditional jump
                next_pc = successors[0]
            seen.add(pc)
            words.append((pc, word))
            pc = next_pc
        if len(words) < MIN_BLOCK_LEN:
            return None
        return tuple(words), pc

    def acquire(
        self, entry_pc: int, memory, domain, domain_key: tuple
    ) -> tuple[Optional[Superblock], bool]:
        """The superblock starting at ``entry_pc`` for the current code.

        Returns ``(block, built)``: ``block`` is ``None`` when fewer
        than :data:`MIN_BLOCK_LEN` instructions stitch there, ``built``
        is True only when this call compiled a new block (False for
        cache hits).  The block is always validated against the bytes
        currently in ``memory``.
        """
        fast = self._by_entry.get((domain_key, entry_pc))
        if fast is not None:
            for pc, word in fast.words:
                if memory.read_word(pc) != word:
                    fast = None
                    break
            if fast is not None:
                return fast, False
        scan = self._scan(entry_pc, memory)
        if scan is None:
            return None, False
        words, exit_pc = scan
        key = (domain_key, entry_pc, words)
        blocks = self._blocks
        block = blocks.get(key)
        if block is not None:
            del blocks[key]  # LRU touch: reinsertion order = recency
            blocks[key] = block
            self._by_entry[(domain_key, entry_pc)] = block
            return block, False
        isa = self.isa
        segments: list = []
        side_exits: list = []
        pre_ops: list = []
        pre_count = 0
        n_slots = 1
        for index, (pc, word) in enumerate(words):
            decoded = isa.decoder.decode(word, pc)
            compiled = isa.compiled_plan(word, decoded.name, domain, domain_key)
            if compiled.n_slots > n_slots:
                n_slots = compiled.n_slots
            info = self._classify_word(word, pc)
            next_pc = words[index + 1][0] if index + 1 < len(words) else exit_pc
            if info[0] == "plain":
                if info[3]:  # the plan observes the architectural PC
                    pre_ops.append(_pc_setter(pc))
                pre_ops.extend(compiled.ops)
                pre_count += 1
                if info[4]:  # store: epoch-check boundary (see _has_store)
                    segments.append((
                        tuple(pre_ops), pre_count, -2, next_pc, (), 0,
                    ))
                    pre_ops = []
                    pre_count = 0
            else:
                predicted, exits = self._successors(info, pc)
                side_exits.extend(exits)
                segments.append((
                    tuple(pre_ops),
                    pre_count,
                    pc,
                    (pc + 4) & _WORD,
                    compiled.ops,
                    predicted,
                ))
                pre_ops = []
                pre_count = 0
                if info[4]:
                    segments.append(((), 0, -2, predicted, (), 0))
        if pre_count:
            segments.append((tuple(pre_ops), pre_count, -1, 0, (), exit_pc))
        block = Superblock(
            entry_pc,
            tuple(segments),
            n_slots,
            len(words),
            words,
            exit_pc,
            tuple(side_exits),
        )
        if len(blocks) >= BLOCK_CACHE_CAPACITY:
            del blocks[next(iter(blocks))]
        blocks[key] = block
        self._by_entry[(domain_key, entry_pc)] = block
        return block, True
