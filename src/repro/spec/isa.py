"""Extension registry: composing the base ISA with optional extensions.

RISC-V is modular — a base integer ISA plus ratified/custom extensions.
An :class:`Extension` bundles encodings with their formal semantics; an
:class:`ISA` composes extensions into a decoder plus a semantics lookup.
All execution engines (emulator, BinSym, the baseline engines' lifters)
and the assembler are instantiated with an :class:`ISA` value, so a new
extension (e.g. Sect. IV's Zimadd) propagates everywhere at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from .decoder import Decoder
from .opcodes import RV32I_ENCODINGS, RV32M_ENCODINGS, Encoding

__all__ = ["Extension", "ISA", "rv32i", "rv32im", "rv32im_zimadd"]


@dataclass(frozen=True)
class Extension:
    """A named set of encodings and the matching semantics functions."""

    name: str
    encodings: tuple[Encoding, ...]
    semantics: Mapping[str, Callable]

    def __post_init__(self):
        missing = [e.name for e in self.encodings if e.name not in self.semantics]
        if missing:
            raise ValueError(
                f"extension {self.name}: encodings without semantics: {missing}"
            )


class ISA:
    """A composed instruction set: decoder + semantics registry."""

    def __init__(self, extensions: Iterable[Extension]):
        self.extensions = tuple(extensions)
        encodings: list[Encoding] = []
        semantics: dict[str, Callable] = {}
        for extension in self.extensions:
            encodings.extend(extension.encodings)
            for name, fn in extension.semantics.items():
                if name in semantics:
                    raise ValueError(f"duplicate semantics for {name!r}")
                semantics[name] = fn
        self.encodings = tuple(encodings)
        self.decoder = Decoder(encodings)
        self._semantics = semantics

    @property
    def name(self) -> str:
        return "+".join(ext.name for ext in self.extensions)

    def semantics_for(self, mnemonic: str) -> Callable:
        """The semantics generator function for a mnemonic."""
        return self._semantics[mnemonic.lower()]

    def has_instruction(self, mnemonic: str) -> bool:
        return mnemonic.lower() in self._semantics

    def extended_with(self, extension: Extension) -> "ISA":
        """A new ISA with one more extension (non-destructive)."""
        return ISA(self.extensions + (extension,))

    def mnemonics(self) -> list[str]:
        return sorted(self._semantics)


def rv32i() -> ISA:
    """The RV32I base integer instruction set."""
    # Import the semantics dicts directly from the submodules: the
    # package attribute `rv32i` is shadowed by this factory function.
    from .rv32i import SEMANTICS as base_semantics

    return ISA([Extension("rv32i", RV32I_ENCODINGS, base_semantics)])


def rv32im() -> ISA:
    """RV32I plus the M (multiply/divide) extension."""
    from .rv32i import SEMANTICS as base_semantics
    from .rv32m import SEMANTICS as m_semantics

    return ISA(
        [
            Extension("rv32i", RV32I_ENCODINGS, base_semantics),
            Extension("rv32m", RV32M_ENCODINGS, m_semantics),
        ]
    )


def rv32im_zimadd() -> ISA:
    """RV32IM plus the Sect. IV case-study MADD extension."""
    from . import zimadd

    return rv32im().extended_with(
        Extension("zimadd", zimadd.ENCODINGS, zimadd.SEMANTICS)
    )


def rv32im_zbb() -> ISA:
    """RV32IM plus the (subset) Zbb bit-manipulation extension."""
    from . import zbb

    return rv32im().extended_with(Extension("zbb", zbb.ENCODINGS, zbb.SEMANTICS))
