"""Extension registry: composing the base ISA with optional extensions.

RISC-V is modular — a base integer ISA plus ratified/custom extensions.
An :class:`Extension` bundles encodings with their formal semantics; an
:class:`ISA` composes extensions into a decoder plus a semantics lookup.
All execution engines (emulator, BinSym, the baseline engines' lifters)
and the assembler are instantiated with an :class:`ISA` value, so a new
extension (e.g. Sect. IV's Zimadd) propagates everywhere at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from .decoder import Decoder
from .opcodes import RV32I_ENCODINGS, RV32M_ENCODINGS, Encoding

__all__ = ["Extension", "ISA", "rv32i", "rv32im", "rv32im_zimadd"]


@dataclass(frozen=True)
class Extension:
    """A named set of encodings and the matching semantics functions."""

    name: str
    encodings: tuple[Encoding, ...]
    semantics: Mapping[str, Callable]

    def __post_init__(self):
        missing = [e.name for e in self.encodings if e.name not in self.semantics]
        if missing:
            raise ValueError(
                f"extension {self.name}: encodings without semantics: {missing}"
            )


class ISA:
    """A composed instruction set: decoder + semantics registry."""

    def __init__(self, extensions: Iterable[Extension]):
        self.extensions = tuple(extensions)
        encodings: list[Encoding] = []
        semantics: dict[str, Callable] = {}
        for extension in self.extensions:
            encodings.extend(extension.encodings)
            for name, fn in extension.semantics.items():
                if name in semantics:
                    raise ValueError(f"duplicate semantics for {name!r}")
                semantics[name] = fn
        self.encodings = tuple(encodings)
        self.decoder = Decoder(encodings)
        self._semantics = semantics
        # Staging caches (see repro.spec.staged).  Plans are a pure
        # function of (word, this ISA's semantics) and compiled plans
        # additionally of the domain configuration, so both caches are
        # shared by every interpreter instance over this ISA and are
        # inherited coherently by forked exploration workers.
        self._plan_cache: dict[int, object] = {}
        self._compiled_cache: dict[tuple, object] = {}
        self._superblock_engine = None

    @property
    def name(self) -> str:
        return "+".join(ext.name for ext in self.extensions)

    def semantics_for(self, mnemonic: str) -> Callable:
        """The semantics generator function for a mnemonic."""
        return self._semantics[mnemonic.lower()]

    # ------------------------------------------------------------------
    # Staged execution (PR 3): per-word plans and domain-bound executors
    # ------------------------------------------------------------------

    #: Upper bound on cached plans / compiled plans per ISA.  Distinct
    #: executed instruction words are bounded by the SUT's text segment,
    #: so these caches never churn in practice; the cap is a backstop.
    STAGED_CACHE_CAPACITY = 1 << 17

    def plan_for(self, word: int, mnemonic: str):
        """The recorded :class:`~repro.spec.staged.Plan` for ``word``.

        ``RunIf``/``RunIfElse`` semantics stage as guarded sub-plans;
        ``None`` is returned (and the verdict cached) only when the
        semantics yield a primitive the recorder does not know.
        """
        from .staged import record_plan

        cache = self._plan_cache
        if word in cache:
            return cache[word]
        plan = record_plan(self._semantics[mnemonic], word)
        if len(cache) >= self.STAGED_CACHE_CAPACITY:
            del cache[next(iter(cache))]
        cache[word] = plan
        return plan

    def compiled_plan(self, word: int, mnemonic: str, domain, domain_key: tuple):
        """A :class:`~repro.spec.staged.CompiledPlan` for ``word``.

        ``domain_key`` must uniquely identify the *behaviour* of
        ``domain`` (e.g. ``("sym", force_terms)``): compiled plans are
        shared across interpreter instances whose domains are
        behaviourally identical.  Returns ``None`` for unstageable
        words.
        """
        from .staged import bind_plan

        key = (domain_key, word)
        cache = self._compiled_cache
        if key in cache:
            return cache[key]
        plan = self.plan_for(word, mnemonic)
        compiled = None if plan is None else bind_plan(plan, domain)
        if len(cache) >= self.STAGED_CACHE_CAPACITY:
            del cache[next(iter(cache))]
        cache[key] = compiled
        return compiled

    @property
    def superblocks(self):
        """The :class:`~repro.spec.superblock.SuperblockEngine` of this
        ISA (created lazily).  Like the plan caches above, the engine —
        hotness bookkeeping and compiled blocks — is shared by every
        interpreter over this ISA and fork-inherited by exploration
        workers."""
        engine = self._superblock_engine
        if engine is None:
            from .superblock import SuperblockEngine

            engine = self._superblock_engine = SuperblockEngine(self)
        return engine

    def has_instruction(self, mnemonic: str) -> bool:
        return mnemonic.lower() in self._semantics

    def extended_with(self, extension: Extension) -> "ISA":
        """A new ISA with one more extension (non-destructive)."""
        return ISA(self.extensions + (extension,))

    def mnemonics(self) -> list[str]:
        return sorted(self._semantics)


def rv32i() -> ISA:
    """The RV32I base integer instruction set."""
    # Import the semantics dicts directly from the submodules: the
    # package attribute `rv32i` is shadowed by this factory function.
    from .rv32i import SEMANTICS as base_semantics

    return ISA([Extension("rv32i", RV32I_ENCODINGS, base_semantics)])


def rv32im() -> ISA:
    """RV32I plus the M (multiply/divide) extension."""
    from .rv32i import SEMANTICS as base_semantics
    from .rv32m import SEMANTICS as m_semantics

    return ISA(
        [
            Extension("rv32i", RV32I_ENCODINGS, base_semantics),
            Extension("rv32m", RV32M_ENCODINGS, m_semantics),
        ]
    )


def rv32im_zimadd() -> ISA:
    """RV32IM plus the Sect. IV case-study MADD extension."""
    from . import zimadd

    return rv32im().extended_with(
        Extension("zimadd", zimadd.ENCODINGS, zimadd.SEMANTICS)
    )


def rv32im_zbb() -> ISA:
    """RV32IM plus the (subset) Zbb bit-manipulation extension."""
    from . import zbb

    return rv32im().extended_with(Extension("zbb", zbb.ENCODINGS, zbb.SEMANTICS))
