"""Table-driven instruction decoder generated from encoding tables.

The decoder is *derived* from the riscv-opcodes ``(mask, match)`` table
— no hand-written decode tree — so adding an instruction (e.g. the
Sect. IV ``MADD``) means adding a table entry and nothing else.

Lookup strategy: entries are grouped by mask; decoding probes each mask
group with a dict lookup on ``word & mask``.  There are only a handful
of distinct masks in RV32IM, so this is effectively O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .opcodes import Encoding

__all__ = ["Decoder", "DecodedInstruction", "IllegalInstruction"]


class IllegalInstruction(Exception):
    """Raised when an instruction word matches no known encoding."""

    def __init__(self, word: int, pc: Optional[int] = None):
        self.word = word
        self.pc = pc
        location = f" at pc={pc:#010x}" if pc is not None else ""
        super().__init__(f"illegal instruction {word:#010x}{location}")


@dataclass(frozen=True)
class DecodedInstruction:
    """An instruction word together with its identified encoding."""

    word: int
    encoding: Encoding

    @property
    def name(self) -> str:
        return self.encoding.name

    @property
    def fmt(self) -> str:
        return self.encoding.fmt


class Decoder:
    """Decoder for a set of instruction encodings.

    Successful decodes are memoized in a per-decoder LRU cache (a
    decoder is shared by every interpreter instantiated from one ISA,
    so the cache is effectively process-wide): programs re-execute the
    same instruction words across loop iterations, paths and runs, and
    the mask-group probe only ever runs once per distinct word.  The
    cache is a pure function of the word, so forked exploration workers
    inherit it coherently and extend their copies independently.
    """

    #: Upper bound on cached decoded words (a 128Ki-entry working set
    #: is far beyond any SUT in this repo; eviction is true LRU).
    CACHE_CAPACITY = 1 << 17

    def __init__(self, encodings: Iterable[Encoding]):
        self._groups: dict[int, dict[int, Encoding]] = {}
        self._by_name: dict[str, Encoding] = {}
        for encoding in encodings:
            group = self._groups.setdefault(encoding.mask, {})
            existing = group.get(encoding.match)
            if existing is not None and existing is not encoding:
                raise ValueError(
                    f"conflicting encodings: {existing.name} vs {encoding.name} "
                    f"(mask={encoding.mask:#x}, match={encoding.match:#x})"
                )
            group[encoding.match] = encoding
            self._by_name[encoding.name] = encoding
        # Probe more specific (higher popcount) masks first so that e.g.
        # ecall/ebreak (mask 0xffffffff) win over generic I-type masks.
        self._mask_order = sorted(
            self._groups, key=lambda m: bin(m).count("1"), reverse=True
        )
        # word -> DecodedInstruction, in LRU order (oldest first).
        self._cache: dict[int, DecodedInstruction] = {}

    def decode(self, word: int, pc: Optional[int] = None) -> DecodedInstruction:
        """Decode a 32-bit instruction word or raise IllegalInstruction."""
        cache = self._cache
        cached = cache.get(word)
        if cached is not None:
            # Move-to-end keeps insertion order = recency order.
            del cache[word]
            cache[word] = cached
            return cached
        for mask in self._mask_order:
            encoding = self._groups[mask].get(word & mask)
            if encoding is not None:
                decoded = DecodedInstruction(word, encoding)
                if len(cache) >= self.CACHE_CAPACITY:
                    del cache[next(iter(cache))]
                cache[word] = decoded
                return decoded
        raise IllegalInstruction(word, pc)

    def cache_info(self) -> tuple[int, int]:
        """``(entries, capacity)`` of the decode cache (diagnostics)."""
        return len(self._cache), self.CACHE_CAPACITY

    def cache_clear(self) -> None:
        self._cache.clear()

    def try_decode(self, word: int) -> Optional[DecodedInstruction]:
        """Decode, returning None instead of raising."""
        try:
            return self.decode(word)
        except IllegalInstruction:
            return None

    def by_name(self, name: str) -> Encoding:
        """Look up an encoding by mnemonic (used by the assembler)."""
        return self._by_name[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)
