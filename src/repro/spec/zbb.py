"""Zbb basic bit-manipulation extension (ratified subset).

A second extensibility exercise beyond Sect. IV's MADD, using a *real*
ratified extension: nine R-type instructions from Zbb (riscv-spec
Zbb chapter) with their official encodings.  Every instruction is
expressible in existing DSL primitives — rotates compose from shifts,
min/max from comparisons and ``ite`` — so, as with MADD, the decoder,
assembler, emulator, DIFT and BinSym gain support with zero engine
changes.

The IR-based baseline engines do *not* gain support: their hand-written
lifters have no Zbb translation and raise ``NotImplementedError``.
That asymmetry is the paper's Sect. III argument in executable form —
"the [RISC-V] specification is constantly expanding, requiring binary
analysis tools to catch up" — and `tests/test_zbb_extension.py` pins it.
"""

from __future__ import annotations

from .dsl import write_register
from .expr import (
    And,
    LShr,
    Not,
    Or,
    Shl,
    SLt,
    Sub,
    ULt,
    Xor,
    imm,
    ite,
)
from .opcodes import Encoding
from .primitives import DecodeAndReadRType, WriteRegister

__all__ = ["ENCODINGS", "SEMANTICS"]


def _r(name: str, funct7: int, funct3: int) -> Encoding:
    match = (funct7 << 25) | (funct3 << 12) | 0x33
    return Encoding(name, 0xFE00707F, match, ("rd", "rs1", "rs2"), "r", "zbb")


#: Official Zbb encodings (riscv-opcodes values).
ENCODINGS: tuple[Encoding, ...] = (
    _r("andn", 0x20, 7),
    _r("orn", 0x20, 6),
    _r("xnor", 0x20, 4),
    _r("min", 0x05, 4),
    _r("minu", 0x05, 5),
    _r("max", 0x05, 6),
    _r("maxu", 0x05, 7),
    _r("rol", 0x30, 1),
    _r("ror", 0x30, 5),
)

_SHIFT_MASK = imm(0x1F)


def _logic_negated(op_builder):
    def semantics():
        rs1, rs2, rd = yield DecodeAndReadRType()
        yield WriteRegister(rd, op_builder(rs1, Not(rs2)))

    return semantics


def _xnor():
    rs1, rs2, rd = yield DecodeAndReadRType()
    yield WriteRegister(rd, Not(Xor(rs1, rs2)))


def _select(compare, keep_first: bool):
    def semantics():
        rs1, rs2, rd = yield DecodeAndReadRType()
        first, second = (rs1, rs2) if keep_first else (rs2, rs1)
        yield WriteRegister(rd, ite(compare(rs1, rs2), first, second))

    return semantics


def _rol():
    # Rotate = two complementary shifts; (32 - amt) & 31 makes the
    # amt == 0 case come out right (both halves are rs1 itself).
    rs1, rs2, rd = yield DecodeAndReadRType()
    amount = And(rs2, _SHIFT_MASK)
    complement = And(Sub(imm(32), amount), _SHIFT_MASK)
    rotated = Or(Shl(rs1, amount), LShr(rs1, complement))
    yield WriteRegister(rd, rotated)


def _ror():
    rs1, rs2, rd = yield DecodeAndReadRType()
    amount = And(rs2, _SHIFT_MASK)
    complement = And(Sub(imm(32), amount), _SHIFT_MASK)
    rotated = Or(LShr(rs1, amount), Shl(rs1, complement))
    yield WriteRegister(rd, rotated)


SEMANTICS = {
    "andn": _logic_negated(And),
    "orn": _logic_negated(Or),
    "xnor": _xnor,
    "min": _select(SLt, keep_first=True),
    "minu": _select(ULt, keep_first=True),
    "max": _select(SLt, keep_first=False),
    "maxu": _select(ULt, keep_first=False),
    "rol": _rol,
    "ror": _ror,
}
