"""Executable formal ISA specification for RV32IM (+ extensions).

The Python analogue of LibRISCV: instruction behaviour is described
once, abstractly, in a two-layer DSL —

* :mod:`repro.spec.expr` — pure arithmetic/logic expressions over
  abstract operands,
* :mod:`repro.spec.primitives` — stateful primitives (register file,
  memory, PC, control flow, environment calls),

and *modular interpreters* give the primitives meaning.  Encodings come
from riscv-opcodes style ``(mask, match)`` tables
(:mod:`repro.spec.opcodes`) from which the decoder is derived
(:mod:`repro.spec.decoder`).  :mod:`repro.spec.isa` composes base ISA
and extensions; :mod:`repro.spec.zimadd` is the paper's Sect. IV custom
instruction case study.  :mod:`repro.spec.staged` partially evaluates
the specification into cached per-instruction executors (PR 3) without
changing the DSL the semantics are written in.
"""

from . import expr, fields, primitives
from .decoder import DecodedInstruction, Decoder, IllegalInstruction
from .dsl import Handler, execute_semantics
from .staged import CompiledPlan, Plan, bind_plan, compile_expr, record_plan
from .isa import ISA, Extension, rv32i, rv32im, rv32im_zbb, rv32im_zimadd
from .opcodes import (
    RV32I_ENCODINGS,
    RV32M_ENCODINGS,
    Encoding,
    encoding_from_yaml,
    encodings_from_yaml,
)

__all__ = [
    "expr",
    "fields",
    "primitives",
    "Decoder",
    "DecodedInstruction",
    "IllegalInstruction",
    "Handler",
    "execute_semantics",
    "Plan",
    "CompiledPlan",
    "record_plan",
    "compile_expr",
    "bind_plan",
    "ISA",
    "Extension",
    "rv32i",
    "rv32im",
    "rv32im_zbb",
    "rv32im_zimadd",
    "Encoding",
    "RV32I_ENCODINGS",
    "RV32M_ENCODINGS",
    "encoding_from_yaml",
    "encodings_from_yaml",
]
