"""Formal semantics of the RV32M multiply/divide extension.

The division instructions spell out the ISA-mandated edge cases with
explicit ``RunIfElse`` (divide-by-zero yields all-ones / the dividend;
signed overflow yields INT_MIN / zero — RISC-V spec Sect. 7.2), exactly
like the paper's Fig. 2 ``DIVU`` description.  Because the edge cases go
through ``RunIfElse``, a symbolic divisor *forks the execution* — the
behaviour Sect. III-B of the paper describes.

The high-multiply instructions build 64-bit intermediates with
``sext``/``zext`` and slice the upper half, following the LibRISCV
modelling of MULH*.
"""

from __future__ import annotations

from .dsl import write_register
from .expr import (
    And,
    EqInt,
    Mul,
    SDiv,
    SRem,
    UDiv,
    URem,
    extract,
    imm,
    sext,
    zext,
)
from .primitives import DecodeAndReadRType, RunIfElse

__all__ = ["SEMANTICS"]

_INT_MIN = 0x80000000
_ALL_ONES = 0xFFFFFFFF


def _mul():
    rs1, rs2, rd = yield DecodeAndReadRType()
    yield from _write(rd, Mul(rs1, rs2))


def _mulh():
    rs1, rs2, rd = yield DecodeAndReadRType()
    product = Mul(sext(rs1, 32), sext(rs2, 32))
    yield from _write(rd, extract(product, 63, 32))


def _mulhu():
    rs1, rs2, rd = yield DecodeAndReadRType()
    product = Mul(zext(rs1, 32), zext(rs2, 32))
    yield from _write(rd, extract(product, 63, 32))


def _mulhsu():
    rs1, rs2, rd = yield DecodeAndReadRType()
    product = Mul(sext(rs1, 32), zext(rs2, 32))
    yield from _write(rd, extract(product, 63, 32))


def _write(rd, value):
    from .primitives import WriteRegister

    yield WriteRegister(rd, value)


def _divu():
    # Verbatim structure of the paper's Fig. 2 step 4.
    rs1, rs2, rd = yield DecodeAndReadRType()
    yield RunIfElse(
        EqInt(rs2, imm(0)),
        write_register(rd, imm(_ALL_ONES)),
        write_register(rd, UDiv(rs1, rs2)),
    )


def _remu():
    rs1, rs2, rd = yield DecodeAndReadRType()
    yield RunIfElse(
        EqInt(rs2, imm(0)),
        write_register(rd, rs1),
        write_register(rd, URem(rs1, rs2)),
    )


def _div():
    rs1, rs2, rd = yield DecodeAndReadRType()
    overflow = And(EqInt(rs1, imm(_INT_MIN)), EqInt(rs2, imm(_ALL_ONES)))

    def non_zero_case():
        yield RunIfElse(
            overflow,
            write_register(rd, imm(_INT_MIN)),
            write_register(rd, SDiv(rs1, rs2)),
        )

    yield RunIfElse(
        EqInt(rs2, imm(0)),
        write_register(rd, imm(_ALL_ONES)),
        non_zero_case,
    )


def _rem():
    rs1, rs2, rd = yield DecodeAndReadRType()
    overflow = And(EqInt(rs1, imm(_INT_MIN)), EqInt(rs2, imm(_ALL_ONES)))

    def non_zero_case():
        yield RunIfElse(
            overflow,
            write_register(rd, imm(0)),
            write_register(rd, SRem(rs1, rs2)),
        )

    yield RunIfElse(
        EqInt(rs2, imm(0)),
        write_register(rd, rs1),
        non_zero_case,
    )


SEMANTICS = {
    "mul": _mul,
    "mulh": _mulh,
    "mulhsu": _mulhsu,
    "mulhu": _mulhu,
    "div": _div,
    "divu": _divu,
    "rem": _rem,
    "remu": _remu,
}
