"""Minimal YAML subset parser for riscv-opcodes instruction descriptions.

PyYAML is not available offline, and the Fig. 3 instruction descriptions
only use a small YAML subset: a top-level mapping of instruction names
to nested mappings with scalar or flow-list values.  This module parses
exactly that subset::

    madd:
      encoding: '-----01------------------1000011'
      extension: [rv_zimadd]
      mask: '0x600007f'
      match: '0x2000043'
      variable_fields: [rd, rs1, rs2, rs3]

Scalars keep their string form except for unquoted ints/bools; quoting
with single or double quotes is honoured; ``[a, b]`` flow lists are
supported.  Comments (``# ...``) and blank lines are ignored.
"""

from __future__ import annotations

__all__ = ["parse_yaml", "YamlError"]


class YamlError(ValueError):
    """Raised on input outside the supported YAML subset."""


def _parse_scalar(text: str):
    text = text.strip()
    if not text:
        return ""
    if text[0] in "'\"":
        quote = text[0]
        if len(text) < 2 or text[-1] != quote:
            raise YamlError(f"unterminated quoted scalar: {text!r}")
        return text[1:-1]
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(item) for item in _split_flow_list(inner)]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~"):
        return None
    try:
        return int(text, 0)
    except ValueError:
        return text


def _split_flow_list(inner: str) -> list[str]:
    items = []
    depth = 0
    current = []
    quote = None
    for char in inner:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current))
    return items


def _strip_comment(line: str) -> str:
    out = []
    quote = None
    for char in line:
        if quote:
            out.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            out.append(char)
        elif char == "#":
            break
        else:
            out.append(char)
    return "".join(out)


def parse_yaml(text: str) -> dict:
    """Parse the supported YAML subset into nested dicts/lists/scalars."""
    root: dict = {}
    # Stack of (indent, mapping) pairs for nesting.
    stack: list[tuple[int, dict]] = [(-1, root)]
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).rstrip()
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip(" "))
        content = line.strip()
        if ":" not in content:
            raise YamlError(f"line {line_number}: expected 'key: value'")
        key, _, value_text = content.partition(":")
        key = key.strip()
        if key.startswith("'") or key.startswith('"'):
            key = key[1:-1]
        while stack and indent <= stack[-1][0]:
            stack.pop()
        if not stack:
            raise YamlError(f"line {line_number}: bad indentation")
        parent = stack[-1][1]
        if value_text.strip():
            parent[key] = _parse_scalar(value_text)
        else:
            child: dict = {}
            parent[key] = child
            stack.append((indent, child))
    return root
