"""Formal semantics of the RV32I base instruction set.

Every instruction is a generator function over the specification DSL
(:mod:`repro.spec.dsl`), expressed purely in terms of the language
primitives — exactly the structure of the paper's Fig. 2 step 4.  The
semantics follow the RISC-V Unprivileged ISA Specification, Document
Version 20191213, Chapter 2.

None of the functions here computes a value: arithmetic is *described*
with the expression DSL and interpreted later (concretely or
symbolically).  This is the single authoritative description of RV32I in
the repository — the decoder, the emulator, all four SE engines and the
differential lifter tester derive their behaviour from it.
"""

from __future__ import annotations

from .expr import (
    Add,
    And,
    AShr,
    EqInt,
    LShr,
    NeqInt,
    Or,
    SGe,
    Shl,
    SLt,
    Sub,
    UGe,
    ULt,
    Xor,
    extract,
    imm,
    zext,
    sext_to,
    zext_to,
)
from .primitives import (
    DecodeAndReadBType,
    DecodeAndReadIType,
    DecodeAndReadRType,
    DecodeAndReadSType,
    DecodeAndReadShamt,
    DecodeJType,
    DecodeUType,
    Ebreak,
    Ecall,
    Fence,
    LoadMem,
    ReadPC,
    RunIf,
    RunIfElse,
    StoreMem,
    WritePC,
    WriteRegister,
)
from .dsl import write_pc

__all__ = ["SEMANTICS"]

_SHIFT_MASK = imm(0x1F)


# ---------------------------------------------------------------------------
# Upper-immediate and jump instructions
# ---------------------------------------------------------------------------


def _lui():
    value, rd = yield DecodeUType()
    yield WriteRegister(rd, value)


def _auipc():
    value, rd = yield DecodeUType()
    pc = yield ReadPC()
    yield WriteRegister(rd, Add(pc, value))


def _jal():
    offset, rd = yield DecodeJType()
    pc = yield ReadPC()
    yield WriteRegister(rd, Add(pc, imm(4)))
    yield WritePC(Add(pc, offset))


def _jalr():
    offset, rs1, rd = yield DecodeAndReadIType()
    pc = yield ReadPC()
    # Target: (rs1 + imm) with the lowest bit cleared (spec Sect. 2.5).
    target = And(Add(rs1, offset), imm(0xFFFFFFFE))
    yield WriteRegister(rd, Add(pc, imm(4)))
    yield WritePC(target)


# ---------------------------------------------------------------------------
# Conditional branches
# ---------------------------------------------------------------------------


def _branch(condition_builder):
    def semantics():
        offset, rs1, rs2 = yield DecodeAndReadBType()
        pc = yield ReadPC()
        yield RunIf(condition_builder(rs1, rs2), write_pc(Add(pc, offset)))

    return semantics


_beq = _branch(EqInt)
_bne = _branch(NeqInt)
_blt = _branch(SLt)
_bge = _branch(SGe)
_bltu = _branch(ULt)
_bgeu = _branch(UGe)


# ---------------------------------------------------------------------------
# Loads and stores
# ---------------------------------------------------------------------------


def _load(width: int, signed: bool):
    def semantics():
        offset, rs1, rd = yield DecodeAndReadIType()
        address = Add(rs1, offset)
        raw = yield LoadMem(width, address)
        # Register writeback extends the memory lane to XLEN=32; getting
        # this extension wrong is angr lifter bug #3.
        value = sext_to(raw, 32) if signed else zext_to(raw, 32)
        yield WriteRegister(rd, value)

    return semantics


_lb = _load(8, signed=True)
_lh = _load(16, signed=True)
_lw = _load(32, signed=True)
_lbu = _load(8, signed=False)
_lhu = _load(16, signed=False)


def _store(width: int):
    def semantics():
        offset, rs1, rs2 = yield DecodeAndReadSType()
        address = Add(rs1, offset)
        value = extract(rs2, width - 1, 0) if width < 32 else rs2
        yield StoreMem(width, address, value)

    return semantics


_sb = _store(8)
_sh = _store(16)
_sw = _store(32)


# ---------------------------------------------------------------------------
# Integer register-immediate instructions
# ---------------------------------------------------------------------------


def _op_imm(op_builder):
    def semantics():
        immediate, rs1, rd = yield DecodeAndReadIType()
        yield WriteRegister(rd, op_builder(rs1, immediate))

    return semantics


_addi = _op_imm(Add)
_xori = _op_imm(Xor)
_ori = _op_imm(Or)
_andi = _op_imm(And)


def _slti():
    immediate, rs1, rd = yield DecodeAndReadIType()
    yield WriteRegister(rd, zext(SLt(rs1, immediate), 31))


def _sltiu():
    immediate, rs1, rd = yield DecodeAndReadIType()
    yield WriteRegister(rd, zext(ULt(rs1, immediate), 31))


def _shift_imm(op_builder):
    def semantics():
        # The shift amount is an unsigned 5-bit field: angr lifter bug #4
        # sign-extended it, turning e.g. `x << 31` into `x << -1`.
        shamt, rs1, rd = yield DecodeAndReadShamt()
        yield WriteRegister(rd, op_builder(rs1, shamt))

    return semantics


_slli = _shift_imm(Shl)
_srli = _shift_imm(LShr)
_srai = _shift_imm(AShr)


# ---------------------------------------------------------------------------
# Integer register-register instructions
# ---------------------------------------------------------------------------


def _op(op_builder):
    def semantics():
        rs1, rs2, rd = yield DecodeAndReadRType()
        yield WriteRegister(rd, op_builder(rs1, rs2))

    return semantics


_add = _op(Add)
_sub = _op(Sub)
_xor = _op(Xor)
_or = _op(Or)
_and = _op(And)


def _slt():
    rs1, rs2, rd = yield DecodeAndReadRType()
    yield WriteRegister(rd, zext(SLt(rs1, rs2), 31))


def _sltu():
    rs1, rs2, rd = yield DecodeAndReadRType()
    yield WriteRegister(rd, zext(ULt(rs1, rs2), 31))


def _shift_reg(op_builder):
    def semantics():
        # Shift amount is the *low five bits of the rs2 value*; angr
        # lifter bug #2 used bits of the rs2 register index instead.
        rs1, rs2, rd = yield DecodeAndReadRType()
        yield WriteRegister(rd, op_builder(rs1, And(rs2, _SHIFT_MASK)))

    return semantics


_sll = _shift_reg(Shl)
_srl = _shift_reg(LShr)
# SRA's arithmetic (sign-propagating) shift is angr lifter bug #1: the
# lifter modelled it with a logical shift for some operand shapes.
_sra = _shift_reg(AShr)


# ---------------------------------------------------------------------------
# System instructions
# ---------------------------------------------------------------------------


def _fence():
    yield Fence()


def _ecall():
    yield Ecall()


def _ebreak():
    yield Ebreak()


SEMANTICS = {
    "lui": _lui,
    "auipc": _auipc,
    "jal": _jal,
    "jalr": _jalr,
    "beq": _beq,
    "bne": _bne,
    "blt": _blt,
    "bge": _bge,
    "bltu": _bltu,
    "bgeu": _bgeu,
    "lb": _lb,
    "lh": _lh,
    "lw": _lw,
    "lbu": _lbu,
    "lhu": _lhu,
    "sb": _sb,
    "sh": _sh,
    "sw": _sw,
    "addi": _addi,
    "slti": _slti,
    "sltiu": _sltiu,
    "xori": _xori,
    "ori": _ori,
    "andi": _andi,
    "slli": _slli,
    "srli": _srli,
    "srai": _srai,
    "add": _add,
    "sub": _sub,
    "sll": _sll,
    "slt": _slt,
    "sltu": _sltu,
    "xor": _xor,
    "srl": _srl,
    "sra": _sra,
    "or": _or,
    "and": _and,
    "fence": _fence,
    "ecall": _ecall,
    "ebreak": _ebreak,
}
