"""Stateful language primitives of the formal ISA specification.

These are the effectful half of the specification DSL — the operations
the paper's Fig. 2 sketches (``WriteRegister``, ``runIfElse``, ...).
Instruction semantics are Python generator functions that *yield*
primitive instances and receive the interpreter's answer back from
``yield``; the interpreters in :mod:`repro.concrete` and
:mod:`repro.core` give the primitives meaning (a free-monad structure,
exactly like LibRISCV's ``Operations`` functor).

Operand values travelling through the primitives are specification
expressions (:mod:`repro.spec.expr`), keeping the semantics fully
abstract over the value representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .expr import Expr

__all__ = [
    "Primitive",
    "DecodeAndReadRType",
    "DecodeAndReadR4Type",
    "DecodeAndReadIType",
    "DecodeAndReadShamt",
    "DecodeAndReadSType",
    "DecodeAndReadBType",
    "DecodeUType",
    "DecodeJType",
    "ReadRegister",
    "WriteRegister",
    "ReadPC",
    "WritePC",
    "LoadMem",
    "StoreMem",
    "RunIf",
    "RunIfElse",
    "Ecall",
    "Ebreak",
    "Fence",
]


class Primitive:
    """Base class of all stateful specification primitives."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Operand decoding (decode-and-read, like LibRISCV's decodeAndReadRType)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DecodeAndReadRType(Primitive):
    """Yields ``(rs1_val, rs2_val, rd_index)`` for an R-type instruction."""


@dataclass(frozen=True)
class DecodeAndReadR4Type(Primitive):
    """Yields ``(rs1_val, rs2_val, rs3_val, rd_index)`` (R4-type)."""


@dataclass(frozen=True)
class DecodeAndReadIType(Primitive):
    """Yields ``(imm_expr, rs1_val, rd_index)``; imm is sign-extended."""


@dataclass(frozen=True)
class DecodeAndReadShamt(Primitive):
    """Yields ``(shamt_expr, rs1_val, rd_index)`` for immediate shifts.

    The shift amount is the *unsigned* 5-bit immediate field — the exact
    spot where angr's lifter bug #4 treated it as signed.
    """


@dataclass(frozen=True)
class DecodeAndReadSType(Primitive):
    """Yields ``(imm_expr, rs1_val, rs2_val)`` for stores."""


@dataclass(frozen=True)
class DecodeAndReadBType(Primitive):
    """Yields ``(imm_expr, rs1_val, rs2_val)`` for conditional branches."""


@dataclass(frozen=True)
class DecodeUType(Primitive):
    """Yields ``(imm_expr, rd_index)``; imm already shifted left by 12."""


@dataclass(frozen=True)
class DecodeJType(Primitive):
    """Yields ``(imm_expr, rd_index)`` for JAL."""


# ---------------------------------------------------------------------------
# Machine state access
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadRegister(Primitive):
    """Yields the value of register ``index`` as an expression leaf."""

    index: int


@dataclass(frozen=True)
class WriteRegister(Primitive):
    """Writes ``value`` to register ``index`` (x0 writes are discarded)."""

    index: int
    value: Expr


@dataclass(frozen=True)
class ReadPC(Primitive):
    """Yields the current program counter as an expression leaf."""


@dataclass(frozen=True)
class WritePC(Primitive):
    """Sets the next program counter (overrides the implicit pc+4)."""

    value: Expr


@dataclass(frozen=True)
class LoadMem(Primitive):
    """Yields the raw ``width``-bit value at ``addr`` (no extension)."""

    width: int  # 8, 16 or 32
    addr: Expr


@dataclass(frozen=True)
class StoreMem(Primitive):
    """Stores the low ``width`` bits of ``value`` at ``addr``."""

    width: int
    addr: Expr
    value: Expr


# ---------------------------------------------------------------------------
# Control flow and environment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunIf(Primitive):
    """Run ``block`` iff ``cond`` holds (the paper's ``runIfElse`` without
    an else branch).  ``block`` is a thunk returning a sub-generator."""

    cond: Expr
    block: Callable

    # dataclass with a callable field: compare by identity
    def __hash__(self) -> int:  # pragma: no cover - trivial
        return id(self)


@dataclass(frozen=True)
class RunIfElse(Primitive):
    """Run ``then_block`` if ``cond`` holds, otherwise ``else_block``."""

    cond: Expr
    then_block: Callable
    else_block: Callable

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return id(self)


@dataclass(frozen=True)
class Ecall(Primitive):
    """Environment call — interpretation is delegated to the platform."""


@dataclass(frozen=True)
class Ebreak(Primitive):
    """Breakpoint — the evaluation harness treats it as assertion failure."""


@dataclass(frozen=True)
class Fence(Primitive):
    """Memory ordering fence — a no-op for all interpreters in this repo."""
