"""Pure operand-expression DSL of the formal ISA specification.

This is the arithmetic/logic half of the specification's *language
primitives* (the paper's ``EqInt``, ``UDiv``, ``Mul``, ``sext`` ...).
Instruction semantics build these expression trees over abstract operand
leaves; they never compute values themselves.  Each *modular interpreter*
supplies an evaluation :class:`Domain` — the concrete interpreter maps
the ops to Python integer arithmetic, BinSym's symbolic interpreter maps
them to SMT terms.

Expressions are width-annotated (registers are 32-bit, multiplication
intermediates 64-bit, memory lanes 8/16-bit), mirroring the strongly
typed embedding of LibRISCV in Haskell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Optional, Protocol, TypeVar

__all__ = [
    "Expr",
    "Val",
    "Imm",
    "SlotRef",
    "BinOp",
    "UnOp",
    "Ext",
    "Extract",
    "Ite",
    "Domain",
    "eval_expr",
    "BINARY_OPS",
    "COMPARISON_OPS",
    # constructor helpers (the names the semantics modules use)
    "imm",
    "Add",
    "Sub",
    "Mul",
    "UDiv",
    "SDiv",
    "URem",
    "SRem",
    "And",
    "Or",
    "Xor",
    "Shl",
    "LShr",
    "AShr",
    "EqInt",
    "NeqInt",
    "ULt",
    "ULe",
    "UGe",
    "UGt",
    "SLt",
    "SLe",
    "SGe",
    "SGt",
    "Not",
    "Neg",
    "sext",
    "zext",
    "sext_to",
    "zext_to",
    "extract",
    "extract32",
    "ite",
]

V = TypeVar("V")

#: Binary operations producing a value of the operand width.
BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "udiv",
        "sdiv",
        "urem",
        "srem",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
    }
)

#: Binary operations producing a boolean (1-bit condition).
COMPARISON_OPS = frozenset({"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"})


class Expr:
    """Base class of specification expressions.

    ``width`` is the bit width of the produced value; comparison
    expressions have width 1 (conditions).
    """

    __slots__ = ()
    width: int


@dataclass(frozen=True)
class Val(Expr):
    """A leaf holding an interpreter-domain value (register/memory read)."""

    value: Any
    width: int


@dataclass(frozen=True)
class Imm(Expr):
    """An immediate constant of the given width."""

    value: int
    width: int


@dataclass(frozen=True)
class SlotRef(Expr):
    """An abstract operand leaf used by staged plans (:mod:`.staged`).

    During plan recording the staging handler answers decode/read
    primitives with ``SlotRef`` leaves instead of concrete ``Val``
    leaves; at replay time the compiled executor resolves slot ``slot``
    from the per-execution environment.  ``SlotRef`` never reaches
    :func:`eval_expr` — recording aborts before a slot-bearing
    expression can leak into the interpretive path.
    """

    slot: int
    width: int


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; ``op`` is one of BINARY_OPS or COMPARISON_OPS."""

    op: str
    lhs: Expr
    rhs: Expr
    width: int


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation: ``not`` (bitwise) or ``neg`` (two's complement)."""

    op: str
    arg: Expr
    width: int


@dataclass(frozen=True)
class Ext(Expr):
    """Zero/sign extension of ``arg`` by ``amount`` additional bits."""

    kind: str  # "zext" | "sext"
    arg: Expr
    amount: int
    width: int


@dataclass(frozen=True)
class Extract(Expr):
    """Bit slice [high:low] of ``arg`` (inclusive bounds, LSB = 0)."""

    arg: Expr
    high: int
    low: int
    width: int


@dataclass(frozen=True)
class Ite(Expr):
    """Value-level if-then-else on a width-1 condition."""

    cond: Expr
    then_expr: Expr
    else_expr: Expr
    width: int


class Domain(Protocol[V]):
    """Evaluation domain an interpreter plugs into :func:`eval_expr`."""

    def const(self, value: int, width: int) -> V: ...

    def from_leaf(self, value: Any, width: int) -> V: ...

    def binop(self, op: str, lhs: V, rhs: V, width: int) -> V: ...

    def cmpop(self, op: str, lhs: V, rhs: V, width: int) -> V: ...

    def unop(self, op: str, arg: V, width: int) -> V: ...

    def ext(self, kind: str, arg: V, amount: int, from_width: int) -> V: ...

    def extract(self, arg: V, high: int, low: int) -> V: ...

    def ite(self, cond: V, then_value: V, else_value: V, width: int) -> V: ...


def eval_expr(expr: Expr, domain: Domain) -> Any:
    """Evaluate a specification expression in the given domain."""
    if isinstance(expr, Val):
        return domain.from_leaf(expr.value, expr.width)
    if isinstance(expr, Imm):
        return domain.const(expr.value, expr.width)
    if isinstance(expr, BinOp):
        lhs = eval_expr(expr.lhs, domain)
        rhs = eval_expr(expr.rhs, domain)
        if expr.op in COMPARISON_OPS:
            return domain.cmpop(expr.op, lhs, rhs, expr.lhs.width)
        return domain.binop(expr.op, lhs, rhs, expr.width)
    if isinstance(expr, UnOp):
        return domain.unop(expr.op, eval_expr(expr.arg, domain), expr.width)
    if isinstance(expr, Ext):
        return domain.ext(
            expr.kind, eval_expr(expr.arg, domain), expr.amount, expr.arg.width
        )
    if isinstance(expr, Extract):
        return domain.extract(eval_expr(expr.arg, domain), expr.high, expr.low)
    if isinstance(expr, Ite):
        return domain.ite(
            eval_expr(expr.cond, domain),
            eval_expr(expr.then_expr, domain),
            eval_expr(expr.else_expr, domain),
            expr.width,
        )
    if isinstance(expr, SlotRef):
        raise TypeError(
            f"staged slot {expr!r} leaked into eval_expr; "
            "slot-bearing expressions are replayed via repro.spec.staged"
        )
    raise TypeError(f"not a specification expression: {expr!r}")


# ---------------------------------------------------------------------------
# Constructor helpers — the vocabulary used by the semantics modules.
# The capitalized names deliberately mirror the paper's DSL (Fig. 2/4).
# ---------------------------------------------------------------------------


def imm(value: int, width: int = 32) -> Imm:
    """Immediate constant (defaults to register width)."""
    return Imm(value & ((1 << width) - 1), width)


def _binop(op: str) -> Callable[[Expr, Expr], BinOp]:
    def build(lhs: Expr, rhs: Expr) -> BinOp:
        if lhs.width != rhs.width:
            raise TypeError(
                f"{op}: operand width mismatch {lhs.width} vs {rhs.width}"
            )
        return BinOp(op, lhs, rhs, lhs.width)

    build.__name__ = op
    return build


def _cmpop(op: str) -> Callable[[Expr, Expr], BinOp]:
    def build(lhs: Expr, rhs: Expr) -> BinOp:
        if lhs.width != rhs.width:
            raise TypeError(
                f"{op}: operand width mismatch {lhs.width} vs {rhs.width}"
            )
        return BinOp(op, lhs, rhs, 1)

    build.__name__ = op
    return build


Add = _binop("add")
Sub = _binop("sub")
Mul = _binop("mul")
UDiv = _binop("udiv")
SDiv = _binop("sdiv")
URem = _binop("urem")
SRem = _binop("srem")
And = _binop("and")
Or = _binop("or")
Xor = _binop("xor")
Shl = _binop("shl")
LShr = _binop("lshr")
AShr = _binop("ashr")

EqInt = _cmpop("eq")
NeqInt = _cmpop("ne")
ULt = _cmpop("ult")
ULe = _cmpop("ule")
UGt = _cmpop("ugt")
UGe = _cmpop("uge")
SLt = _cmpop("slt")
SLe = _cmpop("sle")
SGt = _cmpop("sgt")
SGe = _cmpop("sge")


def Not(arg: Expr) -> UnOp:
    return UnOp("not", arg, arg.width)


def Neg(arg: Expr) -> UnOp:
    return UnOp("neg", arg, arg.width)


def sext(arg: Expr, amount: int) -> Ext:
    """Sign-extend by ``amount`` additional bits."""
    return Ext("sext", arg, amount, arg.width + amount)


def zext(arg: Expr, amount: int) -> Ext:
    """Zero-extend by ``amount`` additional bits."""
    return Ext("zext", arg, amount, arg.width + amount)


def sext_to(arg: Expr, width: int) -> Expr:
    """Sign-extend to an absolute target width (no-op if already there)."""
    if width < arg.width:
        raise TypeError("sext_to cannot shrink")
    if width == arg.width:
        return arg
    return sext(arg, width - arg.width)


def zext_to(arg: Expr, width: int) -> Expr:
    """Zero-extend to an absolute target width (no-op if already there)."""
    if width < arg.width:
        raise TypeError("zext_to cannot shrink")
    if width == arg.width:
        return arg
    return zext(arg, width - arg.width)


def extract(arg: Expr, high: int, low: int) -> Extract:
    if not (0 <= low <= high < arg.width):
        raise TypeError(f"extract [{high}:{low}] out of range for {arg.width}")
    return Extract(arg, high, low, high - low + 1)


def extract32(low: int, arg: Expr) -> Expr:
    """The paper's ``extract32``: a 32-bit slice starting at ``low``."""
    return extract(arg, low + 31, low)


def ite(cond: Expr, then_expr: Expr, else_expr: Expr) -> Ite:
    if then_expr.width != else_expr.width:
        raise TypeError("ite branch width mismatch")
    if cond.width != 1:
        raise TypeError("ite condition must have width 1")
    return Ite(cond, then_expr, else_expr, then_expr.width)
