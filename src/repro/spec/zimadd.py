"""Case-study extension Zimadd: the custom MADD instruction (Sect. IV).

Reproduces the paper's extensibility experiment end to end:

* Fig. 3 — the instruction *encoding* is given in riscv-opcodes YAML and
  parsed by :func:`repro.spec.opcodes.encodings_from_yaml`;
* Fig. 4 — the instruction *semantics* are 7 lines over the existing
  specification primitives.

No interpreter (concrete or symbolic) changes are needed to execute the
new instruction — the point of the case study.
"""

from __future__ import annotations

from .expr import Add, Mul, extract32, sext
from .opcodes import encodings_from_yaml
from .primitives import DecodeAndReadR4Type, WriteRegister

__all__ = ["MADD_YAML", "ENCODINGS", "SEMANTICS"]

#: Verbatim Fig. 3: the YAML riscv-opcodes description of MADD.
MADD_YAML = """\
madd:
  encoding: '-----01------------------1000011'
  extension: [rv_zimadd]
  mask: '0x600007f'
  match: '0x2000043'
  variable_fields: [rd, rs1, rs2, rs3]
"""

ENCODINGS = tuple(encodings_from_yaml(MADD_YAML))


def _madd():
    # Fig. 4: (rs1 * rs2) + rs3 with a 64-bit intermediate product.
    rs1, rs2, rs3, rd = yield DecodeAndReadR4Type()
    mult_result = Mul(sext(rs1, 32), sext(rs2, 32))
    mult_trunc = extract32(0, mult_result)
    yield WriteRegister(rd, Add(mult_trunc, rs3))


SEMANTICS = {"madd": _madd}
