"""Instruction field and immediate extraction for the RV32 base formats.

Pure functions from a 32-bit instruction word to operand fields.  These
implement the bit slicing mandated by the RISC-V unprivileged
specification (Document 20191213, Sect. 2.2/2.3).  Immediates are
returned *sign-extended* as unsigned 32-bit values (two's complement),
except for the U-type immediate which is already placed in bits 31:12.
"""

from __future__ import annotations

__all__ = [
    "rd",
    "rs1",
    "rs2",
    "rs3",
    "funct3",
    "funct7",
    "opcode",
    "shamt",
    "imm_i",
    "imm_s",
    "imm_b",
    "imm_u",
    "imm_j",
    "sign_extend",
]

_WORD_MASK = 0xFFFFFFFF


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend ``value`` from ``bits`` to 32 bits (unsigned result)."""
    sign = 1 << (bits - 1)
    if value & sign:
        value |= _WORD_MASK ^ ((1 << bits) - 1)
    return value & _WORD_MASK


def opcode(insn: int) -> int:
    return insn & 0x7F


def rd(insn: int) -> int:
    return (insn >> 7) & 0x1F


def rs1(insn: int) -> int:
    return (insn >> 15) & 0x1F


def rs2(insn: int) -> int:
    return (insn >> 20) & 0x1F


def rs3(insn: int) -> int:
    return (insn >> 27) & 0x1F


def funct3(insn: int) -> int:
    return (insn >> 12) & 0x7


def funct7(insn: int) -> int:
    return (insn >> 25) & 0x7F


def shamt(insn: int) -> int:
    """Unsigned 5-bit shift amount of immediate shifts (RV32)."""
    return (insn >> 20) & 0x1F


def imm_i(insn: int) -> int:
    """I-type immediate: insn[31:20], sign-extended."""
    return sign_extend((insn >> 20) & 0xFFF, 12)


def imm_s(insn: int) -> int:
    """S-type immediate: insn[31:25] ++ insn[11:7], sign-extended."""
    value = ((insn >> 25) << 5) | ((insn >> 7) & 0x1F)
    return sign_extend(value & 0xFFF, 12)


def imm_b(insn: int) -> int:
    """B-type immediate (branch offset, always even), sign-extended."""
    value = (
        (((insn >> 31) & 0x1) << 12)
        | (((insn >> 7) & 0x1) << 11)
        | (((insn >> 25) & 0x3F) << 5)
        | (((insn >> 8) & 0xF) << 1)
    )
    return sign_extend(value, 13)


def imm_u(insn: int) -> int:
    """U-type immediate: upper 20 bits, low 12 bits zero."""
    return insn & 0xFFFFF000


def imm_j(insn: int) -> int:
    """J-type immediate (JAL offset), sign-extended."""
    value = (
        (((insn >> 31) & 0x1) << 20)
        | (((insn >> 12) & 0xFF) << 12)
        | (((insn >> 20) & 0x1) << 11)
        | (((insn >> 21) & 0x3FF) << 1)
    )
    return sign_extend(value, 21)
