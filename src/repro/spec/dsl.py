"""Free-monad machinery: driving semantics generators over a handler.

Instruction semantics are Python *generator functions*: they ``yield``
stateful primitives (:mod:`repro.spec.primitives`) and receive the
interpreter's answer as the value of the ``yield`` expression::

    def divu():
        rs1, rs2, rd = yield DecodeAndReadRType()
        yield RunIfElse(
            EqInt(rs2, imm(0)),
            lambda: write_register(rd, imm(0xFFFFFFFF)),
            lambda: write_register(rd, UDiv(rs1, rs2)),
        )

A *modular interpreter* is anything implementing :class:`Handler`; this
module contains the single generic driver loop shared by the concrete
interpreter, BinSym's symbolic interpreter, and the tracing interpreter.
This mirrors the paper's architecture: one executable specification, N
interpreters for its primitives.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Protocol

from .expr import Expr
from .primitives import Primitive, RunIf, RunIfElse

__all__ = ["Handler", "execute_semantics", "write_register", "write_pc", "block"]

SemanticsGenerator = Generator[Primitive, Any, None]


class Handler(Protocol):
    """The interface a modular interpreter provides to the driver loop."""

    def handle(self, primitive: Primitive) -> Any:
        """Interpret a non-control-flow primitive; the return value is
        sent back into the semantics generator."""

    def branch(self, cond: Expr) -> bool:
        """Decide a ``RunIf``/``RunIfElse`` condition.  Symbolic
        interpreters record a branch point here before answering with
        the concrete (concolic) verdict."""


def execute_semantics(generator: SemanticsGenerator, handler: Handler) -> None:
    """Drive one instruction's semantics generator to completion."""
    # The control-flow primitives are final (never subclassed), so exact
    # type tests replace the isinstance chain in this trampoline — it is
    # the hot loop for every semantics staging cannot specialize.
    answer: Any = None
    send = generator.send
    handle = handler.handle
    branch = handler.branch
    while True:
        try:
            primitive = send(answer)
        except StopIteration:
            return
        cls = primitive.__class__
        if cls is RunIfElse:
            taken = branch(primitive.cond)
            chosen = primitive.then_block if taken else primitive.else_block
            if chosen is not None:
                execute_semantics(chosen(), handler)
            answer = None
        elif cls is RunIf:
            taken = branch(primitive.cond)
            if taken and primitive.block is not None:
                execute_semantics(primitive.block(), handler)
            answer = None
        else:
            answer = handle(primitive)


# ---------------------------------------------------------------------------
# Small sub-generator helpers used as RunIf/RunIfElse blocks
# ---------------------------------------------------------------------------


def write_register(index: int, value: Expr) -> Callable[[], SemanticsGenerator]:
    """Thunk for a block performing a single register write."""
    from .primitives import WriteRegister

    def blk() -> SemanticsGenerator:
        yield WriteRegister(index, value)

    return blk


def write_pc(value: Expr) -> Callable[[], SemanticsGenerator]:
    """Thunk for a block performing a single PC write."""
    from .primitives import WritePC

    def blk() -> SemanticsGenerator:
        yield WritePC(value)

    return blk


def block(*primitives: Primitive) -> Callable[[], SemanticsGenerator]:
    """Thunk for a block yielding a fixed primitive sequence."""

    def blk() -> SemanticsGenerator:
        for primitive in primitives:
            yield primitive

    return blk
