"""riscv-opcodes style encoding tables for RV32IM.

Each instruction is described by the same ``(mask, match)`` pair format
the RISC-V Foundation's riscv-opcodes repository uses: an instruction
word ``w`` encodes instruction ``i`` iff ``w & i.mask == i.match``.
The tables below carry the ratified RV32I + M encodings; custom
extensions contribute additional :class:`Encoding` entries, either
programmatically or parsed from YAML descriptions
(:func:`encoding_from_yaml`, reproducing the paper's Fig. 3 flow).

The same table drives the decoder *and* the assembler's encoder, so
there is a single authoritative source for instruction encodings in the
repository — the design property the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .yamlite import parse_yaml

__all__ = [
    "Encoding",
    "RV32I_ENCODINGS",
    "RV32M_ENCODINGS",
    "encoding_from_yaml",
    "encodings_from_yaml",
]


@dataclass(frozen=True)
class Encoding:
    """One instruction encoding in riscv-opcodes format.

    Attributes:
        name: the mnemonic (lower case).
        mask / match: opcode identification bitmasks.
        fields: variable operand fields (subset of rd/rs1/rs2/rs3 and the
            immediate pseudo-fields imm12/imm12hilo/bimm12/imm20/jimm20/
            shamtw).
        fmt: assembly/operand format tag used by the assembler and the
            decode-and-read primitives: one of ``r``, ``r4``, ``i``,
            ``shift``, ``load``, ``s``, ``b``, ``u``, ``j``, ``fence``,
            ``sys``.
        extension: the ISA extension that defines the instruction.
    """

    name: str
    mask: int
    match: int
    fields: tuple[str, ...]
    fmt: str
    extension: str

    def matches(self, word: int) -> bool:
        """Whether the 32-bit instruction word encodes this instruction."""
        return (word & self.mask) == self.match


def _r(name: str, funct7: int, funct3: int, ext: str) -> Encoding:
    match = (funct7 << 25) | (funct3 << 12) | 0x33
    return Encoding(name, 0xFE00707F, match, ("rd", "rs1", "rs2"), "r", ext)


def _i(name: str, funct3: int, opcode: int = 0x13, fmt: str = "i") -> Encoding:
    match = (funct3 << 12) | opcode
    return Encoding(name, 0x0000707F, match, ("rd", "rs1", "imm12"), fmt, "rv32i")


def _shift(name: str, funct7: int, funct3: int) -> Encoding:
    match = (funct7 << 25) | (funct3 << 12) | 0x13
    return Encoding(name, 0xFE00707F, match, ("rd", "rs1", "shamtw"), "shift", "rv32i")


def _load(name: str, funct3: int) -> Encoding:
    match = (funct3 << 12) | 0x03
    return Encoding(name, 0x0000707F, match, ("rd", "rs1", "imm12"), "load", "rv32i")


def _store(name: str, funct3: int) -> Encoding:
    match = (funct3 << 12) | 0x23
    return Encoding(
        name, 0x0000707F, match, ("rs1", "rs2", "imm12hilo"), "s", "rv32i"
    )


def _branch(name: str, funct3: int) -> Encoding:
    match = (funct3 << 12) | 0x63
    return Encoding(name, 0x0000707F, match, ("rs1", "rs2", "bimm12"), "b", "rv32i")


RV32I_ENCODINGS: tuple[Encoding, ...] = (
    Encoding("lui", 0x0000007F, 0x37, ("rd", "imm20"), "u", "rv32i"),
    Encoding("auipc", 0x0000007F, 0x17, ("rd", "imm20"), "u", "rv32i"),
    Encoding("jal", 0x0000007F, 0x6F, ("rd", "jimm20"), "j", "rv32i"),
    Encoding("jalr", 0x0000707F, 0x67, ("rd", "rs1", "imm12"), "i", "rv32i"),
    _branch("beq", 0),
    _branch("bne", 1),
    _branch("blt", 4),
    _branch("bge", 5),
    _branch("bltu", 6),
    _branch("bgeu", 7),
    _load("lb", 0),
    _load("lh", 1),
    _load("lw", 2),
    _load("lbu", 4),
    _load("lhu", 5),
    _store("sb", 0),
    _store("sh", 1),
    _store("sw", 2),
    _i("addi", 0),
    _i("slti", 2),
    _i("sltiu", 3),
    _i("xori", 4),
    _i("ori", 6),
    _i("andi", 7),
    _shift("slli", 0x00, 1),
    _shift("srli", 0x00, 5),
    _shift("srai", 0x20, 5),
    _r("add", 0x00, 0, "rv32i"),
    _r("sub", 0x20, 0, "rv32i"),
    _r("sll", 0x00, 1, "rv32i"),
    _r("slt", 0x00, 2, "rv32i"),
    _r("sltu", 0x00, 3, "rv32i"),
    _r("xor", 0x00, 4, "rv32i"),
    _r("srl", 0x00, 5, "rv32i"),
    _r("sra", 0x20, 5, "rv32i"),
    _r("or", 0x00, 6, "rv32i"),
    _r("and", 0x00, 7, "rv32i"),
    Encoding("fence", 0x0000707F, 0x0F, (), "fence", "rv32i"),
    Encoding("ecall", 0xFFFFFFFF, 0x00000073, (), "sys", "rv32i"),
    Encoding("ebreak", 0xFFFFFFFF, 0x00100073, (), "sys", "rv32i"),
)

RV32M_ENCODINGS: tuple[Encoding, ...] = (
    _r("mul", 0x01, 0, "rv32m"),
    _r("mulh", 0x01, 1, "rv32m"),
    _r("mulhsu", 0x01, 2, "rv32m"),
    _r("mulhu", 0x01, 3, "rv32m"),
    _r("div", 0x01, 4, "rv32m"),
    _r("divu", 0x01, 5, "rv32m"),
    _r("rem", 0x01, 6, "rv32m"),
    _r("remu", 0x01, 7, "rv32m"),
)


_FIELDS_TO_FMT = {
    frozenset({"rd", "rs1", "rs2"}): "r",
    frozenset({"rd", "rs1", "rs2", "rs3"}): "r4",
    frozenset({"rd", "rs1", "imm12"}): "i",
    frozenset({"rd", "rs1", "shamtw"}): "shift",
    frozenset({"rs1", "rs2", "imm12hilo"}): "s",
    frozenset({"rs1", "rs2", "bimm12"}): "b",
    frozenset({"rd", "imm20"}): "u",
    frozenset({"rd", "jimm20"}): "j",
}


def encoding_from_yaml(name: str, description: dict) -> Encoding:
    """Build an :class:`Encoding` from a riscv-opcodes YAML description.

    This is the entry point of the Sect. IV extensibility case study: the
    7-line Fig. 3 YAML snippet for the custom ``MADD`` instruction feeds
    straight into here.
    """
    mask = int(str(description["mask"]), 0)
    match = int(str(description["match"]), 0)
    fields = tuple(description.get("variable_fields", ()))
    extensions = description.get("extension", ["custom"])
    if isinstance(extensions, str):
        extensions = [extensions]
    fmt = _FIELDS_TO_FMT.get(frozenset(fields))
    if fmt is None:
        raise ValueError(f"{name}: unsupported variable_fields {fields}")
    encoding_text = description.get("encoding")
    if encoding_text is not None:
        _check_encoding_pattern(name, str(encoding_text), mask, match)
    return Encoding(name, mask, match, fields, fmt, extensions[0])


def encodings_from_yaml(text: str) -> list[Encoding]:
    """Parse a YAML document of instruction descriptions into encodings."""
    document = parse_yaml(text)
    return [encoding_from_yaml(name, desc) for name, desc in document.items()]


def _check_encoding_pattern(name: str, pattern: str, mask: int, match: int) -> None:
    """Validate the human-readable encoding line against mask/match.

    The riscv-opcodes ``encoding`` string spells all 32 bits MSB first
    with ``-`` for variable bits; fixed bits must agree with mask/match.
    """
    bits = pattern.strip()
    if len(bits) != 32:
        raise ValueError(f"{name}: encoding pattern must have 32 bits")
    derived_mask = 0
    derived_match = 0
    for position, char in enumerate(bits):
        bit = 31 - position
        if char == "-":
            continue
        if char not in "01":
            raise ValueError(f"{name}: bad encoding character {char!r}")
        derived_mask |= 1 << bit
        if char == "1":
            derived_match |= 1 << bit
    if derived_mask != mask or derived_match != match:
        raise ValueError(
            f"{name}: encoding pattern disagrees with mask/match "
            f"(pattern: mask={derived_mask:#x} match={derived_match:#x}, "
            f"declared: mask={mask:#x} match={match:#x})"
        )
