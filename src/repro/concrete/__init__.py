"""Concrete-side modular interpreters over the formal specification.

Three interpreters live here, all driven by the same spec:

* :class:`ConcreteInterpreter` — the RV32 emulator,
* :class:`DiftInterpreter` — dynamic information flow (taint) tracking,
* :class:`TracingInterpreter` — per-instruction execution logging.
"""

from .dift import DiftInterpreter, TaintDomain, TaintedValue
from .interpreter import ConcreteInterpreter, IntDomain
from .syscalls import (
    SYS_EXIT,
    SYS_MAKE_SYMBOLIC,
    SYS_WRITE,
    HostPlatform,
    Platform,
)
from .tracer import TraceEntry, TracingInterpreter

__all__ = [
    "ConcreteInterpreter",
    "IntDomain",
    "DiftInterpreter",
    "TaintDomain",
    "TaintedValue",
    "TracingInterpreter",
    "TraceEntry",
    "HostPlatform",
    "Platform",
    "SYS_EXIT",
    "SYS_WRITE",
    "SYS_MAKE_SYMBOLIC",
]
