"""Execution tracer: a fourth modular interpreter (instruction logging).

Wraps the concrete interpreter with per-instruction records — address,
disassembly, register writes — without touching the specification or
the interpreter internals; the hook is composition, not subclass
surgery.  Mostly a debugging aid for workload development, but also the
cheapest possible demonstration that interpreters over the formal spec
compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..asm.disasm import Disassembler
from ..loader.image import Image
from ..spec.isa import ISA
from .interpreter import ConcreteInterpreter

__all__ = ["TraceEntry", "TracingInterpreter"]


@dataclass
class TraceEntry:
    """One executed instruction."""

    pc: int
    word: int
    text: str
    register_writes: tuple[tuple[int, int], ...] = ()

    def render(self) -> str:
        writes = "  ".join(
            f"x{index}={value:#010x}" for index, value in self.register_writes
        )
        suffix = f"   [{writes}]" if writes else ""
        return f"{self.pc:#010x}:  {self.text}{suffix}"


class TracingInterpreter:
    """Concrete interpreter + per-instruction trace log."""

    def __init__(self, isa: ISA, max_entries: int = 100_000, staging: bool = True):
        # The tracer inherits staged execution through composition: the
        # wrapped interpreter replays the same compiled plans (and the
        # disassembler shares the decoder's decode cache).  Superblocks
        # stay off: one log entry per instruction requires the wrapped
        # step() to retire exactly one instruction.
        self.interpreter = ConcreteInterpreter(isa, staging=staging, superblocks=False)
        self.disassembler = Disassembler(isa)
        self.trace: list[TraceEntry] = []
        self.max_entries = max_entries

    def load_image(self, image: Image) -> None:
        self.interpreter.load_image(image)

    @property
    def hart(self):
        return self.interpreter.hart

    @property
    def memory(self):
        return self.interpreter.memory

    def step(self) -> Optional[TraceEntry]:
        interp = self.interpreter
        if interp.hart.halted:
            return None
        pc = interp.hart.pc
        word = interp.memory.read(pc, 32)
        before = interp.hart.regs.snapshot()
        interp.step()
        after = interp.hart.regs.snapshot()
        writes = tuple(
            (index, after[index])
            for index in range(32)
            if after[index] != before[index]
        )
        entry = TraceEntry(pc, word, self.disassembler.disassemble(word, pc), writes)
        if len(self.trace) < self.max_entries:
            self.trace.append(entry)
        return entry

    def run(self, max_steps: int = 1_000_000):
        for _ in range(max_steps):
            if self.interpreter.hart.halted:
                break
            self.step()
        return self.interpreter.hart

    def render(self, limit: Optional[int] = None) -> str:
        entries = self.trace if limit is None else self.trace[:limit]
        return "\n".join(entry.render() for entry in entries)
