"""Dynamic information flow tracking (DIFT) — a third modular interpreter.

The paper (Sect. III-A) credits the executable-specification approach
with enabling multiple interpreters for one specification and cites
prior work's "interpreter performing dynamic information flow tracking"
[Tempel et al., TFP'23] alongside the concrete one.  This module is that
third interpreter: values carry a *taint bit* instead of (or rather:
alongside) SMT terms, and the primitive handlers propagate taint through
the same specification semantics the emulator and BinSym execute.

Taint sources: the ``make_symbolic`` ecall (the same hook BinSym uses
for symbolic input).  Reports: every control-flow decision (RunIf/
RunIfElse, WritePC) influenced by tainted data is recorded — the DIFT
analogue of BinSym's branch trace.

The value of the exercise is architectural: :class:`TaintDomain` +
handler below are ~150 lines, and not one line of the instruction
semantics is repeated or touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.hart import HaltReason, Hart
from ..arch.memory import ByteMemory, ShadowMemory
from ..loader.image import Image
from ..smt import bvops
from ..spec.decoder import IllegalInstruction
from ..spec.dsl import execute_semantics
from ..spec.expr import Expr, Val, eval_expr
from ..spec.isa import ISA
from ..spec import fields
from ..spec.primitives import (
    DecodeAndReadBType,
    DecodeAndReadIType,
    DecodeAndReadR4Type,
    DecodeAndReadRType,
    DecodeAndReadSType,
    DecodeAndReadShamt,
    DecodeJType,
    DecodeUType,
    Ebreak,
    Ecall,
    Fence,
    LoadMem,
    ReadPC,
    ReadRegister,
    StoreMem,
    WritePC,
    WriteRegister,
)
from .interpreter import IntDomain
from .syscalls import SYS_EXIT, SYS_MAKE_SYMBOLIC, SYS_WRITE

__all__ = ["TaintedValue", "TaintDomain", "DiftInterpreter", "TaintedBranch"]

_WORD = 0xFFFFFFFF


@dataclass(frozen=True)
class TaintedValue:
    """A concrete value with a taint bit."""

    value: int
    tainted: bool = False


@dataclass(frozen=True)
class TaintedBranch:
    """Record of a control-flow decision influenced by tainted data."""

    pc: int
    taken: bool


class TaintDomain:
    """Expression evaluation over :class:`TaintedValue`.

    Concrete arithmetic delegates to :class:`IntDomain`; taint is the
    OR of the operands' taint (the classic DIFT propagation rule).
    """

    def __init__(self) -> None:
        self._ints = IntDomain()

    def const(self, value: int, width: int) -> TaintedValue:
        return TaintedValue(value & ((1 << width) - 1), False)

    def from_leaf(self, value, width: int) -> TaintedValue:
        if isinstance(value, TaintedValue):
            return value
        return self.const(int(value), width)

    def binop(self, op, lhs, rhs, width) -> TaintedValue:
        return TaintedValue(
            self._ints.binop(op, lhs.value, rhs.value, width),
            lhs.tainted or rhs.tainted,
        )

    def cmpop(self, op, lhs, rhs, width) -> TaintedValue:
        return TaintedValue(
            self._ints.cmpop(op, lhs.value, rhs.value, width),
            lhs.tainted or rhs.tainted,
        )

    def unop(self, op, arg, width) -> TaintedValue:
        return TaintedValue(self._ints.unop(op, arg.value, width), arg.tainted)

    def ext(self, kind, arg, amount, from_width) -> TaintedValue:
        return TaintedValue(
            self._ints.ext(kind, arg.value, amount, from_width), arg.tainted
        )

    def extract(self, arg, high, low) -> TaintedValue:
        return TaintedValue(self._ints.extract(arg.value, high, low), arg.tainted)

    def ite(self, cond, then_value, else_value, width) -> TaintedValue:
        chosen = then_value if cond.value else else_value
        return TaintedValue(chosen.value, chosen.tainted or cond.tainted)


class DiftInterpreter:
    """Taint-tracking modular interpreter over the formal specification."""

    def __init__(self, isa: ISA):
        self.isa = isa
        self.domain = TaintDomain()
        self.memory = ByteMemory()
        self.taint: ShadowMemory[bool] = ShadowMemory()
        self.hart: Hart[TaintedValue] = Hart(zero_value=TaintedValue(0))
        self.tainted_branches: list[TaintedBranch] = []
        self.tainted_pc_writes: list[int] = []
        self._current_word = 0
        self._next_pc = 0

    # ------------------------------------------------------------------

    def load_image(self, image: Image) -> None:
        image.load_into(self.memory)
        self.hart.reset(image.entry)

    def taint_region(self, base: int, length: int) -> None:
        for offset in range(length):
            self.taint.set((base + offset) & _WORD, True)

    def step(self) -> None:
        hart = self.hart
        if hart.halted:
            return
        word = self.memory.read_word(hart.pc)
        try:
            decoded = self.isa.decoder.decode(word, hart.pc)
        except IllegalInstruction:
            hart.halt(HaltReason.ILLEGAL)
            raise
        self._current_word = word
        self._next_pc = (hart.pc + 4) & _WORD
        execute_semantics(self.isa.semantics_for(decoded.name)(), self)
        hart.instret += 1
        if not hart.halted:
            hart.pc = self._next_pc

    def run(self, max_steps: int = 1_000_000) -> Hart:
        for _ in range(max_steps):
            if self.hart.halted:
                return self.hart
            self.step()
        self.hart.halt(HaltReason.OUT_OF_FUEL)
        return self.hart

    # ------------------------------------------------------------------
    # Handler interface
    # ------------------------------------------------------------------

    def _reg_leaf(self, index: int) -> Val:
        return Val(self.hart.regs.read(index), 32)

    def _eval(self, expr: Expr) -> TaintedValue:
        return eval_expr(expr, self.domain)

    def branch(self, cond: Expr) -> bool:
        value = self._eval(cond)
        if value.tainted:
            self.tainted_branches.append(
                TaintedBranch(self.hart.pc, bool(value.value))
            )
        return bool(value.value)

    def handle(self, primitive):
        word = self._current_word
        if isinstance(primitive, DecodeAndReadRType):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadR4Type):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                self._reg_leaf(fields.rs3(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadIType):
            return (
                Val(fields.imm_i(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadShamt):
            return (
                Val(fields.shamt(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadSType):
            return (
                Val(fields.imm_s(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeAndReadBType):
            return (
                Val(fields.imm_b(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeUType):
            return Val(fields.imm_u(word), 32), fields.rd(word)
        if isinstance(primitive, DecodeJType):
            return Val(fields.imm_j(word), 32), fields.rd(word)
        if isinstance(primitive, ReadRegister):
            return self._reg_leaf(primitive.index)
        if isinstance(primitive, WriteRegister):
            self.hart.regs.write(primitive.index, self._eval(primitive.value))
            return None
        if isinstance(primitive, ReadPC):
            return Val(TaintedValue(self.hart.pc), 32)
        if isinstance(primitive, WritePC):
            target = self._eval(primitive.value)
            if target.tainted:
                self.tainted_pc_writes.append(self.hart.pc)
            self._next_pc = target.value
            return None
        if isinstance(primitive, LoadMem):
            address = self._eval(primitive.addr)
            value = self.memory.read(address.value, primitive.width)
            tainted = address.tainted or any(
                self.taint.get((address.value + i) & _WORD)
                for i in range(primitive.width // 8)
            )
            return Val(TaintedValue(value, tainted), primitive.width)
        if isinstance(primitive, StoreMem):
            address = self._eval(primitive.addr)
            value = self._eval(primitive.value)
            self.memory.write(address.value, value.value, primitive.width)
            for i in range(primitive.width // 8):
                self.taint.set(
                    (address.value + i) & _WORD, value.tainted or None
                )
            return None
        if isinstance(primitive, Ecall):
            self._ecall()
            return None
        if isinstance(primitive, Ebreak):
            self.hart.halt(HaltReason.EBREAK)
            return None
        if isinstance(primitive, Fence):
            return None
        raise NotImplementedError(f"unhandled primitive {primitive!r}")

    def _ecall(self) -> None:
        number = self.hart.regs.read(17).value
        if number == SYS_EXIT:
            self.hart.halt(HaltReason.EXIT, self.hart.regs.read(10).value)
        elif number == SYS_WRITE:
            length = self.hart.regs.read(12).value
            self.hart.regs.write(10, TaintedValue(length))
        elif number == SYS_MAKE_SYMBOLIC:
            # The symbolic-input hook is DIFT's taint source.
            self.taint_region(
                self.hart.regs.read(10).value, self.hart.regs.read(11).value
            )
        else:
            raise ValueError(f"unknown syscall number {number}")
