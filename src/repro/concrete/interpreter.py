"""Concrete modular interpreter: an RV32 emulator derived from the spec.

This interpreter assigns the *integer* meaning to the specification's
primitives — it is the Python analogue of LibRISCV's concrete
interpreter and doubles as the differential-testing oracle for the
symbolic engines: for any program and concrete input, BinSym (and each
baseline engine) must take exactly the execution path this emulator
takes.

Nothing in this module knows about individual instructions; all
behaviour flows from :mod:`repro.spec` through the primitive handlers.
"""

from __future__ import annotations

from typing import Optional

from ..arch.hart import HaltReason, Hart
from ..arch.memory import ByteMemory
from ..loader.image import Image
from ..smt import bvops
from ..spec.expr import Expr, Val, eval_expr
from ..spec.isa import ISA
from ..spec.staged import StagedStepper
from ..spec import fields
from ..spec.primitives import (
    DecodeAndReadBType,
    DecodeAndReadIType,
    DecodeAndReadR4Type,
    DecodeAndReadRType,
    DecodeAndReadSType,
    DecodeAndReadShamt,
    DecodeJType,
    DecodeUType,
    Ebreak,
    Ecall,
    Fence,
    LoadMem,
    ReadPC,
    ReadRegister,
    StoreMem,
    WritePC,
    WriteRegister,
)
from .syscalls import HostPlatform, Platform

__all__ = ["IntDomain", "ConcreteInterpreter"]

_WORD = 0xFFFFFFFF


class IntDomain:
    """Expression evaluation over plain Python integers."""

    _BINOPS = {
        "add": bvops.bv_add,
        "sub": bvops.bv_sub,
        "mul": bvops.bv_mul,
        "udiv": bvops.bv_udiv,
        "sdiv": bvops.bv_sdiv,
        "urem": bvops.bv_urem,
        "srem": bvops.bv_srem,
        "and": bvops.bv_and,
        "or": bvops.bv_or,
        "xor": bvops.bv_xor,
        "shl": bvops.bv_shl,
        "lshr": bvops.bv_lshr,
        "ashr": bvops.bv_ashr,
    }

    _CMPOPS = {
        "eq": lambda a, b, w: a == b,
        "ne": lambda a, b, w: a != b,
        "ult": bvops.bv_ult,
        "ule": bvops.bv_ule,
        "ugt": lambda a, b, w: a > b,
        "uge": lambda a, b, w: a >= b,
        "slt": bvops.bv_slt,
        "sle": bvops.bv_sle,
        "sgt": lambda a, b, w: bvops.bv_slt(b, a, w),
        "sge": lambda a, b, w: bvops.bv_sle(b, a, w),
    }

    def const(self, value: int, width: int) -> int:
        return value & ((1 << width) - 1)

    def from_leaf(self, value, width: int) -> int:
        return value & ((1 << width) - 1)

    def binop(self, op: str, lhs: int, rhs: int, width: int) -> int:
        return self._BINOPS[op](lhs, rhs, width)

    def cmpop(self, op: str, lhs: int, rhs: int, width: int) -> int:
        return 1 if self._CMPOPS[op](lhs, rhs, width) else 0

    def unop(self, op: str, arg: int, width: int) -> int:
        if op == "not":
            return bvops.bv_not(arg, width)
        if op == "neg":
            return bvops.bv_neg(arg, width)
        raise ValueError(f"unknown unary op {op}")

    def ext(self, kind: str, arg: int, amount: int, from_width: int) -> int:
        if kind == "zext":
            return arg
        return bvops.bv_sext(arg, from_width, amount)

    def extract(self, arg: int, high: int, low: int) -> int:
        return bvops.bv_extract(arg, high, low)

    def ite(self, cond: int, then_value: int, else_value: int, width: int) -> int:
        return then_value if cond else else_value

    # -- staged-compilation hooks (see repro.spec.staged) ----------------

    def specialize_binop(self, op: str, width: int):
        """Bind the bvops function directly: zero dispatch at replay."""
        fn = self._BINOPS[op]
        return lambda lhs, rhs: fn(lhs, rhs, width)

    def specialize_cmpop(self, op: str, width: int):
        fn = self._CMPOPS[op]
        return lambda lhs, rhs: 1 if fn(lhs, rhs, width) else 0

    def specialize_unop(self, op: str, width: int):
        if op == "not":
            return lambda arg: bvops.bv_not(arg, width)
        if op == "neg":
            return lambda arg: bvops.bv_neg(arg, width)
        raise ValueError(f"unknown unary op {op}")


class ConcreteInterpreter(StagedStepper):
    """RV32 emulator; also the `Handler` for the spec's primitives.

    ``staging=True`` (the default) executes instructions through the
    compiled per-word plans of :mod:`repro.spec.staged` where the
    semantics are staged, falling back to driving the semantics
    generator otherwise; ``staging=False`` always interprets.  Both
    modes share the decoder's process-wide decode cache; the step loop
    itself lives in :class:`~repro.spec.staged.StagedStepper`.
    """

    #: Identifies IntDomain behaviour for the ISA's compiled-plan cache
    #: (the domain is stateless, so one key covers every instance).
    _domain_key = ("int",)

    def __init__(
        self,
        isa: ISA,
        platform: Optional[Platform] = None,
        staging: bool = True,
        superblocks: bool = True,
    ):
        self.isa = isa
        self.domain = IntDomain()
        self.memory = ByteMemory()
        self.hart: Hart[int] = Hart(zero_value=0)
        self.platform = platform if platform is not None else HostPlatform()
        self.staging = staging
        self._init_superblocks(superblocks)
        self._current_word = 0
        self._next_pc = 0
        # word -> (CompiledPlan | None, semantics generator function)
        self._exec_cache: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Program setup
    # ------------------------------------------------------------------

    def load_image(self, image: Image) -> None:
        image.load_into(self.memory)
        self.hart.reset(image.entry)
        self._sb_begin_run(self.hart.pc)

    def run(self, max_steps: int = 10_000_000) -> Hart:
        """Run until the hart halts or the step budget is exhausted.

        Bounded by retired instructions, not loop iterations: superblock
        dispatch (``_sb_step``) retires several instructions per
        iteration and uses ``_fuel_limit`` to deoptimize instead of
        overshooting, keeping OUT_OF_FUEL truncation identical with
        superblocks on or off.  Bare ``step()`` calls outside ``run``
        always retire exactly one instruction.
        """
        hart = self.hart
        limit = hart.instret + max_steps
        self._fuel_limit = limit
        step = self._sb_step
        while hart.instret < limit:
            if hart.halted:
                return hart
            step()
        if hart.halted:
            return hart
        hart.halt(HaltReason.OUT_OF_FUEL)
        return hart

    # ------------------------------------------------------------------
    # Platform hooks (see syscalls.HostPlatform)
    # ------------------------------------------------------------------

    def read_register_int(self, index: int) -> int:
        return self.hart.regs.read(index)

    def write_register_int(self, index: int, value: int) -> None:
        self.hart.regs.write(index, value & _WORD)

    def halt_exit(self, code: int) -> None:
        self.hart.halt(HaltReason.EXIT, exit_code=code)

    def make_symbolic(self, base: int, length: int) -> None:
        """Concrete execution: symbolic input marking is a no-op."""

    # ------------------------------------------------------------------
    # PlanHost interface: staged replay over integer machine state
    # ------------------------------------------------------------------

    def plan_reg(self, index: int) -> int:
        return self.hart.regs.read(index)

    def plan_pc(self) -> int:
        return self.hart.pc

    def plan_load(self, width: int, address: int) -> int:
        return self.memory.read(address, width)

    def plan_write_reg(self, index: int, value: int) -> None:
        self.hart.regs.write(index, value)

    def plan_write_pc(self, value: int) -> None:
        self._next_pc = value

    def plan_store(self, width: int, address: int, value: int) -> None:
        self.memory.write(address, value, width)

    def plan_branch(self, value: int) -> bool:
        return bool(value)

    def plan_ecall(self) -> None:
        self.platform.ecall(self)

    def plan_ebreak(self) -> None:
        self.hart.halt(HaltReason.EBREAK)

    def plan_fence(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Handler interface: the integer meaning of each primitive
    # ------------------------------------------------------------------

    def _reg_leaf(self, index: int) -> Val:
        return Val(self.hart.regs.read(index), 32)

    def _eval(self, expr: Expr) -> int:
        return eval_expr(expr, self.domain)

    def branch(self, cond: Expr) -> bool:
        return bool(self._eval(cond))

    def handle(self, primitive):
        word = self._current_word
        if isinstance(primitive, DecodeAndReadRType):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadR4Type):
            return (
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
                self._reg_leaf(fields.rs3(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadIType):
            return (
                Val(fields.imm_i(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadShamt):
            return (
                Val(fields.shamt(word), 32),
                self._reg_leaf(fields.rs1(word)),
                fields.rd(word),
            )
        if isinstance(primitive, DecodeAndReadSType):
            return (
                Val(fields.imm_s(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeAndReadBType):
            return (
                Val(fields.imm_b(word), 32),
                self._reg_leaf(fields.rs1(word)),
                self._reg_leaf(fields.rs2(word)),
            )
        if isinstance(primitive, DecodeUType):
            return Val(fields.imm_u(word), 32), fields.rd(word)
        if isinstance(primitive, DecodeJType):
            return Val(fields.imm_j(word), 32), fields.rd(word)
        if isinstance(primitive, ReadRegister):
            return self._reg_leaf(primitive.index)
        if isinstance(primitive, WriteRegister):
            self.hart.regs.write(primitive.index, self._eval(primitive.value))
            return None
        if isinstance(primitive, ReadPC):
            return Val(self.hart.pc, 32)
        if isinstance(primitive, WritePC):
            self._next_pc = self._eval(primitive.value)
            return None
        if isinstance(primitive, LoadMem):
            address = self._eval(primitive.addr)
            return Val(self.memory.read(address, primitive.width), primitive.width)
        if isinstance(primitive, StoreMem):
            address = self._eval(primitive.addr)
            self.memory.write(address, self._eval(primitive.value), primitive.width)
            return None
        if isinstance(primitive, Ecall):
            self.platform.ecall(self)
            return None
        if isinstance(primitive, Ebreak):
            self.hart.halt(HaltReason.EBREAK)
            return None
        if isinstance(primitive, Fence):
            return None
        raise NotImplementedError(f"unhandled primitive {primitive!r}")
