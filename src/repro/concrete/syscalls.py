"""Environment-call (ecall) ABI shared by all execution engines.

The benchmark programs are freestanding RV32 binaries; they talk to the
world through a tiny ecall ABI modelled after RISC-V Linux syscalls plus
one testing extension in the spirit of SymEx-VP's software interface:

=========  =====  =============================================
a7         name   behaviour
=========  =====  =============================================
93         exit   halt, exit code in a0
64         write  write(fd=a0, buf=a1, len=a2) -> collected
1337       make_symbolic(buf=a0, len=a1): mark memory symbolic
           (no-op under purely concrete execution)
=========  =====  =============================================

Unknown syscall numbers halt execution with an error so bugs surface
instead of silently continuing.
"""

from __future__ import annotations

from typing import Optional, Protocol

__all__ = ["SYS_EXIT", "SYS_WRITE", "SYS_MAKE_SYMBOLIC", "Platform", "HostPlatform"]

SYS_EXIT = 93
SYS_WRITE = 64
SYS_MAKE_SYMBOLIC = 1337

_A0, _A1, _A2, _A7 = 10, 11, 12, 17


class Platform(Protocol):
    """Interface interpreters use to delegate ecalls."""

    def ecall(self, machine) -> None:
        """Handle an environment call; may halt the machine."""


class HostPlatform:
    """Default platform: exit/write/make_symbolic against host state.

    ``machine`` must expose ``read_register_int(i)``, ``memory`` (a
    ByteMemory) and ``halt_exit(code)``; both the concrete interpreter
    and the SE engines satisfy this.
    """

    def __init__(self) -> None:
        self.stdout = bytearray()

    def ecall(self, machine) -> None:
        number = machine.read_register_int(_A7)
        if number == SYS_EXIT:
            machine.halt_exit(machine.read_register_int(_A0))
        elif number == SYS_WRITE:
            base = machine.read_register_int(_A1)
            length = machine.read_register_int(_A2)
            self.stdout.extend(machine.memory.read_bytes(base, length))
            machine.write_register_int(_A0, length)
        elif number == SYS_MAKE_SYMBOLIC:
            base = machine.read_register_int(_A0)
            length = machine.read_register_int(_A1)
            machine.make_symbolic(base, length)
        else:
            raise ValueError(f"unknown syscall number {number}")

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", "replace")
