"""BinSym — symbolic execution of RV32 binaries from formal ISA semantics.

The paper's primary contribution: a symbolic *modular interpreter* for
the executable formal specification in :mod:`repro.spec`, paired with an
offline (concolic) exploration driver.

* :mod:`repro.core.symvalue` — concolic values (concrete int + SMT term)
* :mod:`repro.core.interpreter` — the symbolic interpreter (semanticize
  + encode steps of the paper's Fig. 1)
* :mod:`repro.core.executor` — one concolic run of the SUT
* :mod:`repro.core.explorer` — DFS dynamic symbolic execution driver
* :mod:`repro.core.concretize` — address concretization policies
* :mod:`repro.core.strategy` — DFS/BFS/random path selection
"""

from .concretize import ConcretizationPolicy
from .executor import BinSymExecutor, RunResult
from .explorer import ExplorationResult, Explorer, PathInfo
from .interpreter import SymbolicInterpreter
from .state import BranchRecord, InputAssignment, PathTrace, SymbolicInput
from .symvalue import SymDomain, SymValue

__all__ = [
    "BinSymExecutor",
    "RunResult",
    "Explorer",
    "ExplorationResult",
    "PathInfo",
    "SymbolicInterpreter",
    "SymValue",
    "SymDomain",
    "PathTrace",
    "BranchRecord",
    "InputAssignment",
    "SymbolicInput",
    "ConcretizationPolicy",
]
