"""BinSym — symbolic execution of RV32 binaries from formal ISA semantics.

The paper's primary contribution: a symbolic *modular interpreter* for
the executable formal specification in :mod:`repro.spec`, paired with an
offline (concolic) exploration driver.

* :mod:`repro.core.symvalue` — concolic values (concrete int + SMT term)
* :mod:`repro.core.interpreter` — the symbolic interpreter (semanticize
  + encode steps of the paper's Fig. 1)
* :mod:`repro.core.executor` — one concolic run of the SUT
* :mod:`repro.core.explorer` — dynamic symbolic execution driver
* :mod:`repro.core.scheduler` — frontier/work-queue + branch-flip expansion
* :mod:`repro.core.parallel` — multi-process exploration worker pool
* :mod:`repro.core.concretize` — address concretization policies
* :mod:`repro.core.strategy` — DFS/BFS/random/coverage path selection
* :mod:`repro.core.checkpoint` — crash-safe exploration journal
* :mod:`repro.core.faults` — deterministic fault-injection schedules
* :mod:`repro.core.governor` — memory-budget degradation ladder
* :mod:`repro.core.store` — crash-safe persistent cross-run artifact store
"""

from .checkpoint import CheckpointManager, CheckpointState
from .concretize import ConcretizationPolicy
from .executor import BinSymExecutor, RunResult
from .explorer import ExplorationResult, Explorer, PathInfo
from .faults import FaultPlan
from .governor import MemoryGovernor, build_exploration_governor
from .interpreter import SymbolicInterpreter
from .parallel import ProcessPoolExplorer
from .scheduler import Frontier, RunStats, WorkItem
from .store import ArtifactStore
from .state import (
    BranchRecord,
    ExploredPrefixTrie,
    InputAssignment,
    PathTrace,
    SymbolicInput,
)
from .symvalue import SymDomain, SymValue

__all__ = [
    "BinSymExecutor",
    "RunResult",
    "Explorer",
    "ProcessPoolExplorer",
    "ExplorationResult",
    "PathInfo",
    "Frontier",
    "WorkItem",
    "RunStats",
    "CheckpointManager",
    "CheckpointState",
    "FaultPlan",
    "ArtifactStore",
    "MemoryGovernor",
    "build_exploration_governor",
    "SymbolicInterpreter",
    "SymValue",
    "SymDomain",
    "PathTrace",
    "BranchRecord",
    "InputAssignment",
    "SymbolicInput",
    "ExploredPrefixTrie",
    "ConcretizationPolicy",
]
