"""Deterministic fault injection for exploration robustness testing.

A :class:`FaultPlan` is a *seeded schedule* of failures: given the same
plan, the same faults fire at the same points of an exploration, so a
chaos run is exactly reproducible — the property the fault-tolerance
invariant tests (``tests/test_faults.py``) and the CI chaos job rely
on.  Four fault classes map onto the robustness machinery they probe:

* **worker kills** (``kill=<rate>``) — a worker process ``os._exit``\\ s
  the moment it receives a task, exercising the supervisor's
  requeue / respawn / incomplete-path path in
  :mod:`repro.core.parallel`;
* **solver give-ups** (``unknown=<rate>``) — a CDCL ``solve()``
  abandons the query exactly as an exhausted conflict budget would
  (through :attr:`repro.smt.sat.SatSolver.fault_hook`), exercising the
  sound-degradation contract: the branch is not flipped and the query
  lands in ``unknown_queries``;
* **eviction storms** (``evict=<rate>``) — the snapshot pool is purged
  before a run, exercising the eviction → full-re-execution contract
  from PR 5;
* **queue hiccups** (``hiccup=<rate>``) — a short sleep before a worker
  posts its reply, exercising the parent's reply/death race handling;
* **cache corruption** (``corrupt=<rate>``) — a freshly stored
  :class:`repro.smt.solver.QueryCache` entry (SAT model, pooled model
  or UNSAT core set) is bit-flipped *after* its integrity digest is
  taken, exercising the verify-on-hit → quarantine → re-solve path:
  the poisoned answer must be detected and re-derived, never served;
* **worker hangs** (``hang=<rate>``) — a worker parks in an infinite
  sleep loop (heartbeats stop) the moment it receives a task,
  exercising the supervisor's heartbeat watchdog: the seat must be
  declared hung, killed, and its item requeued.  Pool-only: the serial
  driver has no supervisor, so it ignores hang schedules;
* **memory hogs** (``memhog=<rate>``) — a driver leaks a large
  allocation before a run, exercising the RSS governor's degradation
  ladder (:mod:`repro.core.governor`): capacity rungs fire, but the
  eviction → recompute contracts keep the path set invariant;
* **torn store writes** (``torn=<rate>``) — a persistent-store file
  (:mod:`repro.core.store`) is truncated right after its atomic
  rename, simulating a barrier-less power cut; the *next* run's
  verify-on-read must quarantine the stump and re-solve;
* **store I/O failures** (``iofail=<rate>``) — an ``OSError`` is
  raised at a store read/write site (disk full, permission flap),
  exercising the fail-soft contract: the tier disables itself for the
  rest of the run (``store_disabled``), the campaign never errors.

Rates are percentages; each *potential* fault site draws an
independent, stable pseudo-random decision from
``blake2b(seed, kind, site-key)``, so schedules are identical across
processes and runs without any shared RNG state.  ``stop=<paths>``
additionally interrupts the campaign (as Ctrl-C would) after that many
recorded paths — combined with ``--checkpoint``/``--resume`` it drives
the kill-then-resume acceptance test.

Every fault is *transient by keying*: decisions include the worker
incarnation uid, so a respawned worker draws a fresh schedule and a
retried item usually succeeds — permanent failures only emerge from
repeatedly unlucky draws, which the retry budget converts into an
explicitly counted ``incomplete`` path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultPlan", "KILL_EXIT_CODE", "MEMHOG_BYTES"]

#: Exit code of a fault-injected worker kill (distinguishable from real
#: crashes in logs; the supervisor treats every nonzero exit the same).
KILL_EXIT_CODE = 113

#: Size of one injected ``memhog=`` leak.  Large enough to push a
#: driver past a tests-sized ``--memory-budget``, small enough that a
#: chaos run never threatens the host.
MEMHOG_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    All ``*_rate`` fields are percentages in ``[0, 100]``; ``0``
    disables that fault class.  ``interrupt_after`` (``stop=`` in the
    spec syntax) raises ``KeyboardInterrupt`` in the exploration driver
    once that many paths are recorded (``None`` = never).
    """

    seed: int = 0
    kill_rate: int = 0
    unknown_rate: int = 0
    evict_rate: int = 0
    hiccup_rate: int = 0
    corrupt_rate: int = 0
    hang_rate: int = 0
    memhog_rate: int = 0
    torn_rate: int = 0
    iofail_rate: int = 0
    interrupt_after: Optional[int] = None

    #: spec key -> field for :meth:`parse`.
    _FIELDS = {
        "seed": "seed",
        "kill": "kill_rate",
        "unknown": "unknown_rate",
        "evict": "evict_rate",
        "hiccup": "hiccup_rate",
        "corrupt": "corrupt_rate",
        "hang": "hang_rate",
        "memhog": "memhog_rate",
        "torn": "torn_rate",
        "iofail": "iofail_rate",
        "stop": "interrupt_after",
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from ``kill=30,unknown=20,evict=50,seed=1`` syntax.

        Unknown keys and non-integer values raise ``ValueError`` with
        the offending fragment, so CLI typos fail fast.
        """
        values: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, raw = part.partition("=")
            field_name = cls._FIELDS.get(key.strip())
            if field_name is None:
                options = ", ".join(sorted(cls._FIELDS))
                raise ValueError(
                    f"unknown fault key {key.strip()!r} (expected one of {options})"
                )
            try:
                values[field_name] = int(raw.strip())
            except ValueError:
                raise ValueError(
                    f"fault value for {key.strip()!r} must be an integer, "
                    f"got {raw.strip()!r}"
                ) from None
        return cls(**values)

    @property
    def active(self) -> bool:
        return bool(
            self.kill_rate
            or self.unknown_rate
            or self.evict_rate
            or self.hiccup_rate
            or self.corrupt_rate
            or self.hang_rate
            or self.memhog_rate
            or self.torn_rate
            or self.iofail_rate
            or self.interrupt_after is not None
        )

    # ------------------------------------------------------------------
    # Stable decisions
    # ------------------------------------------------------------------

    def _decide(self, kind: str, *key) -> int:
        """Stable 64-bit draw for one fault site, identical everywhere."""
        payload = "|".join((str(self.seed), kind, *(str(part) for part in key)))
        return int.from_bytes(
            hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest(),
            "little",
        )

    def _chance(self, rate: int, kind: str, *key) -> bool:
        if rate <= 0:
            return False
        return self._decide(kind, *key) % 100 < min(rate, 100)

    # ------------------------------------------------------------------
    # Fault-site predicates (scope = worker incarnation uid or "serial")
    # ------------------------------------------------------------------

    def should_kill(self, scope, ordinal: int) -> bool:
        """Die instead of processing task ``ordinal`` of worker ``scope``?"""
        return self._chance(self.kill_rate, "kill", scope, ordinal)

    def should_evict(self, scope, ordinal: int) -> bool:
        """Purge the snapshot pool before run ``ordinal``?"""
        return self._chance(self.evict_rate, "evict", scope, ordinal)

    def should_hang(self, scope, ordinal: int) -> bool:
        """Wedge (infinite sleep, heartbeats stopped) on task ``ordinal``?

        Pool workers only: the serial driver has no supervising parent
        to recover a wedged loop, so it never consults this predicate.
        Keyed by incarnation uid like ``should_kill``, so a respawned
        seat draws a fresh schedule and the retried item usually runs.
        """
        return self._chance(self.hang_rate, "hang", scope, ordinal)

    def memhog_bytes(self, scope, ordinal: int) -> int:
        """Bytes to deliberately leak before run ``ordinal`` (0 = none).

        The leak is retained for the driver's lifetime, so repeated
        fires ratchet RSS upward — the deterministic pressure source
        the :mod:`repro.core.governor` ladder is tested against.
        """
        if not self._chance(self.memhog_rate, "memhog", scope, ordinal):
            return 0
        return MEMHOG_BYTES

    def hiccup_delay(self, scope, ordinal: int) -> float:
        """Seconds to stall before posting reply ``ordinal`` (0 = none)."""
        if not self._chance(self.hiccup_rate, "hiccup", scope, ordinal):
            return 0.0
        # 1-5 ms, drawn from the same stable stream.
        return 0.001 * (1 + self._decide("hiccup-len", scope, ordinal) % 5)

    def corruptor(self, scope):
        """Cache-poisoning predicate for
        :meth:`repro.smt.solver.QueryCache.set_corruptor`.

        Returns ``None`` when corruption is disabled, else a callable
        taking the entry kind (``"model"``, ``"core"``, ``"pool"``) and
        the cache's store ordinal, answering whether that freshly
        stored entry should be poisoned after its digest is taken.
        """
        if self.corrupt_rate <= 0:
            return None

        def hook(kind: str, ordinal: int) -> bool:
            return self._chance(self.corrupt_rate, "corrupt", kind, scope, ordinal)

        return hook

    def store_hook(self, scope):
        """Torn-write / I/O-failure schedule for
        :meth:`repro.core.store.ArtifactStore.set_fault_hook`.

        Returns ``None`` when both fault classes are disabled, else a
        callable taking the store's I/O site (``"read"``/``"write"``)
        and its per-op ordinal, answering ``"iofail"`` (raise
        ``OSError`` there — the tier must disable itself and the run
        continue), ``"torn"`` (truncate the just-renamed file — a
        *later* run must quarantine it) or ``None``.  ``iofail`` wins
        when both fire: it is the stronger failure.
        """
        if self.torn_rate <= 0 and self.iofail_rate <= 0:
            return None

        def hook(op: str, ordinal: int):
            if self._chance(self.iofail_rate, "iofail", op, scope, ordinal):
                return "iofail"
            if op == "write" and self._chance(
                self.torn_rate, "torn", scope, ordinal
            ):
                return "torn"
            return None

        return hook

    def solver_hook(self, scope):
        """Give-up predicate for :attr:`repro.smt.sat.SatSolver.fault_hook`.

        Returns ``None`` when solver give-ups are disabled, else a
        callable taking the solver's ``solve_calls`` ordinal and
        answering whether that call should abandon the query (UNKNOWN).
        """
        if self.unknown_rate <= 0:
            return None

        def hook(ordinal: int) -> bool:
            return self._chance(self.unknown_rate, "unknown", scope, ordinal)

        return hook
