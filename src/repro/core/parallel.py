"""Multi-process path exploration: a supervised work-queue over forks.

The offline executor restarts the SUT once per path, and the runs are
independent given their input assignments — which makes the exploration
loop embarrassingly parallel apart from the frontier.  This module
keeps the frontier (and the chosen search strategy) in the parent and
fans the concolic runs out over a pool of forked workers:

* the parent pops :class:`~repro.core.scheduler.WorkItem`s and sends
  ``(task_id, assignment, bound)`` over a per-worker task queue,
* each worker owns its *own* :class:`~repro.smt.solver.Solver` (plus
  query cache and explored-prefix trie), executes the run, performs the
  branch-flip expansion locally, and streams back the path summary, the
  newly discovered frontier entries, and exact per-run solver stats,
* the parent records paths, aggregates statistics, scores coverage
  novelty against the global covered-branch set, and pushes the new
  work items.

**Supervision.**  Task queues are per-worker so the parent always
knows which item each worker holds.  A worker that dies mid-item (OOM
kill, segfault, injected fault) no longer aborts the campaign: the
parent requeues the lost item (its snapshot reference, if any, still
names the *capturing* worker, so it resumes or falls back to full
re-execution per the PR 5 eviction contract), respawns the worker
under a fresh incarnation uid with a small backoff, and abandons an
item only after :data:`MAX_ITEM_FAILURES` deaths *while holding it* —
recorded as an ``incomplete_paths`` count, never a silent loss.  Fresh
uids matter twice: a stale ``(uid, handle)`` snapshot reference can
never alias the respawned worker's pool, and the dead incarnation's
last cumulative stats dict is preserved rather than overwritten.

Workers are created with the ``fork`` start method so they inherit the
executor (ISA, image, interpreter) without pickling — interned terms
cannot round-trip through pickle, and the formal-spec layer has no
reason to be serializable.  Input assignments cross the process
boundary by variable *name* (see :mod:`repro.core.scheduler`).  On
platforms without ``fork`` the driver transparently falls back to the
single-process explorer, which discovers the identical path set.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Optional

from ..smt.preprocess import PreprocessConfig
from ..spec.superblock import BRANCH_HOT_HITS
from .explorer import (
    ExplorationResult,
    Explorer,
    PathInfo,
    apply_staging,
    apply_superblocks,
    install_fault_hooks,
    make_solver,
)
from .faults import KILL_EXIT_CODE
from .scheduler import (
    Frontier,
    RunStats,
    WorkItem,
    deserialize_assignment,
    expand_run,
    query_digest,
    serialize_assignment,
)
from .state import ExploredPrefixTrie, InputAssignment

__all__ = [
    "ProcessPoolExplorer",
    "default_jobs",
    "MAX_ITEM_FAILURES",
    "HEARTBEAT_INTERVAL",
    "DEFAULT_HANG_TIMEOUT",
]

#: Worker deaths while holding the *same* item before the supervisor
#: abandons it as an ``incomplete`` path instead of retrying.
MAX_ITEM_FAILURES = 3

#: Seconds between worker liveness beats on the private reply pipe.
#: Sent from a daemon thread, so a worker grinding through a long run
#: (or a long CDCL solve) keeps beating — only a *wedged process* (hung
#: syscall, C-level spin, injected ``hang=`` fault) goes silent.
HEARTBEAT_INTERVAL = 0.25

#: Seconds of heartbeat silence before the supervisor declares a live
#: seat hung and kills it (>> HEARTBEAT_INTERVAL, so scheduler jitter
#: on a loaded machine never trips it).
DEFAULT_HANG_TIMEOUT = 5.0

#: First element of a liveness message on the reply pipe.  Real replies
#: lead with an integer task id, so the tag can never collide.
_HEARTBEAT = "__heartbeat__"


class _DeadlineExpired(Exception):
    """Internal control flow: the global ``--deadline`` fired."""


def default_jobs() -> int:
    """Worker count when none is requested: one per CPU, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _backoff_delay(seed: int, uid: int, respawns: int) -> float:
    """Respawn delay for a seat's ``respawns``-th revival (seconds).

    Exponential in the respawn count (capped at 2s) with deterministic
    multiplicative jitter in [0.5, 1.5) derived from ``(seed, uid,
    respawns)`` — crash loops back off fast without every seat of a
    mass-death event retrying in lockstep, and the schedule is
    reproducible for a given campaign seed.
    """
    if respawns <= 0:
        return 0.0
    base = min(0.02 * (2 ** (respawns - 1)), 2.0)
    digest = hashlib.blake2b(
        f"backoff|{seed}|{uid}|{respawns}".encode("ascii"), digest_size=8
    ).digest()
    jitter = 0.5 + int.from_bytes(digest, "big") / 2**64
    return base * jitter


def _worker_main(
    executor,
    worker_uid,
    use_cache,
    dedup_flips,
    preprocess,
    snapshots,
    task_queue,
    reply_conn,
    faults,
    memory_budget_mb,
    store_dir,
):
    """Worker loop: execute runs and expand their branch flips.

    Replies are ``(task_id, path_payload, children, stats_payload)`` on
    success or ``(task_id, None, traceback_text, None)`` on failure,
    sent over this incarnation's *private* reply pipe.  A shared reply
    queue would hold a cross-process write lock during puts — a worker
    dying at the wrong instant (mp.Queue even writes from a background
    feeder thread) would leave it locked and wedge every other worker;
    with one pipe per incarnation a crash can only ever truncate that
    worker's own stream, which the supervisor treats as a lost item.
    ``None`` on the task queue shuts the worker down.

    The stats payload carries, besides the per-run :class:`RunStats`
    fields, the worker uid and the solver's (and snapshot layer's)
    *cumulative* flat counter dicts: the parent keeps the latest dict
    per uid and sums them at the end, which is exact — a worker only
    accrues counters while producing replies, so its last reply carries
    its final totals (work lost to a mid-item death is requeued, so
    attribution stays a lower bound exactly like the serial driver's).

    Snapshot handles are process-local, so a task's snapshot reference
    ``(origin_uid, handle)`` is only honoured when this incarnation
    captured it; cross-worker items re-execute from the entry point,
    which discovers the identical path (counted separately so the
    benchmark can report the cross-worker re-execution share).

    ``faults`` (a :class:`repro.core.faults.FaultPlan` or None) drives
    deterministic chaos: a scheduled *kill* exits the process the
    moment the task is received (the parent requeues it), a *hang*
    stops the heartbeat thread and parks the worker in an infinite
    sleep (a wedged process the watchdog must detect and kill),
    *memhogs* leak ballast to drive the memory governor, *evictions*
    purge the snapshot pool before the run, *give-ups* make scheduled
    CDCL solves answer UNKNOWN, and *hiccups* stall the reply briefly
    to widen the reply/death race window the supervisor must tolerate.

    **Liveness.**  A daemon thread beats every
    :data:`HEARTBEAT_INTERVAL` seconds on the reply pipe (tagged
    :data:`_HEARTBEAT`, distinguishable from replies by its string
    first element).  The GIL guarantees the thread gets scheduled even
    while the main thread grinds through pure-Python work, so a long
    run never reads as a hang — only a genuinely wedged process goes
    silent.  Both threads send under one lock so messages never
    interleave on the pipe.
    """
    solver = make_solver(use_cache, preprocess, store_dir)
    install_fault_hooks(solver, faults, worker_uid)
    certify = preprocess is not None and preprocess.certify
    purge = getattr(executor, "purge_snapshots", None)
    trie = ExploredPrefixTrie() if dedup_flips else None
    send_lock = threading.Lock()
    hb_stop = threading.Event()

    def _heartbeat_loop():
        while not hb_stop.wait(HEARTBEAT_INTERVAL):
            try:
                with send_lock:
                    reply_conn.send((_HEARTBEAT, worker_uid))
            except (OSError, ValueError, BrokenPipeError):
                return  # parent went away; the process is exiting

    threading.Thread(target=_heartbeat_loop, daemon=True).start()
    # Per-worker memory governor: RSS is per-process, so every worker
    # walks its own degradation ladder over its own caches and pool.
    capture_state = {"snapshots": snapshots}
    governor = None
    if memory_budget_mb is not None:
        from .governor import build_exploration_governor

        governor = build_exploration_governor(
            memory_budget_mb, executor, solver, capture_state
        )
    memhog_leaks: list = []
    cross_worker_items = 0
    tasks_done = 0
    note_hot = getattr(executor, "note_hot_pcs", None)
    hot_applied: set = set()
    while True:
        task = task_queue.get()
        if task is None:
            hb_stop.set()
            return
        if faults is not None and faults.should_kill(worker_uid, tasks_done):
            os._exit(KILL_EXIT_CODE)
        if faults is not None and faults.should_hang(worker_uid, tasks_done):
            # Simulate a fully wedged process (hung syscall, C-level
            # spin): heartbeats stop, the task is never answered, and
            # only the supervisor's watchdog can recover the seat.
            hb_stop.set()
            while True:
                time.sleep(60)
        task_id, assignment_payload, bound, snapshot_ref, hot_pcs = task
        try:
            if note_hot is not None and hot_pcs:
                # The parent broadcasts its cumulative hot-branch set
                # (hotness is global across workers); apply the delta.
                fresh = [pc for pc in hot_pcs if pc not in hot_applied]
                if fresh:
                    hot_applied.update(fresh)
                    note_hot(fresh)
            if faults is not None:
                ballast = faults.memhog_bytes(worker_uid, tasks_done)
                if ballast:
                    memhog_leaks.append(bytearray(ballast))
            capturing = capture_state["snapshots"]
            if faults is not None and purge is not None and capturing:
                if faults.should_evict(worker_uid, tasks_done):
                    purge()
            assignment = deserialize_assignment(assignment_payload)
            if capturing:
                resume = None
                if snapshot_ref is not None:
                    if snapshot_ref[0] == worker_uid:
                        resume = snapshot_ref[1]
                    else:
                        cross_worker_items += 1
                run = executor.execute_from(
                    resume, assignment, capture_from=bound
                )
            else:
                run = executor.execute(assignment)
            if governor is not None:
                governor.maybe_step()
            stats = RunStats()
            children = expand_run(
                run,
                bound,
                solver,
                executor.input_variables(),
                stats,
                trie,
                compute_digests=True,
                snapshots=run.snapshots if snapshots else None,
            )
            path_payload = (
                run.halt_reason,
                run.exit_code,
                run.instret,
                len(run.trace),
                serialize_assignment(run.assignment),
                run.stdout,
                run.final_pc,
                run.resumed_instret,
                query_digest(run.trace.conditions()) if certify else None,
            )
            # child.divergence is not shipped: it always equals
            # bound - 1 for flip children, so the parent re-derives it.
            child_payloads = [
                (
                    serialize_assignment(child.assignment),
                    child.bound,
                    child.digest,
                    child.snapshot,
                )
                for child in children
            ]
            solver_stats = getattr(solver, "pipeline_statistics", None)
            if solver_stats is None:
                solver_stats = {"sat_core_solves": solver.num_solves}
            snapshot_stats = getattr(executor, "snapshot_statistics", None)
            if snapshot_stats is not None and snapshots:
                snapshot_stats = dict(snapshot_stats)
                snapshot_stats["snap_cross_worker_items"] = cross_worker_items
            else:
                snapshot_stats = {}
            superblock_stats = getattr(executor, "superblock_statistics", None)
            if superblock_stats is not None and getattr(
                executor, "superblocks_enabled", False
            ):
                superblock_stats = dict(superblock_stats)
            else:
                superblock_stats = {}
            stats_payload = (
                stats.sat_checks,
                stats.unsat_checks,
                stats.cache_hits,
                stats.fast_path_answers,
                stats.sat_solves,
                stats.pruned_queries,
                stats.solver_time,
                tuple(stats.covered_pcs),
                worker_uid,
                dict(solver_stats),
                snapshot_stats,
                tuple(stats.pc_hits.items()),
                superblock_stats,
                stats.unknown_queries,
                governor.statistics if governor is not None else {},
            )
            if faults is not None:
                delay = faults.hiccup_delay(worker_uid, tasks_done)
                if delay:
                    time.sleep(delay)
            with send_lock:
                reply_conn.send(
                    (task_id, path_payload, child_payloads, stats_payload)
                )
        except Exception:
            with send_lock:
                reply_conn.send((task_id, None, traceback.format_exc(), None))
        tasks_done += 1


class _WorkerSlot:
    """Parent-side bookkeeping for one worker seat.

    A *seat* survives its process: when the incarnation dies, the seat
    is revived with a fresh uid, a fresh task queue (a task the dead
    worker never consumed must not leak to its successor — the parent
    requeues it instead), a fresh reply pipe, and the respawn count for
    backoff.
    """

    __slots__ = (
        "uid",
        "process",
        "queue",
        "reply",
        "task_id",
        "respawns",
        "last_beat",
    )

    def __init__(self, uid, process, queue, reply):
        self.uid = uid
        self.process = process
        self.queue = queue
        #: Parent's receive end of the incarnation's private reply pipe.
        self.reply = reply
        #: Task id the seat's worker currently holds (None = idle).
        self.task_id: Optional[int] = None
        self.respawns = 0
        #: Monotonic time of the incarnation's last message (heartbeat
        #: or reply); seeded at spawn so a fresh seat gets a full
        #: hang-timeout window before the watchdog may judge it.
        self.last_beat = time.monotonic()


class ProcessPoolExplorer:
    """Explores an executor's paths on a pool of forked worker processes.

    Drop-in alternative to :class:`~repro.core.explorer.Explorer`: same
    constructor vocabulary, same :class:`ExplorationResult`, and —
    because the flip-expansion rules fully determine the reachable
    (assignment, bound) tree independent of visit order — the same
    discovered path set.  Path *indices* reflect completion order, so
    cross-mode comparisons should use ``ExplorationResult.path_set()``.

    The parent process never executes the SUT, so executor-side state
    (e.g. the interpreter's discovered symbolic inputs) stays untouched
    in the parent; everything the caller needs is in the result.
    """

    def __init__(
        self,
        executor,
        jobs: Optional[int] = None,
        strategy: str = "dfs",
        max_paths: int = 1_000_000,
        seed: int = 0,
        use_cache: bool = False,
        dedup_flips: bool = True,
        preprocess: Optional[PreprocessConfig] = None,
        staging: Optional[bool] = None,
        superblocks: Optional[bool] = None,
        snapshots: bool = True,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 1,
        resume: bool = False,
        faults=None,
        deadline: Optional[float] = None,
        memory_budget_mb: Optional[int] = None,
        hang_timeout: float = DEFAULT_HANG_TIMEOUT,
        store_dir: Optional[str] = None,
    ):
        self.executor = executor
        self.jobs = jobs if jobs is not None else default_jobs()
        self.strategy_name = strategy
        self.max_paths = max_paths
        self.seed = seed
        self.use_cache = use_cache
        self.dedup_flips = dedup_flips
        self.preprocess = preprocess
        # Snapshots are worker-local (pools are fork-inherited but grow
        # independently): items that land on the capturing worker
        # resume; everything else re-executes, keeping the discovered
        # path set and query attribution byte-identical to serial mode.
        self.snapshots = snapshots and getattr(
            executor, "supports_snapshots", False
        )
        # Applied before the fork so every worker inherits the setting;
        # the staged plan/decode caches themselves are pure per-word
        # memos, so each worker's copy-on-write copy stays coherent as
        # it grows independently (see repro.spec.isa).
        self.staging = apply_staging(executor, staging)
        self.superblocks = apply_superblocks(executor, superblocks)
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.resume = resume
        self.faults = faults if faults is not None and faults.active else None
        self.deadline = deadline
        self.memory_budget_mb = memory_budget_mb
        self.hang_timeout = hang_timeout
        # Persistent artifact store (--store): the directory path is
        # what crosses the fork; every worker opens its own handle.
        self.store_dir = store_dir

    def explore(self) -> ExplorationResult:
        if self.jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods():
            return self._fallback()
        return self._explore_pool()

    def _fallback(self) -> ExplorationResult:
        return Explorer(
            self.executor,
            strategy=self.strategy_name,
            max_paths=self.max_paths,
            seed=self.seed,
            jobs=1,
            use_cache=self.use_cache,
            dedup_flips=self.dedup_flips,
            preprocess=self.preprocess,
            staging=self.staging,
            superblocks=self.superblocks,
            snapshots=self.snapshots,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_interval=self.checkpoint_interval,
            resume=self.resume,
            faults=self.faults,
            deadline=self.deadline,
            memory_budget_mb=self.memory_budget_mb,
            hang_timeout=self.hang_timeout,
            store_dir=self.store_dir,
        ).explore()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, context, uid) -> _WorkerSlot:
        """Start one incarnation on fresh task/reply channels."""
        task_queue = context.SimpleQueue()
        recv_conn, send_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(
                self.executor,
                uid,
                self.use_cache,
                self.dedup_flips,
                self.preprocess,
                self.snapshots,
                task_queue,
                send_conn,
                self.faults,
                self.memory_budget_mb,
                self.store_dir,
            ),
            daemon=True,
        )
        process.start()
        # The child inherited the send end; dropping the parent's copy
        # makes the pipe EOF as soon as the incarnation dies.
        send_conn.close()
        return _WorkerSlot(uid, process, task_queue, recv_conn)

    def _await_replies(self, slots, result, deadline_at):
        """Block until replies arrive or a worker death is detected.

        Returns ``(replies, dead_slots)``.  ``_worker_main`` converts
        in-task exceptions into error replies, but a hard-killed worker
        (OOM killer, segfault) posts nothing — without a liveness check
        the parent would wait forever on a reply that can never arrive.
        Each incarnation replies on its own pipe, so a crash can only
        truncate that worker's stream: complete replies racing the
        death are drained and processed, a torn trailing message is
        discarded (its item will be requeued), and no shared lock
        exists for a dying writer to wedge the survivors with.

        **Watchdog.**  Every drained message (heartbeat or reply)
        refreshes the seat's ``last_beat``; a *live* seat silent for
        longer than ``hang_timeout`` is declared hung: the supervisor
        kills it (SIGKILL — a wedged process may ignore SIGTERM),
        counts it in ``hung_workers``, and lets the ordinary death path
        requeue its item and respawn the seat.  The global deadline is
        also enforced here, since heartbeats keep this loop turning
        even when no worker ever finishes its task.
        """
        while True:
            if deadline_at is not None and time.monotonic() >= deadline_at:
                raise _DeadlineExpired
            ready = mp_connection.wait(
                [slot.reply for slot in slots], timeout=0.2
            )
            now = time.monotonic()
            replies = []
            for slot in slots:
                if slot.reply not in ready:
                    continue
                try:
                    while slot.reply.poll():
                        message = slot.reply.recv()
                        slot.last_beat = now
                        if message[0] != _HEARTBEAT:
                            replies.append(message)
                except (EOFError, OSError):
                    pass  # EOF or torn message: the death check decides
            for slot in slots:
                if slot.process.exitcode is not None:
                    continue
                if now - slot.last_beat > self.hang_timeout:
                    result.hung_workers += 1
                    slot.process.kill()
                    slot.process.join()
            dead = [
                slot for slot in slots if slot.process.exitcode is not None
            ]
            if replies or dead:
                return replies, dead
            if ready:
                # A pipe signalled EOF but the exit code is not posted
                # yet: yield briefly instead of spinning on wait().
                time.sleep(0.005)

    def _revive(
        self, slot, replied_ids, in_flight, frontier, result, context
    ) -> None:
        """Recover one dead seat: requeue or abandon its item, respawn.

        An item whose reply already arrived (``replied_ids``) completed
        before the death — it is *not* requeued; the pending reply will
        account for it.  Otherwise the item is lost mid-run: it goes
        back to the frontier with ``failures`` bumped, or — after
        :data:`MAX_ITEM_FAILURES` deaths while holding it — is recorded
        as an ``incomplete`` path.  The requeued item keeps its snapshot
        reference: it names the *capturing* worker's uid, which either
        still lives (resume works) or never matches again (full
        re-execution — the same sound fallback as a pool eviction).
        """
        slot.process.join()
        slot.reply.close()
        task_id = slot.task_id
        slot.task_id = None
        if task_id is not None and task_id not in replied_ids:
            item = in_flight.pop(task_id, None)
            if item is not None:
                result.worker_deaths += 1
                item.failures += 1
                if item.failures >= MAX_ITEM_FAILURES:
                    result.incomplete_paths += 1
                else:
                    frontier.push(item)
        # Seeded-jitter exponential backoff per seat: repeated respawns
        # slow down (capped), one-off crashes restart almost
        # immediately, and simultaneous seat deaths desynchronize.
        delay = _backoff_delay(self.seed, slot.uid, slot.respawns)
        if delay:
            time.sleep(delay)
        slot.respawns += 1
        self._next_uid += 1
        fresh = self._spawn(context, self._next_uid)
        slot.uid = fresh.uid
        slot.process = fresh.process
        slot.queue = fresh.queue
        slot.reply = fresh.reply
        slot.last_beat = fresh.last_beat

    # ------------------------------------------------------------------
    # The supervised pool loop
    # ------------------------------------------------------------------

    def _explore_pool(self) -> ExplorationResult:
        context = multiprocessing.get_context("fork")
        self._next_uid = self.jobs - 1
        slots = [self._spawn(context, uid) for uid in range(self.jobs)]

        result = ExplorationResult(workers=self.jobs)
        start = time.perf_counter()
        frontier = Frontier(self.strategy_name, self.seed)
        manager = None
        restored = None
        if self.checkpoint_dir is not None:
            from .checkpoint import CheckpointManager

            manager = CheckpointManager(
                self.checkpoint_dir,
                strategy=self.strategy_name,
                seed=self.seed,
                interval=self.checkpoint_interval,
            )
            if self.resume:
                restored = manager.load()
        # Flip-query digests of children already enqueued.  Worker tries
        # are per-process, so when diverged runs on *different* workers
        # re-derive the same flip, the duplicate is caught here — same
        # path set as the serial driver's shared trie.  Digests are
        # restart-stable, so a resumed campaign's persisted set also
        # suppresses re-deriving pre-crash children.
        seen_digests: set = set()
        if restored is not None:
            restored.restore_result(result)
            seen_digests = restored.digests
            for item in restored.frontier_items():
                frontier.push(item)
        else:
            frontier.push(WorkItem(InputAssignment(), 0))
        resumed_complete = restored is not None and restored.complete
        faults = self.faults
        deadline_at = (
            time.monotonic() + self.deadline if self.deadline is not None else None
        )
        next_task = 0
        dropped = False
        #: task id -> WorkItem currently held by some worker.
        in_flight: dict[int, WorkItem] = {}
        pending_replies: deque = deque()
        # Latest cumulative solver/snapshot/superblock counter dicts per
        # worker incarnation uid (see _worker_main); summed into the
        # result after the pool drains.  Keyed by uid, so a respawned
        # seat never overwrites its dead predecessor's final totals.
        worker_solver_stats: dict[int, dict] = {}
        worker_snapshot_stats: dict[int, dict] = {}
        worker_superblock_stats: dict[int, dict] = {}
        worker_governor_stats: dict[int, dict] = {}
        # Global superblock hotness: per-PC flippable-branch executions
        # accumulate across all workers' runs; PCs past the threshold
        # are broadcast with every task (cumulative tuple — workers
        # apply the delta), so late-started and idle workers converge on
        # the same hot set.
        hot_counts: dict = {}
        hot_pcs: tuple = ()
        superblocks_on = getattr(self.executor, "superblocks_enabled", False)
        try:
            while not resumed_complete and (
                frontier or in_flight or pending_replies
            ):
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    raise _DeadlineExpired
                for slot in slots:
                    if slot.task_id is not None:
                        continue
                    if not frontier:
                        break
                    if result.num_paths + len(in_flight) >= self.max_paths:
                        break
                    item = frontier.pop()
                    slot.task_id = next_task
                    in_flight[next_task] = item
                    slot.queue.put(
                        (
                            next_task,
                            serialize_assignment(item.assignment),
                            item.bound,
                            item.snapshot,
                            hot_pcs,
                        )
                    )
                    next_task += 1
                if not in_flight and not pending_replies:
                    break  # path budget exhausted with work left over
                if not pending_replies:
                    replies, dead = self._await_replies(
                        slots, result, deadline_at
                    )
                    pending_replies.extend(replies)
                    if dead:
                        replied_ids = {reply[0] for reply in pending_replies}
                        for slot in dead:
                            self._revive(
                                slot,
                                replied_ids,
                                in_flight,
                                frontier,
                                result,
                                context,
                            )
                        continue
                reply = pending_replies.popleft()
                task_id, path_payload, children, stats_payload = reply
                item = in_flight.pop(task_id, None)
                for slot in slots:
                    if slot.task_id == task_id:
                        slot.task_id = None
                        break
                if path_payload is None:
                    raise RuntimeError(f"exploration worker failed:\n{children}")
                if result.num_paths < self.max_paths:
                    self._record_path(result, path_payload)
                else:
                    dropped = True
                stats = RunStats(
                    sat_checks=stats_payload[0],
                    unsat_checks=stats_payload[1],
                    cache_hits=stats_payload[2],
                    fast_path_answers=stats_payload[3],
                    sat_solves=stats_payload[4],
                    pruned_queries=stats_payload[5],
                    solver_time=stats_payload[6],
                    covered_pcs=set(stats_payload[7]),
                    pc_hits=dict(stats_payload[11]),
                    unknown_queries=stats_payload[13],
                )
                origin_uid = stats_payload[8]
                worker_solver_stats[origin_uid] = stats_payload[9]
                worker_snapshot_stats[origin_uid] = stats_payload[10]
                if stats_payload[12]:
                    worker_superblock_stats[origin_uid] = stats_payload[12]
                if stats_payload[14]:
                    worker_governor_stats[origin_uid] = stats_payload[14]
                if superblocks_on and stats_payload[11]:
                    new_hot = False
                    for pc, count in stats_payload[11]:
                        total = hot_counts.get(pc, 0) + count
                        hot_counts[pc] = total
                        if total >= BRANCH_HOT_HITS:
                            new_hot = True
                    if new_hot:
                        hot_pcs = tuple(
                            pc
                            for pc, count in hot_counts.items()
                            if count >= BRANCH_HOT_HITS
                        )
                novelty = len(stats.covered_pcs - result.covered_branches)
                result.merge_run_stats(stats)
                for assignment_payload, bound, digest, snapshot in children:
                    if digest is not None:
                        if digest in seen_digests:
                            result.pruned_queries += 1
                            continue
                        seen_digests.add(digest)
                    frontier.push(
                        WorkItem(
                            deserialize_assignment(assignment_payload),
                            bound,
                            novelty=novelty,
                            digest=digest,
                            snapshot=(
                                (origin_uid, snapshot)
                                if snapshot is not None
                                else None
                            ),
                            divergence=bound - 1 if bound else None,
                        )
                    )
                if manager is not None:
                    manager.maybe_save(
                        result,
                        frontier.items() + list(in_flight.values()),
                        seen_digests,
                        solver_stats=_summed(
                            result.solver_stats, worker_solver_stats.values()
                        ),
                    )
                if faults is not None and faults.interrupt_after is not None:
                    if result.num_paths >= faults.interrupt_after:
                        raise KeyboardInterrupt
        except KeyboardInterrupt:
            result.interrupted = True
        except _DeadlineExpired:
            result.interrupted = True
            result.deadline_expired = True
        finally:
            # Bounded shutdown escalation: a cooperative join first,
            # then SIGTERM, then SIGKILL — close() can never hang the
            # parent on a worker wedged past its shutdown sentinel.
            for slot in slots:
                slot.queue.put(None)
            for slot in slots:
                slot.process.join(timeout=5)
            for slot in slots:
                if slot.process.is_alive():  # pragma: no cover - defensive
                    slot.process.terminate()
                    slot.process.join(timeout=2)
                if slot.process.is_alive():  # pragma: no cover - defensive
                    slot.process.kill()
                    slot.process.join(timeout=5)
                slot.reply.close()
        result.truncated = dropped or bool(frontier)
        result.frontier_peak = max(frontier.peak, result.frontier_peak)
        for stats_dict in worker_solver_stats.values():
            result.merge_solver_stats(stats_dict)
        for stats_dict in worker_snapshot_stats.values():
            result.merge_snapshot_stats(stats_dict)
        for stats_dict in worker_superblock_stats.values():
            result.merge_superblock_stats(stats_dict)
        for stats_dict in worker_governor_stats.values():
            result.merge_governor_stats(stats_dict)
        if manager is not None and not resumed_complete:
            manager.save(
                result,
                frontier.items() + list(in_flight.values()),
                seen_digests,
                complete=(
                    not frontier and not in_flight and not result.interrupted
                ),
                solver_stats=result.solver_stats,
                snapshot_stats=result.snapshot_stats,
                superblock_stats=result.superblock_stats,
                governor_stats=result.governor_stats,
            )
        if result.deadline_expired:
            # Anytime accounting: drained frontier plus still-in-flight
            # items are the explicitly counted unexplored paths.  Added
            # only AFTER the final checkpoint save — ``--resume``
            # restores those items and re-explores them, so persisting
            # the count too would double-book them.
            result.incomplete_paths += len(frontier.drain()) + len(in_flight)
        if self.preprocess is not None and self.preprocess.certify:
            # The parent never executed the SUT, so its executor is a
            # pristine replay vehicle for the certificates the workers'
            # runs produced.
            from .certificates import verify_result

            verify_result(result, self.executor)
            if self.store_dir is not None and not result.certificate_failures:
                # Replay-checked evidence goes to the persistent store
                # through the parent's own handle (workers only persist
                # query verdicts; certificates are a campaign artifact).
                from .certificates import certificate_to_state
                from .store import ArtifactStore

                store = ArtifactStore(self.store_dir, certify=True)
                for cert in result.certificates:
                    store.save_certificate(certificate_to_state(cert))
        result.wall_time = time.perf_counter() - start
        return result

    def _record_path(self, result: ExplorationResult, payload) -> None:
        (
            halt_reason,
            exit_code,
            instret,
            trace_length,
            assignment,
            stdout,
            pc,
            resumed_instret,
            condition_digest,
        ) = payload
        result.total_instructions += instret
        result.executed_instructions += instret - resumed_instret
        result.paths.append(
            PathInfo(
                index=len(result.paths),
                halt_reason=halt_reason,
                exit_code=exit_code,
                instret=instret,
                trace_length=trace_length,
                assignment=deserialize_assignment(assignment),
                stdout=stdout,
                final_pc=pc,
                condition_digest=condition_digest,
            )
        )


def _summed(base: dict, live_dicts) -> dict:
    """Key-wise ``base + sum(live_dicts)`` without mutating either."""
    total = dict(base)
    for live in live_dicts:
        for key, value in live.items():
            total[key] = total.get(key, 0) + value
    return total
