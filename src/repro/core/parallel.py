"""Multi-process path exploration: a work-queue over forked workers.

The offline executor restarts the SUT once per path, and the runs are
independent given their input assignments — which makes the exploration
loop embarrassingly parallel apart from the frontier.  This module
keeps the frontier (and the chosen search strategy) in the parent and
fans the concolic runs out over a pool of forked workers:

* the parent pops :class:`~repro.core.scheduler.WorkItem`s and sends
  ``(task_id, assignment, bound)`` over a task queue,
* each worker owns its *own* :class:`~repro.smt.solver.Solver` (plus
  query cache and explored-prefix trie), executes the run, performs the
  branch-flip expansion locally, and streams back the path summary, the
  newly discovered frontier entries, and exact per-run solver stats,
* the parent records paths, aggregates statistics, scores coverage
  novelty against the global covered-branch set, and pushes the new
  work items.

Workers are created with the ``fork`` start method so they inherit the
executor (ISA, image, interpreter) without pickling — interned terms
cannot round-trip through pickle, and the formal-spec layer has no
reason to be serializable.  Input assignments cross the process
boundary by variable *name* (see :mod:`repro.core.scheduler`).  On
platforms without ``fork`` the driver transparently falls back to the
single-process explorer, which discovers the identical path set.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from typing import Optional

from ..smt.preprocess import PreprocessConfig
from ..spec.superblock import BRANCH_HOT_HITS
from .explorer import (
    ExplorationResult,
    Explorer,
    PathInfo,
    apply_staging,
    apply_superblocks,
    make_solver,
)
from .scheduler import (
    Frontier,
    RunStats,
    WorkItem,
    deserialize_assignment,
    expand_run,
    serialize_assignment,
)
from .state import ExploredPrefixTrie, InputAssignment

__all__ = ["ProcessPoolExplorer", "default_jobs"]


def default_jobs() -> int:
    """Worker count when none is requested: one per CPU, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _worker_main(
    executor,
    worker_id,
    use_cache,
    dedup_flips,
    preprocess,
    snapshots,
    task_queue,
    result_queue,
):
    """Worker loop: execute runs and expand their branch flips.

    Replies are ``(task_id, path_payload, children, stats_payload)`` on
    success or ``(task_id, None, traceback_text, None)`` on failure.
    ``None`` on the task queue shuts the worker down.

    The stats payload carries, besides the per-run :class:`RunStats`
    fields, the worker id and the solver's (and snapshot layer's)
    *cumulative* flat counter dicts: the parent keeps the latest dict
    per worker and sums them at the end, which is exact — a worker only
    accrues counters while producing replies, so its last reply carries
    its final totals.

    Snapshot handles are process-local, so a task's snapshot reference
    ``(origin_worker, handle)`` is only honoured when this worker
    captured it; cross-worker items re-execute from the entry point,
    which discovers the identical path (counted separately so the
    benchmark can report the cross-worker re-execution share).
    """
    solver = make_solver(use_cache, preprocess)
    trie = ExploredPrefixTrie() if dedup_flips else None
    cross_worker_items = 0
    note_hot = getattr(executor, "note_hot_pcs", None)
    hot_applied: set = set()
    while True:
        task = task_queue.get()
        if task is None:
            return
        task_id, assignment_payload, bound, snapshot_ref, hot_pcs = task
        try:
            if note_hot is not None and hot_pcs:
                # The parent broadcasts its cumulative hot-branch set
                # (hotness is global across workers); apply the delta.
                fresh = [pc for pc in hot_pcs if pc not in hot_applied]
                if fresh:
                    hot_applied.update(fresh)
                    note_hot(fresh)
            assignment = deserialize_assignment(assignment_payload)
            if snapshots:
                resume = None
                if snapshot_ref is not None:
                    if snapshot_ref[0] == worker_id:
                        resume = snapshot_ref[1]
                    else:
                        cross_worker_items += 1
                run = executor.execute_from(
                    resume, assignment, capture_from=bound
                )
            else:
                run = executor.execute(assignment)
            stats = RunStats()
            children = expand_run(
                run,
                bound,
                solver,
                executor.input_variables(),
                stats,
                trie,
                compute_digests=True,
                snapshots=run.snapshots if snapshots else None,
            )
            path_payload = (
                run.halt_reason,
                run.exit_code,
                run.instret,
                len(run.trace),
                serialize_assignment(run.assignment),
                run.stdout,
                run.final_pc,
                run.resumed_instret,
            )
            # child.divergence is not shipped: it always equals
            # bound - 1 for flip children, so the parent re-derives it.
            child_payloads = [
                (
                    serialize_assignment(child.assignment),
                    child.bound,
                    child.digest,
                    child.snapshot,
                )
                for child in children
            ]
            solver_stats = getattr(solver, "pipeline_statistics", None)
            if solver_stats is None:
                solver_stats = {"sat_core_solves": solver.num_solves}
            snapshot_stats = getattr(executor, "snapshot_statistics", None)
            if snapshot_stats is not None and snapshots:
                snapshot_stats = dict(snapshot_stats)
                snapshot_stats["snap_cross_worker_items"] = cross_worker_items
            else:
                snapshot_stats = {}
            superblock_stats = getattr(executor, "superblock_statistics", None)
            if superblock_stats is not None and getattr(
                executor, "superblocks_enabled", False
            ):
                superblock_stats = dict(superblock_stats)
            else:
                superblock_stats = {}
            stats_payload = (
                stats.sat_checks,
                stats.unsat_checks,
                stats.cache_hits,
                stats.fast_path_answers,
                stats.sat_solves,
                stats.pruned_queries,
                stats.solver_time,
                tuple(stats.covered_pcs),
                worker_id,
                dict(solver_stats),
                snapshot_stats,
                tuple(stats.pc_hits.items()),
                superblock_stats,
            )
            result_queue.put((task_id, path_payload, child_payloads, stats_payload))
        except Exception:
            result_queue.put((task_id, None, traceback.format_exc(), None))


class ProcessPoolExplorer:
    """Explores an executor's paths on a pool of forked worker processes.

    Drop-in alternative to :class:`~repro.core.explorer.Explorer`: same
    constructor vocabulary, same :class:`ExplorationResult`, and —
    because the flip-expansion rules fully determine the reachable
    (assignment, bound) tree independent of visit order — the same
    discovered path set.  Path *indices* reflect completion order, so
    cross-mode comparisons should use ``ExplorationResult.path_set()``.

    The parent process never executes the SUT, so executor-side state
    (e.g. the interpreter's discovered symbolic inputs) stays untouched
    in the parent; everything the caller needs is in the result.
    """

    def __init__(
        self,
        executor,
        jobs: Optional[int] = None,
        strategy: str = "dfs",
        max_paths: int = 1_000_000,
        seed: int = 0,
        use_cache: bool = False,
        dedup_flips: bool = True,
        preprocess: Optional[PreprocessConfig] = None,
        staging: Optional[bool] = None,
        superblocks: Optional[bool] = None,
        snapshots: bool = True,
    ):
        self.executor = executor
        self.jobs = jobs if jobs is not None else default_jobs()
        self.strategy_name = strategy
        self.max_paths = max_paths
        self.seed = seed
        self.use_cache = use_cache
        self.dedup_flips = dedup_flips
        self.preprocess = preprocess
        # Snapshots are worker-local (pools are fork-inherited but grow
        # independently): items that land on the capturing worker
        # resume; everything else re-executes, keeping the discovered
        # path set and query attribution byte-identical to serial mode.
        self.snapshots = snapshots and getattr(
            executor, "supports_snapshots", False
        )
        # Applied before the fork so every worker inherits the setting;
        # the staged plan/decode caches themselves are pure per-word
        # memos, so each worker's copy-on-write copy stays coherent as
        # it grows independently (see repro.spec.isa).
        self.staging = apply_staging(executor, staging)
        self.superblocks = apply_superblocks(executor, superblocks)

    def explore(self) -> ExplorationResult:
        if self.jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods():
            return self._fallback()
        return self._explore_pool()

    def _fallback(self) -> ExplorationResult:
        return Explorer(
            self.executor,
            strategy=self.strategy_name,
            max_paths=self.max_paths,
            seed=self.seed,
            jobs=1,
            use_cache=self.use_cache,
            dedup_flips=self.dedup_flips,
            preprocess=self.preprocess,
            staging=self.staging,
            superblocks=self.superblocks,
            snapshots=self.snapshots,
        ).explore()

    def _next_reply(self, result_queue, workers):
        """Blocking get that notices dead workers instead of hanging.

        ``_worker_main`` converts in-task exceptions into error replies,
        but a hard-killed worker (OOM killer, segfault) posts nothing —
        without a liveness check the parent would wait forever on a
        reply that can never arrive.
        """
        while True:
            try:
                return result_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [w for w in workers if w.exitcode is not None]
                if dead:
                    try:
                        # A reply may have raced the death; drain first.
                        return result_queue.get_nowait()
                    except queue_module.Empty:
                        codes = sorted({w.exitcode for w in dead})
                        raise RuntimeError(
                            f"exploration worker died without replying "
                            f"(exit codes {codes})"
                        ) from None

    def _explore_pool(self) -> ExplorationResult:
        context = multiprocessing.get_context("fork")
        task_queue = context.SimpleQueue()
        result_queue = context.Queue()
        workers = [
            context.Process(
                target=_worker_main,
                args=(
                    self.executor,
                    worker_id,
                    self.use_cache,
                    self.dedup_flips,
                    self.preprocess,
                    self.snapshots,
                    task_queue,
                    result_queue,
                ),
                daemon=True,
            )
            for worker_id in range(self.jobs)
        ]
        for worker in workers:
            worker.start()

        result = ExplorationResult(workers=self.jobs)
        start = time.perf_counter()
        frontier = Frontier(self.strategy_name, self.seed)
        frontier.push(WorkItem(InputAssignment(), 0))
        in_flight = 0
        next_task = 0
        dropped = False
        # Flip-query digests of children already enqueued.  Worker tries
        # are per-process, so when diverged runs on *different* workers
        # re-derive the same flip, the duplicate is caught here — same
        # path set as the serial driver's shared trie.
        seen_digests: set = set()
        # Latest cumulative solver/snapshot/superblock counter dicts per
        # worker (see _worker_main); summed into the result after the
        # pool drains.
        worker_solver_stats: dict[int, dict] = {}
        worker_snapshot_stats: dict[int, dict] = {}
        worker_superblock_stats: dict[int, dict] = {}
        # Global superblock hotness: per-PC flippable-branch executions
        # accumulate across all workers' runs; PCs past the threshold
        # are broadcast with every task (cumulative tuple — workers
        # apply the delta), so late-started and idle workers converge on
        # the same hot set.
        hot_counts: dict = {}
        hot_pcs: tuple = ()
        superblocks_on = getattr(self.executor, "superblocks_enabled", False)
        try:
            while frontier or in_flight:
                while (
                    frontier
                    and in_flight < self.jobs
                    and result.num_paths + in_flight < self.max_paths
                ):
                    item = frontier.pop()
                    task_queue.put(
                        (
                            next_task,
                            serialize_assignment(item.assignment),
                            item.bound,
                            item.snapshot,
                            hot_pcs,
                        )
                    )
                    next_task += 1
                    in_flight += 1
                if not in_flight:
                    break  # path budget exhausted with work left over
                reply = self._next_reply(result_queue, workers)
                in_flight -= 1
                _, path_payload, children, stats_payload = reply
                if path_payload is None:
                    raise RuntimeError(f"exploration worker failed:\n{children}")
                if result.num_paths < self.max_paths:
                    self._record_path(result, path_payload)
                else:
                    dropped = True
                stats = RunStats(
                    sat_checks=stats_payload[0],
                    unsat_checks=stats_payload[1],
                    cache_hits=stats_payload[2],
                    fast_path_answers=stats_payload[3],
                    sat_solves=stats_payload[4],
                    pruned_queries=stats_payload[5],
                    solver_time=stats_payload[6],
                    covered_pcs=set(stats_payload[7]),
                    pc_hits=dict(stats_payload[11]),
                )
                origin_worker = stats_payload[8]
                worker_solver_stats[origin_worker] = stats_payload[9]
                worker_snapshot_stats[origin_worker] = stats_payload[10]
                if stats_payload[12]:
                    worker_superblock_stats[origin_worker] = stats_payload[12]
                if superblocks_on and stats_payload[11]:
                    new_hot = False
                    for pc, count in stats_payload[11]:
                        total = hot_counts.get(pc, 0) + count
                        hot_counts[pc] = total
                        if total >= BRANCH_HOT_HITS:
                            new_hot = True
                    if new_hot:
                        hot_pcs = tuple(
                            pc
                            for pc, count in hot_counts.items()
                            if count >= BRANCH_HOT_HITS
                        )
                novelty = len(stats.covered_pcs - result.covered_branches)
                result.merge_run_stats(stats)
                for assignment_payload, bound, digest, snapshot in children:
                    if digest is not None:
                        if digest in seen_digests:
                            result.pruned_queries += 1
                            continue
                        seen_digests.add(digest)
                    frontier.push(
                        WorkItem(
                            deserialize_assignment(assignment_payload),
                            bound,
                            novelty=novelty,
                            digest=digest,
                            snapshot=(
                                (origin_worker, snapshot)
                                if snapshot is not None
                                else None
                            ),
                            divergence=bound - 1 if bound else None,
                        )
                    )
        finally:
            for _ in workers:
                task_queue.put(None)
            for worker in workers:
                worker.join(timeout=5)
            for worker in workers:
                if worker.is_alive():  # pragma: no cover - defensive
                    worker.terminate()
                    worker.join(timeout=5)
        result.truncated = dropped or bool(frontier)
        result.frontier_peak = frontier.peak
        for stats_dict in worker_solver_stats.values():
            result.merge_solver_stats(stats_dict)
        for stats_dict in worker_snapshot_stats.values():
            result.merge_snapshot_stats(stats_dict)
        for stats_dict in worker_superblock_stats.values():
            result.merge_superblock_stats(stats_dict)
        result.wall_time = time.perf_counter() - start
        return result

    def _record_path(self, result: ExplorationResult, payload) -> None:
        (
            halt_reason,
            exit_code,
            instret,
            trace_length,
            assignment,
            stdout,
            pc,
            resumed_instret,
        ) = payload
        result.total_instructions += instret
        result.executed_instructions += instret - resumed_instret
        result.paths.append(
            PathInfo(
                index=len(result.paths),
                halt_reason=halt_reason,
                exit_code=exit_code,
                instret=instret,
                trace_length=trace_length,
                assignment=deserialize_assignment(assignment),
                stdout=stdout,
                final_pc=pc,
            )
        )
