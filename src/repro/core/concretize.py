"""Address concretization policies for symbolic memory accesses.

BinSym (like most binary SE engines, see Baldoni et al. Sect. 3.2)
concretizes symbolic addresses: a load/store whose address term depends
on symbolic input is executed at the address's *concrete* value under
the current assignment.  The policies differ in what they record:

* ``PIN`` — additionally record ``address == concrete`` as a path
  assumption.  Sound for the explored prefix: branch-flipping queries
  cannot move the access to a different location behind the engine's
  back.  This is the default.
* ``FREE`` — record nothing.  Faster, and complete for programs whose
  addresses never depend on symbolic data (true for all Table I
  workloads — their indices are loop counters), but in general flipped
  inputs could alias differently.

The ablation benchmark ``bench_ablation_concretize.py`` measures the
trade-off.
"""

from __future__ import annotations

import enum

from ..smt import terms as T
from .state import PathTrace
from .symvalue import SymValue

__all__ = ["ConcretizationPolicy", "concretize_address"]


class ConcretizationPolicy(enum.Enum):
    PIN = "pin"
    FREE = "free"


def concretize_address(
    address: SymValue,
    policy: ConcretizationPolicy,
    trace: PathTrace,
    pc: int,
) -> int:
    """Return the concrete address, recording policy-dependent facts."""
    if address.term is None:
        return address.concrete
    if policy is ConcretizationPolicy.PIN:
        pinned = T.eq(address.term, T.bv(address.concrete, address.width))
        trace.add_assumption(pinned, pc)
    return address.concrete
